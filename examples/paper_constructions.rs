//! A guided tour of the paper's three lower-bound constructions: build one member of
//! each family, print its anatomy, and check the structural property each family was
//! designed for.
//!
//! Run with `cargo run --release --example paper_constructions`.

use four_shades::constructions::component::Side;
use four_shades::constructions::{layers, GClass, JClass, UClass};
use four_shades::graph::dot::{to_dot, DotOptions};
use four_shades::views::Refinement;

fn main() {
    // ---- G_{Δ,k} (Section 2.2): Selection needs large advice. -----------------------
    let g_class = GClass::new(4, 1).expect("parameters");
    let member = g_class.member(3).expect("member");
    let g = &member.labeled.graph;
    println!("G_{{4,1}} member 3:");
    println!(
        "  {} nodes, cycle of {} nodes, {} attached trees",
        g.num_nodes(),
        member.cycle_len,
        member.roots().len()
    );
    let r = Refinement::compute(g, Some(2));
    println!(
        "  unique-view nodes at depth k−1 = 0: {:?}; at depth k = 1: {:?} (only r_{{i,2}})",
        r.unique_nodes_at(0),
        r.unique_nodes_at(1)
    );

    // ---- U_{Δ,k} (Section 3): Port Election needs exponential advice. ---------------
    let u_class = UClass::new(4, 1).expect("parameters");
    let u = u_class.member(&[2; 9]).expect("member");
    let ug = &u.labeled.graph;
    println!("\nU_{{4,1}} member (σ = all 2):");
    println!(
        "  {} nodes; {} cycle roots of degree Δ+2 = 6; {} heavy roots of degree 2Δ−1 = 7",
        ug.num_nodes(),
        u.cycle_roots().len(),
        u.heavy_roots().len()
    );
    let ur = Refinement::compute(ug, Some(1));
    println!(
        "  every cycle root unique at depth k: {}",
        u.cycle_roots().iter().all(|&v| ur.is_unique(v, 1))
    );

    // ---- J_{μ,k} (Section 4): PPE/CPPE need doubly exponential advice. --------------
    let j_class = JClass::new(2, 4).expect("parameters");
    println!(
        "\nJ_{{2,4}}: z = {} (nodes of L_4), full template has {} gadgets",
        j_class.z(),
        j_class.num_gadgets().unwrap()
    );
    for m in 0..=4usize {
        let (layer, _) = layers::layer_graph(2, m).expect("layer");
        println!("  layer L_{m}: {} nodes (Fact 4.1)", layer.num_nodes());
    }
    let chain = j_class.template(Some(6)).expect("chain");
    let cg = &chain.labeled.graph;
    println!(
        "  6-gadget chain: {} nodes, ρ degrees all {}; border pattern of gadget 5 encodes {}",
        cg.num_nodes(),
        cg.degree(chain.rho(0)),
        chain.encoded_w(&|v| cg.degree(v), 5, Side::Top)
    );

    // DOT output of a small piece, to eyeball against Figure 2 of the paper.
    let dot = to_dot(
        g,
        Some(&member.labeled.labels),
        &DotOptions {
            name: "G_4_1_member_3".into(),
            ..DotOptions::default()
        },
    );
    println!(
        "\nGraphviz of the G_{{4,1}} member has {} lines; run `cargo run -p anet-bench --bin exp_figures`\n\
         to regenerate every figure of the paper as DOT files.",
        dot.lines().count()
    );
}
