//! Token-ring recovery — the motivating application of leader election (Le Lann 1977,
//! quoted in the paper's introduction): in a token ring, exactly one node (the owner
//! of a circulating token) may initiate communication; when the token is lost, a
//! leader must be elected as its new initial owner, and every other node must be able
//! to *send messages to the leader*. The paper's discussion of the four shades maps
//! directly onto this scenario:
//!
//! * `S` (Selection) suffices if only the leader needs to broadcast;
//! * `PE` (Port Election) gives every station a local "next port towards the owner"
//!   that relaying stations can use — if they cooperate;
//! * `PPE` / `CPPE` let the original sender put the entire path to the owner in the
//!   packet header, so relaying can happen at the router level without consulting the
//!   relay's own state. That is the variant demonstrated below for end-to-end routing.
//!
//! Run with `cargo run --release --example token_ring_recovery`.

use four_shades::election::tasks::{verify, weaken_outputs};
use four_shades::graph::{generators, NodeId, PortGraph};
use four_shades::prelude::*;

/// Source-route one packet from `source` to the leader using the sender's own PPE
/// output as the packet header: at every hop the next output port is read from the
/// header, as the paper describes for the strong shades of election.
fn source_route(g: &PortGraph, outputs: &[NodeOutput], source: NodeId) -> Vec<NodeId> {
    let NodeOutput::PortPath(header) = &outputs[source as usize] else {
        panic!("non-leader stations output a port path");
    };
    let hops = g
        .follow_outgoing_ports(source, header)
        .expect("header ports exist");
    assert!(PortGraph::is_simple_node_sequence(&hops), "simple path");
    hops
}

fn main() {
    // An anonymous ring whose port orientation pattern is asymmetric — the only kind of
    // ring on which deterministic election is possible at all.
    let orientation = [true, true, false, true, false, false, true, true];
    let ring = generators::oriented_ring(&orientation).expect("feasible ring");
    println!(
        "token ring with {} anonymous stations (ports break the symmetry)",
        ring.num_nodes()
    );

    // The token is lost: elect a new owner and equip every station with a full path to
    // it (Port Path Election), in the minimum possible number of rounds for this ring.
    // One engine expression: task × solver × backend → verified report.
    let run = Election::task(Task::PortPathElection)
        .solver(MapSolver::new(10_000))
        .run(&ring)
        .expect("PPE solvable");
    let leader = run.leader().expect("PPE verified");
    println!(
        "new token owner elected in {} rounds (ψ_PPE of this ring): station {leader}",
        run.rounds
    );

    // Every other station source-routes a "token request" to the owner using its own
    // output as the packet header.
    for source in ring.nodes() {
        if source == leader {
            continue;
        }
        let hops = source_route(&ring, &run.outputs, source);
        println!(
            "station {source} reaches the owner in {} hops: {:?}",
            hops.len() - 1,
            hops
        );
    }

    // The same outputs, weakened (Fact 1.1), give the Port Election answer: the first
    // local port towards the owner — the "next-hop hint" a cooperating relay would use.
    let pe = weaken_outputs(&run.outputs, Task::PortElection).expect("weakening");
    verify(Task::PortElection, &ring, &pe).expect("PE holds");
    let hints: Vec<String> = ring
        .nodes()
        .map(|v| match &pe[v as usize] {
            NodeOutput::Leader => format!("{v}: owner"),
            NodeOutput::FirstPort(p) => format!("{v}: port {p}"),
            _ => unreachable!(),
        })
        .collect();
    println!(
        "per-station next-hop hints (PE outputs): {}",
        hints.join(", ")
    );

    // Selection alone would have identified an owner but no routes at all.
    let s_run = Election::task(Task::Selection)
        .solver(MapSolver::new(10_000))
        .run(&ring)
        .expect("S solvable");
    println!(
        "for comparison, Selection alone needs {} rounds on this ring and identifies no routes",
        s_run.rounds
    );
}
