//! The headline result of the paper, demonstrated on an instantiated member of
//! `U_{Δ,k}`: Selection in minimum time is cheap in advice, Port Election in the same
//! minimum time is exponentially expensive in Δ.
//!
//! Run with `cargo run --release --example advice_separation`.

use four_shades::constructions::UClass;
use four_shades::election::bounds;
use four_shades::prelude::*;
use four_shades::views::{JointRefinement, Refinement};

fn main() {
    let (delta, k) = (4usize, 1usize);
    let class = UClass::new(delta, k).expect("parameters");
    println!(
        "class U_{{Δ={delta}, k={k}}}: {} members (log₂ = {:.1}), each of maximum degree {}",
        class
            .size()
            .map(|s| s.to_string())
            .unwrap_or_else(|_| "2^many".into()),
        class.log2_size(),
        2 * delta - 1
    );

    // Build one member.
    let sigma: Vec<u32> = (0..class.y()).map(|j| (j % 3) as u32 + 1).collect();
    let member = class.member(&sigma).expect("member");
    let g = &member.labeled.graph;
    println!("member G_σ with σ = {sigma:?}: {} nodes", g.num_nodes());

    // Both tasks have the same minimum time k on this graph (Lemma 3.9).
    let r = Refinement::compute(g, Some(k));
    assert!((0..k).all(|h| r.unique_nodes_at(h).is_empty()));
    println!("ψ_S(G_σ) = ψ_PE(G_σ) = {k}");

    // Selection in minimum time: the Theorem 2.2 oracle needs only poly(Δ) bits.
    let s_run = Election::task(Task::Selection)
        .solver(AdviceSolver::theorem_2_2())
        .run(g)
        .expect("solver ran");
    assert!(s_run.solved(), "selection solved");
    let s_bits = s_run.advice_bits.expect("advice solver");
    println!(
        "Selection in {k} round(s): {s_bits} advice bits suffice (Theorem 2.2 bound ≈ {:.0})",
        bounds::theorem_2_2_upper_form(delta, k),
    );

    // Port Election in minimum time: solvable with the map (Lemma 3.9)…
    let pe_run = Election::task(Task::PortElection)
        .solver(PortElectionSolver::new(k))
        .run(g)
        .expect("PE run");
    assert!(pe_run.solved(), "PE solved");
    println!("Port Election in {k} round(s) is solvable knowing the map (Lemma 3.9)…");

    // …but any *advice*-based algorithm needs exponentially many bits (Theorem 3.11):
    let pe_lower = bounds::theorem_3_11_lower_bits(delta, k);
    println!(
        "…while with advice it needs at least ¼·|T_{{Δ,k}}|·log₂Δ = {pe_lower:.1} bits on some member \
         — already {:.1}× the Selection advice at Δ = {delta}, and the ratio grows like (Δ−1)^{{(Δ−2)(Δ−1)^{{k−1}}−k}}.",
        pe_lower / s_bits as f64
    );

    // The mechanism behind the lower bound: two members that differ only in one swap
    // are indistinguishable at depth k from the node that must react to the swap.
    let mut sb = sigma.clone();
    sb[4] = if sigma[4] == 1 { 2 } else { 1 };
    let other = class.member(&sb).expect("member");
    let joint = JointRefinement::compute(&[g, &other.labeled.graph], Some(k));
    let twin_ok = joint.same_view((0, member.heavy_root(5, 1)), (1, other.heavy_root(5, 1)), k);
    println!(
        "indistinguishability engine: r_{{5,1,1}} has the same B^{k} in G_σ and in the member \
         differing only at s_5 → {twin_ok}; with equal advice it must answer identically, \
         yet the correct port differs — hence the advice must differ, for every pair of members."
    );
}
