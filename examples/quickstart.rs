//! Quickstart: anonymous networks, views, election indices, and the `ElectionEngine`
//! facade — the whole pipeline on a 10-line example.
//!
//! Run with `cargo run --release --example quickstart`.

use four_shades::graph::{GraphBuilder, PortGraph};
use four_shades::prelude::*;
use four_shades::views::election_index::{compute_all, feasibility};
use four_shades::views::{View, ViewInterner};

/// Build a small anonymous network by hand: a 5-cycle with one pendant node, with every
/// port number chosen explicitly (the pair of numbers per edge is what breaks symmetry
/// in anonymous networks).
fn build_network() -> PortGraph {
    let mut b = GraphBuilder::with_nodes(6);
    // The cycle 0-1-2-3-4, port 0 "clockwise", port 1 "counter-clockwise".
    for i in 0..5u32 {
        b.add_edge(i, 0, (i + 1) % 5, 1).expect("cycle edge");
    }
    // A pendant node attached to node 0.
    b.add_edge(0, 2, 5, 0).expect("pendant edge");
    b.build().expect("valid port-numbered graph")
}

fn main() {
    let g = build_network();
    println!(
        "network: {} nodes, {} edges, maximum degree {}",
        g.num_nodes(),
        g.num_edges(),
        g.max_degree()
    );

    // 1. Views: what a node can learn in r rounds is its augmented truncated view B^r.
    //    `View` handles are structurally shared: one interner pass builds the views of
    //    *all* nodes, and equal subtrees collapse to one canonical object.
    let view = View::build(&g, 5, 2);
    println!(
        "B^2 of the pendant node: {} tree nodes, height {}",
        view.size(),
        view.height()
    );
    let mut interner = ViewInterner::new();
    let views = interner.build_all(&g, 2);
    println!(
        "all {} views at depth 2 share {} distinct subtrees",
        views.len(),
        interner.len()
    );

    // 2. Feasibility and the four election indices (minimum time knowing the map).
    let feas = feasibility(&g);
    println!("feasible (all views distinct): {}", feas.feasible);
    let idx = compute_all(&g, 10_000).expect("small graph");
    println!(
        "election indices: ψ_S = {:?}, ψ_PE = {:?}, ψ_PPE = {:?}, ψ_CPPE = {:?}",
        idx.s, idx.pe, idx.ppe, idx.cppe
    );

    // 3. The ElectionEngine facade: pick a task shade × a solver × a backend, run,
    //    and get a uniform report (rounds, messages, advice bits, verdict, wall time).
    //    Selection with the Theorem 2.2 oracle/algorithm pair:
    let report = Election::task(Task::Selection)
        .solver(AdviceSolver::theorem_2_2())
        .run(&g)
        .expect("solver ran");
    println!("{}", report.summary());

    // 4. Any of the four shades via the map-based minimum-time solver, on the
    //    parallel backend — same outputs, same accounting, different scheduling:
    for task in Task::ALL {
        let report = Election::task(task)
            .solver(MapSolver::default())
            .backend(Backend::Parallel { threads: 4 })
            .run(&g)
            .expect("feasible graph");
        println!(
            "{task}: leader {} after {} rounds ({} messages)",
            report.leader().expect("solved"),
            report.rounds,
            report.messages_delivered,
        );
    }
}
