//! Quickstart: anonymous networks, views, election indices, and leader election with
//! advice — the whole pipeline on a 10-line example.
//!
//! Run with `cargo run --release --example quickstart`.

use four_shades::election::selection::solve_selection_min_time;
use four_shades::election::tasks::{verify, Task};
use four_shades::graph::{GraphBuilder, PortGraph};
use four_shades::views::election_index::{compute_all, feasibility};
use four_shades::views::ViewTree;

/// Build a small anonymous network by hand: a 5-cycle with one pendant node, with every
/// port number chosen explicitly (the pair of numbers per edge is what breaks symmetry
/// in anonymous networks).
fn build_network() -> PortGraph {
    let mut b = GraphBuilder::with_nodes(6);
    // The cycle 0-1-2-3-4, port 0 "clockwise", port 1 "counter-clockwise".
    for i in 0..5u32 {
        b.add_edge(i, 0, (i + 1) % 5, 1).expect("cycle edge");
    }
    // A pendant node attached to node 0.
    b.add_edge(0, 2, 5, 0).expect("pendant edge");
    b.build().expect("valid port-numbered graph")
}

fn main() {
    let g = build_network();
    println!(
        "network: {} nodes, {} edges, maximum degree {}",
        g.num_nodes(),
        g.num_edges(),
        g.max_degree()
    );

    // 1. Views: what a node can learn in r rounds is its augmented truncated view B^r.
    let view = ViewTree::build(&g, 5, 2);
    println!(
        "B^2 of the pendant node: {} tree nodes, height {}",
        view.size(),
        view.height()
    );

    // 2. Feasibility and the four election indices (minimum time knowing the map).
    let feas = feasibility(&g);
    println!("feasible (all views distinct): {}", feas.feasible);
    let idx = compute_all(&g, 10_000).expect("small graph");
    println!(
        "election indices: ψ_S = {:?}, ψ_PE = {:?}, ψ_PPE = {:?}, ψ_CPPE = {:?}",
        idx.s, idx.pe, idx.ppe, idx.cppe
    );

    // 3. Selection in minimum time with advice (Theorem 2.2): an oracle that sees the
    //    whole network broadcasts one binary string; every node then decides after
    //    exactly ψ_S rounds.
    let run = solve_selection_min_time(&g);
    let outcome = verify(Task::Selection, &g, &run.outputs).expect("selection solved");
    println!(
        "selection with advice: {} bits of advice, {} rounds, leader = node {}",
        run.advice_bits(),
        run.rounds,
        outcome.leader
    );
    println!("advice string: {}", run.advice.to_binary_string());
}
