//! Extra [`GraphFamily`] implementations beyond the paper's `G`/`U`/`J` classes.
//!
//! The paper's constructions are adversarial *worst cases*; benchmarking the engine
//! also needs ordinary topologies across the diameter spectrum (the round complexity
//! of election-style tasks is tied to the diameter, so low- and high-diameter families
//! stress different parts of the pipeline):
//!
//! * [`RandomRegularFamily`] — `d`-regular graphs from the pairing (configuration)
//!   model, retried until simple and connected; diameter `Θ(log n)` for `d ≥ 3`;
//! * [`TorusFamily`] — 2D `w × h` tori; diameter `Θ(w + h)`;
//! * [`HypercubeFamily`] — `d`-dimensional hypercubes; diameter `d = log₂ n`;
//! * [`CirculantFamily`] — circulant graphs with geometric (powers-of-two) offsets,
//!   a classical low-diameter expander-like family.
//!
//! Every instance is a validated [`PortGraph`] (ports `0..deg` per node, involutive
//! port map, simple, connected — checked at construction). The canonical port
//! labellings of tori, hypercubes and circulants are fully symmetric, hence
//! *infeasible* for leader election (every node has the same view); a
//! [`PortLabeling::Shuffled`] labelling permutes the ports at every node with the
//! in-tree SplitMix64 PRNG, which typically breaks the symmetry and yields feasible
//! instances while preserving the topology. All families are deterministic per seed.

use anet_constructions::{FamilyInstance, GraphFamily};
use anet_graph::rng::Rng;
use anet_graph::{permute, GraphBuilder, NodeId, Port, PortGraph};

/// How ports are labelled on an instance after the topology is generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortLabeling {
    /// Keep the generator's canonical labelling (symmetric for tori, hypercubes and
    /// circulants — such instances are infeasible for election, which is itself a
    /// scenario worth sweeping: the engine must report them as unsolved, not fail).
    Canonical,
    /// Shuffle the port labels at every node with a SplitMix64 PRNG seeded from the
    /// given seed (mixed with the instance parameter, so instances of one family get
    /// decorrelated shuffles). Deterministic per seed.
    Shuffled(u64),
}

impl PortLabeling {
    /// Apply the labelling to a freshly generated instance. `salt` is the instance
    /// parameter, mixed into the seed so each instance shuffles differently.
    fn apply(self, graph: PortGraph, salt: u64) -> PortGraph {
        match self {
            PortLabeling::Canonical => graph,
            PortLabeling::Shuffled(seed) => {
                let mut rng = Rng::seed(seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let perms: Vec<Vec<Port>> = graph
                    .nodes()
                    .map(|v| {
                        let mut p: Vec<Port> = (0..graph.degree(v) as Port).collect();
                        rng.shuffle(&mut p);
                        p
                    })
                    .collect();
                permute::permute_ports(&graph, &perms)
                    .expect("a port permutation of a valid graph is valid")
            }
        }
    }

    /// Short suffix for family display names.
    fn tag(self) -> String {
        match self {
            PortLabeling::Canonical => String::new(),
            PortLabeling::Shuffled(seed) => format!(", ports~{seed}"),
        }
    }
}

/// Random `d`-regular graphs from the pairing (configuration) model: `d` stubs per
/// node, a uniformly random perfect matching on the stubs, resampled until the result
/// is simple *and* connected. For `d ≥ 3` a uniform pairing is simple with constant
/// probability and connected with probability `1 − o(1)`, so the retry loop terminates
/// quickly; the whole procedure is deterministic for a fixed seed.
///
/// Ports are assigned in stub-matching order, which is itself uniformly random — no
/// extra shuffle is needed to obtain a "random" port labelling.
#[derive(Debug, Clone)]
pub struct RandomRegularFamily {
    /// Degree of every node (`d ≥ 3` recommended; `n · d` must be even).
    pub degree: usize,
    /// Node counts to instantiate, one instance per entry.
    pub sizes: Vec<usize>,
    /// PRNG seed (mixed per size).
    pub seed: u64,
}

/// Attempts before giving up on one (n, d) pair. A uniform pairing of a 4-regular
/// graph is simple with probability ≈ e^{-3.75} ≈ 2.3%, so a few thousand attempts
/// make failure astronomically unlikely while staying cheap (each attempt is `O(nd)`).
const PAIRING_ATTEMPTS: usize = 5_000;

impl RandomRegularFamily {
    /// A family of `degree`-regular graphs at the given sizes.
    pub fn new(degree: usize, sizes: Vec<usize>, seed: u64) -> Self {
        RandomRegularFamily {
            degree,
            sizes,
            seed,
        }
    }

    /// One pairing-model sample: `None` if this pairing produced a self-loop, a
    /// parallel edge, or a disconnected graph.
    fn sample(n: usize, d: usize, rng: &mut Rng) -> Option<PortGraph> {
        let mut stubs: Vec<NodeId> = (0..n as NodeId).flat_map(|v| [v].repeat(d)).collect();
        rng.shuffle(&mut stubs);
        let mut adj: Vec<Vec<(NodeId, Port)>> = vec![Vec::with_capacity(d); n];
        for pair in stubs.chunks_exact(2) {
            let (a, b) = (pair[0], pair[1]);
            if a == b || adj[a as usize].iter().any(|&(u, _)| u == b) {
                return None; // self-loop or parallel edge: reject the whole pairing
            }
            let pa = adj[a as usize].len() as Port;
            let pb = adj[b as usize].len() as Port;
            adj[a as usize].push((b, pb));
            adj[b as usize].push((a, pa));
        }
        // `from_adjacency` re-validates everything, including connectivity.
        PortGraph::from_adjacency(adj).ok()
    }

    /// Generate the `n`-node member (retry-until-simple). Panics only if
    /// 5000 pairings (`PAIRING_ATTEMPTS`) all fail, which for `d ≥ 3` and `n·d` even is
    /// practically impossible.
    pub fn generate(&self, n: usize) -> PortGraph {
        assert!(self.degree >= 2, "random-regular requires degree >= 2");
        assert!(
            n > self.degree,
            "random-regular requires n > d (simple graph)"
        );
        assert!(
            (n * self.degree).is_multiple_of(2),
            "random-regular requires n * d even"
        );
        let mut rng = Rng::seed(self.seed ^ (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for _ in 0..PAIRING_ATTEMPTS {
            if let Some(g) = Self::sample(n, self.degree, &mut rng) {
                return g;
            }
        }
        panic!(
            "pairing model failed to produce a simple connected {}-regular graph on {} nodes in {} attempts",
            self.degree, n, PAIRING_ATTEMPTS
        );
    }
}

impl GraphFamily for RandomRegularFamily {
    fn family_name(&self) -> String {
        format!("random-regular(d={}, seed={})", self.degree, self.seed)
    }

    fn instance_cache_key(&self) -> String {
        // The display name omits the size list, so it alone must not key a cache.
        format!("{} sizes={:?}", self.family_name(), self.sizes)
    }

    fn instances(&self, max_instances: usize) -> Vec<FamilyInstance> {
        self.sizes
            .iter()
            .take(max_instances)
            .map(|&n| {
                FamilyInstance::new(
                    format!("{} n={n}", self.family_name()),
                    n as u64,
                    self.generate(n),
                )
            })
            .collect()
    }
}

/// 2D tori (`w × h` grids with wraparound, `w, h ≥ 3` so the graph stays simple).
/// Every node has degree 4; the canonical ports are 0 = east, 1 = west, 2 = south,
/// 3 = north, which makes the network fully symmetric (vertex- and port-transitive).
/// Diameter `⌊w/2⌋ + ⌊h/2⌋` — the high-diameter end of the workload spectrum.
#[derive(Debug, Clone)]
pub struct TorusFamily {
    /// `(width, height)` pairs to instantiate, one instance per entry.
    pub dims: Vec<(usize, usize)>,
    /// Port labelling applied to every instance.
    pub labeling: PortLabeling,
}

impl TorusFamily {
    /// A torus family with canonical port labels.
    pub fn new(dims: Vec<(usize, usize)>) -> Self {
        TorusFamily {
            dims,
            labeling: PortLabeling::Canonical,
        }
    }

    /// Switch every instance to a seed-shuffled port labelling.
    pub fn shuffled(mut self, seed: u64) -> Self {
        self.labeling = PortLabeling::Shuffled(seed);
        self
    }

    /// Build the `w × h` torus with canonical ports.
    pub fn generate(w: usize, h: usize) -> PortGraph {
        assert!(w >= 3 && h >= 3, "torus requires w, h >= 3 (simple graph)");
        let id = |x: usize, y: usize| (y * w + x) as NodeId;
        let mut b = GraphBuilder::with_nodes(w * h);
        for y in 0..h {
            for x in 0..w {
                // East edge: port 0 here, port 1 at the east neighbour.
                b.add_edge(id(x, y), 0, id((x + 1) % w, y), 1)
                    .expect("torus edge");
                // South edge: port 2 here, port 3 at the south neighbour.
                b.add_edge(id(x, y), 2, id(x, (y + 1) % h), 3)
                    .expect("torus edge");
            }
        }
        b.build().expect("torus is a valid network")
    }
}

impl GraphFamily for TorusFamily {
    fn family_name(&self) -> String {
        format!("torus2d{}", self.labeling.tag())
    }

    fn instance_cache_key(&self) -> String {
        // The display name omits the dimension list, so it alone must not key a cache.
        format!("{} dims={:?}", self.family_name(), self.dims)
    }

    fn instances(&self, max_instances: usize) -> Vec<FamilyInstance> {
        self.dims
            .iter()
            .take(max_instances)
            .map(|&(w, h)| {
                let n = (w * h) as u64;
                let graph = self.labeling.apply(Self::generate(w, h), n);
                FamilyInstance::new(format!("torus {w}x{h}{}", self.labeling.tag()), n, graph)
            })
            .collect()
    }
}

/// `d`-dimensional hypercubes (`2^d` nodes, degree `d`, diameter `d`): the classic
/// logarithmic-diameter symmetric interconnect. Canonically the edge flipping bit `b`
/// uses port `b` at both endpoints (fully symmetric, infeasible for election).
#[derive(Debug, Clone)]
pub struct HypercubeFamily {
    /// Dimensions to instantiate, one instance per entry.
    pub dims: Vec<usize>,
    /// Port labelling applied to every instance.
    pub labeling: PortLabeling,
}

impl HypercubeFamily {
    /// A hypercube family with canonical port labels.
    pub fn new(dims: Vec<usize>) -> Self {
        HypercubeFamily {
            dims,
            labeling: PortLabeling::Canonical,
        }
    }

    /// Switch every instance to a seed-shuffled port labelling.
    pub fn shuffled(mut self, seed: u64) -> Self {
        self.labeling = PortLabeling::Shuffled(seed);
        self
    }
}

impl GraphFamily for HypercubeFamily {
    fn family_name(&self) -> String {
        format!("hypercube{}", self.labeling.tag())
    }

    fn instance_cache_key(&self) -> String {
        // The display name omits the dimension list, so it alone must not key a cache.
        format!("{} dims={:?}", self.family_name(), self.dims)
    }

    fn instances(&self, max_instances: usize) -> Vec<FamilyInstance> {
        self.dims
            .iter()
            .take(max_instances)
            .map(|&d| {
                let graph = anet_graph::generators::hypercube(d).expect("valid dimension");
                let n = graph.num_nodes() as u64;
                let graph = self.labeling.apply(graph, n);
                FamilyInstance::new(format!("hypercube d={d}{}", self.labeling.tag()), n, graph)
            })
            .collect()
    }
}

/// Circulant graphs `C_n(1, 2, 4, …, 2^{t−1})` with geometric offsets: node `i` is
/// joined to `i ± 2^j (mod n)` for each offset. With `t ≈ log₂ n` offsets these are
/// classical low-diameter expander-like networks (diameter `O(n / 2^t + t)`); every
/// node has degree `2t` exactly. Canonically offset `j` uses port `2j` clockwise and
/// port `2j + 1` counter-clockwise at every node — again fully symmetric.
#[derive(Debug, Clone)]
pub struct CirculantFamily {
    /// Node counts to instantiate, one instance per entry.
    pub sizes: Vec<usize>,
    /// Number of geometric offsets `t` (offsets `1, 2, …, 2^{t−1}`; each must stay
    /// below `n/2`, enforced per instance).
    pub num_offsets: usize,
    /// Port labelling applied to every instance.
    pub labeling: PortLabeling,
}

impl CirculantFamily {
    /// A circulant family `C_n(1, 2, …, 2^{t−1})` with canonical port labels.
    pub fn powers_of_two(sizes: Vec<usize>, num_offsets: usize) -> Self {
        CirculantFamily {
            sizes,
            num_offsets,
            labeling: PortLabeling::Canonical,
        }
    }

    /// Switch every instance to a seed-shuffled port labelling.
    pub fn shuffled(mut self, seed: u64) -> Self {
        self.labeling = PortLabeling::Shuffled(seed);
        self
    }

    /// Build `C_n(1, 2, …, 2^{t−1})` with canonical ports.
    pub fn generate(n: usize, num_offsets: usize) -> PortGraph {
        assert!(num_offsets >= 1, "circulant requires at least one offset");
        let largest = 1usize << (num_offsets - 1);
        assert!(
            2 * largest < n,
            "circulant offsets must stay below n/2 (largest offset {largest}, n = {n})"
        );
        let mut b = GraphBuilder::with_nodes(n);
        for j in 0..num_offsets {
            let s = 1usize << j;
            for i in 0..n {
                // Edge i -> i+s: port 2j ("clockwise") at i, port 2j+1 at i+s.
                b.add_edge(
                    i as NodeId,
                    2 * j as Port,
                    ((i + s) % n) as NodeId,
                    (2 * j + 1) as Port,
                )
                .expect("circulant edge");
            }
        }
        b.build().expect("circulant is a valid network")
    }
}

impl GraphFamily for CirculantFamily {
    fn family_name(&self) -> String {
        format!(
            "circulant(2^j, t={}){}",
            self.num_offsets,
            self.labeling.tag()
        )
    }

    fn instance_cache_key(&self) -> String {
        // The display name omits the size list, so it alone must not key a cache.
        format!("{} sizes={:?}", self.family_name(), self.sizes)
    }

    fn instances(&self, max_instances: usize) -> Vec<FamilyInstance> {
        self.sizes
            .iter()
            .take(max_instances)
            .map(|&n| {
                let graph = self
                    .labeling
                    .apply(Self::generate(n, self.num_offsets), n as u64);
                FamilyInstance::new(
                    format!(
                        "circulant n={n} t={}{}",
                        self.num_offsets,
                        self.labeling.tag()
                    ),
                    n as u64,
                    graph,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The model invariant the whole workspace rests on: the port map must be an
    /// involution — the edge at port `p` of `v` leads to some `(u, q)` whose port `q`
    /// leads straight back to `(v, p)`.
    fn assert_port_involution(g: &PortGraph) {
        for v in g.nodes() {
            for (p, u, q) in g.ports(v) {
                assert_eq!(
                    g.neighbor(u, q),
                    Some((v, p)),
                    "port map must be involutive at ({v}, {p})"
                );
            }
        }
    }

    fn assert_connected(g: &PortGraph) {
        let reached = g.bfs_distances(0).iter().filter(|d| d.is_some()).count();
        assert_eq!(reached, g.num_nodes(), "graph must be connected");
    }

    #[test]
    fn random_regular_is_regular_connected_involutive_and_deterministic() {
        for (d, n) in [(3usize, 16usize), (4, 21), (4, 50)] {
            let fam = RandomRegularFamily::new(d, vec![n], 0xA5EED);
            let g = fam.generate(n);
            assert_eq!(g.num_nodes(), n);
            assert_eq!(g.degree_sequence(), vec![d; n], "exactly {d}-regular");
            assert_connected(&g);
            assert_port_involution(&g);
            // Seed-determinism: same seed → identical graph; different seed → different.
            assert_eq!(g, fam.generate(n));
            let other = RandomRegularFamily::new(d, vec![n], 0xA5EED + 1).generate(n);
            assert_ne!(g, other, "different seeds should differ");
        }
    }

    #[test]
    fn random_regular_family_enumerates_sizes() {
        let fam = RandomRegularFamily::new(3, vec![16, 24, 32], 7);
        let instances = fam.instances(2);
        assert_eq!(instances.len(), 2);
        assert_eq!(instances[0].param, 16);
        assert_eq!(instances[1].param, 24);
        assert!(instances[0].name.contains("random-regular"));
    }

    #[test]
    #[should_panic(expected = "n * d even")]
    fn random_regular_rejects_odd_stub_count() {
        RandomRegularFamily::new(3, vec![15], 1).generate(15);
    }

    #[test]
    fn torus_has_exact_degrees_diameter_and_involution() {
        let g = TorusFamily::generate(4, 5);
        assert_eq!(g.num_nodes(), 20);
        assert_eq!(g.num_edges(), 40);
        assert_eq!(g.degree_sequence(), vec![4; 20]);
        assert_connected(&g);
        assert_port_involution(&g);
        assert_eq!(g.diameter(), 2 + 2, "⌊4/2⌋ + ⌊5/2⌋");
        // Canonical port convention: port 0 (east) is answered by port 1 (west).
        for v in g.nodes() {
            let (_, q) = g.neighbor(v, 0).unwrap();
            assert_eq!(q, 1);
        }
    }

    #[test]
    fn shuffled_torus_keeps_topology_and_is_deterministic() {
        let fam = TorusFamily::new(vec![(3, 4)]).shuffled(99);
        let a = fam.instances(1).remove(0);
        let b = fam.instances(1).remove(0);
        assert_eq!(a.graph, b.graph, "same seed must give the same labelling");
        assert_eq!(a.graph.degree_sequence(), vec![4; 12]);
        assert_eq!(a.graph.diameter(), TorusFamily::generate(3, 4).diameter());
        assert_port_involution(&a.graph);
        let c = TorusFamily::new(vec![(3, 4)])
            .shuffled(100)
            .instances(1)
            .remove(0);
        assert_ne!(a.graph, c.graph, "different shuffle seeds should differ");
    }

    #[test]
    fn hypercube_family_matches_generator_and_shuffles_validly() {
        let canonical = HypercubeFamily::new(vec![3]).instances(1).remove(0);
        assert_eq!(
            canonical.graph,
            anet_graph::generators::hypercube(3).unwrap()
        );
        let shuffled = HypercubeFamily::new(vec![3, 4]).shuffled(5).instances(2);
        assert_eq!(shuffled.len(), 2);
        for inst in &shuffled {
            assert_eq!(
                inst.graph.degree_sequence(),
                vec![(inst.param as f64).log2() as usize; inst.param as usize]
            );
            assert_connected(&inst.graph);
            assert_port_involution(&inst.graph);
        }
    }

    #[test]
    fn circulant_is_2t_regular_low_diameter_and_involutive() {
        let g = CirculantFamily::generate(24, 3); // offsets 1, 2, 4
        assert_eq!(g.num_nodes(), 24);
        assert_eq!(g.degree_sequence(), vec![6; 24]);
        assert_connected(&g);
        assert_port_involution(&g);
        // Diameter is far below the ring's ⌊n/2⌋ thanks to the geometric offsets.
        assert!(g.diameter() <= 5, "diameter {} too large", g.diameter());
    }

    #[test]
    #[should_panic(expected = "below n/2")]
    fn circulant_rejects_too_large_offsets() {
        CirculantFamily::generate(8, 3); // largest offset 4 = 8/2
    }

    #[test]
    fn circulant_family_instances_are_seed_deterministic() {
        let fam = CirculantFamily::powers_of_two(vec![15, 24], 3).shuffled(42);
        let a = fam.instances(2);
        let b = fam.instances(2);
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.graph, y.graph);
            assert_port_involution(&x.graph);
        }
        // The two instances get decorrelated shuffles (different salts).
        assert_ne!(a[0].graph, a[1].graph);
    }
}
