//! The versioned `anet-trace/v1` artifact: JSON-lines serialisation of trace
//! event streams, with a hardened parser and a Chrome trace-event export.
//!
//! A trace artifact is one file of newline-delimited JSON objects:
//!
//! 1. a **header** declaring the schema, a label and the exact number of run
//!    and event lines that follow —
//!    `{"schema": "anet-trace/v1", "label": "smoke", "runs": 2, "events": 34}`;
//! 2. per run, one **meta** line naming the run —
//!    `{"t": "meta", "id": 0, "name": "torus2d/S/map/seq · torus2d-3x4"}`;
//! 3. the run's **event** lines, one per [`TraceEvent`], keyed by the event's
//!    [`kind`](TraceEvent::kind) —
//!    `{"t": "phase", "id": 0, "round": 1, "phase": "route", "ns": 1500}`.
//!
//! The declared counts make truncation detectable: a file that lost its tail
//! parses line-by-line but fails the final count check with
//! [`TraceIoError::CountMismatch`]. Forged or corrupted lines fail earlier with
//! a typed error naming the line — the same hardening standard as the shared-DAG
//! view codec. [`parse_trace`] accepts exactly what [`TraceFile::render`] emits.
//!
//! The `trace_report` binary in `anet-bench` renders these files as per-round
//! tables; [`chrome_trace_json`] converts one into the Chrome trace-event format
//! that `chrome://tracing` / Perfetto load directly (see `docs/OBSERVABILITY.md`).

// anet-lint: deny(panic-path)

use crate::json::{Json, JsonError};
use anet_trace::{Phase, TraceEvent};
use std::path::Path;

/// The schema tag written into every trace artifact header.
pub const TRACE_SCHEMA: &str = "anet-trace/v1";

/// One logical run inside a trace artifact: a correlation id (the `trace_id`
/// stamped on the run's events), a display name, and the event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRun {
    /// The correlation id all of this run's events carry.
    pub id: u64,
    /// Human-readable name (scenario × instance for sweep cells, tenant/request
    /// for service traces).
    pub name: String,
    /// The run's events, in emission order.
    pub events: Vec<TraceEvent>,
}

/// An in-memory trace artifact: what [`parse_trace`] returns and
/// [`TraceFile::render`] serialises.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceFile {
    /// The label from the header (mirrors the sweep / bench label).
    pub label: String,
    /// The runs, in file order.
    pub runs: Vec<TraceRun>,
}

impl TraceFile {
    /// An empty artifact with the given label.
    pub fn new(label: impl Into<String>) -> TraceFile {
        TraceFile {
            label: label.into(),
            runs: Vec::new(),
        }
    }

    /// Append one run. The caller is responsible for `id` uniqueness (the parser
    /// rejects duplicates).
    pub fn push_run(&mut self, id: u64, name: impl Into<String>, events: Vec<TraceEvent>) {
        self.runs.push(TraceRun {
            id,
            name: name.into(),
            events,
        });
    }

    /// Total number of event lines across all runs.
    pub fn total_events(&self) -> usize {
        self.runs.iter().map(|r| r.events.len()).sum()
    }

    /// Serialise to the `anet-trace/v1` JSON-lines format.
    pub fn render(&self) -> String {
        let header = Json::Object(vec![
            ("schema".to_string(), Json::str(TRACE_SCHEMA)),
            ("label".to_string(), Json::str(&self.label)),
            ("runs".to_string(), Json::count(self.runs.len())),
            ("events".to_string(), Json::count(self.total_events())),
        ]);
        let mut out = header.render();
        out.push('\n');
        for run in &self.runs {
            let meta = Json::Object(vec![
                ("t".to_string(), Json::str("meta")),
                ("id".to_string(), Json::Int(run.id as i64)),
                ("name".to_string(), Json::str(&run.name)),
            ]);
            out.push_str(&meta.render());
            out.push('\n');
            for event in &run.events {
                out.push_str(&event_to_json(event).render());
                out.push('\n');
            }
        }
        out
    }

    /// Write the rendered artifact to `path` (creating parent directories).
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.render())
    }
}

/// Read and parse a trace artifact from disk.
pub fn read_trace(path: &Path) -> Result<TraceFile, TraceIoError> {
    let text = std::fs::read_to_string(path).map_err(TraceIoError::Io)?;
    parse_trace(&text)
}

/// Parse the `anet-trace/v1` JSON-lines format. Every malformation is a typed
/// [`TraceIoError`] naming the offending (1-based) line; truncated or padded
/// files fail the header's declared-count check.
pub fn parse_trace(text: &str) -> Result<TraceFile, TraceIoError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        .filter(|(_, l)| !l.trim().is_empty());

    let (header_no, header_text) = lines.next().ok_or(TraceIoError::Empty)?;
    let header = json_line(header_no, header_text)?;
    let schema = header.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != TRACE_SCHEMA {
        return Err(TraceIoError::Schema {
            found: schema.to_string(),
        });
    }
    let label = str_field(&header, header_no, "label")?.to_string();
    let declared_runs = u64_field(&header, header_no, "runs")?;
    let declared_events = u64_field(&header, header_no, "events")?;

    let mut file = TraceFile::new(label);
    let mut found_events: u64 = 0;
    for (line_no, line_text) in lines {
        let value = json_line(line_no, line_text)?;
        let t = str_field(&value, line_no, "t")?;
        let id = u64_field(&value, line_no, "id")?;
        if t == "meta" {
            if file.runs.iter().any(|r| r.id == id) {
                return Err(TraceIoError::DuplicateRun { line: line_no, id });
            }
            let name = str_field(&value, line_no, "name")?.to_string();
            file.push_run(id, name, Vec::new());
            continue;
        }
        let event = event_from_json(&value, t, id, line_no)?;
        let run = file
            .runs
            .iter_mut()
            .find(|r| r.id == id)
            .ok_or(TraceIoError::UnknownRun { line: line_no, id })?;
        run.events.push(event);
        found_events += 1;
    }

    if file.runs.len() as u64 != declared_runs {
        return Err(TraceIoError::CountMismatch {
            field: "runs",
            declared: declared_runs,
            found: file.runs.len() as u64,
        });
    }
    if found_events != declared_events {
        return Err(TraceIoError::CountMismatch {
            field: "events",
            declared: declared_events,
            found: found_events,
        });
    }
    Ok(file)
}

/// Render one event as its artifact line (without the trailing newline).
pub fn event_to_json(event: &TraceEvent) -> Json {
    let mut fields = vec![
        ("t".to_string(), Json::str(event.kind())),
        ("id".to_string(), Json::Int(event.trace_id() as i64)),
    ];
    let mut num = |key: &str, value: u64| fields.push((key.to_string(), Json::Int(value as i64)));
    match *event {
        TraceEvent::RunStart { nodes, rounds, .. } => {
            num("nodes", nodes);
            num("rounds", rounds);
        }
        TraceEvent::RoundStart { round, .. } => num("round", round),
        TraceEvent::PhaseTime {
            round, phase, ns, ..
        } => {
            num("round", round);
            fields.push(("phase".to_string(), Json::str(phase.label())));
            fields.push(("ns".to_string(), Json::Int(ns as i64)));
        }
        TraceEvent::RoundEnd {
            round,
            messages,
            payload_bytes,
            ..
        } => {
            num("round", round);
            num("messages", messages);
            num("payload_bytes", payload_bytes);
        }
        TraceEvent::RoundWire { round, bits, .. } => {
            num("round", round);
            num("bits", bits);
        }
        TraceEvent::RunEnd {
            rounds, messages, ..
        } => {
            num("rounds", rounds);
            num("messages", messages);
        }
        TraceEvent::InternerDelta { hits, misses, .. } => {
            num("hits", hits);
            num("misses", misses);
        }
        TraceEvent::WorkerExecute { worker, ns, .. } => {
            num("worker", worker);
            num("ns", ns);
        }
        TraceEvent::WorkerSteal { worker, .. } => num("worker", worker),
    }
    Json::Object(fields)
}

fn event_from_json(
    value: &Json,
    kind: &str,
    trace_id: u64,
    line: usize,
) -> Result<TraceEvent, TraceIoError> {
    let num = |field: &'static str| u64_field(value, line, field);
    Ok(match kind {
        "run_start" => TraceEvent::RunStart {
            trace_id,
            nodes: num("nodes")?,
            rounds: num("rounds")?,
        },
        "round_start" => TraceEvent::RoundStart {
            trace_id,
            round: num("round")?,
        },
        "phase" => {
            let label = str_field(value, line, "phase")?;
            let phase = Phase::from_label(label).ok_or(TraceIoError::BadValue {
                line,
                field: "phase",
            })?;
            TraceEvent::PhaseTime {
                trace_id,
                round: num("round")?,
                phase,
                ns: num("ns")?,
            }
        }
        "round_end" => TraceEvent::RoundEnd {
            trace_id,
            round: num("round")?,
            messages: num("messages")?,
            payload_bytes: num("payload_bytes")?,
        },
        "wire" => TraceEvent::RoundWire {
            trace_id,
            round: num("round")?,
            bits: num("bits")?,
        },
        "run_end" => TraceEvent::RunEnd {
            trace_id,
            rounds: num("rounds")?,
            messages: num("messages")?,
        },
        "interner" => TraceEvent::InternerDelta {
            trace_id,
            hits: num("hits")?,
            misses: num("misses")?,
        },
        "exec" => TraceEvent::WorkerExecute {
            trace_id,
            worker: num("worker")?,
            ns: num("ns")?,
        },
        "steal" => TraceEvent::WorkerSteal {
            trace_id,
            worker: num("worker")?,
        },
        other => {
            return Err(TraceIoError::UnknownKind {
                line,
                kind: other.to_string(),
            })
        }
    })
}

fn json_line(line: usize, text: &str) -> Result<Json, TraceIoError> {
    Json::parse(text).map_err(|error| TraceIoError::Json { line, error })
}

fn str_field<'a>(obj: &'a Json, line: usize, field: &'static str) -> Result<&'a str, TraceIoError> {
    match obj.get(field) {
        None => Err(TraceIoError::MissingField { line, field }),
        Some(Json::Str(s)) => Ok(s),
        Some(_) => Err(TraceIoError::BadValue { line, field }),
    }
}

fn u64_field(obj: &Json, line: usize, field: &'static str) -> Result<u64, TraceIoError> {
    match obj.get(field) {
        None => Err(TraceIoError::MissingField { line, field }),
        Some(Json::Int(i)) if *i >= 0 => Ok(*i as u64),
        Some(_) => Err(TraceIoError::BadValue { line, field }),
    }
}

/// Why a trace artifact failed to read back. Every variant names what was wrong
/// and (for line-scoped faults) where, so CI failures on corrupted artifacts are
/// actionable without opening the file.
#[derive(Debug)]
pub enum TraceIoError {
    /// Reading the file failed.
    Io(std::io::Error),
    /// The file has no non-empty lines (no header).
    Empty,
    /// A line is not valid JSON.
    Json {
        /// 1-based line number.
        line: usize,
        /// The underlying JSON parse error.
        error: JsonError,
    },
    /// The header's schema tag is not [`TRACE_SCHEMA`].
    Schema {
        /// What the header declared (empty if absent or not a string).
        found: String,
    },
    /// A required field is absent.
    MissingField {
        /// 1-based line number.
        line: usize,
        /// The missing key.
        field: &'static str,
    },
    /// A field is present but has the wrong type or an out-of-range value.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The offending key.
        field: &'static str,
    },
    /// An event line's `t` tag names no known event kind.
    UnknownKind {
        /// 1-based line number.
        line: usize,
        /// The unrecognised tag.
        kind: String,
    },
    /// An event line references a run id with no preceding meta line.
    UnknownRun {
        /// 1-based line number.
        line: usize,
        /// The unknown correlation id.
        id: u64,
    },
    /// Two meta lines declare the same run id.
    DuplicateRun {
        /// 1-based line number of the second declaration.
        line: usize,
        /// The duplicated correlation id.
        id: u64,
    },
    /// The header's declared line counts do not match the file body — the
    /// signature of a truncated (or padded) artifact.
    CountMismatch {
        /// Which count disagreed (`"runs"` or `"events"`).
        field: &'static str,
        /// What the header declared.
        declared: u64,
        /// What the body contained.
        found: u64,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace artifact unreadable: {e}"),
            TraceIoError::Empty => write!(f, "trace artifact is empty (no header line)"),
            TraceIoError::Json { line, error } => {
                write!(f, "trace artifact line {line}: {error}")
            }
            TraceIoError::Schema { found } => write!(
                f,
                "trace artifact schema is {found:?}, expected {TRACE_SCHEMA:?}"
            ),
            TraceIoError::MissingField { line, field } => {
                write!(f, "trace artifact line {line}: missing field {field:?}")
            }
            TraceIoError::BadValue { line, field } => write!(
                f,
                "trace artifact line {line}: field {field:?} has the wrong type or value"
            ),
            TraceIoError::UnknownKind { line, kind } => {
                write!(f, "trace artifact line {line}: unknown event kind {kind:?}")
            }
            TraceIoError::UnknownRun { line, id } => write!(
                f,
                "trace artifact line {line}: event references run {id} with no meta line"
            ),
            TraceIoError::DuplicateRun { line, id } => {
                write!(f, "trace artifact line {line}: duplicate meta for run {id}")
            }
            TraceIoError::CountMismatch {
                field,
                declared,
                found,
            } => write!(
                f,
                "trace artifact is truncated or padded: header declares {declared} {field}, body has {found}"
            ),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Json { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// Convert a trace artifact into the Chrome trace-event format (the
/// `{"traceEvents": [...]}` JSON that `chrome://tracing` and Perfetto load).
///
/// [`TraceEvent`]s carry durations, not wall-clock timestamps, so the timeline
/// is synthesised: per run, phase durations accumulate into back-to-back
/// complete (`"ph": "X"`) slices, which renders each run as a gap-free lane of
/// send/route/receive blocks. Each run becomes one process (`pid` = the run id,
/// named via a `process_name` metadata event); per-round message counts become
/// counter (`"ph": "C"`) samples on the same lane. Times are microseconds, as
/// the format requires.
pub fn chrome_trace_json(file: &TraceFile) -> Json {
    let mut trace_events = Vec::new();
    for run in &file.runs {
        let pid = Json::Int(run.id as i64);
        trace_events.push(Json::Object(vec![
            ("name".to_string(), Json::str("process_name")),
            ("ph".to_string(), Json::str("M")),
            ("pid".to_string(), pid.clone()),
            ("tid".to_string(), Json::Int(0)),
            (
                "args".to_string(),
                Json::Object(vec![("name".to_string(), Json::str(&run.name))]),
            ),
        ]));
        let mut cursor_ns: u64 = 0;
        for event in &run.events {
            match *event {
                TraceEvent::PhaseTime {
                    round, phase, ns, ..
                } => {
                    trace_events.push(Json::Object(vec![
                        (
                            "name".to_string(),
                            Json::str(format!("round {round} {}", phase.label())),
                        ),
                        ("cat".to_string(), Json::str(phase.label())),
                        ("ph".to_string(), Json::str("X")),
                        ("pid".to_string(), pid.clone()),
                        ("tid".to_string(), Json::Int(0)),
                        ("ts".to_string(), Json::Float(cursor_ns as f64 / 1e3)),
                        ("dur".to_string(), Json::Float(ns as f64 / 1e3)),
                    ]));
                    cursor_ns += ns;
                }
                TraceEvent::RoundEnd { messages, .. } => {
                    trace_events.push(Json::Object(vec![
                        ("name".to_string(), Json::str("messages")),
                        ("ph".to_string(), Json::str("C")),
                        ("pid".to_string(), pid.clone()),
                        ("tid".to_string(), Json::Int(0)),
                        ("ts".to_string(), Json::Float(cursor_ns as f64 / 1e3)),
                        (
                            "args".to_string(),
                            Json::Object(vec![(
                                "messages".to_string(),
                                Json::Int(messages as i64),
                            )]),
                        ),
                    ]));
                }
                // Exhaustive on purpose: deciding whether a new TraceEvent
                // variant appears on the timeline must be a conscious choice
                // here, not a silent drop. RoundWire stays off the timeline:
                // bit totals are durationless (they live in the round tables
                // of `trace_report` and the sweep artifact instead).
                TraceEvent::RunStart { .. }
                | TraceEvent::RoundStart { .. }
                | TraceEvent::RoundWire { .. }
                | TraceEvent::RunEnd { .. }
                | TraceEvent::InternerDelta { .. }
                | TraceEvent::WorkerExecute { .. }
                | TraceEvent::WorkerSteal { .. } => {}
            }
        }
    }
    Json::Object(vec![
        ("traceEvents".to_string(), Json::Array(trace_events)),
        ("displayTimeUnit".to_string(), Json::str("ms")),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file() -> TraceFile {
        let mut file = TraceFile::new("unit");
        file.push_run(
            0,
            "torus2d/S/map/seq · torus2d-3x4",
            vec![
                TraceEvent::RunStart {
                    trace_id: 0,
                    nodes: 12,
                    rounds: 2,
                },
                TraceEvent::RoundStart {
                    trace_id: 0,
                    round: 1,
                },
                TraceEvent::PhaseTime {
                    trace_id: 0,
                    round: 1,
                    phase: Phase::Route,
                    ns: 1500,
                },
                TraceEvent::RoundEnd {
                    trace_id: 0,
                    round: 1,
                    messages: 48,
                    payload_bytes: 768,
                },
                TraceEvent::RoundWire {
                    trace_id: 0,
                    round: 1,
                    bits: 517,
                },
                TraceEvent::RunEnd {
                    trace_id: 0,
                    rounds: 2,
                    messages: 96,
                },
                TraceEvent::InternerDelta {
                    trace_id: 0,
                    hits: 30,
                    misses: 4,
                },
            ],
        );
        file.push_run(
            7,
            "service tenant-a req 7",
            vec![
                TraceEvent::WorkerSteal {
                    trace_id: 7,
                    worker: 1,
                },
                TraceEvent::WorkerExecute {
                    trace_id: 7,
                    worker: 1,
                    ns: 42_000,
                },
            ],
        );
        file
    }

    #[test]
    fn render_parse_round_trips_every_event_kind() {
        let file = sample_file();
        let text = file.render();
        assert!(text.starts_with(&format!("{{\"schema\":\"{TRACE_SCHEMA}\"")));
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(parsed, file);
        assert_eq!(parsed.total_events(), 9);
    }

    #[test]
    fn write_read_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("anet-trace-io-test-rw");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("TRACE_unit.jsonl");
        let file = sample_file();
        file.write(&path).unwrap();
        assert_eq!(read_trace(&path).unwrap(), file);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_artifacts_fail_the_count_check() {
        let text = sample_file().render();
        // Drop the last line: line-by-line parsing still succeeds, the declared
        // event count does not.
        let truncated: String = {
            let mut lines: Vec<&str> = text.lines().collect();
            lines.pop();
            lines.join("\n")
        };
        match parse_trace(&truncated) {
            Err(TraceIoError::CountMismatch {
                field: "events",
                declared: 9,
                found: 8,
            }) => {}
            other => panic!("expected an events CountMismatch, got {other:?}"),
        }
        // Drop a whole run (meta + events): the runs count catches it first.
        let without_second_run: String = text
            .lines()
            .take_while(|l| !l.contains("service tenant-a"))
            .collect::<Vec<_>>()
            .join("\n");
        match parse_trace(&without_second_run) {
            Err(TraceIoError::CountMismatch { field: "runs", .. }) => {}
            other => panic!("expected a runs CountMismatch, got {other:?}"),
        }
    }

    #[test]
    fn padded_artifacts_fail_the_count_check() {
        let mut text = sample_file().render();
        text.push_str("{\"t\":\"steal\",\"id\":7,\"worker\":0}\n");
        assert!(matches!(
            parse_trace(&text),
            Err(TraceIoError::CountMismatch {
                field: "events",
                declared: 9,
                found: 10,
            })
        ));
    }

    #[test]
    fn forged_lines_are_rejected_with_typed_errors() {
        let valid = sample_file().render();
        let forge = |needle: &str, replacement: &str| valid.replacen(needle, replacement, 1);

        // Not JSON at all.
        assert!(matches!(
            parse_trace(&forge("{\"t\":\"round_start\"", "not json {")),
            Err(TraceIoError::Json { .. })
        ));
        // Unknown event kind.
        assert!(matches!(
            parse_trace(&forge("\"t\":\"round_start\"", "\"t\":\"teleport\"")),
            Err(TraceIoError::UnknownKind { kind, .. }) if kind == "teleport"
        ));
        // Wrong field type.
        assert!(matches!(
            parse_trace(&forge("\"ns\":1500", "\"ns\":\"fast\"")),
            Err(TraceIoError::BadValue { field: "ns", .. })
        ));
        // Negative count.
        assert!(matches!(
            parse_trace(&forge("\"messages\":48", "\"messages\":-48")),
            Err(TraceIoError::BadValue {
                field: "messages",
                ..
            })
        ));
        // Missing field.
        assert!(matches!(
            parse_trace(&forge(",\"round\":1,\"phase\"", ",\"phase\"")),
            Err(TraceIoError::MissingField { field: "round", .. })
        ));
        // Unknown phase label.
        assert!(matches!(
            parse_trace(&forge("\"phase\":\"route\"", "\"phase\":\"warp\"")),
            Err(TraceIoError::BadValue { field: "phase", .. })
        ));
        // Event for a run that was never declared.
        assert!(matches!(
            parse_trace(&forge(
                "{\"t\":\"steal\",\"id\":7",
                "{\"t\":\"steal\",\"id\":9"
            )),
            Err(TraceIoError::UnknownRun { id: 9, .. })
        ));
        // Duplicate run declaration.
        assert!(matches!(
            parse_trace(&forge("\"t\":\"meta\",\"id\":7", "\"t\":\"meta\",\"id\":0")),
            Err(TraceIoError::DuplicateRun { id: 0, .. })
        ));
        // Wrong schema tag.
        assert!(matches!(
            parse_trace(&forge("anet-trace/v1", "anet-trace/v9")),
            Err(TraceIoError::Schema { found }) if found == "anet-trace/v9"
        ));
        // Empty file.
        assert!(matches!(parse_trace("  \n \n"), Err(TraceIoError::Empty)));
    }

    #[test]
    fn errors_render_with_line_numbers() {
        let text = sample_file().render();
        let forged = text.replacen("\"t\":\"round_start\"", "\"t\":\"teleport\"", 1);
        let err = parse_trace(&forged).unwrap_err();
        let message = err.to_string();
        assert!(message.contains("line 4"), "{message}");
        assert!(message.contains("teleport"), "{message}");
    }

    #[test]
    fn chrome_export_synthesises_a_gap_free_timeline() {
        let mut file = TraceFile::new("chrome");
        file.push_run(
            3,
            "run three",
            vec![
                TraceEvent::PhaseTime {
                    trace_id: 3,
                    round: 1,
                    phase: Phase::Send,
                    ns: 1000,
                },
                TraceEvent::PhaseTime {
                    trace_id: 3,
                    round: 1,
                    phase: Phase::Route,
                    ns: 2000,
                },
                TraceEvent::RoundEnd {
                    trace_id: 3,
                    round: 1,
                    messages: 5,
                    payload_bytes: 80,
                },
            ],
        );
        let chrome = chrome_trace_json(&file);
        let events = chrome.get("traceEvents").and_then(Json::as_array).unwrap();
        // Metadata + two slices + one counter.
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("M"));
        assert_eq!(
            events[0].get("args").and_then(|a| a.get("name")),
            Some(&Json::str("run three"))
        );
        // Slices are back to back: the second starts where the first ends.
        assert_eq!(events[1].get("ts"), Some(&Json::Float(0.0)));
        assert_eq!(events[1].get("dur"), Some(&Json::Float(1.0)));
        assert_eq!(events[2].get("ts"), Some(&Json::Float(1.0)));
        assert_eq!(events[2].get("dur"), Some(&Json::Float(2.0)));
        // The counter samples after both phases.
        assert_eq!(events[3].get("ph").and_then(Json::as_str), Some("C"));
        assert_eq!(events[3].get("ts"), Some(&Json::Float(3.0)));
        // The whole document is itself valid JSON for chrome://tracing to load.
        assert!(Json::parse(&chrome.render_pretty()).is_ok());
    }
}
