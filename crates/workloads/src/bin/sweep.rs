//! `sweep` — run a scenario grid through the `ElectionEngine` and emit `BENCH_*.json`.
//!
//! ```text
//! cargo run --release -p anet-workloads --bin sweep -- --smoke
//! cargo run --release -p anet-workloads --bin sweep -- --filter torus --out bench-json
//! cargo run --release -p anet-workloads --bin sweep -- --list
//! ```

use anet_workloads::scenario::ScenarioRegistry;
use anet_workloads::sweep::{run_sweep, SweepConfig};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: sweep [--smoke | --standard] [--filter SUBSTRING] [--out DIR] [--jobs N]
             [--trace-dir DIR] [--list]

  --smoke        run the small smoke grid (default: the standard grid)
  --standard     run the standard grid explicitly
  --filter S     only scenarios whose name contains S (case-insensitive)
  --out DIR      directory for the emitted BENCH_*.json (default: .)
  --jobs N       fan scenarios over N worker threads (default: 1; the emitted
                 JSON is byte-identical modulo timing fields at any N)
  --trace-dir D  profile every cell and write an anet-trace/v1 artifact
                 (TRACE_workloads_<label>.jsonl) into D; the BENCH JSON is
                 byte-identical with or without this flag
  --list         print the selected scenario names and exit
";

fn main() -> ExitCode {
    let mut grid = "standard".to_string();
    let mut filter: Option<String> = None;
    let mut out_dir = PathBuf::from(".");
    let mut jobs = 1usize;
    let mut trace_dir: Option<PathBuf> = None;
    let mut list = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => grid = "smoke".to_string(),
            "--standard" => grid = "standard".to_string(),
            "--filter" => match args.next() {
                Some(f) => filter = Some(f),
                None => {
                    eprintln!("--filter needs a value\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out needs a value\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--jobs" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => jobs = n,
                _ => {
                    eprintln!("--jobs needs a positive integer\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--trace-dir" => match args.next() {
                Some(dir) => trace_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--trace-dir needs a value\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--list" => list = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let registry = match grid.as_str() {
        "smoke" => ScenarioRegistry::smoke(),
        _ => ScenarioRegistry::standard(),
    };

    if list {
        let selected = match &filter {
            Some(f) => registry.select(f),
            None => registry.iter().collect(),
        };
        for scenario in selected {
            println!("{}", scenario.name());
        }
        return ExitCode::SUCCESS;
    }

    let config = SweepConfig {
        out_dir,
        filter,
        label: grid.clone(),
        verbose: true,
        jobs,
        trace_dir,
    };
    println!(
        "sweep: running the {grid} grid ({} scenarios registered, {jobs} job{})",
        registry.len(),
        if jobs == 1 { "" } else { "s" }
    );
    match run_sweep(&registry, &config) {
        Ok(outcome) => {
            println!(
                "sweep: {} scenarios, {} cells ({} solved, {} unsolved) in {:.1}s",
                outcome.scenarios,
                outcome.cells,
                outcome.solved,
                outcome.unsolved,
                outcome.wall.as_secs_f64()
            );
            println!("sweep: wrote {}", outcome.json_path.display());
            if let Some(trace_path) = &outcome.trace_path {
                println!("sweep: wrote {}", trace_path.display());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("sweep: failed to write output: {e}");
            ExitCode::FAILURE
        }
    }
}
