//! The service scenario axis: multi-tenant request mixes for the election service.
//!
//! A [`Scenario`](crate::Scenario) names one grid point and sweeps it
//! *sequentially*; the election service (`anet-service`) instead consumes a
//! **mix** — an interleaved stream of requests from several tenants, each tenant
//! sweeping its own graph family with its own solver and backend preferences.
//! This module defines that mix as plain data ([`MixRequest`]), so the workload
//! vocabulary lives here with the other scenario types while the service crate
//! stays free of workload knowledge (the integration happens in `anet-bench`'s
//! `service_bench`, which maps each [`MixRequest`] onto an
//! `anet_service::ElectionRequest`).
//!
//! Mixes are fully deterministic: families are seed-shuffled with fixed seeds and
//! the (task, solver, backend) rotation is a function of the request index only,
//! so two runs of the same mix — at any service worker count — submit identical
//! request sequences. That determinism is what the service's worker-count
//! independence tests lean on.

use crate::families::{CirculantFamily, HypercubeFamily, RandomRegularFamily, TorusFamily};
use crate::scenario::SolverSpec;
use anet_constructions::{FamilyInstance, GraphFamily};
use anet_election::engine::Backend;
use anet_election::tasks::Task;
use anet_graph::PortGraph;

/// Seed for the mix families' port shuffles (shuffling breaks the symmetry that
/// makes canonical labellings infeasible, so most mix instances are solvable).
const MIX_SEED: u64 = 0x5EED_0517;

/// One request blueprint in a service mix: the data of an election request,
/// without depending on the service crate's types.
#[derive(Debug, Clone)]
pub struct MixRequest {
    /// The tenant this request belongs to (one tenant per graph family).
    pub tenant: String,
    /// Instance name (`<family-instance>#<cycle>` when the mix repeats).
    pub name: String,
    /// The network to elect on.
    pub graph: PortGraph,
    /// The requested task shade.
    pub task: Task,
    /// Which solver to run.
    pub solver: SolverSpec,
    /// The execution backend.
    pub backend: Backend,
}

/// The tenant families of the standard mix: four families spanning low and high
/// diameter, each seed-shuffled so most instances are feasible.
fn tenant_families() -> Vec<(String, Vec<FamilyInstance>)> {
    let families: Vec<Box<dyn GraphFamily>> = vec![
        Box::new(TorusFamily::new(vec![(3, 4), (4, 4), (4, 5)]).shuffled(MIX_SEED)),
        Box::new(HypercubeFamily::new(vec![3, 4]).shuffled(MIX_SEED ^ 1)),
        Box::new(CirculantFamily::powers_of_two(vec![16, 32], 2).shuffled(MIX_SEED ^ 2)),
        Box::new(RandomRegularFamily::new(3, vec![16, 24], MIX_SEED ^ 3)),
    ];
    families
        .into_iter()
        .map(|f| {
            let tenant = format!("tenant-{}", f.family_name());
            let instances = f.instances(8);
            (tenant, instances)
        })
        .collect()
}

/// The per-request rotation of (task, solver, backend): a pure function of the
/// request index, so the mix is reproducible and every axis value appears.
fn rotation(index: usize) -> (Task, SolverSpec, Backend) {
    let tasks = [Task::Selection, Task::PortElection, Task::Selection];
    let solvers = [
        SolverSpec::Map,
        SolverSpec::Map,
        SolverSpec::MinTimeAdvice,
        SolverSpec::MinTimeAdviceDag,
    ];
    let backends = [
        Backend::Sequential,
        Backend::Batching,
        Backend::parallel(2),
        Backend::AdaptiveParallel,
    ];
    (
        tasks[index % tasks.len()],
        solvers[index % solvers.len()],
        backends[index % backends.len()],
    )
}

/// Build a deterministic multi-tenant mix of exactly `total` requests.
///
/// Tenants are interleaved round-robin (so the service sees genuinely mixed
/// traffic, not one tenant at a time) and the instance list repeats cyclically —
/// repeated instances are *intentional*: they are what gives the shared interner
/// its cross-request hits, like a production service solving the same topologies
/// for many clients. Names carry a `#<cycle>` suffix past the first cycle.
pub fn mix(total: usize) -> Vec<MixRequest> {
    let tenants = tenant_families();
    let flat: Vec<(&String, &FamilyInstance)> = {
        // Round-robin over tenants: a1 b1 c1 d1 a2 b2 …
        let longest = tenants.iter().map(|(_, i)| i.len()).max().unwrap_or(0);
        (0..longest)
            .flat_map(|slot| {
                tenants
                    .iter()
                    .filter_map(move |(tenant, instances)| instances.get(slot).map(|i| (tenant, i)))
            })
            .collect()
    };
    assert!(!flat.is_empty(), "mix families produced no instances");
    (0..total)
        .map(|index| {
            let (tenant, instance) = flat[index % flat.len()];
            let cycle = index / flat.len();
            let (task, solver, backend) = rotation(index);
            MixRequest {
                tenant: tenant.clone(),
                name: if cycle == 0 {
                    instance.name.clone()
                } else {
                    format!("{}#{}", instance.name, cycle)
                },
                graph: instance.graph.clone(),
                task,
                solver,
                backend,
            }
        })
        .collect()
}

/// The smoke mix: one pass over every tenant's instances (a few dozen requests),
/// sized for CI.
pub fn smoke_mix() -> Vec<MixRequest> {
    let total = tenant_families().iter().map(|(_, i)| i.len()).sum();
    mix(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn mix_is_deterministic_and_interleaves_tenants() {
        let a = mix(40);
        let b = mix(40);
        assert_eq!(a.len(), 40);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.name, y.name);
            assert_eq!(x.task, y.task);
            assert_eq!(x.solver, y.solver);
            assert_eq!(x.backend, y.backend);
            assert_eq!(x.graph, y.graph);
        }
        // The first few requests come from different tenants (round-robin), and
        // the whole mix covers at least three families.
        let tenants: BTreeSet<&str> = a.iter().map(|r| r.tenant.as_str()).collect();
        assert!(tenants.len() >= 3, "{tenants:?}");
        let head: BTreeSet<&str> = a.iter().take(4).map(|r| r.tenant.as_str()).collect();
        assert!(head.len() >= 3, "head not interleaved: {head:?}");
    }

    #[test]
    fn long_mixes_cycle_instances_with_suffixes() {
        let smoke = smoke_mix();
        let long = mix(smoke.len() * 2 + 3);
        assert_eq!(long.len(), smoke.len() * 2 + 3);
        // Second cycle repeats the same graphs under suffixed names.
        assert_eq!(long[smoke.len()].graph, long[0].graph);
        assert!(
            long[smoke.len()].name.ends_with("#1"),
            "{}",
            long[smoke.len()].name
        );
        // Smoke is exactly one cycle: no suffixes.
        assert!(smoke.iter().all(|r| !r.name.contains('#')));
    }

    #[test]
    fn rotation_visits_every_axis_value() {
        let seen_tasks: BTreeSet<String> =
            (0..12).map(|i| format!("{:?}", rotation(i).0)).collect();
        let seen_solvers: BTreeSet<&str> = (0..12).map(|i| rotation(i).1.label()).collect();
        assert_eq!(seen_tasks.len(), 2, "{seen_tasks:?}");
        assert_eq!(seen_solvers.len(), 3, "{seen_solvers:?}");
    }
}
