//! Scenarios: named grid points over family × task × solver × backend.
//!
//! A [`Scenario`] is one cell of the benchmark grid — a [`GraphFamily`] to sweep, a
//! [`Task`] shade, a [`SolverSpec`] describing which solver to run, and a [`Backend`]
//! to execute on. It resolves to `Election` configurations through the PR-1 facade
//! and runs via [`BatchRunner`]. A [`ScenarioRegistry`] holds a named grid, answers
//! substring selections, and ships two built-in grids ([`ScenarioRegistry::smoke`]
//! and [`ScenarioRegistry::standard`]).

use crate::families::{CirculantFamily, HypercubeFamily, RandomRegularFamily, TorusFamily};
use anet_constructions::{FamilyInstance, GraphFamily};
use anet_election::engine::{
    AdviceSolver, Backend, BatchRow, BatchRunner, EngineError, MapSolver, MessageCodec, RunContext,
    Solver, SolverRun,
};
use anet_election::tasks::Task;
use anet_graph::PortGraph;
use anet_views::election_index::psi_s;
use anet_views::ViewCodec;

/// Which solver a scenario runs. Kept as a spec (not a `Box<dyn Solver>`) so that the
/// registry is cheap to build, scenarios are self-describing in reports, and a fresh
/// solver can be built for every instance of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverSpec {
    /// The map-based minimum-time baseline ([`MapSolver`]); refuses infeasible graphs
    /// with a solver error, which the sweep records as an unsolved cell.
    Map,
    /// The Theorem 2.2 oracle/algorithm advice pair shipping the unfolded-tree
    /// encoding, guarded by a feasibility check (the raw oracle panics on graphs with
    /// no finite Selection index; the guard turns that into a reported solver error
    /// instead).
    MinTimeAdvice,
    /// The same guarded Theorem 2.2 pair shipping the **shared-DAG** encoding:
    /// identical outputs, but the advice costs `O(distinct subtrees)` bits — the
    /// sweep's JSON records both sizes per cell either way.
    MinTimeAdviceDag,
}

impl SolverSpec {
    /// Short label used in scenario names and JSON cells.
    pub fn label(&self) -> &'static str {
        match self {
            SolverSpec::Map => "map",
            SolverSpec::MinTimeAdvice => "advice",
            SolverSpec::MinTimeAdviceDag => "advice-dag",
        }
    }

    /// Build a fresh solver for one sweep instance.
    pub fn build(&self) -> Box<dyn Solver> {
        match self {
            SolverSpec::Map => Box::new(MapSolver::default()),
            SolverSpec::MinTimeAdvice => Box::new(GuardedAdviceSolver {
                codec: ViewCodec::Tree,
            }),
            SolverSpec::MinTimeAdviceDag => Box::new(GuardedAdviceSolver {
                codec: ViewCodec::Dag,
            }),
        }
    }
}

/// The Theorem 2.2 pair behind a feasibility guard: on graphs where no view class has
/// multiplicity 1 (infinite Selection index) the oracle would panic; the guard answers
/// with a regular [`EngineError::Solver`] so sweeps over symmetric workloads (canonical
/// tori, hypercubes, …) record the cell as unsolved and continue.
struct GuardedAdviceSolver {
    /// Which wire format the encoded-view advice ships in.
    codec: ViewCodec,
}

impl Solver for GuardedAdviceSolver {
    fn name(&self) -> String {
        format!("advice(thm-2.2, guarded, {})", self.codec)
    }

    fn solve(
        &self,
        graph: &PortGraph,
        task: Task,
        backend: Backend,
    ) -> Result<SolverRun, EngineError> {
        if psi_s(graph).is_none() {
            return Err(EngineError::Solver {
                solver: self.name(),
                message: "unsolvable: no view class of multiplicity 1 (infinite Selection index)"
                    .to_string(),
            });
        }
        match self.codec {
            ViewCodec::Tree => AdviceSolver::theorem_2_2().solve(graph, task, backend),
            ViewCodec::Dag => AdviceSolver::theorem_2_2_dag().solve(graph, task, backend),
        }
    }

    fn solve_ctx(
        &self,
        graph: &PortGraph,
        task: Task,
        backend: Backend,
        ctx: &RunContext<'_>,
    ) -> Result<SolverRun, EngineError> {
        // Forward the run context explicitly: the guard must not swallow the
        // engine's trace probe (profiled sweeps) or shared interner on the way to
        // the inner advice solver.
        if psi_s(graph).is_none() {
            return Err(EngineError::Solver {
                solver: self.name(),
                message: "unsolvable: no view class of multiplicity 1 (infinite Selection index)"
                    .to_string(),
            });
        }
        match self.codec {
            ViewCodec::Tree => AdviceSolver::theorem_2_2().solve_ctx(graph, task, backend, ctx),
            ViewCodec::Dag => AdviceSolver::theorem_2_2_dag().solve_ctx(graph, task, backend, ctx),
        }
    }
}

/// One named grid point: family × task × solver × backend, plus an instance cap.
pub struct Scenario {
    name: String,
    /// The graph family this scenario sweeps.
    pub family: Box<dyn GraphFamily>,
    /// The task shade to request.
    pub task: Task,
    /// The solver to run on every instance.
    pub solver: SolverSpec,
    /// The execution backend.
    pub backend: Backend,
    /// Maximum number of family instances visited.
    pub max_instances: usize,
    /// The wire codec, when this scenario meters its runs (see
    /// [`Scenario::metered`]); `None` runs the zero-serialisation fast path.
    pub wire: Option<MessageCodec>,
}

impl Scenario {
    /// Create a scenario; the name is derived from its coordinates
    /// (`family/task/solver/backend`), so equal grid points collide in the registry.
    pub fn new(
        family: impl GraphFamily + 'static,
        task: Task,
        solver: SolverSpec,
        backend: Backend,
        max_instances: usize,
    ) -> Self {
        Self::new_boxed(Box::new(family), task, solver, backend, max_instances)
    }

    /// [`new`](Scenario::new) for an already-boxed family (avoids a second layer of
    /// boxing when the family is dynamically chosen, as in the built-in grids).
    pub fn new_boxed(
        family: Box<dyn GraphFamily>,
        task: Task,
        solver: SolverSpec,
        backend: Backend,
        max_instances: usize,
    ) -> Self {
        let name = format!(
            "{}/{}/{}/{}",
            family.family_name(),
            task,
            solver.label(),
            backend.label()
        );
        Scenario {
            name,
            family,
            task,
            solver,
            backend,
            max_instances,
            wire: None,
        }
    }

    /// Meter every run of this scenario through `codec`: cells gain per-round /
    /// per-edge bit counts (serialised into the sweep JSON) and the name gains a
    /// `+wire-{codec}` suffix so the metered grid point never collides with its
    /// unmetered twin. Outputs and logical accounting are unchanged.
    pub fn metered(mut self, codec: MessageCodec) -> Self {
        self.wire = Some(codec);
        self.name = format!("{}+wire-{}", self.name, codec.label());
        self
    }

    /// The scenario's unique name (`family/task/solver/backend`, with a
    /// `+wire-{codec}` suffix when metered).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Materialise the family instances this scenario sweeps (up to
    /// [`max_instances`](Scenario::max_instances)). Several scenarios over the same
    /// family coordinates can share one materialisation via
    /// [`run_on`](Scenario::run_on) — the sweep driver does exactly that.
    pub fn materialize(&self) -> Vec<FamilyInstance> {
        self.family.instances(self.max_instances)
    }

    /// Run the scenario against already-materialised, borrowed instances: every
    /// engine run borrows `&instance.graph`, nothing is regenerated or cloned. The
    /// instances must come from this scenario's family (same generator, same seed)
    /// with a cap of at least [`max_instances`](Scenario::max_instances) — in
    /// practice, from [`materialize`](Scenario::materialize) of a scenario sharing
    /// the family coordinates.
    pub fn run_on(&self, instances: &[FamilyInstance]) -> Vec<BatchRow> {
        self.run_on_profiled(instances, false)
    }

    /// [`run_on`](Scenario::run_on) with round-level profiling switched on or off:
    /// when `profiled`, every row's report carries a `round_profile` the sweep
    /// driver serialises into its trace artifact. `run_on_profiled(i, false)` *is*
    /// `run_on(i)` — the disabled probe changes nothing about the rows.
    pub fn run_on_profiled(&self, instances: &[FamilyInstance], profiled: bool) -> Vec<BatchRow> {
        let mut runner = BatchRunner::new(self.backend)
            .max_instances(self.max_instances)
            .profiled(profiled);
        if let Some(codec) = self.wire {
            runner = runner.metered(codec);
        }
        runner.sweep_instances(&self.family.family_name(), instances, self.task, |_| {
            self.solver.build()
        })
    }

    /// Resolve and run: sweep the family through [`BatchRunner`] on the configured
    /// task, solver and backend.
    pub fn run(&self) -> Vec<BatchRow> {
        self.run_on(&self.materialize())
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("task", &self.task)
            .field("solver", &self.solver)
            .field("backend", &self.backend)
            .field("max_instances", &self.max_instances)
            .field("wire", &self.wire)
            .finish()
    }
}

/// Error registering a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// A scenario with the same name is already registered.
    Duplicate(
        /// The colliding name.
        String,
    ),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Duplicate(name) => write!(f, "duplicate scenario name: {name}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// A named collection of scenarios — the benchmark grid.
#[derive(Debug, Default)]
pub struct ScenarioRegistry {
    scenarios: Vec<Scenario>,
}

impl ScenarioRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ScenarioRegistry::default()
    }

    /// Register a scenario; rejects duplicate names (two scenarios with the same grid
    /// coordinates would emit indistinguishable JSON cells).
    pub fn register(&mut self, scenario: Scenario) -> Result<(), RegistryError> {
        if self.get(scenario.name()).is_some() {
            return Err(RegistryError::Duplicate(scenario.name().to_string()));
        }
        self.scenarios.push(scenario);
        Ok(())
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// All scenario names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.scenarios.iter().map(|s| s.name()).collect()
    }

    /// Look up one scenario by exact name.
    pub fn get(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.name() == name)
    }

    /// All scenarios whose name contains `filter` (case-insensitive); an empty filter
    /// selects everything.
    pub fn select(&self, filter: &str) -> Vec<&Scenario> {
        let needle = filter.to_lowercase();
        self.scenarios
            .iter()
            .filter(|s| s.name().to_lowercase().contains(&needle))
            .collect()
    }

    /// Iterate over all scenarios in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Scenario> {
        self.scenarios.iter()
    }

    /// Seed used by the built-in grids (fixed so emitted benchmarks are comparable
    /// across runs and machines).
    const GRID_SEED: u64 = 0xA5EED;
    /// Port-shuffle seed for the symmetric families of the built-in grids.
    const SHUFFLE_SEED: u64 = 41;

    /// The four workload families at given sizes, seed-shuffled where the canonical
    /// labelling would be symmetric. Shared by [`smoke`](ScenarioRegistry::smoke) and
    /// [`standard`](ScenarioRegistry::standard).
    fn grid_families(
        rr_sizes: Vec<usize>,
        torus_dims: Vec<(usize, usize)>,
        cube_dims: Vec<usize>,
        circ_sizes: Vec<usize>,
    ) -> [Box<dyn GraphFamily>; 4] {
        [
            Box::new(RandomRegularFamily::new(3, rr_sizes, Self::GRID_SEED)),
            Box::new(TorusFamily::new(torus_dims).shuffled(Self::SHUFFLE_SEED)),
            Box::new(HypercubeFamily::new(cube_dims).shuffled(Self::SHUFFLE_SEED)),
            Box::new(CirculantFamily::powers_of_two(circ_sizes, 3).shuffled(Self::SHUFFLE_SEED)),
        ]
    }

    /// Family sizes are listed ascending and every shade visits up to `cap`
    /// instances. The strong shades (PPE, CPPE) used to stop after two small
    /// instances — the map solver's simple-path enumeration exploded beyond ~25
    /// nodes on expander-like topologies — but the class-quotient search lifted
    /// that ceiling, so all four shades now climb the same size ladder.
    fn grid(
        families: impl Fn() -> [Box<dyn GraphFamily>; 4],
        backends: &[Backend],
        cap: usize,
    ) -> Self {
        let mut registry = ScenarioRegistry::new();
        // Every family × every shade × the map baseline on the primary backend
        // (`families()` rebuilds the cheap family specs per block).
        for task in Task::ALL {
            for family in families() {
                registry
                    .register(Scenario::new_boxed(
                        family,
                        task,
                        SolverSpec::Map,
                        backends[0],
                        cap,
                    ))
                    .expect("built-in grid has unique names");
            }
        }
        // Every family × Selection × the guarded Theorem 2.2 advice pair, once per
        // view codec (the JSON cells record both sizes either way; the codec axis
        // additionally exercises shipping + decoding each wire format end to end).
        for advice in [SolverSpec::MinTimeAdvice, SolverSpec::MinTimeAdviceDag] {
            for family in families() {
                registry
                    .register(Scenario::new_boxed(
                        family,
                        Task::Selection,
                        advice,
                        backends[0],
                        cap,
                    ))
                    .expect("built-in grid has unique names");
            }
        }
        // Every family × Selection × map on the remaining backends (the backend axis;
        // outputs must be backend-invariant, so one shade suffices).
        for &backend in &backends[1..] {
            for family in families() {
                registry
                    .register(Scenario::new_boxed(
                        family,
                        Task::Selection,
                        SolverSpec::Map,
                        backend,
                        cap,
                    ))
                    .expect("built-in grid has unique names");
            }
        }
        // The wire axis: Selection × map, metered through each codec, plus one
        // CONGEST-style capped-bandwidth point (Backend::Capped forces metering by
        // itself). Metering serialises every message, so the axis pins its own
        // small asymmetric instances instead of climbing the grid's size ladder —
        // on a 10⁴-node graph the tree codec alone would ship Θ((Δ−1)^h) bits per
        // edge per round.
        let wire_family = || RandomRegularFamily::new(3, vec![16, 24], Self::GRID_SEED);
        for codec in MessageCodec::ALL {
            registry
                .register(
                    Scenario::new(
                        wire_family(),
                        Task::Selection,
                        SolverSpec::Map,
                        backends[0],
                        2,
                    )
                    .metered(codec),
                )
                .expect("built-in grid has unique names");
        }
        registry
            .register(Scenario::new(
                wire_family(),
                Task::Selection,
                SolverSpec::Map,
                Backend::capped(64),
                2,
            ))
            .expect("built-in grid has unique names");
        registry
    }

    /// The smoke grid: all four families at small sizes × all four shades × the map
    /// solver, plus the advice pair on Selection (tree- and DAG-codec advice), a
    /// backend axis covering every execution strategy (fixed-thread parallel, arena
    /// batching, adaptive), and a wire axis (one metered scenario per codec plus a
    /// capped-bandwidth point) — 44 scenarios of ≤ 2 instances each, fast enough
    /// for CI.
    pub fn smoke() -> Self {
        Self::grid(
            || Self::grid_families(vec![16, 24], vec![(3, 4), (4, 4)], vec![3, 4], vec![15, 24]),
            &[
                Backend::Sequential,
                Backend::parallel(2),
                Backend::parallel(4),
                Backend::Batching,
                Backend::AdaptiveParallel,
            ],
            2,
        )
    }

    /// The standard grid: the smoke sizes plus larger steps per family — up to
    /// 10 000 nodes on the random-regular and circulant families — for locally
    /// tracking the perf trajectory. All four shades climb the full size ladder:
    /// since the class-quotient search replaced raw simple-path enumeration, the
    /// strong shades (PPE, CPPE) resolve the 10⁴-node instances inside the map
    /// solver's default 50 000-operation budget instead of stopping at ~25 nodes.
    pub fn standard() -> Self {
        Self::grid(
            || {
                Self::grid_families(
                    vec![16, 24, 64, 128, 10_000],
                    vec![(3, 4), (4, 4), (8, 8), (11, 12)],
                    vec![3, 4, 6, 7],
                    vec![15, 24, 64, 128, 10_000],
                )
            },
            &[
                Backend::Sequential,
                Backend::parallel(4),
                Backend::parallel(8),
                Backend::Batching,
                Backend::AdaptiveParallel,
            ],
            5,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_encode_the_grid_point() {
        let s = Scenario::new(
            TorusFamily::new(vec![(3, 3)]),
            Task::Selection,
            SolverSpec::Map,
            Backend::Sequential,
            1,
        );
        assert_eq!(s.name(), "torus2d/S/map/seq");
    }

    #[test]
    fn registry_rejects_duplicates_and_selects_by_substring() {
        let mut r = ScenarioRegistry::new();
        r.register(Scenario::new(
            TorusFamily::new(vec![(3, 3)]),
            Task::Selection,
            SolverSpec::Map,
            Backend::Sequential,
            1,
        ))
        .unwrap();
        let dup = r.register(Scenario::new(
            TorusFamily::new(vec![(4, 4)]),
            Task::Selection,
            SolverSpec::Map,
            Backend::Sequential,
            1,
        ));
        assert!(matches!(dup, Err(RegistryError::Duplicate(_))));
        r.register(Scenario::new(
            TorusFamily::new(vec![(3, 3)]),
            Task::PortElection,
            SolverSpec::Map,
            Backend::Sequential,
            1,
        ))
        .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.select("torus").len(), 2);
        assert_eq!(r.select("/PE/").len(), 1);
        assert_eq!(r.select("").len(), 2);
        assert!(r.get("torus2d/S/map/seq").is_some());
        assert!(r.get("nope").is_none());
    }

    #[test]
    fn smoke_grid_covers_all_families_shades_and_backends() {
        let r = ScenarioRegistry::smoke();
        let names = r.names().join("\n");
        // All four families appear.
        for fam in ["random-regular", "torus2d", "hypercube", "circulant"] {
            assert!(names.contains(fam), "{fam} missing from\n{names}");
        }
        // All four shades appear in the map × shade block.
        for task in ["S", "PE", "PPE", "CPPE"] {
            assert!(names.contains(&format!("/{task}/map/seq")), "{task}");
        }
        // Backend and solver axes appear, including the arena-based backends.
        assert!(names.contains("/par2"));
        assert!(names.contains("/par4"));
        assert!(names.contains("/batch"));
        assert!(names.contains("/adaptive"));
        assert!(names.contains("/advice/"));
        assert!(names.contains("/advice-dag/"));
        // The wire axis: one metered scenario per codec plus a capped-backend point.
        for codec in ["tree", "dag", "delta"] {
            assert!(names.contains(&format!("+wire-{codec}")), "{codec}");
        }
        assert!(names.contains("/cap64"));
        // 4 families × (4 map shades + 2 advice codecs + 4 extra backends) = 40,
        // plus the wire axis (3 codecs + 1 capped point) = 44.
        assert_eq!(r.len(), 44);
    }

    #[test]
    fn guarded_advice_solver_reports_instead_of_panicking_on_symmetric_graphs() {
        let symmetric = TorusFamily::generate(3, 3);
        for codec in [ViewCodec::Tree, ViewCodec::Dag] {
            let err = GuardedAdviceSolver { codec }
                .solve(&symmetric, Task::Selection, Backend::Sequential)
                .unwrap_err();
            assert!(matches!(err, EngineError::Solver { .. }));
        }
    }

    #[test]
    fn scenario_run_produces_rows_for_each_instance() {
        let s = Scenario::new(
            RandomRegularFamily::new(3, vec![16, 24], 0xA5EED),
            Task::Selection,
            SolverSpec::Map,
            Backend::Sequential,
            2,
        );
        let rows = s.run();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.solved(), "{}: {:?}", row.instance, row.report);
        }
    }

    #[test]
    fn metered_scenarios_report_bits_and_match_their_unmetered_twin() {
        let family = || RandomRegularFamily::new(3, vec![16], 0xA5EED);
        let plain = Scenario::new(
            family(),
            Task::Selection,
            SolverSpec::Map,
            Backend::Sequential,
            1,
        );
        let metered = Scenario::new(
            family(),
            Task::Selection,
            SolverSpec::Map,
            Backend::Sequential,
            1,
        )
        .metered(MessageCodec::Delta);
        assert!(
            metered.name().ends_with("/S/map/seq+wire-delta"),
            "{}",
            metered.name()
        );
        let (p, m) = (plain.run(), metered.run());
        for (a, b) in p.iter().zip(&m) {
            assert!(b.solved(), "{}", b.instance);
            assert!(a.wire_bits().is_none());
            assert!(b.wire_bits().unwrap() > 0);
            assert_eq!(a.rounds(), b.rounds());
            assert_eq!(
                a.report.as_ref().unwrap().outputs,
                b.report.as_ref().unwrap().outputs
            );
        }
    }

    #[test]
    fn scenarios_share_materialised_instances_across_grid_points() {
        // Two scenarios over the same family coordinates (different tasks) must agree
        // when run against one shared materialisation — this is what the sweep
        // driver's per-family instance cache relies on.
        let family = || RandomRegularFamily::new(3, vec![16, 24], 0xA5EED);
        let s1 = Scenario::new(
            family(),
            Task::Selection,
            SolverSpec::Map,
            Backend::Sequential,
            2,
        );
        let s2 = Scenario::new(
            family(),
            Task::PortElection,
            SolverSpec::Map,
            Backend::Sequential,
            2,
        );
        let instances = s1.materialize();
        assert_eq!(instances.len(), 2);
        for (shared, fresh) in s2.run_on(&instances).iter().zip(s2.run()) {
            assert_eq!(shared.instance, fresh.instance);
            assert_eq!(shared.rounds(), fresh.rounds());
            assert_eq!(shared.solved(), fresh.solved());
        }
    }
}
