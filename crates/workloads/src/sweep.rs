//! The sweep driver: run a registry selection, collect reports, emit `BENCH_*.json`.
//!
//! Every cell of the emitted file is one engine run (scenario × family instance):
//! rounds, messages, advice bits, wall time, verdict — the machine-readable form of
//! the `ElectionReport`s the facade returns, so the perf trajectory of the engine can
//! be tracked file-over-file. The schema is versioned ([`SCHEMA`]); the in-tree
//! [`Json`] parser reads the files back.
//!
//! ## Schema history
//!
//! * `anet-workloads/v1` — the original cell fields (`scenario`, `family`,
//!   `instance`, `param`, `nodes`, `max_degree`, `task`, `solver`, `backend`,
//!   `solved`, `rounds`, `messages`, `advice_bits`, `wall_ms`, `leader`, `error`).
//! * `anet-workloads/v2` — adds per-cell `advice_tree_bits` and
//!   `advice_dag_bits`: the size the advice's encoded view takes under the
//!   unfolded-tree codec and under the shared-DAG codec (`null` for solvers whose
//!   advice is not an encoded view). `advice_bits` remains the bits actually
//!   shipped, which equals one of the two for the Theorem 2.2 pairs.
//! * `anet-workloads/v3` — adds per-cell `classes_expanded` and
//!   `paths_explored`: the cost counters of the map-side assignment search
//!   (quotient classes popped by the route BFS, candidate paths tested). Zero for
//!   solvers that never search for an assignment; `null` only when the cell has no
//!   report at all.
//! * `anet-workloads/v4` (current) — adds the wire-metering fields: `wire_codec`
//!   (the message codec a metered cell serialised through), `wire_cap` (the
//!   bits-per-edge-per-round cap of a `Backend::Capped` run), `wire_bits` (total
//!   bits on the wire) and the `wire_round_bits` / `wire_edge_bits` breakdowns
//!   (per physical round / per directed edge — both sum to `wire_bits`). All
//!   `null` for unmetered cells.
//!
//! Each version is a strict superset of its predecessor: every older field is still
//! emitted with the same meaning, and the parser is a general JSON reader, so
//! tooling written against v1/v2/v3 files keeps working on v4 files (and this crate
//! keeps reading archived v1/v2/v3 files — missing keys simply look up as `None`).

use crate::json::Json;
use crate::scenario::{Scenario, ScenarioRegistry};
use crate::trace_io::TraceFile;
use anet_election::engine::BatchRow;
use anet_trace::TraceEvent;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// The schema tag written into every emitted sweep file (see the module docs for
/// the version history).
pub const SCHEMA: &str = "anet-workloads/v4";

/// Configuration of one sweep run.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Directory the `BENCH_*.json` file is written to (created if missing).
    pub out_dir: PathBuf,
    /// Case-insensitive substring filter on scenario names (`None` = run everything).
    pub filter: Option<String>,
    /// Label baked into the file name (`BENCH_workloads_<label>.json`).
    pub label: String,
    /// Print one progress line per scenario to stdout.
    pub verbose: bool,
    /// Worker threads the scenarios are fanned out over (via the work-stealing
    /// pool in `anet-sim`); `1` (the default) runs the grid sequentially on the
    /// calling thread. Whatever the value, the emitted JSON is identical modulo
    /// timing fields — see [`normalized_for_diff`].
    pub jobs: usize,
    /// When set, run every cell with round-level profiling and write an
    /// `anet-trace/v1` artifact (`TRACE_workloads_<label>.jsonl`) into this
    /// directory: one run per profiled cell, whose trace id is the cell's index
    /// in the emitted `cells` array. The `BENCH_*.json` itself is byte-identical
    /// whether or not tracing is on — profiles travel only through the artifact.
    pub trace_dir: Option<PathBuf>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            out_dir: PathBuf::from("."),
            filter: None,
            label: "sweep".to_string(),
            verbose: false,
            jobs: 1,
            trace_dir: None,
        }
    }
}

/// Summary of a finished sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Path of the emitted JSON file.
    pub json_path: PathBuf,
    /// Path of the emitted `anet-trace/v1` artifact, when
    /// [`SweepConfig::trace_dir`] was set.
    pub trace_path: Option<PathBuf>,
    /// Scenarios run (after filtering).
    pub scenarios: usize,
    /// Total cells (scenario × instance runs).
    pub cells: usize,
    /// Cells whose verifier accepted the outputs.
    pub solved: usize,
    /// Cells that failed or errored (infeasible instances report here by design).
    pub unsolved: usize,
    /// Wall time of the whole sweep.
    pub wall: Duration,
}

/// One cell rendered to JSON. Infeasible instances and solver refusals become cells
/// with `"solved": false` and an `"error"` string — a sweep never aborts mid-grid.
fn cell_json(scenario: &Scenario, row: &BatchRow) -> Json {
    let mut fields = vec![
        ("scenario".to_string(), Json::str(scenario.name())),
        ("family".to_string(), Json::str(&row.family)),
        ("instance".to_string(), Json::str(&row.instance)),
        ("param".to_string(), Json::Int(row.param as i64)),
        ("nodes".to_string(), Json::count(row.nodes)),
        ("max_degree".to_string(), Json::count(row.max_degree)),
        ("task".to_string(), Json::str(row.task.to_string())),
        (
            "solver".to_string(),
            Json::str(scenario.solver.label().to_string()),
        ),
        ("backend".to_string(), Json::str(scenario.backend.label())),
    ];
    match &row.report {
        Ok(report) => {
            fields.push(("solved".to_string(), Json::Bool(report.solved())));
            fields.push(("rounds".to_string(), Json::count(report.rounds)));
            fields.push((
                "messages".to_string(),
                Json::count(report.messages_delivered),
            ));
            fields.push((
                "advice_bits".to_string(),
                Json::opt_count(report.advice_bits),
            ));
            fields.push((
                "advice_tree_bits".to_string(),
                Json::opt_count(report.advice_tree_bits),
            ));
            fields.push((
                "advice_dag_bits".to_string(),
                Json::opt_count(report.advice_dag_bits),
            ));
            fields.push((
                "classes_expanded".to_string(),
                Json::count(report.search.classes_expanded),
            ));
            fields.push((
                "paths_explored".to_string(),
                Json::count(report.search.paths_explored),
            ));
            // v4 wire fields: populated only when the cell was metered (an
            // explicit codec or a capped backend); all null otherwise.
            match &report.wire {
                Some(wire) => {
                    fields.push(("wire_codec".to_string(), Json::str(wire.codec.label())));
                    fields.push((
                        "wire_cap".to_string(),
                        match wire.bits_per_edge_cap {
                            Some(cap) => Json::Int(cap as i64),
                            None => Json::Null,
                        },
                    ));
                    fields.push(("wire_bits".to_string(), Json::Int(wire.total_bits() as i64)));
                    fields.push((
                        "wire_round_bits".to_string(),
                        Json::Array(
                            wire.per_round_bits
                                .iter()
                                .map(|&b| Json::Int(b as i64))
                                .collect(),
                        ),
                    ));
                    fields.push((
                        "wire_edge_bits".to_string(),
                        Json::Array(
                            wire.per_edge_bits
                                .iter()
                                .map(|&b| Json::Int(b as i64))
                                .collect(),
                        ),
                    ));
                }
                None => {
                    fields.push(("wire_codec".to_string(), Json::Null));
                    fields.push(("wire_cap".to_string(), Json::Null));
                    fields.push(("wire_bits".to_string(), Json::Null));
                    fields.push(("wire_round_bits".to_string(), Json::Null));
                    fields.push(("wire_edge_bits".to_string(), Json::Null));
                }
            }
            fields.push((
                "wall_ms".to_string(),
                Json::Float(report.wall_time.as_secs_f64() * 1e3),
            ));
            fields.push((
                "leader".to_string(),
                match report.leader() {
                    Some(v) => Json::Int(v as i64),
                    None => Json::Null,
                },
            ));
            fields.push((
                "error".to_string(),
                match &report.verdict {
                    Ok(_) => Json::Null,
                    Err(e) => Json::str(e.to_string()),
                },
            ));
        }
        Err(e) => {
            fields.push(("solved".to_string(), Json::Bool(false)));
            fields.push(("rounds".to_string(), Json::Null));
            fields.push(("messages".to_string(), Json::Null));
            fields.push(("advice_bits".to_string(), Json::Null));
            fields.push(("advice_tree_bits".to_string(), Json::Null));
            fields.push(("advice_dag_bits".to_string(), Json::Null));
            fields.push(("classes_expanded".to_string(), Json::Null));
            fields.push(("paths_explored".to_string(), Json::Null));
            fields.push(("wire_codec".to_string(), Json::Null));
            fields.push(("wire_cap".to_string(), Json::Null));
            fields.push(("wire_bits".to_string(), Json::Null));
            fields.push(("wire_round_bits".to_string(), Json::Null));
            fields.push(("wire_edge_bits".to_string(), Json::Null));
            fields.push(("wall_ms".to_string(), Json::Null));
            fields.push(("leader".to_string(), Json::Null));
            fields.push(("error".to_string(), Json::str(e.to_string())));
        }
    }
    Json::Object(fields)
}

/// Run the selected scenarios of `registry` and write `BENCH_workloads_<label>.json`
/// into `config.out_dir`. Returns the outcome summary; IO failures (only) are errors.
pub fn run_sweep(
    registry: &ScenarioRegistry,
    config: &SweepConfig,
) -> std::io::Result<SweepOutcome> {
    let started = Instant::now();
    let selected: Vec<&Scenario> = match &config.filter {
        Some(f) => registry.select(f),
        None => registry.iter().collect(),
    };

    // Scenarios are grid points over a small set of family coordinates: the built-in
    // grids revisit each family once per task, solver and backend. Materialise each
    // family's instances once per (family, cap) coordinate and run every scenario
    // against the borrowed instances, instead of regenerating (and re-shuffling) the
    // graphs per scenario. The family half of the key is `instance_cache_key` (which
    // pins down every generation parameter, unlike the display name); the cap is part
    // of the key because some families (e.g. `UClass`) *spread* member indices across
    // the class, so different caps select different — not merely fewer — members.
    let mut instance_cache: HashMap<(String, usize), Vec<anet_constructions::FamilyInstance>> =
        HashMap::new();
    for scenario in &selected {
        let key = (scenario.family.instance_cache_key(), scenario.max_instances);
        instance_cache
            .entry(key)
            .or_insert_with(|| scenario.materialize());
    }

    // Fan the scenarios out over the work-stealing pool. `run_indexed` returns
    // rows in job (= scenario) order whatever thread ran what, so the emitted
    // cells — and hence the JSON, modulo timing fields — are independent of
    // `jobs`. With more than one job, each scenario runs under a thread budget of
    // its fair share of the machine, so a scenario on a parallel backend cannot
    // oversubscribe the cores the other jobs are using (backend labels are
    // budget-independent, keeping report keys stable).
    let jobs = config.jobs.max(1);
    let per_job_budget = if jobs > 1 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .div_ceil(jobs)
    } else {
        usize::MAX
    };
    let profiled = config.trace_dir.is_some();
    let (rows_per_scenario, _pool_stats) = anet_sim::run_indexed(jobs, selected.len(), |i| {
        let scenario = selected[i];
        let key = (scenario.family.instance_cache_key(), scenario.max_instances);
        let instances = &instance_cache[&key];
        anet_sim::with_thread_budget(per_job_budget, || {
            scenario.run_on_profiled(instances, profiled)
        })
    });

    let mut cells = Vec::new();
    let mut solved = 0usize;
    let mut unsolved = 0usize;
    let mut trace = profiled.then(|| TraceFile::new(&config.label));
    for (scenario, rows) in selected.iter().zip(&rows_per_scenario) {
        let scenario_solved = rows.iter().filter(|r| r.solved()).count();
        if config.verbose {
            println!(
                "  {:<60} {}/{} solved",
                scenario.name(),
                scenario_solved,
                rows.len()
            );
        }
        for row in rows {
            if row.solved() {
                solved += 1;
            } else {
                unsolved += 1;
            }
            // Serialise the cell's round profile into the trace artifact under the
            // cell's index as trace id (ids are assigned in output order, so they
            // are deterministic at any `jobs` count). Errored cells have no
            // report, hence no run — their ids simply do not occur in the file.
            if let Some(trace) = &mut trace {
                if let Some(profile) = row
                    .report
                    .as_ref()
                    .ok()
                    .and_then(|r| r.round_profile.as_ref())
                {
                    let report = row.report.as_ref().expect("profile implies a report");
                    let id = cells.len() as u64;
                    let mut events = Vec::with_capacity(profile.len() * 5 + 2);
                    events.push(TraceEvent::RunStart {
                        trace_id: id,
                        nodes: row.nodes as u64,
                        rounds: report.rounds as u64,
                    });
                    events.extend(profile.to_events(id));
                    events.push(TraceEvent::RunEnd {
                        trace_id: id,
                        rounds: report.rounds as u64,
                        messages: report.messages_delivered as u64,
                    });
                    trace.push_run(
                        id,
                        format!("{} · {}", scenario.name(), row.instance),
                        events,
                    );
                }
            }
            cells.push(cell_json(scenario, row));
        }
    }

    let wall = started.elapsed();
    let num_cells = cells.len();
    let generated_unix_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as i64)
        .unwrap_or(0);
    let document = Json::Object(vec![
        ("schema".to_string(), Json::str(SCHEMA)),
        ("label".to_string(), Json::str(&config.label)),
        (
            "generated_unix_ms".to_string(),
            Json::Int(generated_unix_ms),
        ),
        ("scenarios".to_string(), Json::count(selected.len())),
        (
            "summary".to_string(),
            Json::Object(vec![
                ("cells".to_string(), Json::count(num_cells)),
                ("solved".to_string(), Json::count(solved)),
                ("unsolved".to_string(), Json::count(unsolved)),
                (
                    "total_wall_ms".to_string(),
                    Json::Float(wall.as_secs_f64() * 1e3),
                ),
            ]),
        ),
        ("cells".to_string(), Json::Array(cells)),
    ]);

    std::fs::create_dir_all(&config.out_dir)?;
    let json_path = config
        .out_dir
        .join(format!("BENCH_workloads_{}.json", sanitize(&config.label)));
    std::fs::write(&json_path, document.render_pretty())?;

    let trace_path = match (&trace, &config.trace_dir) {
        (Some(trace), Some(dir)) => {
            let path = dir.join(format!("TRACE_workloads_{}.jsonl", sanitize(&config.label)));
            trace.write(&path)?;
            Some(path)
        }
        _ => None,
    };

    Ok(SweepOutcome {
        json_path,
        trace_path,
        scenarios: selected.len(),
        cells: num_cells,
        solved,
        unsolved,
        wall,
    })
}

/// Keep file names portable: labels become `[a-zA-Z0-9_-]` only.
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Read an emitted `BENCH_*.json` back (used by tests and tooling to assert
/// well-formedness without an external JSON library).
pub fn read_bench_json(path: &Path) -> std::io::Result<Json> {
    let text = std::fs::read_to_string(path)?;
    Json::parse(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// A copy of a bench document with every timing field (`wall_ms`,
/// `total_wall_ms`, `generated_unix_ms`) replaced by `0`, leaving only the
/// deterministic content. Two sweeps of the same grid — at any
/// [`jobs`](SweepConfig::jobs) count — render byte-identically after
/// normalisation; the bench-diff tooling and the `--jobs` determinism tests
/// compare through this.
pub fn normalized_for_diff(doc: &Json) -> Json {
    const TIMING_KEYS: [&str; 3] = ["wall_ms", "total_wall_ms", "generated_unix_ms"];
    match doc {
        Json::Object(fields) => Json::Object(
            fields
                .iter()
                .map(|(key, value)| {
                    let value = if TIMING_KEYS.contains(&key.as_str()) {
                        Json::Int(0)
                    } else {
                        normalized_for_diff(value)
                    };
                    (key.clone(), value)
                })
                .collect(),
        ),
        Json::Array(items) => Json::Array(items.iter().map(normalized_for_diff).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::RandomRegularFamily;
    use crate::scenario::SolverSpec;
    use anet_election::engine::{Backend, MessageCodec};
    use anet_election::tasks::Task;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("anet-workloads-test-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sweep_emits_well_formed_versioned_json() {
        let mut registry = ScenarioRegistry::new();
        registry
            .register(Scenario::new(
                RandomRegularFamily::new(3, vec![16], 0xA5EED),
                Task::Selection,
                SolverSpec::Map,
                Backend::Sequential,
                1,
            ))
            .unwrap();
        let config = SweepConfig {
            out_dir: tmp_dir("emit"),
            label: "unit test".to_string(),
            ..SweepConfig::default()
        };
        let outcome = run_sweep(&registry, &config).unwrap();
        assert_eq!(outcome.scenarios, 1);
        assert_eq!(outcome.cells, 1);
        assert_eq!(outcome.solved, 1);
        // The label is sanitised into the file name.
        assert!(outcome
            .json_path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("BENCH_workloads_unit_test"));

        let doc = read_bench_json(&outcome.json_path).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        let cells = doc.get("cells").and_then(Json::as_array).unwrap();
        assert_eq!(cells.len(), 1);
        let cell = &cells[0];
        assert_eq!(cell.get("nodes").and_then(Json::as_int), Some(16));
        assert_eq!(cell.get("task").and_then(Json::as_str), Some("S"));
        assert_eq!(cell.get("solved"), Some(&Json::Bool(true)));
        assert_eq!(cell.get("error"), Some(&Json::Null));
        // v2 fields are always present; the map solver has no encoded-view advice.
        assert_eq!(cell.get("advice_tree_bits"), Some(&Json::Null));
        assert_eq!(cell.get("advice_dag_bits"), Some(&Json::Null));
        // v3 fields: the map solver searched for a PE-class assignment, so the
        // search counters are present and non-null (classes may legitimately be 0
        // for Selection, which needs no assignment beyond the unique view).
        assert!(cell
            .get("classes_expanded")
            .and_then(Json::as_int)
            .is_some());
        assert!(cell.get("paths_explored").and_then(Json::as_int).is_some());
        let _ = std::fs::remove_dir_all(&config.out_dir);
    }

    #[test]
    fn advice_scenarios_record_both_codec_sizes_per_cell() {
        for (spec, shipped_key) in [
            (SolverSpec::MinTimeAdvice, "advice_tree_bits"),
            (SolverSpec::MinTimeAdviceDag, "advice_dag_bits"),
        ] {
            let mut registry = ScenarioRegistry::new();
            registry
                .register(Scenario::new(
                    RandomRegularFamily::new(3, vec![16], 0xA5EED),
                    Task::Selection,
                    spec,
                    Backend::Sequential,
                    1,
                ))
                .unwrap();
            let config = SweepConfig {
                out_dir: tmp_dir(&format!("codec-{}", spec.label())),
                label: spec.label().to_string(),
                ..SweepConfig::default()
            };
            let outcome = run_sweep(&registry, &config).unwrap();
            let doc = read_bench_json(&outcome.json_path).unwrap();
            let cell = &doc.get("cells").and_then(Json::as_array).unwrap()[0];
            let tree = cell.get("advice_tree_bits").and_then(Json::as_int);
            let dag = cell.get("advice_dag_bits").and_then(Json::as_int);
            let shipped = cell.get("advice_bits").and_then(Json::as_int);
            assert!(tree.is_some() && dag.is_some(), "{spec:?}");
            // Whatever codec the scenario ships, the shipped size is that codec's.
            assert_eq!(shipped, cell.get(shipped_key).and_then(Json::as_int));
            let _ = std::fs::remove_dir_all(&config.out_dir);
        }
    }

    #[test]
    fn parser_reads_archived_v1_files() {
        // A v1-era cell (no advice_tree_bits / advice_dag_bits): the general parser
        // accepts it and the absent keys look up as None — tooling that trends old
        // BENCH files against new ones keeps working.
        let v1 = r#"{
          "schema": "anet-workloads/v1",
          "label": "archive",
          "cells": [
            {"scenario": "torus2d/S/map/seq", "nodes": 9, "solved": true,
             "advice_bits": null, "error": null}
          ]
        }"#;
        let doc = Json::parse(v1).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("anet-workloads/v1")
        );
        let cell = &doc.get("cells").and_then(Json::as_array).unwrap()[0];
        assert_eq!(cell.get("nodes").and_then(Json::as_int), Some(9));
        assert_eq!(cell.get("advice_tree_bits"), None);
        assert_eq!(cell.get("advice_dag_bits"), None);
    }

    #[test]
    fn parser_reads_archived_v2_files() {
        // A v2-era cell (no classes_expanded / paths_explored): the general parser
        // accepts it and the absent v3 counters look up as None, so bench-diff
        // tooling can trend archived v2 files against fresh v3 ones.
        let v2 = r#"{
          "schema": "anet-workloads/v2",
          "label": "archive",
          "cells": [
            {"scenario": "rr3/PPE/map/seq", "nodes": 16, "solved": true,
             "advice_bits": null, "advice_tree_bits": null, "advice_dag_bits": null,
             "error": null}
          ]
        }"#;
        let doc = Json::parse(v2).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("anet-workloads/v2")
        );
        let cell = &doc.get("cells").and_then(Json::as_array).unwrap()[0];
        assert_eq!(cell.get("nodes").and_then(Json::as_int), Some(16));
        assert_eq!(cell.get("advice_tree_bits"), Some(&Json::Null));
        assert_eq!(cell.get("classes_expanded"), None);
        assert_eq!(cell.get("paths_explored"), None);
    }

    #[test]
    fn parser_reads_archived_v3_files() {
        // A v3-era cell (no wire_* fields): the general parser accepts it and the
        // absent v4 fields look up as None, so bench-diff tooling can trend
        // archived v3 files against fresh v4 ones.
        let v3 = r#"{
          "schema": "anet-workloads/v3",
          "label": "archive",
          "cells": [
            {"scenario": "rr3/S/map/seq", "nodes": 16, "solved": true,
             "advice_bits": null, "advice_tree_bits": null, "advice_dag_bits": null,
             "classes_expanded": 0, "paths_explored": 0, "error": null}
          ]
        }"#;
        let doc = Json::parse(v3).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("anet-workloads/v3")
        );
        let cell = &doc.get("cells").and_then(Json::as_array).unwrap()[0];
        assert_eq!(cell.get("classes_expanded").and_then(Json::as_int), Some(0));
        assert_eq!(cell.get("wire_codec"), None);
        assert_eq!(cell.get("wire_cap"), None);
        assert_eq!(cell.get("wire_bits"), None);
        assert_eq!(cell.get("wire_round_bits"), None);
        assert_eq!(cell.get("wire_edge_bits"), None);
    }

    #[test]
    fn metered_cells_record_wire_fields_and_capped_cells_record_the_cap() {
        let mut registry = ScenarioRegistry::new();
        registry
            .register(
                Scenario::new(
                    RandomRegularFamily::new(3, vec![16], 0xA5EED),
                    Task::Selection,
                    SolverSpec::Map,
                    Backend::Sequential,
                    1,
                )
                .metered(MessageCodec::Dag),
            )
            .unwrap();
        registry
            .register(Scenario::new(
                RandomRegularFamily::new(3, vec![16], 0xA5EED),
                Task::Selection,
                SolverSpec::Map,
                Backend::capped(32),
                1,
            ))
            .unwrap();
        let config = SweepConfig {
            out_dir: tmp_dir("wire"),
            label: "wire".to_string(),
            ..SweepConfig::default()
        };
        let outcome = run_sweep(&registry, &config).unwrap();
        assert_eq!(outcome.cells, 2);
        assert_eq!(outcome.solved, 2);
        let doc = read_bench_json(&outcome.json_path).unwrap();
        let cells = doc.get("cells").and_then(Json::as_array).unwrap();
        let sum = |cell: &Json, key: &str| {
            cell.get(key)
                .and_then(Json::as_array)
                .unwrap()
                .iter()
                .map(|j| Json::as_int(j).unwrap())
                .sum::<i64>()
        };
        let metered = &cells[0];
        assert_eq!(
            metered.get("wire_codec").and_then(Json::as_str),
            Some("dag")
        );
        assert_eq!(metered.get("wire_cap"), Some(&Json::Null));
        let total = metered.get("wire_bits").and_then(Json::as_int).unwrap();
        assert!(total > 0);
        // Both breakdowns reconcile with the total.
        assert_eq!(sum(metered, "wire_round_bits"), total);
        assert_eq!(sum(metered, "wire_edge_bits"), total);
        // The capped cell is metered implicitly (default codec), records its cap,
        // ships the same bits, and pays for the cap in physical rounds.
        let capped = &cells[1];
        assert_eq!(capped.get("wire_codec").and_then(Json::as_str), Some("dag"));
        assert_eq!(capped.get("wire_cap").and_then(Json::as_int), Some(32));
        assert_eq!(capped.get("wire_bits").and_then(Json::as_int), Some(total));
        assert!(
            capped.get("rounds").and_then(Json::as_int).unwrap()
                >= metered.get("rounds").and_then(Json::as_int).unwrap()
        );
        let _ = std::fs::remove_dir_all(&config.out_dir);
    }

    #[test]
    fn sweep_records_infeasible_cells_instead_of_failing() {
        use crate::families::TorusFamily;
        let mut registry = ScenarioRegistry::new();
        // Canonical torus: fully symmetric, infeasible for election.
        registry
            .register(Scenario::new(
                TorusFamily::new(vec![(3, 3)]),
                Task::Selection,
                SolverSpec::Map,
                Backend::Sequential,
                1,
            ))
            .unwrap();
        let config = SweepConfig {
            out_dir: tmp_dir("infeasible"),
            label: "infeasible".to_string(),
            ..SweepConfig::default()
        };
        let outcome = run_sweep(&registry, &config).unwrap();
        assert_eq!(outcome.cells, 1);
        assert_eq!(outcome.solved, 0);
        assert_eq!(outcome.unsolved, 1);
        let doc = read_bench_json(&outcome.json_path).unwrap();
        let cell = &doc.get("cells").and_then(Json::as_array).unwrap()[0];
        assert_eq!(cell.get("solved"), Some(&Json::Bool(false)));
        assert!(cell.get("error").and_then(Json::as_str).is_some());
        let _ = std::fs::remove_dir_all(&config.out_dir);
    }

    #[test]
    fn instance_cache_distinguishes_same_named_families_with_different_sizes() {
        // Two RandomRegular families share a display name (it omits the size list)
        // but generate different graphs; the sweep's instance cache must key on
        // `instance_cache_key`, not the name, or the second scenario would silently
        // run the first scenario's graphs.
        let mut registry = ScenarioRegistry::new();
        registry
            .register(Scenario::new(
                RandomRegularFamily::new(3, vec![16], 0xA5EED),
                Task::Selection,
                SolverSpec::Map,
                Backend::Sequential,
                1,
            ))
            .unwrap();
        registry
            .register(Scenario::new(
                RandomRegularFamily::new(3, vec![24], 0xA5EED),
                Task::PortElection,
                SolverSpec::Map,
                Backend::Sequential,
                1,
            ))
            .unwrap();
        let config = SweepConfig {
            out_dir: tmp_dir("cache-key"),
            label: "cache key".to_string(),
            ..SweepConfig::default()
        };
        let outcome = run_sweep(&registry, &config).unwrap();
        assert_eq!(outcome.cells, 2);
        let doc = read_bench_json(&outcome.json_path).unwrap();
        let cells = doc.get("cells").and_then(Json::as_array).unwrap();
        let nodes: Vec<i64> = cells
            .iter()
            .map(|c| c.get("nodes").and_then(Json::as_int).unwrap())
            .collect();
        assert_eq!(nodes, vec![16, 24]);
        let _ = std::fs::remove_dir_all(&config.out_dir);
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_sequential_after_normalisation() {
        use crate::families::{HypercubeFamily, TorusFamily};
        // A small grid that still spans families, shades, solvers and backends —
        // including parallel backends, whose threads the per-job budget caps.
        let registry = || {
            let mut registry = ScenarioRegistry::new();
            let scenarios = [
                (Task::Selection, SolverSpec::Map, Backend::Sequential),
                (Task::PortElection, SolverSpec::Map, Backend::parallel(2)),
                (
                    Task::Selection,
                    SolverSpec::MinTimeAdviceDag,
                    Backend::Batching,
                ),
            ];
            for (task, solver, backend) in scenarios {
                registry
                    .register(Scenario::new(
                        RandomRegularFamily::new(3, vec![16, 24], 0xA5EED),
                        task,
                        solver,
                        backend,
                        2,
                    ))
                    .unwrap();
                registry
                    .register(Scenario::new(
                        TorusFamily::new(vec![(3, 4), (4, 4)]).shuffled(41),
                        task,
                        solver,
                        backend,
                        2,
                    ))
                    .unwrap();
            }
            registry
                .register(Scenario::new(
                    HypercubeFamily::new(vec![3]).shuffled(41),
                    Task::Selection,
                    SolverSpec::Map,
                    Backend::AdaptiveParallel,
                    1,
                ))
                .unwrap();
            // Metered and capped scenarios: the wire meter's bit counts (arrays
            // included) must also be deterministic at any jobs count.
            registry
                .register(
                    Scenario::new(
                        RandomRegularFamily::new(3, vec![16, 24], 0xA5EED),
                        Task::Selection,
                        SolverSpec::Map,
                        Backend::Sequential,
                        2,
                    )
                    .metered(MessageCodec::Delta),
                )
                .unwrap();
            registry
                .register(Scenario::new(
                    RandomRegularFamily::new(3, vec![16], 0xA5EED),
                    Task::Selection,
                    SolverSpec::Map,
                    Backend::capped(32),
                    1,
                ))
                .unwrap();
            registry
        };
        let run = |jobs: usize| {
            let config = SweepConfig {
                out_dir: tmp_dir(&format!("jobs-{jobs}")),
                label: format!("jobs {jobs}"),
                jobs,
                ..SweepConfig::default()
            };
            let outcome = run_sweep(&registry(), &config).unwrap();
            let doc = read_bench_json(&outcome.json_path).unwrap();
            let _ = std::fs::remove_dir_all(&config.out_dir);
            (outcome, normalized_for_diff(&doc))
        };
        let (outcome_seq, mut doc_seq) = run(1);
        let (outcome_par, doc_par) = run(4);
        assert_eq!(outcome_seq.cells, outcome_par.cells);
        assert_eq!(outcome_seq.solved, outcome_par.solved);
        assert_eq!(outcome_seq.unsolved, outcome_par.unsolved);
        // The labels differ ("jobs 1" vs "jobs 4") by construction; align them and
        // require everything else to render byte-identically.
        if let Json::Object(fields) = &mut doc_seq {
            for (key, value) in fields.iter_mut() {
                if key == "label" {
                    *value = Json::str("jobs 4");
                }
            }
        }
        assert_eq!(doc_seq.render_pretty(), doc_par.render_pretty());
    }

    #[test]
    fn normalisation_zeroes_exactly_the_timing_fields() {
        let doc = Json::Object(vec![
            ("wall_ms".to_string(), Json::Float(12.5)),
            ("solved".to_string(), Json::Bool(true)),
            (
                "summary".to_string(),
                Json::Object(vec![
                    ("total_wall_ms".to_string(), Json::Float(99.0)),
                    ("cells".to_string(), Json::Int(3)),
                ]),
            ),
            (
                "cells".to_string(),
                Json::Array(vec![Json::Object(vec![(
                    "wall_ms".to_string(),
                    Json::Null,
                )])]),
            ),
            ("generated_unix_ms".to_string(), Json::Int(1_700_000_000)),
        ]);
        let normalized = normalized_for_diff(&doc);
        assert_eq!(normalized.get("wall_ms"), Some(&Json::Int(0)));
        assert_eq!(normalized.get("solved"), Some(&Json::Bool(true)));
        assert_eq!(normalized.get("generated_unix_ms"), Some(&Json::Int(0)));
        let summary = normalized.get("summary").unwrap();
        assert_eq!(summary.get("total_wall_ms"), Some(&Json::Int(0)));
        assert_eq!(summary.get("cells"), Some(&Json::Int(3)));
        let cell = &normalized.get("cells").and_then(Json::as_array).unwrap()[0];
        assert_eq!(cell.get("wall_ms"), Some(&Json::Int(0)));
    }

    #[test]
    fn trace_dir_emits_an_artifact_and_leaves_bench_json_byte_identical() {
        use crate::families::TorusFamily;
        use crate::trace_io::read_trace;
        use anet_trace::{RoundProfile, TraceEvent};
        // A grid mixing solved cells, an advice solver, and an infeasible family
        // (canonical torus) whose cells error and therefore carry no trace run.
        let registry = || {
            let mut registry = ScenarioRegistry::new();
            registry
                .register(Scenario::new(
                    RandomRegularFamily::new(3, vec![16, 24], 0xA5EED),
                    Task::Selection,
                    SolverSpec::Map,
                    Backend::Batching,
                    2,
                ))
                .unwrap();
            registry
                .register(Scenario::new(
                    RandomRegularFamily::new(3, vec![16], 0xA5EED),
                    Task::Selection,
                    SolverSpec::MinTimeAdviceDag,
                    Backend::Sequential,
                    1,
                ))
                .unwrap();
            registry
                .register(Scenario::new(
                    TorusFamily::new(vec![(3, 3)]),
                    Task::Selection,
                    SolverSpec::Map,
                    Backend::Sequential,
                    1,
                ))
                .unwrap();
            registry
        };
        let run = |trace: bool| {
            let tag = if trace { "trace-on" } else { "trace-off" };
            let out_dir = tmp_dir(tag);
            let config = SweepConfig {
                out_dir: out_dir.clone(),
                label: "tracing".to_string(),
                trace_dir: trace.then(|| out_dir.clone()),
                ..SweepConfig::default()
            };
            let outcome = run_sweep(&registry(), &config).unwrap();
            let doc = read_bench_json(&outcome.json_path).unwrap();
            let artifact = outcome.trace_path.as_ref().map(|p| read_trace(p).unwrap());
            let _ = std::fs::remove_dir_all(&out_dir);
            (doc, artifact)
        };

        let (doc_off, no_artifact) = run(false);
        assert!(no_artifact.is_none());
        let (doc_on, artifact) = run(true);
        // The NoopSink guarantee, end to end: the BENCH JSON is byte-identical
        // whether or not the trace artifact was recorded alongside it.
        assert_eq!(
            normalized_for_diff(&doc_off).render_pretty(),
            normalized_for_diff(&doc_on).render_pretty()
        );

        let artifact = artifact.unwrap();
        assert_eq!(artifact.label, "tracing");
        let cells = doc_on.get("cells").and_then(Json::as_array).unwrap();
        assert_eq!(cells.len(), 4);
        // Three cells produced reports (the torus cell errored): three trace runs,
        // ids = cell indices, per-round message sums equal the cell's messages.
        assert_eq!(artifact.runs.len(), 3);
        for run in &artifact.runs {
            let cell = &cells[run.id as usize];
            let profile = RoundProfile::for_trace(&run.events, run.id);
            assert_eq!(
                profile.total_messages(),
                cell.get("messages").and_then(Json::as_int).unwrap() as u64,
                "run {}",
                run.name
            );
            assert_eq!(profile.len() as i64, {
                cell.get("rounds").and_then(Json::as_int).unwrap()
            });
            // The run is framed by RunStart/RunEnd carrying the report totals.
            assert!(matches!(
                run.events.first(),
                Some(TraceEvent::RunStart { nodes, .. })
                    if *nodes == cell.get("nodes").and_then(Json::as_int).unwrap() as u64
            ));
            assert!(matches!(
                run.events.last(),
                Some(TraceEvent::RunEnd { messages, .. })
                    if *messages == profile.total_messages()
            ));
        }
        // The errored cell's id never occurs in the artifact.
        let errored: Vec<usize> = cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.get("error").and_then(Json::as_str).is_some())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(errored.len(), 1);
        assert!(artifact.runs.iter().all(|r| r.id != errored[0] as u64));
    }

    #[test]
    fn filter_narrows_the_selection() {
        let registry = ScenarioRegistry::smoke();
        // Filter on one exact scenario name taken from the registry itself.
        let name = registry
            .names()
            .iter()
            .find(|n| n.contains("hypercube") && n.ends_with("/S/map/seq"))
            .unwrap()
            .to_string();
        let config = SweepConfig {
            out_dir: tmp_dir("filter"),
            filter: Some(name),
            label: "filtered".to_string(),
            ..SweepConfig::default()
        };
        let outcome = run_sweep(&registry, &config).unwrap();
        assert_eq!(outcome.scenarios, 1);
        assert!(outcome.cells >= 1);
        let _ = std::fs::remove_dir_all(&config.out_dir);
    }
}
