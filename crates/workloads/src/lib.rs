//! # anet-workloads — scenario generation and sweep orchestration
//!
//! The paper's constructions (`G`/`U`/`J`) exercise the four shades on adversarial
//! instances; this crate opens the engine to *scenario diversity* beyond them:
//!
//! * [`families`] — extra [`GraphFamily`](anet_constructions::GraphFamily)
//!   implementations spanning low and high diameter: random-regular graphs (pairing
//!   model on the in-tree SplitMix64 PRNG, retried until simple and connected), 2D
//!   tori, hypercubes, and circulant expanders, each with canonical or seed-shuffled
//!   port labellings (shuffling typically breaks the symmetry that makes the
//!   canonical labellings infeasible for election);
//! * [`scenario`] — a [`Scenario`] names one grid point
//!   (family × task × solver × backend × instance cap) and resolves it through the
//!   `ElectionEngine` facade; a [`ScenarioRegistry`]
//!   holds a named grid and answers selections;
//! * [`sweep`] — the driver behind the `sweep` binary: run a registry selection
//!   through [`BatchRunner`](anet_election::engine::BatchRunner), collect the
//!   reports, and emit a machine-readable `BENCH_*.json` (schema
//!   [`sweep::SCHEMA`] = `anet-workloads/v2`; per cell it records rounds, messages,
//!   wall time, verdict, and the advice size under *both* view codecs —
//!   `advice_tree_bits` vs `advice_dag_bits` — see the [`sweep`] module docs for the
//!   v1 → v2 history and compatibility guarantees);
//! * [`service_mix`] — the service scenario axis: deterministic multi-tenant
//!   request mixes (interleaved tenants, rotating task/solver/backend axes) that
//!   `anet-service` and the `service_bench` binary consume;
//! * [`json`] — a tiny dependency-free JSON value type and writer (this workspace
//!   has no external crates, so no serde);
//! * [`trace_io`] — the versioned `anet-trace/v1` JSON-lines trace artifact:
//!   writer, hardened parser (typed [`trace_io::TraceIoError`]s, truncation
//!   detection via declared counts) and a Chrome trace-event export. The sweep
//!   driver emits one next to its `BENCH_*.json` when
//!   [`SweepConfig::trace_dir`](sweep::SweepConfig::trace_dir) is set.
//!
//! ```no_run
//! use anet_workloads::scenario::ScenarioRegistry;
//! use anet_workloads::sweep::{run_sweep, SweepConfig};
//!
//! let registry = ScenarioRegistry::smoke();
//! let outcome = run_sweep(&registry, &SweepConfig::default()).unwrap();
//! println!("{} cells -> {}", outcome.cells, outcome.json_path.display());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod families;
pub mod json;
pub mod scenario;
pub mod service_mix;
pub mod sweep;
pub mod trace_io;

pub use families::{
    CirculantFamily, HypercubeFamily, PortLabeling, RandomRegularFamily, TorusFamily,
};
pub use scenario::{Scenario, ScenarioRegistry, SolverSpec};
pub use service_mix::MixRequest;
pub use sweep::{normalized_for_diff, run_sweep, SweepConfig, SweepOutcome, SCHEMA};
pub use trace_io::{
    chrome_trace_json, parse_trace, read_trace, TraceFile, TraceIoError, TraceRun, TRACE_SCHEMA,
};
