//! A tiny dependency-free JSON value type, writer and parser.
//!
//! The build environment has no external crates, so no serde: the sweep driver
//! assembles a [`Json`] tree by hand and renders it with [`Json::render`]. The
//! parser exists so tests (and future tooling) can check emitted files are
//! well-formed and read individual fields back; it accepts exactly the JSON this
//! module emits (standard JSON with no extensions).

// anet-lint: deny(panic-path)

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order (they are association lists, not
/// maps — key order matters for readable diffs of emitted benchmark files).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (kept separate from floats so counts render without decimal points).
    Int(i64),
    /// A finite float. Non-finite values render as `null` (JSON has no NaN/∞).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, as an ordered association list.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// A string value (convenience).
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// `Int` from any unsigned count used in reports.
    pub fn count(n: usize) -> Json {
        Json::Int(n as i64)
    }

    /// An optional count: `null` when absent.
    pub fn opt_count(n: Option<usize>) -> Json {
        n.map(Json::count).unwrap_or(Json::Null)
    }

    /// Look up a key of an object (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` for non-arrays).
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The integer value (`None` for non-integers).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string value (`None` for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Render with two-space indentation (the format the sweep driver emits).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    let s = format!("{x}");
                    out.push_str(&s);
                    // `{}` on a round f64 prints no decimal point; add one so the
                    // value parses back as a float, not an integer.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// Parse a JSON document. Returns the value and rejects trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing characters after document"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError::at(*pos, format!("expected '{}'", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(JsonError::at(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(fields));
                    }
                    _ => return Err(JsonError::at(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(JsonError::at(*pos, format!("expected '{literal}'")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(bytes, *pos)?;
                        *pos += 4;
                        let c = match code {
                            // A high surrogate must be followed by `\uDC00..=\uDFFF`;
                            // the pair combines into one supplementary-plane scalar.
                            // (The writer emits such characters raw, but standard JSON
                            // emitters escape them as pairs, and the parser must read
                            // both spellings identically.)
                            0xD800..=0xDBFF => {
                                if bytes.get(*pos + 1) != Some(&b'\\')
                                    || bytes.get(*pos + 2) != Some(&b'u')
                                {
                                    return Err(JsonError::at(
                                        *pos,
                                        "unpaired high surrogate (expected a \\uDC00..\\uDFFF low surrogate)",
                                    ));
                                }
                                let low = parse_hex4(bytes, *pos + 2)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(JsonError::at(
                                        *pos + 2,
                                        "high surrogate followed by a non-low-surrogate escape",
                                    ));
                                }
                                *pos += 6;
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined).ok_or_else(|| {
                                    JsonError::at(*pos, "surrogate pair out of range")
                                })?
                            }
                            0xDC00..=0xDFFF => {
                                return Err(JsonError::at(*pos, "unpaired low surrogate"))
                            }
                            code => char::from_u32(code)
                                .ok_or_else(|| JsonError::at(*pos, "invalid code point"))?,
                        };
                        out.push(c);
                    }
                    _ => return Err(JsonError::at(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                return Err(JsonError::at(*pos, "raw control character in string"))
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries are valid).
                let s = &bytes[*pos..];
                let c_len = match s[0] {
                    b if b < 0x80 => 1,
                    b if b >= 0xF0 => 4,
                    b if b >= 0xE0 => 3,
                    _ => 2,
                };
                let scalar = std::str::from_utf8(&s[..c_len])
                    .map_err(|_| JsonError::at(*pos, "invalid UTF-8 sequence"))?;
                out.push_str(scalar);
                *pos += c_len;
            }
        }
    }
}

/// Read the four hex digits of a `\uXXXX` escape; `u_pos` is the position of the `u`.
/// All four bytes must be ASCII hex digits (`u32::from_str_radix` alone would also
/// accept a leading `+`, which JSON forbids).
fn parse_hex4(bytes: &[u8], u_pos: usize) -> Result<u32, JsonError> {
    let hex = bytes
        .get(u_pos + 1..u_pos + 5)
        .ok_or_else(|| JsonError::at(u_pos, "truncated \\u escape"))?;
    if !hex.iter().all(|b| b.is_ascii_hexdigit()) {
        return Err(JsonError::at(u_pos, "invalid \\u escape"));
    }
    let hex = std::str::from_utf8(hex).map_err(|_| JsonError::at(u_pos, "invalid \\u escape"))?;
    u32::from_str_radix(hex, 16).map_err(|_| JsonError::at(u_pos, "invalid \\u escape"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::at(start, "invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(JsonError::at(start, "expected a value"));
    }
    if is_float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError::at(start, "invalid number"))
    } else {
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| JsonError::at(start, "invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trips(value: Json) {
        let compact = value.render();
        assert_eq!(Json::parse(&compact).unwrap(), value, "{compact}");
        let pretty = value.render_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), value, "{pretty}");
    }

    #[test]
    fn scalars_round_trip() {
        round_trips(Json::Null);
        round_trips(Json::Bool(true));
        round_trips(Json::Bool(false));
        round_trips(Json::Int(0));
        round_trips(Json::Int(-42));
        round_trips(Json::Int(i64::MAX));
        round_trips(Json::Float(1.5));
        round_trips(Json::Float(-0.125));
        round_trips(Json::str("hello"));
    }

    #[test]
    fn strings_escape_and_round_trip() {
        round_trips(Json::str("quote \" backslash \\ newline \n tab \t"));
        round_trips(Json::str("unicode: Δ ψ × ρ"));
        round_trips(Json::str("control \u{1}"));
        // Supplementary-plane scalars (the writer emits them raw).
        round_trips(Json::str("emoji \u{1F600} and music \u{1D11E}"));
        round_trips(Json::str("\u{10FFFF}\u{0}\u{7f}"));
    }

    #[test]
    fn surrogate_pair_escapes_parse_to_supplementary_scalars() {
        // Standard JSON emitters escape astral characters as surrogate pairs; the
        // parser must read both spellings identically even though our writer emits
        // such characters raw.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::str("\u{1F600}")
        );
        assert_eq!(
            Json::parse("\"\\uD834\\uDD1E\"").unwrap(),
            Json::str("\u{1D11E}")
        );
        // Mixed case, adjacent to ordinary content.
        assert_eq!(
            Json::parse("\"x\\uD83D\\uDE00y\\u0041\"").unwrap(),
            Json::str("x\u{1F600}yA")
        );
        // Maximum code point U+10FFFF = D BFF / DFFF.
        assert_eq!(
            Json::parse("\"\\udbff\\udfff\"").unwrap(),
            Json::str("\u{10FFFF}")
        );
    }

    #[test]
    fn lone_and_malformed_surrogates_are_rejected() {
        for bad in [
            "\"\\ud800\"",        // unpaired high surrogate at end of string
            "\"\\ud800x\"",       // high surrogate followed by a plain char
            "\"\\ud800\\n\"",     // high surrogate followed by a non-\u escape
            "\"\\ud800\\ud800\"", // high followed by another high
            "\"\\ude00\"",        // lone low surrogate
            "\"\\ude00\\ud83d\"", // pair in the wrong order
            "\"\\ud83d\\u0041\"", // high surrogate + non-surrogate escape
            "\"\\u+123\"",        // sign is not a hex digit
            "\"\\u12g4\"",        // non-hex digit
            "\"\\u123\"",         // truncated
        ] {
            assert!(Json::parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    /// Deterministic adversarial string generator for the round-trip property test:
    /// mixes every escape-relevant class (quotes, backslashes, control characters,
    /// BMP text, astral scalars, `\u`-spelled literals) using the same SplitMix64
    /// generator the graph crate uses.
    fn adversarial_string(rng: &mut anet_graph::rng::Rng, len: usize) -> String {
        let mut s = String::new();
        for _ in 0..len {
            match rng.below(10) {
                0 => s.push('"'),
                1 => s.push('\\'),
                2 => s.push(char::from_u32(rng.below(0x20) as u32).unwrap()),
                3 => s.push('\u{1F600}'),
                4 => s.push('\u{10FFFF}'),
                5 => s.push_str("\\u0041"), // literal backslash-u text, not an escape
                6 => s.push('\u{7f}'),
                7 => s.push(char::from_u32(0xD7FF).unwrap()), // last pre-surrogate BMP
                8 => s.push('\u{E000}'),                      // first post-surrogate BMP
                _ => {
                    // A random valid scalar: skip the surrogate gap.
                    let raw = rng.below(0x110000 - 0x800) as u32;
                    let code = if raw >= 0xD800 { raw + 0x800 } else { raw };
                    s.push(char::from_u32(code).expect("gap skipped"));
                }
            }
        }
        s
    }

    #[test]
    fn adversarial_strings_round_trip_through_write_then_parse() {
        let mut rng = anet_graph::rng::Rng::seed(0x1057_AB1E);
        for len in 0..64usize {
            let s = adversarial_string(&mut rng, len);
            let value = Json::str(s.clone());
            let compact = value.render();
            assert_eq!(
                Json::parse(&compact).unwrap(),
                value,
                "len {len}: {compact:?}"
            );
            let pretty = Json::Object(vec![(s.clone(), value.clone())]).render_pretty();
            assert_eq!(
                Json::parse(&pretty).unwrap(),
                Json::Object(vec![(s, value)]),
                "len {len} as key"
            );
        }
    }

    #[test]
    fn containers_round_trip_and_preserve_order() {
        let value = Json::Object(vec![
            ("b".into(), Json::Int(1)),
            ("a".into(), Json::Array(vec![Json::Null, Json::Bool(true)])),
            (
                "nested".into(),
                Json::Object(vec![("x".into(), Json::Float(2.5))]),
            ),
            ("empty_arr".into(), Json::Array(vec![])),
            ("empty_obj".into(), Json::Object(vec![])),
        ]);
        round_trips(value.clone());
        // Order preserved through parse.
        if let Json::Object(fields) = Json::parse(&value.render()).unwrap() {
            assert_eq!(fields[0].0, "b");
            assert_eq!(fields[1].0, "a");
        } else {
            panic!("expected object");
        }
    }

    #[test]
    fn accessors_work() {
        let value = Json::Object(vec![
            ("n".into(), Json::Int(7)),
            ("name".into(), Json::str("x")),
            ("items".into(), Json::Array(vec![Json::Int(1)])),
        ]);
        assert_eq!(value.get("n").and_then(Json::as_int), Some(7));
        assert_eq!(value.get("name").and_then(Json::as_str), Some("x"));
        assert_eq!(
            value.get("items").and_then(Json::as_array).unwrap().len(),
            1
        );
        assert_eq!(value.get("missing"), None);
        assert_eq!(Json::opt_count(None), Json::Null);
        assert_eq!(Json::opt_count(Some(3)), Json::Int(3));
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn float_without_fraction_still_parses_as_float() {
        let rendered = Json::Float(3.0).render();
        assert_eq!(
            Json::parse(&rendered).unwrap(),
            Json::Float(3.0),
            "{rendered}"
        );
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "[1],",
            "nul",
            "{\"a\":1,}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }
}
