//! Minimum-time, map-based algorithms for all four tasks.
//!
//! The election index `ψ_Z(G)` is defined with respect to algorithms that know a map
//! of `G` (an isomorphic copy with all port numbers). This module provides the
//! canonical such algorithms: precompute, from the map, the minimum depth `h`, a
//! leader with a unique view at depth `h`, and a per-view-class output assignment that
//! satisfies the task; then every node elects/outputs by matching its own `B^h(v)`
//! against the map. The per-class assignments come from `anet-views`
//! ([`anet_views::election_index`]), so the number of rounds used is exactly `ψ_Z(G)`.
//!
//! These algorithms serve two purposes in the reproduction: they are the baseline that
//! *defines* minimum time in experiment E1, and they realise the upper-bound halves of
//! Lemmas 2.7 / 3.9 / 4.9 on arbitrary (small) feasible graphs.

use crate::tasks::{NodeOutput, Task};
use anet_graph::PortGraph;
use anet_sim::Backend;
use anet_views::election_index::{
    cppe_assignment_with, pe_assignment_with, ppe_assignment_with, IndexError,
};
use anet_views::{
    InternerHandle, QuotientSearch, Refinement, SearchStats, SharedViewInterner, View,
};
use std::collections::HashMap;

/// Result of a map-based run.
#[derive(Debug, Clone)]
pub struct MapRun {
    /// Rounds used (= the election index of the task on this graph).
    pub rounds: usize,
    /// Per-node outputs.
    pub outputs: Vec<NodeOutput>,
    /// Messages delivered by the underlying full-information simulation.
    pub messages_delivered: usize,
    /// Cost counters of the map-side assignment search (classes expanded by the
    /// quotient BFS, candidate paths explored). Zero for algorithms that read the
    /// assignment off the map analytically instead of searching for it.
    pub search: SearchStats,
    /// Per-round / per-edge bits actually put on the wire, when the run went
    /// through the metered transport (an explicit codec request or a
    /// [`Backend::Capped`] backend). `None` for the zero-serialisation fast path
    /// and for analytic solvers that never simulate.
    pub wire: Option<anet_sim::WireStats>,
}

/// Errors of the map-based solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapSolveError {
    /// The task is not solvable on this graph at any time bound (infeasible graph).
    Unsolvable(Task),
    /// The simple-path enumeration budget was exhausted (PPE / CPPE on large graphs).
    Budget(IndexError),
}

impl std::fmt::Display for MapSolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapSolveError::Unsolvable(task) => {
                write!(
                    f,
                    "task {task} is unsolvable on this graph (even knowing the map)"
                )
            }
            MapSolveError::Budget(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MapSolveError {}

impl From<IndexError> for MapSolveError {
    fn from(e: IndexError) -> Self {
        MapSolveError::Budget(e)
    }
}

/// Solve `task` on `graph` in minimum time, assuming every node knows the map.
/// `max_paths` bounds the simple-path enumeration used for PPE / CPPE.
///
/// Convenience wrapper over [`solve_with_map_on`] with the sequential backend.
pub fn solve_with_map(
    graph: &PortGraph,
    task: Task,
    max_paths: usize,
) -> Result<MapRun, MapSolveError> {
    solve_with_map_on(graph, task, max_paths, Backend::Sequential)
}

/// [`solve_with_map`] on an explicit execution [`Backend`]: the full-information
/// simulation that realises the decision function runs on the chosen backend. Outputs,
/// rounds and message accounting are backend-independent.
pub fn solve_with_map_on(
    graph: &PortGraph,
    task: Task,
    max_paths: usize,
    backend: Backend,
) -> Result<MapRun, MapSolveError> {
    solve_with_map_shared(graph, task, max_paths, backend, None)
}

/// [`solve_with_map_on`] with an optional process-wide [`SharedViewInterner`]: when
/// given, the map-side `build_all` pass and the per-run canonicalization intern
/// through the shared table (via a per-run [`InternerHandle`] memo) instead of a
/// run-private [`anet_views::ViewInterner`]. Concurrent runs on isomorphic or
/// overlapping graph families then dedup their view DAGs against each other — the
/// cross-tenant sharing the election service measures as its interner hit-rate.
/// Outputs are identical either way; only allocation sharing changes.
pub fn solve_with_map_shared(
    graph: &PortGraph,
    task: Task,
    max_paths: usize,
    backend: Backend,
    shared: Option<&SharedViewInterner>,
) -> Result<MapRun, MapSolveError> {
    solve_with_map_traced(
        graph,
        task,
        max_paths,
        backend,
        shared,
        &anet_trace::NoopSink,
    )
}

/// [`solve_with_map_shared`] with a trace probe: the full-information simulation that
/// realises the decision function emits round-level [`anet_trace::TraceEvent`]s into
/// `sink` (the map-side precomputation is not simulated and therefore not traced).
/// With [`anet_trace::NoopSink`] this *is* `solve_with_map_shared`.
pub fn solve_with_map_traced(
    graph: &PortGraph,
    task: Task,
    max_paths: usize,
    backend: Backend,
    shared: Option<&SharedViewInterner>,
    sink: &dyn anet_trace::TraceSink,
) -> Result<MapRun, MapSolveError> {
    solve_with_map_wired(graph, task, max_paths, backend, shared, sink, None)
}

/// [`solve_with_map_traced`] with an optional wire codec: when `wire` is `Some`
/// (or the backend is [`Backend::Capped`], which is only meaningful when bits are
/// counted), the full-information simulation serialises every message through the
/// metered transport and the returned [`MapRun`] carries the resulting
/// [`anet_sim::WireStats`]. With `wire = None` on an ordinary backend this *is*
/// `solve_with_map_traced`: same outputs, same message accounting, no bit meter.
pub fn solve_with_map_wired(
    graph: &PortGraph,
    task: Task,
    max_paths: usize,
    backend: Backend,
    shared: Option<&SharedViewInterner>,
    sink: &dyn anet_trace::TraceSink,
    wire: Option<anet_sim::MessageCodec>,
) -> Result<MapRun, MapSolveError> {
    let refinement = Refinement::compute(graph, None);
    // One quotient search serves every (depth, leader) attempt: the class quotient
    // is cached per depth and the leader BFS per leader, so walking many candidate
    // leaders at one depth re-prepares in O(1) amortised instead of re-enumerating.
    let mut search = QuotientSearch::new(graph, &refinement);

    // Find the minimum depth and a per-node output assignment computed from the map.
    let mut chosen: Option<(usize, Vec<NodeOutput>)> = None;
    'depths: for h in 0..=refinement.stable_depth() {
        for leader in refinement.unique_nodes_at(h) {
            let outputs = match task {
                Task::Selection => Some(
                    graph
                        .nodes()
                        .map(|v| {
                            if v == leader {
                                NodeOutput::Leader
                            } else {
                                NodeOutput::NonLeader
                            }
                        })
                        .collect::<Vec<_>>(),
                ),
                Task::PortElection => {
                    pe_assignment_with(&mut search, h, leader).map(|assignment| {
                        graph
                            .nodes()
                            .map(|v| match assignment[v as usize] {
                                None => NodeOutput::Leader,
                                Some(p) => NodeOutput::FirstPort(p),
                            })
                            .collect()
                    })
                }
                Task::PortPathElection => ppe_assignment_with(&mut search, h, leader, max_paths)?
                    .map(|assignment| {
                        graph
                            .nodes()
                            .map(|v| match &assignment[v as usize] {
                                None => NodeOutput::Leader,
                                Some(seq) => NodeOutput::PortPath(seq.clone()),
                            })
                            .collect()
                    }),
                Task::CompletePortPathElection => {
                    cppe_assignment_with(&mut search, h, leader, max_paths)?.map(|assignment| {
                        graph
                            .nodes()
                            .map(|v| match &assignment[v as usize] {
                                None => NodeOutput::Leader,
                                Some(seq) => NodeOutput::FullPath(seq.clone()),
                            })
                            .collect()
                    })
                }
            };
            if let Some(outputs) = outputs {
                chosen = Some((h, outputs));
                break 'depths;
            }
        }
    }

    let (rounds, per_node) = chosen.ok_or(MapSolveError::Unsolvable(task))?;

    // Turn the per-node assignment into a genuine view-function and run it through the
    // simulator: the assignment is constant on view classes by construction, so the
    // map from view (at depth `rounds`) to output is well-defined. The map side is one
    // shared `build_all` pass (hash-consed handles). Collected views are canonicalized
    // through the *same* interner before lookup: interning costs the view's distinct
    // nodes (the collector's output is a shared DAG), after which the table hit is
    // pointer-equal — without this, a positive equality check would walk the full
    // unfolded Θ(Δ^rounds) tree, since collector- and map-built views share no Arcs.
    let mut interner = match shared {
        Some(table) => InternerHandle::shared(table),
        None => InternerHandle::own(),
    };
    let views = interner.build_all(graph, rounds);
    let mut by_view: HashMap<View, NodeOutput> = HashMap::new();
    for v in graph.nodes() {
        by_view.insert(views[v as usize].clone(), per_node[v as usize].clone());
    }
    // The decision map is applied sequentially after the communication phase, so a
    // RefCell suffices for the interner handle's interior mutability.
    let interner = std::cell::RefCell::new(interner);
    let decide = |view: &View| {
        let canonical = interner.borrow_mut().intern(view);
        by_view
            .get(&canonical)
            .cloned()
            .expect("every view observed in the run appears in the map")
    };
    // A bandwidth-capped backend is only meaningful with bits on the wire, so it
    // forces metering (under the default codec) even without an explicit request.
    let codec = wire.or_else(|| {
        matches!(backend, Backend::Capped { .. }).then(anet_sim::MessageCodec::default)
    });
    let (outputs, report, wire_stats) = match codec {
        Some(codec) => {
            let (outputs, report, stats) =
                anet_sim::run_full_information_metered(graph, rounds, backend, codec, sink, decide);
            (outputs, report, Some(stats))
        }
        None => {
            let (outputs, report) =
                anet_sim::run_full_information_traced(graph, rounds, backend, sink, decide);
            (outputs, report, None)
        }
    };

    // `report.rounds` equals the logical depth on every ordinary backend; under
    // `Backend::Capped` the simulator streams large views across several physical
    // rounds and reports the inflated physical count — which is the round number
    // the CONGEST-style accounting is about, so it is what MapRun carries.
    Ok(MapRun {
        rounds: report.rounds,
        outputs,
        messages_delivered: report.messages_delivered,
        search: search.stats(),
        wire: wire_stats,
    })
}

/// The minimum election time of every task on a graph, computed by actually running
/// the map-based algorithms (used by experiment E1 to cross-check the election
/// indices computed combinatorially in `anet-views`).
pub fn measured_indices(
    graph: &PortGraph,
    max_paths: usize,
) -> Result<[Option<usize>; 4], MapSolveError> {
    let mut out = [None, None, None, None];
    for (slot, task) in Task::ALL.iter().enumerate() {
        out[slot] = match solve_with_map(graph, *task, max_paths) {
            Ok(run) => Some(run.rounds),
            Err(MapSolveError::Unsolvable(_)) => None,
            Err(e @ MapSolveError::Budget(_)) => return Err(e),
        };
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::verify;
    use anet_graph::generators;
    use anet_views::election_index;

    fn check_all_tasks(graph: &PortGraph) {
        for task in Task::ALL {
            match solve_with_map(graph, task, 20_000) {
                Ok(run) => {
                    verify(task, graph, &run.outputs)
                        .unwrap_or_else(|e| panic!("{task} outputs invalid: {e}"));
                    // The number of rounds equals the election index computed
                    // combinatorially.
                    let expected = match task {
                        Task::Selection => election_index::psi_s(graph),
                        Task::PortElection => election_index::psi_pe(graph),
                        Task::PortPathElection => election_index::psi_ppe(graph, 20_000).unwrap(),
                        Task::CompletePortPathElection => {
                            election_index::psi_cppe(graph, 20_000).unwrap()
                        }
                    };
                    assert_eq!(Some(run.rounds), expected, "{task}");
                }
                Err(MapSolveError::Unsolvable(_)) => {
                    // Then the combinatorial index must also be undefined.
                    let expected = match task {
                        Task::Selection => election_index::psi_s(graph),
                        Task::PortElection => election_index::psi_pe(graph),
                        Task::PortPathElection => election_index::psi_ppe(graph, 20_000).unwrap(),
                        Task::CompletePortPathElection => {
                            election_index::psi_cppe(graph, 20_000).unwrap()
                        }
                    };
                    assert_eq!(expected, None, "{task}");
                }
                Err(e) => panic!("unexpected budget error: {e}"),
            }
        }
    }

    #[test]
    fn solves_every_task_on_the_paper_line() {
        let g = generators::paper_three_node_line();
        check_all_tasks(&g);
        // The paper quotes ψ_CPPE = 1 for this graph.
        let run = solve_with_map(&g, Task::CompletePortPathElection, 100).unwrap();
        assert_eq!(run.rounds, 1);
    }

    #[test]
    fn solves_every_task_on_feasible_rings_and_stars() {
        check_all_tasks(&generators::star(4).unwrap());
        check_all_tasks(&generators::oriented_ring(&[true, true, false, true, false]).unwrap());
    }

    #[test]
    fn reports_unsolvable_on_symmetric_graphs() {
        let g = generators::symmetric_ring(5).unwrap();
        for task in Task::ALL {
            assert_eq!(
                solve_with_map(&g, task, 100).unwrap_err(),
                MapSolveError::Unsolvable(task)
            );
        }
        assert_eq!(measured_indices(&g, 100).unwrap(), [None; 4]);
    }

    #[test]
    fn measured_indices_satisfy_fact_1_1_on_random_graphs() {
        for seed in 0..6u64 {
            let g = generators::random_connected(10, 4, 3, seed).unwrap();
            let [s, pe, ppe, cppe] = measured_indices(&g, 20_000).unwrap();
            let key = |x: Option<usize>| x.unwrap_or(usize::MAX);
            assert!(key(cppe) >= key(ppe), "seed {seed}");
            assert!(key(ppe) >= key(pe), "seed {seed}");
            assert!(key(pe) >= key(s), "seed {seed}");
        }
    }

    #[test]
    fn map_run_reports_simulation_cost() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        let run = solve_with_map(&g, Task::Selection, 100).unwrap();
        assert_eq!(
            run.messages_delivered,
            2 * g.num_edges() * run.rounds,
            "full-information flooding sends on every edge in both directions each round"
        );
    }
}
