//! The algorithms-with-advice framework.
//!
//! Following the paper (Section 1), information is provided to all nodes at the start
//! by an *oracle* knowing the entire network, in the form of a single binary string —
//! the same string at every node. The length of the string is the **size of advice**.
//! A deterministic algorithm with allotted time `r` is then a function mapping the
//! pair (advice, `B^r(v)`) to the node's output: the augmented truncated view is
//! everything a node can learn in `r` rounds.
//!
//! [`run_with_advice_on`] executes an (oracle, algorithm) pair end to end: the oracle
//! inspects the graph, the number of rounds is derived from the advice (the paper's
//! algorithms all do this — e.g. the Theorem 2.2 algorithm reads the height of the
//! encoded view), the LOCAL simulator's full-information collector gathers `B^r(v)` at
//! every node, and the algorithm's decision function produces the outputs.
//!
//! ```
//! use anet_election::advice::{run_with_advice_on, FnAlgorithm, FnOracle};
//! use anet_election::tasks::NodeOutput;
//! use anet_sim::Backend;
//! use anet_views::{BitString, View};
//!
//! // "The leader is the node that sees degree 4 at its own position" — a 0-round,
//! // 0-bit pair that solves Selection on any star.
//! let g = anet_graph::generators::star(4).unwrap();
//! let oracle = FnOracle(|_: &anet_graph::PortGraph| BitString::new());
//! let algo = FnAlgorithm {
//!     rounds: |_: &BitString| 0usize,
//!     decide: |_: &BitString, view: &View| {
//!         if view.degree() == 4 { NodeOutput::Leader } else { NodeOutput::NonLeader }
//!     },
//! };
//! let run = run_with_advice_on(&g, &oracle, &algo, Backend::Sequential);
//! assert_eq!(run.advice_bits(), 0);
//! assert_eq!(run.outputs.iter().filter(|o| **o == NodeOutput::Leader).count(), 1);
//! // Opaque advice carries no per-codec sizes (contrast the Theorem 2.2 oracle).
//! assert_eq!((run.advice_tree_bits, run.advice_dag_bits), (None, None));
//! ```

use crate::tasks::NodeOutput;
use anet_graph::PortGraph;
use anet_sim::Backend;
use anet_views::{BitString, View};

/// An oracle's advice together with its size under both view codecs.
///
/// The paper charges advice by its length in bits; when the advice is an encoded
/// view, the *same* view has two wire sizes — the unfolded-tree form
/// (`anet_views::encoding`, the paper's `O((Δ−1)^h log Δ)` accounting) and the
/// shared-DAG form (`anet_views::dag_encoding`, `O(distinct subtrees)`). Oracles
/// that encode views report both so reports and sweeps can show the collapse;
/// opaque advice carries `None` for both.
#[derive(Debug, Clone)]
pub struct OracleAdvice {
    /// The advice string actually broadcast to every node.
    pub bits: BitString,
    /// Size of the advice's view under the unfolded-tree codec, if it is one.
    pub tree_bits: Option<usize>,
    /// Size of the advice's view under the shared-DAG codec, if it is one.
    pub dag_bits: Option<usize>,
}

impl OracleAdvice {
    /// Advice that is not an encoded view (no per-codec sizes to report).
    pub fn opaque(bits: BitString) -> Self {
        OracleAdvice {
            bits,
            tree_bits: None,
            dag_bits: None,
        }
    }
}

/// An oracle: sees the whole network, produces one advice string for all nodes.
pub trait Oracle {
    /// Produce the advice for this graph.
    fn advise(&self, graph: &PortGraph) -> BitString;

    /// Produce the advice together with its size under both view codecs. The
    /// default wraps [`advise`](Oracle::advise) as opaque; oracles whose advice is
    /// an encoded view (e.g. the Theorem 2.2 `SelectionOracle`) override this to
    /// report tree-bits and dag-bits from one construction pass.
    fn advise_with_sizes(&self, graph: &PortGraph) -> OracleAdvice {
        OracleAdvice::opaque(self.advise(graph))
    }
}

/// A deterministic distributed algorithm with advice: every node runs the same code,
/// knowing only the advice string and its own augmented truncated view.
pub trait AdviceAlgorithm {
    /// How many communication rounds to run, as a function of the advice alone (all
    /// nodes must agree on this number without communicating).
    fn rounds(&self, advice: &BitString) -> usize;

    /// The node's output as a function of the advice and its view `B^rounds(v)`
    /// (a shared [`View`] handle — the collector hands every node the same subtree
    /// objects its neighbours assembled, so inspecting the view never copies it).
    fn decide(&self, advice: &BitString, view: &View) -> NodeOutput;
}

/// The result of running an (oracle, algorithm) pair on a graph.
#[derive(Debug, Clone)]
pub struct AdviceRun {
    /// The advice string produced by the oracle.
    pub advice: BitString,
    /// Size the advice's view takes under the tree codec, when the oracle reports it
    /// (see [`OracleAdvice`]).
    pub advice_tree_bits: Option<usize>,
    /// Size the advice's view takes under the shared-DAG codec, when reported.
    pub advice_dag_bits: Option<usize>,
    /// The number of rounds the algorithm ran.
    pub rounds: usize,
    /// Per-node outputs, indexed by node.
    pub outputs: Vec<NodeOutput>,
    /// Total messages delivered by the underlying full-information simulation.
    pub messages_delivered: usize,
    /// Per-round / per-edge bits put on the wire, when the simulation went through
    /// the metered transport (an explicit codec request or a capped backend).
    pub wire: Option<anet_sim::WireStats>,
}

impl AdviceRun {
    /// Size of advice in bits (the quantity every bound of the paper is about).
    pub fn advice_bits(&self) -> usize {
        self.advice.len()
    }
}

/// Execute `oracle` and `algorithm` on `graph` through the LOCAL simulator, on an
/// explicit execution [`Backend`]. The backend only changes how rounds are scheduled;
/// advice, outputs and message accounting are backend-independent.
pub fn run_with_advice_on<O, A>(
    graph: &PortGraph,
    oracle: &O,
    algorithm: &A,
    backend: Backend,
) -> AdviceRun
where
    O: Oracle,
    A: AdviceAlgorithm,
{
    run_with_advice_traced(graph, oracle, algorithm, backend, &anet_trace::NoopSink)
}

/// [`run_with_advice_on`] with a trace probe: the algorithm's view-collection rounds
/// emit round-level [`anet_trace::TraceEvent`]s into `sink` (the oracle runs before
/// any communication and is not traced). With [`anet_trace::NoopSink`] this *is*
/// `run_with_advice_on`.
pub fn run_with_advice_traced<O, A>(
    graph: &PortGraph,
    oracle: &O,
    algorithm: &A,
    backend: Backend,
    sink: &dyn anet_trace::TraceSink,
) -> AdviceRun
where
    O: Oracle,
    A: AdviceAlgorithm,
{
    run_with_advice_wired(graph, oracle, algorithm, backend, sink, None)
}

/// [`run_with_advice_traced`] with an optional wire codec: when `wire` is `Some`
/// (or the backend is [`anet_sim::Backend::Capped`], which is only meaningful when
/// bits are counted), the view-collection rounds serialise every message through
/// the metered transport and the returned [`AdviceRun`] carries the resulting
/// [`anet_sim::WireStats`]. With `wire = None` on an ordinary backend this *is*
/// `run_with_advice_traced`.
pub fn run_with_advice_wired<O, A>(
    graph: &PortGraph,
    oracle: &O,
    algorithm: &A,
    backend: Backend,
    sink: &dyn anet_trace::TraceSink,
    wire: Option<anet_sim::MessageCodec>,
) -> AdviceRun
where
    O: Oracle,
    A: AdviceAlgorithm,
{
    let OracleAdvice {
        bits: advice,
        tree_bits,
        dag_bits,
    } = oracle.advise_with_sizes(graph);
    let rounds = algorithm.rounds(&advice);
    let decide = |view: &View| algorithm.decide(&advice, view);
    // A bandwidth-capped backend is only meaningful with bits on the wire, so it
    // forces metering (under the default codec) even without an explicit request.
    let codec = wire.or_else(|| {
        matches!(backend, Backend::Capped { .. }).then(anet_sim::MessageCodec::default)
    });
    let (outputs, report, wire_stats) = match codec {
        Some(codec) => {
            let (outputs, report, stats) =
                anet_sim::run_full_information_metered(graph, rounds, backend, codec, sink, decide);
            (outputs, report, Some(stats))
        }
        None => {
            let (outputs, report) =
                anet_sim::run_full_information_traced(graph, rounds, backend, sink, decide);
            (outputs, report, None)
        }
    };
    AdviceRun {
        advice,
        advice_tree_bits: tree_bits,
        advice_dag_bits: dag_bits,
        // Identical to the advice-derived `rounds` on every ordinary backend;
        // under `Backend::Capped` the simulator reports the inflated physical
        // round count of the bandwidth-limited stream.
        rounds: report.rounds,
        outputs,
        messages_delivered: report.messages_delivered,
        wire: wire_stats,
    }
}

/// An oracle defined by a closure (handy in tests and experiments).
pub struct FnOracle<F>(pub F);

impl<F> Oracle for FnOracle<F>
where
    F: Fn(&PortGraph) -> BitString,
{
    fn advise(&self, graph: &PortGraph) -> BitString {
        (self.0)(graph)
    }
}

/// An advice algorithm defined by a pair of closures.
pub struct FnAlgorithm<R, D> {
    /// Rounds as a function of the advice.
    pub rounds: R,
    /// Decision as a function of (advice, view).
    pub decide: D,
}

impl<R, D> AdviceAlgorithm for FnAlgorithm<R, D>
where
    R: Fn(&BitString) -> usize,
    D: Fn(&BitString, &View) -> NodeOutput,
{
    fn rounds(&self, advice: &BitString) -> usize {
        (self.rounds)(advice)
    }

    fn decide(&self, advice: &BitString, view: &View) -> NodeOutput {
        (self.decide)(advice, view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{verify, Task};
    use anet_graph::generators;

    #[test]
    fn zero_advice_degree_based_selection_on_a_star() {
        // On a star, "I am the leader iff my degree is not 1" solves Selection in 0
        // rounds with 0 bits of advice.
        let g = generators::star(5).unwrap();
        let oracle = FnOracle(|_: &PortGraph| BitString::new());
        let algo = FnAlgorithm {
            rounds: |_: &BitString| 0usize,
            decide: |_: &BitString, view: &View| {
                if view.degree() != 1 {
                    NodeOutput::Leader
                } else {
                    NodeOutput::NonLeader
                }
            },
        };
        let run = run_with_advice_on(&g, &oracle, &algo, Backend::Sequential);
        assert_eq!(run.advice_bits(), 0);
        assert_eq!(run.rounds, 0);
        assert_eq!(run.messages_delivered, 0);
        assert_eq!(verify(Task::Selection, &g, &run.outputs).unwrap().leader, 0);
    }

    #[test]
    fn advice_controls_the_number_of_rounds() {
        let g = generators::symmetric_ring(6).unwrap();
        let oracle = FnOracle(|_: &PortGraph| {
            let mut b = BitString::new();
            b.push_uint(3, 4);
            b
        });
        let algo = FnAlgorithm {
            rounds: |advice: &BitString| advice.reader().read_uint(4).unwrap() as usize,
            decide: |_: &BitString, _: &View| NodeOutput::NonLeader,
        };
        let run = run_with_advice_on(&g, &oracle, &algo, Backend::Sequential);
        assert_eq!(run.rounds, 3);
        assert_eq!(run.advice_bits(), 4);
        // 6 nodes × 2 ports × 3 rounds messages.
        assert_eq!(run.messages_delivered, 36);
        // (Deliberately unsolvable: the ring is symmetric, so no leader can emerge.)
        assert!(verify(Task::Selection, &g, &run.outputs).is_err());
    }

    #[test]
    fn decisions_depend_only_on_views() {
        // Two nodes with equal views must produce equal outputs, whatever the
        // algorithm does — this is enforced structurally because `decide` only ever
        // sees the view. We check it by running on a graph with twin nodes.
        let g = generators::symmetric_ring(4).unwrap();
        let oracle = FnOracle(|_: &PortGraph| BitString::new());
        let algo = FnAlgorithm {
            rounds: |_: &BitString| 2usize,
            decide: |_: &BitString, view: &View| NodeOutput::FirstPort(view.degree() % 2),
        };
        let run = run_with_advice_on(&g, &oracle, &algo, Backend::Sequential);
        assert!(run.outputs.windows(2).all(|w| w[0] == w[1]));
    }
}
