//! The Port Election algorithm of Lemma 3.9.
//!
//! On every member `G_σ` of `U_{Δ,k}`, Port Election is solvable in `k` rounds when
//! every node knows a map of the graph. The algorithm partitions nodes by degree:
//!
//! * **medium** nodes (degree `Δ+2`) are exactly the cycle roots: each compares its
//!   `B^k` with the lexicographically smallest `B^k` among the map's cycle roots
//!   (`r_min`); the unique match outputs `leader`, the others output port `Δ+1` (the
//!   first port of the simple path around the cycle towards the leader);
//! * **heavy** nodes (degree `2Δ−1`) are the roots `r_{j,1,1}`, `r_{j,1,2}`: each finds
//!   a map node with the same `B^k` and outputs the first port of a simple path from
//!   that map node towards the cycle — well defined because its two candidates are the
//!   two twins `r_{j,1,1}` / `r_{j,1,2}`, at which the *same* ports were swapped;
//! * **light** nodes (all other degrees): output the first port of a shortest path in
//!   their own view towards a medium node if one is visible, otherwise towards a heavy
//!   node (one of the two is always within distance `k`).
//!
//! The decision of every node is a function of the map and of `B^k(v)` only, so the
//! algorithm is executed here exactly like every other algorithm in this crate:
//! through the full-information simulator, with a decision closure.

use crate::map_algorithms::MapRun;
use crate::tasks::NodeOutput;
use anet_graph::{GraphError, NodeId, PortGraph};
use anet_sim::Backend;
use anet_views::{View, ViewInterner};
use std::collections::HashMap;

/// Solve Port Election on a member of `U_{Δ,k}` in `k` rounds, given the map.
///
/// `graph` must be (port-isomorphic to) a member of `U_{Δ,k}`; `k` is the class
/// parameter (equal to `ψ_S = ψ_PE` of the graph, Lemma 3.9).
///
/// Convenience wrapper over [`solve_port_election_on_u_with`] with the sequential
/// backend.
pub fn solve_port_election_on_u(graph: &PortGraph, k: usize) -> Result<MapRun, GraphError> {
    solve_port_election_on_u_with(graph, k, Backend::Sequential)
}

/// [`solve_port_election_on_u`] on an explicit execution [`Backend`].
pub fn solve_port_election_on_u_with(
    graph: &PortGraph,
    k: usize,
    backend: Backend,
) -> Result<MapRun, GraphError> {
    solve_port_election_on_u_traced(graph, k, backend, &anet_trace::NoopSink)
}

/// [`solve_port_election_on_u_with`] with a trace probe: the `k` view-collection
/// rounds emit round-level [`anet_trace::TraceEvent`]s into `sink`. With
/// [`anet_trace::NoopSink`] this *is* `solve_port_election_on_u_with`.
pub fn solve_port_election_on_u_traced(
    graph: &PortGraph,
    k: usize,
    backend: Backend,
    sink: &dyn anet_trace::TraceSink,
) -> Result<MapRun, GraphError> {
    solve_port_election_on_u_wired(graph, k, backend, sink, None)
}

/// [`solve_port_election_on_u_traced`] with an optional wire codec: when `wire` is
/// `Some` (or the backend is [`Backend::Capped`], which is only meaningful when
/// bits are counted), the `k` view-collection rounds serialise every message
/// through the metered transport and the returned [`MapRun`] carries the
/// resulting [`anet_sim::WireStats`]. With `wire = None` on an ordinary backend
/// this *is* `solve_port_election_on_u_traced`.
pub fn solve_port_election_on_u_wired(
    graph: &PortGraph,
    k: usize,
    backend: Backend,
    sink: &dyn anet_trace::TraceSink,
    wire: Option<anet_sim::MessageCodec>,
) -> Result<MapRun, GraphError> {
    let max_deg = graph.max_degree();
    if max_deg < 7 || max_deg.is_multiple_of(2) {
        return Err(GraphError::invalid(
            "the map does not look like a member of U_{Δ,k} (maximum degree must be 2Δ−1 ≥ 7)",
        ));
    }
    let delta = max_deg.div_ceil(2);
    let medium_degree = delta + 2;
    let heavy_degree = 2 * delta - 1;

    // Pre-processing on the map (all of this is information every node can derive from
    // the map it was given).
    let medium_nodes: Vec<NodeId> = graph
        .nodes()
        .filter(|&v| graph.degree(v) == medium_degree)
        .collect();
    if medium_nodes.is_empty() {
        return Err(GraphError::invalid(
            "no cycle (degree Δ+2) nodes in the map",
        ));
    }
    // One shared pass builds every node's B^k (hash-consed, so on the highly
    // repetitive U members most subtrees collapse to one representative each).
    let mut interner = ViewInterner::new();
    let views = interner.build_all(graph, k);
    let r_min_view = medium_nodes
        .iter()
        .map(|&v| views[v as usize].clone())
        .min()
        .expect("non-empty");

    // Heavy nodes: view → first port of a simple path towards the closest medium node.
    // Keys are View handles: hashing is O(1) (precomputed structural hash) and a map
    // entry holds a refcount, not a token vector.
    let mut heavy_port: HashMap<View, u32> = HashMap::new();
    for v in graph.nodes().filter(|&v| graph.degree(v) == heavy_degree) {
        let port = first_port_towards_degree(graph, v, medium_degree)
            .ok_or_else(|| GraphError::invalid("a heavy node cannot reach the cycle in the map"))?;
        let view = views[v as usize].clone();
        if let Some(&existing) = heavy_port.get(&view) {
            // Lemma 3.9 (Claim 1): the only other node with this view is the twin
            // r_{j,1,2}, at which the same swap was applied, so the ports agree.
            debug_assert_eq!(existing, port, "twin heavy nodes must agree on the port");
        }
        heavy_port.insert(view, port);
    }

    // Canonicalize collected views through the same interner before comparing: the
    // intern walk costs the view's distinct (shared) nodes, after which the r_min
    // comparison and the heavy-port lookup are pointer-equal instead of unfolding
    // Θ(Δ^k) walk-tree nodes. Decisions are applied sequentially after the run, so a
    // RefCell provides the interior mutability.
    let interner = std::cell::RefCell::new(interner);
    let decide = move |view: &View| -> NodeOutput {
        let degree = view.degree() as usize;
        if degree == 1 {
            return NodeOutput::FirstPort(0);
        }
        if degree == medium_degree {
            let view = interner.borrow_mut().intern(view);
            return if view == r_min_view {
                NodeOutput::Leader
            } else {
                NodeOutput::FirstPort(delta as u32 + 1)
            };
        }
        if degree == heavy_degree {
            let view = interner.borrow_mut().intern(view);
            let port = heavy_port
                .get(&view)
                .copied()
                .expect("every heavy view appears in the map");
            return NodeOutput::FirstPort(port);
        }
        // Light node: head towards a visible medium node, else towards a heavy node.
        let path = view
            .shortest_path_to_degree(medium_degree as u32)
            .or_else(|| view.shortest_path_to_degree(heavy_degree as u32))
            .expect("Lemma 3.9: every light node sees a medium or heavy node within k");
        NodeOutput::FirstPort(
            *path
                .first()
                .expect("a light node is never itself medium or heavy"),
        )
    };

    // A bandwidth-capped backend is only meaningful with bits on the wire, so it
    // forces metering (under the default codec) even without an explicit request.
    let codec = wire.or_else(|| {
        matches!(backend, Backend::Capped { .. }).then(anet_sim::MessageCodec::default)
    });
    let (outputs, report, wire_stats) = match codec {
        Some(codec) => {
            let (outputs, report, stats) =
                anet_sim::run_full_information_metered(graph, k, backend, codec, sink, decide);
            (outputs, report, Some(stats))
        }
        None => {
            let (outputs, report) =
                anet_sim::run_full_information_traced(graph, k, backend, sink, decide);
            (outputs, report, None)
        }
    };
    Ok(MapRun {
        // `k` on every ordinary backend; the inflated physical count under
        // `Backend::Capped`, where large views stream across several rounds.
        rounds: report.rounds,
        outputs,
        messages_delivered: report.messages_delivered,
        // Lemma 3.9 reads the ports off the map's structure; no assignment search.
        search: anet_views::SearchStats::default(),
        wire: wire_stats,
    })
}

/// First port of a shortest path (ties broken by port order) from `v` to the nearest
/// node of the given degree in the map. Public because the advice-lower-bound witness
/// machinery reuses it to read off the unique correct answer at the heavy roots.
pub fn first_port_towards_degree(graph: &PortGraph, v: NodeId, degree: usize) -> Option<u32> {
    // BFS over nodes, remembering the first outgoing port of the path used to reach
    // each node.
    use std::collections::VecDeque;
    let mut first_port: Vec<Option<u32>> = vec![None; graph.num_nodes()];
    let mut visited = vec![false; graph.num_nodes()];
    visited[v as usize] = true;
    let mut queue = VecDeque::new();
    for (p, u, _) in graph.ports(v) {
        if graph.degree(u) == degree {
            return Some(p);
        }
        if !visited[u as usize] {
            visited[u as usize] = true;
            first_port[u as usize] = Some(p);
            queue.push_back(u);
        }
    }
    while let Some(x) = queue.pop_front() {
        for (_, u, _) in graph.ports(x) {
            if visited[u as usize] {
                continue;
            }
            visited[u as usize] = true;
            first_port[u as usize] = first_port[x as usize];
            if graph.degree(u) == degree {
                return first_port[u as usize];
            }
            queue.push_back(u);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{verify, weaken_outputs, Task};
    use anet_constructions::UClass;
    use anet_views::election_index::psi_s;

    #[test]
    fn solves_pe_in_exactly_k_rounds_on_u_members() {
        let class = UClass::new(4, 1).unwrap();
        for sigma in [
            vec![1u32; 9],
            vec![3u32; 9],
            vec![1, 2, 3, 1, 2, 3, 1, 2, 3],
        ] {
            let member = class.member(&sigma).unwrap();
            let g = &member.labeled.graph;
            let run = solve_port_election_on_u(g, class.k).unwrap();
            assert_eq!(run.rounds, class.k);
            let outcome = verify(Task::PortElection, g, &run.outputs)
                .unwrap_or_else(|e| panic!("σ = {sigma:?}: {e}"));
            // The leader is one of the cycle roots (Lemma 3.10).
            assert!(member.cycle_roots().contains(&outcome.leader));
            // Lemma 3.9: ψ_PE = ψ_S = k, so the map algorithm is time-optimal.
            assert_eq!(psi_s(g), Some(class.k));
        }
    }

    #[test]
    fn pe_solution_weakens_to_a_selection_solution() {
        let class = UClass::new(4, 1).unwrap();
        let member = class.member(&[2u32; 9]).unwrap();
        let g = &member.labeled.graph;
        let run = solve_port_election_on_u(g, class.k).unwrap();
        let s = weaken_outputs(&run.outputs, Task::Selection).unwrap();
        assert!(verify(Task::Selection, g, &s).is_ok());
    }

    #[test]
    fn rejects_maps_that_are_not_u_members() {
        let g = anet_graph::generators::star(3).unwrap();
        assert!(solve_port_election_on_u(&g, 1).is_err());
    }

    #[test]
    fn leader_is_deterministic_across_reruns() {
        let class = UClass::new(4, 1).unwrap();
        let member = class.member(&[1u32; 9]).unwrap();
        let g = &member.labeled.graph;
        let a = solve_port_election_on_u(g, class.k).unwrap();
        let b = solve_port_election_on_u(g, class.k).unwrap();
        assert_eq!(a.outputs, b.outputs);
    }
}
