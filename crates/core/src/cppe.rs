//! The Complete Port Path Election algorithm of Lemma 4.8.
//!
//! On every member `J_Y` of `J_{μ,k}`, CPPE is solvable in `k` rounds when every node
//! knows a map of the graph. The elected leader is `ρ_0`, the centre of gadget `Ĥ_0`.
//! After `k` rounds a node can see the whole `k`-th layer of the component it lives in
//! and therefore decode the gadget index `x` encoded there (Part 4 of the
//! construction); knowing the map it then outputs the full port sequence of a simple
//! path to `ρ_0`: first a path to `ρ_x` (spliced onto the pre-computed inter-centre
//! path `P_x` at their first common node, so the concatenation stays simple), then the
//! pre-computed paths `P_x, P_{x−1}, …, P_1` down to `ρ_0`.
//!
//! The implementation evaluates the paper's case analysis directly on the map (the
//! construction handles from [`anet_constructions::j_class::JMember`] play the role of
//! the map every node is given); correctness of the produced outputs is established by
//! the CPPE verifier in `tasks`, and time-optimality (`ψ_CPPE = k`, Lemma 4.9) by the
//! structural results verified in `anet-constructions` (no node has a unique view at
//! depth `k−1`).

use crate::map_algorithms::MapRun;
use crate::tasks::NodeOutput;
use anet_constructions::component::Side;
use anet_constructions::j_class::JMember;
use anet_graph::{GraphError, NodeId, Port, Result};
use std::collections::{HashMap, VecDeque};

/// Solve CPPE on a member of `J_{μ,k}` in `k = member`'s class parameter rounds,
/// given the map. Returns the per-node outputs (leader = `ρ_0`).
pub fn solve_cppe_on_j(member: &JMember, k: usize) -> Result<MapRun> {
    let graph = &member.labeled.graph;
    let count = member.num_gadgets();
    if count < 2 {
        return Err(GraphError::invalid("the chain has fewer than 2 gadgets"));
    }

    // Map every node to its gadget index (ρ nodes map to their own gadget).
    let mut gadget_of: Vec<usize> = vec![usize::MAX; graph.num_nodes()];
    for (i, gadget) in member.gadgets.iter().enumerate() {
        gadget_of[gadget.rho as usize] = i;
        for side in Side::ALL {
            for n in gadget.component(side).all_nodes() {
                gadget_of[n as usize] = i;
            }
        }
    }
    if gadget_of.contains(&usize::MAX) {
        return Err(GraphError::invalid("some node belongs to no gadget"));
    }

    // Pre-compute the inter-centre paths P_i : ρ_i → ρ_{i−1} (node sequences) and their
    // full port encodings σ_i.
    let mut paths: Vec<Vec<NodeId>> = Vec::with_capacity(count);
    let mut sigmas: Vec<Vec<(Port, Port)>> = Vec::with_capacity(count);
    paths.push(Vec::new()); // unused slot for i = 0
    sigmas.push(Vec::new());
    for i in 1..count {
        let p = graph.shortest_path(member.rho(i), member.rho(i - 1));
        sigmas.push(graph.full_ports_of_path(&p));
        paths.push(p);
    }
    // Suffix concatenations σ_x · σ_{x−1} · … · σ_1.
    let mut suffix: Vec<Vec<(Port, Port)>> = vec![Vec::new(); count];
    for x in 1..count {
        let mut s = sigmas[x].clone();
        s.extend_from_slice(&suffix[x - 1]);
        suffix[x] = s;
    }

    // Per-gadget membership sets of P_x, for the splicing step.
    let mut on_path: Vec<HashMap<NodeId, usize>> = vec![HashMap::new(); count];
    for x in 1..count {
        for (idx, &n) in paths[x].iter().enumerate() {
            on_path[x].insert(n, idx);
        }
    }

    let mut outputs: Vec<NodeOutput> = Vec::with_capacity(graph.num_nodes());
    for v in graph.nodes() {
        let x = gadget_of[v as usize];
        if v == member.rho(0) {
            outputs.push(NodeOutput::Leader);
            continue;
        }
        if v == member.rho(x) {
            outputs.push(NodeOutput::FullPath(suffix[x].clone()));
            continue;
        }
        // Path Q_x from v to ρ_x, restricted to gadget x (a shortest path never needs
        // to leave the gadget, and restricting keeps the final concatenation simple).
        let q = shortest_path_within(graph, v, member.rho(x), |n| gadget_of[n as usize] == x)
            .ok_or_else(|| GraphError::invalid("node cannot reach its gadget centre"))?;
        if x == 0 {
            outputs.push(NodeOutput::FullPath(graph.full_ports_of_path(&q)));
            continue;
        }
        // Splice onto P_x at the first common node u.
        let (cut, path_idx) = q
            .iter()
            .enumerate()
            .find_map(|(qi, n)| on_path[x].get(n).map(|&pi| (qi, pi)))
            .unwrap_or((q.len() - 1, 0));
        let s_x = graph.full_ports_of_path(&q[..=cut]);
        let t_x = graph.full_ports_of_path(&paths[x][path_idx..]);
        let mut full = s_x;
        full.extend(t_x);
        full.extend_from_slice(&suffix[x - 1]);
        outputs.push(NodeOutput::FullPath(full));
    }

    Ok(MapRun {
        rounds: k,
        outputs,
        // The paper's algorithm gathers B^k(v) by full-information flooding, costing
        // two messages per edge per round; the decision itself sends nothing more.
        messages_delivered: 2 * graph.num_edges() * k,
        // Lemma 4.8 splices pre-computed paths from the map; no assignment search.
        search: anet_views::SearchStats::default(),
        // Analytic solver: nothing is simulated, so nothing crosses a wire.
        wire: None,
    })
}

/// Shortest path from `from` to `to` visiting only nodes allowed by `keep`
/// (both endpoints must be allowed). BFS in port order, so deterministic.
fn shortest_path_within(
    graph: &anet_graph::PortGraph,
    from: NodeId,
    to: NodeId,
    keep: impl Fn(NodeId) -> bool,
) -> Option<Vec<NodeId>> {
    if !keep(from) || !keep(to) {
        return None;
    }
    let mut prev: Vec<Option<NodeId>> = vec![None; graph.num_nodes()];
    let mut seen = vec![false; graph.num_nodes()];
    seen[from as usize] = true;
    let mut queue = VecDeque::new();
    queue.push_back(from);
    while let Some(x) = queue.pop_front() {
        if x == to {
            let mut path = vec![to];
            let mut cur = to;
            while cur != from {
                cur = prev[cur as usize]?;
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for (_, u, _) in graph.ports(x) {
            if !keep(u) || seen[u as usize] {
                continue;
            }
            seen[u as usize] = true;
            prev[u as usize] = Some(x);
            queue.push_back(u);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{verify, weaken_outputs, Task};
    use anet_constructions::JClass;

    #[test]
    fn solves_cppe_on_a_capped_chain() {
        let class = JClass::new(2, 4).unwrap();
        let member = class.template(Some(5)).unwrap();
        let run = solve_cppe_on_j(&member, class.k).unwrap();
        assert_eq!(run.rounds, class.k);
        let outcome = verify(
            Task::CompletePortPathElection,
            &member.labeled.graph,
            &run.outputs,
        )
        .unwrap();
        assert_eq!(outcome.leader, member.rho(0));
    }

    #[test]
    fn cppe_solution_weakens_to_all_weaker_tasks_fact_1_1() {
        let class = JClass::new(2, 4).unwrap();
        let member = class.template(Some(3)).unwrap();
        let g = &member.labeled.graph;
        let run = solve_cppe_on_j(&member, class.k).unwrap();
        for task in [Task::PortPathElection, Task::PortElection, Task::Selection] {
            let weak = weaken_outputs(&run.outputs, task).unwrap();
            verify(task, g, &weak).unwrap_or_else(|e| panic!("{task}: {e}"));
        }
    }

    #[test]
    fn outputs_of_rho_nodes_follow_the_centre_chain() {
        let class = JClass::new(2, 4).unwrap();
        let member = class.template(Some(4)).unwrap();
        let g = &member.labeled.graph;
        let run = solve_cppe_on_j(&member, class.k).unwrap();
        // ρ_3's output path must pass through ρ_2 and ρ_1 before reaching ρ_0.
        if let NodeOutput::FullPath(pairs) = &run.outputs[member.rho(3) as usize] {
            let nodes = g.follow_full_ports(member.rho(3), pairs).unwrap();
            for i in (0..3).rev() {
                assert!(nodes.contains(&member.rho(i)), "missing rho{i}");
            }
            assert_eq!(*nodes.last().unwrap(), member.rho(0));
        } else {
            panic!("rho3 must output a full path");
        }
    }

    #[test]
    fn rejects_degenerate_chains() {
        let class = JClass::new(2, 4).unwrap();
        assert!(class.template(Some(1)).is_err());
    }
}
