//! Theorem 2.2: solving Selection in minimum time with `O((Δ−1)^{ψ_S} log Δ)` advice.
//!
//! The oracle picks, among the nodes whose augmented truncated view at depth
//! `ψ_S(G)` is unique, the one with the lexicographically smallest view, and encodes
//! that view as the advice. The distributed algorithm decodes the view, reads its
//! height `h = ψ_S(G)`, runs for `h` rounds, and outputs `leader` iff its own `B^h`
//! equals the decoded view. Correctness follows from Proposition 2.1: at depth
//! `ψ_S(G)` a unique-view node exists, and exactly one node's view matches the advice.

use crate::advice::{AdviceAlgorithm, AdviceRun, Oracle, OracleAdvice};
use crate::tasks::NodeOutput;
use anet_graph::PortGraph;
use anet_sim::Backend;
use anet_views::dag_encoding::encode_view_dag;
use anet_views::election_index::psi_s_with;
use anet_views::encoding::{encode_view_interned, tree_encoded_size_bits};
use anet_views::{BitString, Refinement, View, ViewCodec, ViewInterner};

/// The Theorem 2.2 oracle. The chosen view can be shipped under either
/// [`ViewCodec`]: the paper's unfolded-tree form (the default, `Θ((Δ−1)^ψ log Δ)`
/// bits) or the shared-DAG form (`O(distinct subtrees)` bits — on near-symmetric
/// graphs, exponentially smaller for the same information). Whatever codec ships,
/// [`Oracle::advise_with_sizes`] reports *both* sizes, so reports and sweeps can
/// show the gap.
#[derive(Debug, Clone, Copy, Default)]
pub struct SelectionOracle {
    /// The wire format of the encoded view (must match the algorithm's).
    pub codec: ViewCodec,
}

impl SelectionOracle {
    /// An oracle shipping the unfolded-tree encoding (the paper's accounting).
    pub fn tree() -> Self {
        SelectionOracle {
            codec: ViewCodec::Tree,
        }
    }

    /// An oracle shipping the shared-DAG encoding.
    pub fn dag() -> Self {
        SelectionOracle {
            codec: ViewCodec::Dag,
        }
    }
}

impl Oracle for SelectionOracle {
    fn advise(&self, graph: &PortGraph) -> BitString {
        self.advise_with_sizes(graph).bits
    }

    fn advise_with_sizes(&self, graph: &PortGraph) -> OracleAdvice {
        let refinement = Refinement::compute_until_unique(graph);
        let psi = psi_s_with(&refinement)
            .expect("Selection oracle requires a graph with finite Selection index");
        let candidates = refinement.unique_nodes_at(psi);
        debug_assert!(!candidates.is_empty());
        // Build the depth-ψ views of all nodes in one shared pass (O(n·ψ·Δ) handle
        // operations) and pick the lexicographically smallest candidate view.
        let views = ViewInterner::new().build_all(graph, psi);
        let chosen_view = candidates
            .into_iter()
            .map(|v| views[v as usize].clone())
            .min()
            .expect("at least one candidate");
        // The tree size comes from the closed form (O(distinct nodes)), so a
        // DAG-codec run never materialises the exponential unfolded encoding it
        // exists to avoid; the tree string itself is built only when it ships.
        let tree_bits = Some(tree_encoded_size_bits(&chosen_view, psi));
        let dag = encode_view_dag(&chosen_view, psi);
        let dag_bits = Some(dag.len());
        OracleAdvice {
            bits: match self.codec {
                ViewCodec::Tree => encode_view_interned(&chosen_view, psi),
                ViewCodec::Dag => dag,
            },
            tree_bits,
            dag_bits,
        }
    }
}

/// The Theorem 2.2 distributed algorithm. Its codec must match the oracle's — the
/// two wire formats are not self-describing relative to each other, exactly like
/// the (advice-derived) number of rounds the pair already agrees on.
#[derive(Debug, Clone, Copy, Default)]
pub struct SelectionAlgorithm {
    /// The wire format the advice is decoded with (must match the oracle's).
    pub codec: ViewCodec,
}

impl SelectionAlgorithm {
    /// The decoder side of [`SelectionOracle::tree`].
    pub fn tree() -> Self {
        SelectionAlgorithm {
            codec: ViewCodec::Tree,
        }
    }

    /// The decoder side of [`SelectionOracle::dag`].
    pub fn dag() -> Self {
        SelectionAlgorithm {
            codec: ViewCodec::Dag,
        }
    }
}

impl AdviceAlgorithm for SelectionAlgorithm {
    fn rounds(&self, advice: &BitString) -> usize {
        let (_, height) = self
            .codec
            .decode(advice)
            .expect("advice is an encoded view");
        height
    }

    fn decide(&self, advice: &BitString, view: &View) -> NodeOutput {
        let (target, _) = self
            .codec
            .decode(advice)
            .expect("advice is an encoded view");
        if *view == target {
            NodeOutput::Leader
        } else {
            NodeOutput::NonLeader
        }
    }
}

/// Convenience: run the Theorem 2.2 pair on a graph (sequential backend).
pub fn solve_selection_min_time(graph: &PortGraph) -> AdviceRun {
    solve_selection_min_time_on(graph, Backend::Sequential)
}

/// Run the Theorem 2.2 pair on a graph, on an explicit execution [`Backend`]
/// (tree-codec advice; see [`solve_selection_min_time_with`] for the codec axis).
pub fn solve_selection_min_time_on(graph: &PortGraph, backend: Backend) -> AdviceRun {
    solve_selection_min_time_with(graph, ViewCodec::Tree, backend)
}

/// Run the Theorem 2.2 pair shipping the encoded view under an explicit
/// [`ViewCodec`], on an explicit execution [`Backend`]. The decision function (and
/// hence the outputs) is codec-independent; only `advice_bits` changes.
pub fn solve_selection_min_time_with(
    graph: &PortGraph,
    codec: ViewCodec,
    backend: Backend,
) -> AdviceRun {
    crate::advice::run_with_advice_on(
        graph,
        &SelectionOracle { codec },
        &SelectionAlgorithm { codec },
        backend,
    )
}

/// The paper's bound on the advice used by this oracle, in bits (Theorem 2.2 statement
/// with explicit constants as implemented here): the encoded view has at most
/// `1 + Σ_{d≤ψ} Δ^d` tree nodes, each contributing one degree field, plus one far-port
/// field per tree edge, each of `⌈log₂(max(Δ, ψ)+1)⌉` bits, plus a 6-bit width header
/// and one height field. This is `O((Δ−1)^{ψ_S} log Δ)` for `Δ ≥ 3`.
pub fn selection_advice_upper_bound_bits(delta: usize, psi_s: usize) -> usize {
    let width = anet_views::BitString::width_for(delta.max(psi_s) as u64);
    let mut tree_nodes = 1usize;
    let mut level = 1usize;
    for _ in 0..psi_s {
        level = level.saturating_mul(delta);
        tree_nodes = tree_nodes.saturating_add(level);
    }
    6 + width * (1 + tree_nodes + (tree_nodes - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{verify, Task};
    use anet_graph::generators;
    use anet_views::election_index::psi_s;
    use anet_views::encoding::decode_view;

    fn check_on(graph: &PortGraph) {
        let expected_rounds = psi_s(graph).expect("graph must have finite ψ_S");
        let run = solve_selection_min_time(graph);
        assert_eq!(run.rounds, expected_rounds, "runs in exactly ψ_S rounds");
        let outcome = verify(Task::Selection, graph, &run.outputs).expect("solves Selection");
        // The elected leader is a node with a unique view at depth ψ_S.
        let refinement = Refinement::compute(graph, None);
        assert!(refinement.is_unique(outcome.leader, expected_rounds));
        // Advice within the upper bound.
        assert!(
            run.advice_bits()
                <= selection_advice_upper_bound_bits(graph.max_degree(), expected_rounds),
            "{} bits exceeds the bound",
            run.advice_bits()
        );
    }

    #[test]
    fn solves_selection_on_simple_graphs() {
        check_on(&generators::paper_three_node_line());
        check_on(&generators::star(4).unwrap());
        check_on(&generators::oriented_ring(&[true, true, false, true, false]).unwrap());
    }

    #[test]
    fn solves_selection_on_random_graphs() {
        let mut solved = 0;
        for seed in 0..10u64 {
            let g = generators::random_connected(16, 4, 6, seed).unwrap();
            if psi_s(&g).is_some() {
                check_on(&g);
                solved += 1;
            }
        }
        assert!(solved > 0, "at least some random graphs must be solvable");
    }

    #[test]
    fn oracle_picks_the_lexicographically_smallest_unique_view() {
        let g = generators::star(4).unwrap();
        let advice = SelectionOracle::tree().advise(&g);
        let (view, h) = decode_view(&advice).unwrap();
        assert_eq!(h, 0);
        // At depth 0 all five nodes are unique-or-not by degree: the centre (degree 4)
        // is the only unique one... actually the leaves all have degree 1 and are not
        // unique; the centre is. Its depth-0 view is just its degree.
        assert_eq!(view.degree, 4);
    }

    #[test]
    fn zero_round_case_uses_no_communication() {
        let g = generators::star(3).unwrap();
        let run = solve_selection_min_time(&g);
        assert_eq!(run.rounds, 0);
        assert_eq!(run.messages_delivered, 0);
        assert!(verify(Task::Selection, &g, &run.outputs).is_ok());
    }

    #[test]
    #[should_panic(expected = "finite Selection index")]
    fn oracle_panics_on_symmetric_graphs() {
        let g = generators::symmetric_ring(4).unwrap();
        SelectionOracle::tree().advise(&g);
    }

    #[test]
    fn dag_codec_pair_solves_with_identical_outputs_and_both_sizes_reported() {
        for seed in 0..6u64 {
            let g = generators::random_connected(16, 4, 6, seed).unwrap();
            if psi_s(&g).is_none() {
                continue;
            }
            let tree_run = solve_selection_min_time_with(&g, ViewCodec::Tree, Backend::Sequential);
            let dag_run = solve_selection_min_time_with(&g, ViewCodec::Dag, Backend::Sequential);
            // Same election, same rounds — only the wire form of the advice differs.
            assert_eq!(tree_run.outputs, dag_run.outputs);
            assert_eq!(tree_run.rounds, dag_run.rounds);
            assert!(verify(Task::Selection, &g, &dag_run.outputs).is_ok());
            // Both runs report both sizes, and each ships its own codec's size.
            assert_eq!(tree_run.advice_tree_bits, Some(tree_run.advice_bits()));
            assert_eq!(dag_run.advice_dag_bits, Some(dag_run.advice_bits()));
            assert_eq!(tree_run.advice_dag_bits, dag_run.advice_dag_bits);
            assert_eq!(tree_run.advice_tree_bits, dag_run.advice_tree_bits);
        }
    }

    #[test]
    fn upper_bound_is_monotone_in_depth() {
        let b0 = selection_advice_upper_bound_bits(4, 0);
        let b1 = selection_advice_upper_bound_bits(4, 1);
        let b2 = selection_advice_upper_bound_bits(4, 2);
        assert!(b0 < b1 && b1 < b2);
    }
}
