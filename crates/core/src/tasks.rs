//! The four election tasks, their outputs, verifiers and weakenings.
//!
//! * `S` (*Selection*): one node outputs `leader`, all others output `non-leader`.
//! * `PE` (*Port Election*): non-leaders output the first port of a simple path from
//!   themselves to the leader.
//! * `PPE` (*Port Path Election*): non-leaders output the sequence of outgoing ports
//!   `(p_1, …, p_ℓ)` of a simple path from themselves to the leader.
//! * `CPPE` (*Complete Port Path Election*): non-leaders output the full sequence
//!   `(p_1, q_1, …, p_ℓ, q_ℓ)` of both port numbers of every edge of such a path.
//!
//! Fact 1.1 (the election-index hierarchy) rests on the observation that a solution to
//! a stronger task can be transformed *locally and without communication* into a
//! solution of any weaker one; [`NodeOutput::weaken`] implements those transformations.

use anet_graph::{NodeId, Port, PortGraph};
use anet_views::paths;

/// The four shades of leader election, in increasing order of strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Task {
    /// `S` — Selection.
    Selection,
    /// `PE` — Port Election.
    PortElection,
    /// `PPE` — Port Path Election.
    PortPathElection,
    /// `CPPE` — Complete Port Path Election.
    CompletePortPathElection,
}

impl Task {
    /// All four tasks, weakest first.
    pub const ALL: [Task; 4] = [
        Task::Selection,
        Task::PortElection,
        Task::PortPathElection,
        Task::CompletePortPathElection,
    ];

    /// The paper's abbreviation (`S`, `PE`, `PPE`, `CPPE`).
    pub fn abbreviation(self) -> &'static str {
        match self {
            Task::Selection => "S",
            Task::PortElection => "PE",
            Task::PortPathElection => "PPE",
            Task::CompletePortPathElection => "CPPE",
        }
    }

    /// The next weaker task, if any.
    pub fn weaker(self) -> Option<Task> {
        match self {
            Task::Selection => None,
            Task::PortElection => Some(Task::Selection),
            Task::PortPathElection => Some(Task::PortElection),
            Task::CompletePortPathElection => Some(Task::PortPathElection),
        }
    }
}

impl std::fmt::Display for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.abbreviation())
    }
}

/// The output of a single node for one of the four tasks.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeOutput {
    /// The node declares itself the leader (any task).
    Leader,
    /// `S`: the node is not the leader.
    NonLeader,
    /// `PE`: the first port of a simple path to the leader.
    FirstPort(Port),
    /// `PPE`: the outgoing ports of a simple path to the leader.
    PortPath(Vec<Port>),
    /// `CPPE`: the (outgoing, incoming) port pairs of a simple path to the leader.
    FullPath(Vec<(Port, Port)>),
}

impl NodeOutput {
    /// Which task this output shape belongs to (Leader belongs to all of them).
    pub fn task(&self) -> Option<Task> {
        match self {
            NodeOutput::Leader => None,
            NodeOutput::NonLeader => Some(Task::Selection),
            NodeOutput::FirstPort(_) => Some(Task::PortElection),
            NodeOutput::PortPath(_) => Some(Task::PortPathElection),
            NodeOutput::FullPath(_) => Some(Task::CompletePortPathElection),
        }
    }

    /// The Fact 1.1 weakening: convert an output for a stronger task into an output for
    /// `target`. Returns `None` when the conversion is not defined (e.g. weakening a
    /// Selection output into a Port Election output).
    pub fn weaken(&self, target: Task) -> Option<NodeOutput> {
        if let NodeOutput::Leader = self {
            return Some(NodeOutput::Leader);
        }
        match (self, target) {
            // Anything weakens to Selection.
            (_, Task::Selection) => Some(NodeOutput::NonLeader),
            // CPPE → PPE: drop the incoming ports.
            (NodeOutput::FullPath(pairs), Task::PortPathElection) => Some(NodeOutput::PortPath(
                pairs.iter().map(|&(p, _)| p).collect(),
            )),
            // CPPE → PE and PPE → PE: keep the first outgoing port.
            (NodeOutput::FullPath(pairs), Task::PortElection) => {
                pairs.first().map(|&(p, _)| NodeOutput::FirstPort(p))
            }
            (NodeOutput::PortPath(ports), Task::PortElection) => {
                ports.first().map(|&p| NodeOutput::FirstPort(p))
            }
            // CPPE → CPPE, PPE → PPE, PE → PE.
            (out, t) if out.task() == Some(t) => Some(out.clone()),
            _ => None,
        }
    }
}

/// Why an output assignment fails to solve a task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The number of outputs does not match the number of nodes.
    WrongLength {
        /// Outputs provided.
        got: usize,
        /// Nodes in the graph.
        expected: usize,
    },
    /// No node output `Leader`.
    NoLeader,
    /// More than one node output `Leader`.
    MultipleLeaders {
        /// The offending nodes.
        leaders: Vec<NodeId>,
    },
    /// A node produced an output of the wrong shape for the task.
    WrongShape {
        /// The node.
        node: NodeId,
    },
    /// A non-leader output fails the task's path condition.
    InvalidPath {
        /// The node whose output is invalid.
        node: NodeId,
    },
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::WrongLength { got, expected } => {
                write!(f, "{got} outputs for {expected} nodes")
            }
            TaskError::NoLeader => write!(f, "no node elected itself leader"),
            TaskError::MultipleLeaders { leaders } => {
                write!(f, "multiple leaders: {leaders:?}")
            }
            TaskError::WrongShape { node } => {
                write!(f, "node {node} produced an output of the wrong shape")
            }
            TaskError::InvalidPath { node } => {
                write!(f, "node {node}'s output is not a valid path to the leader")
            }
        }
    }
}

impl std::error::Error for TaskError {}

/// A verified election outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElectionOutcome {
    /// The elected leader.
    pub leader: NodeId,
}

/// Verify that `outputs` (indexed by node) solve `task` on `graph`.
pub fn verify(
    task: Task,
    graph: &PortGraph,
    outputs: &[NodeOutput],
) -> Result<ElectionOutcome, TaskError> {
    if outputs.len() != graph.num_nodes() {
        return Err(TaskError::WrongLength {
            got: outputs.len(),
            expected: graph.num_nodes(),
        });
    }
    let leaders: Vec<NodeId> = graph
        .nodes()
        .filter(|&v| outputs[v as usize] == NodeOutput::Leader)
        .collect();
    let leader = match leaders.as_slice() {
        [] => return Err(TaskError::NoLeader),
        [single] => *single,
        _ => return Err(TaskError::MultipleLeaders { leaders }),
    };

    for v in graph.nodes() {
        if v == leader {
            continue;
        }
        let out = &outputs[v as usize];
        let ok = match (task, out) {
            (Task::Selection, NodeOutput::NonLeader) => true,
            (Task::PortElection, NodeOutput::FirstPort(p)) => {
                paths::pe_port_is_valid(graph, v, *p, leader)
            }
            (Task::PortPathElection, NodeOutput::PortPath(ports)) => {
                paths::ppe_sequence_is_valid(graph, v, ports, leader)
            }
            (Task::CompletePortPathElection, NodeOutput::FullPath(pairs)) => {
                paths::cppe_sequence_is_valid(graph, v, pairs, leader)
            }
            _ => return Err(TaskError::WrongShape { node: v }),
        };
        if !ok {
            return Err(TaskError::InvalidPath { node: v });
        }
    }
    Ok(ElectionOutcome { leader })
}

/// Weaken a full output assignment from a stronger task to `target` (Fact 1.1) —
/// returns `None` if any single output cannot be weakened.
pub fn weaken_outputs(outputs: &[NodeOutput], target: Task) -> Option<Vec<NodeOutput>> {
    outputs.iter().map(|o| o.weaken(target)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_graph::generators;

    fn line_outputs_cppe() -> (PortGraph, Vec<NodeOutput>) {
        // Leader = centre of the 3-node line.
        let g = generators::paper_three_node_line();
        let outs = vec![
            NodeOutput::FullPath(vec![(0, 0)]),
            NodeOutput::Leader,
            NodeOutput::FullPath(vec![(0, 1)]),
        ];
        (g, outs)
    }

    #[test]
    fn task_metadata() {
        assert_eq!(Task::Selection.abbreviation(), "S");
        assert_eq!(Task::CompletePortPathElection.to_string(), "CPPE");
        assert_eq!(Task::PortElection.weaker(), Some(Task::Selection));
        assert_eq!(Task::Selection.weaker(), None);
        assert_eq!(Task::ALL.len(), 4);
    }

    #[test]
    fn verify_selection() {
        let g = generators::paper_three_node_line();
        let good = vec![
            NodeOutput::NonLeader,
            NodeOutput::Leader,
            NodeOutput::NonLeader,
        ];
        assert_eq!(verify(Task::Selection, &g, &good).unwrap().leader, 1);

        let none = vec![NodeOutput::NonLeader; 3];
        assert_eq!(verify(Task::Selection, &g, &none), Err(TaskError::NoLeader));

        let two = vec![
            NodeOutput::Leader,
            NodeOutput::Leader,
            NodeOutput::NonLeader,
        ];
        assert!(matches!(
            verify(Task::Selection, &g, &two),
            Err(TaskError::MultipleLeaders { .. })
        ));

        let short = vec![NodeOutput::Leader];
        assert!(matches!(
            verify(Task::Selection, &g, &short),
            Err(TaskError::WrongLength { .. })
        ));
    }

    #[test]
    fn verify_port_election() {
        let g = generators::paper_three_node_line();
        let good = vec![
            NodeOutput::FirstPort(0),
            NodeOutput::Leader,
            NodeOutput::FirstPort(0),
        ];
        assert!(verify(Task::PortElection, &g, &good).is_ok());

        // Node 0 pointing at a nonexistent port is invalid.
        let bad = vec![
            NodeOutput::FirstPort(1),
            NodeOutput::Leader,
            NodeOutput::FirstPort(0),
        ];
        assert_eq!(
            verify(Task::PortElection, &g, &bad),
            Err(TaskError::InvalidPath { node: 0 })
        );

        // Selection-shaped output is the wrong shape for PE.
        let wrong = vec![
            NodeOutput::NonLeader,
            NodeOutput::Leader,
            NodeOutput::FirstPort(0),
        ];
        assert_eq!(
            verify(Task::PortElection, &g, &wrong),
            Err(TaskError::WrongShape { node: 0 })
        );
    }

    #[test]
    fn verify_ppe_and_cppe() {
        let (g, cppe) = line_outputs_cppe();
        assert_eq!(
            verify(Task::CompletePortPathElection, &g, &cppe)
                .unwrap()
                .leader,
            1
        );
        // Wrong incoming port at node 2.
        let bad = vec![
            NodeOutput::FullPath(vec![(0, 0)]),
            NodeOutput::Leader,
            NodeOutput::FullPath(vec![(0, 0)]),
        ];
        assert_eq!(
            verify(Task::CompletePortPathElection, &g, &bad),
            Err(TaskError::InvalidPath { node: 2 })
        );

        let ppe = vec![
            NodeOutput::PortPath(vec![0]),
            NodeOutput::Leader,
            NodeOutput::PortPath(vec![0]),
        ];
        assert!(verify(Task::PortPathElection, &g, &ppe).is_ok());
    }

    #[test]
    fn weakening_implements_fact_1_1() {
        let (g, cppe) = line_outputs_cppe();
        // CPPE → PPE → PE → S, each verified on the same graph.
        let ppe = weaken_outputs(&cppe, Task::PortPathElection).unwrap();
        assert!(verify(Task::PortPathElection, &g, &ppe).is_ok());
        let pe = weaken_outputs(&cppe, Task::PortElection).unwrap();
        assert!(verify(Task::PortElection, &g, &pe).is_ok());
        let s = weaken_outputs(&cppe, Task::Selection).unwrap();
        assert!(verify(Task::Selection, &g, &s).is_ok());
        // A PPE output weakens to PE and S but not to CPPE.
        let ppe_out = NodeOutput::PortPath(vec![0, 1]);
        assert_eq!(
            ppe_out.weaken(Task::PortElection),
            Some(NodeOutput::FirstPort(0))
        );
        assert_eq!(ppe_out.weaken(Task::CompletePortPathElection), None);
        // NonLeader cannot be strengthened.
        assert_eq!(NodeOutput::NonLeader.weaken(Task::PortElection), None);
        // Leader stays Leader under every weakening.
        assert_eq!(
            NodeOutput::Leader.weaken(Task::Selection),
            Some(NodeOutput::Leader)
        );
    }

    #[test]
    fn output_task_shapes() {
        assert_eq!(NodeOutput::Leader.task(), None);
        assert_eq!(NodeOutput::NonLeader.task(), Some(Task::Selection));
        assert_eq!(
            NodeOutput::FullPath(vec![]).task(),
            Some(Task::CompletePortPathElection)
        );
    }
}
