//! # anet-election — the four shades of deterministic leader election
//!
//! This crate is the paper's primary contribution turned into a library:
//!
//! * [`tasks`] — the four formulations of leader election in anonymous networks
//!   (`S`, `PE`, `PPE`, `CPPE`), their output types, their *verifiers*, and the
//!   output weakenings behind Fact 1.1;
//! * [`advice`] — the algorithms-with-advice framework: an [`advice::Oracle`] that sees
//!   the whole network and emits one binary string, an [`advice::AdviceAlgorithm`]
//!   executed identically at every node as a function of the advice and of the node's
//!   augmented truncated view, and a runner that executes the pair through the LOCAL
//!   simulator;
//! * [`selection`] — the Theorem 2.2 oracle/algorithm pair solving Selection in
//!   minimum time `ψ_S(G)` with `O((Δ−1)^{ψ_S} log Δ)` advice bits;
//! * [`map_algorithms`] — minimum-time map-based algorithms for all four tasks on
//!   arbitrary feasible graphs (the "knowing the map" baseline that defines the
//!   election indices);
//! * [`port_election`] — the Port Election algorithm of Lemma 3.9, solving `PE` in `k`
//!   rounds on every member of `U_{Δ,k}` given the map;
//! * [`cppe`] — the Complete Port Path Election algorithm of Lemma 4.8, solving `CPPE`
//!   in `k` rounds on every member of `J_{μ,k}` given the map;
//! * [`bounds`] — closed-form calculators for every advice bound stated in the paper
//!   (Theorems 2.2, 2.9, 3.11, 4.11, 4.12 and Facts 2.3, 3.1, 4.1, 4.2), used by the
//!   experiment binaries to print paper-vs-measured tables;
//! * [`engine`] — the **`ElectionEngine` facade**: one builder-style API
//!   (`Election::task(…).solver(…).backend(…).run(&graph)`) over the four shades, all
//!   of the solvers above, and all `anet-sim` execution backends, plus a
//!   [`engine::BatchRunner`] for sweeping configurations across graph families.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod advice;
pub mod bounds;
pub mod cppe;
pub mod engine;
pub mod lower_bound_witness;
pub mod map_algorithms;
pub mod port_election;
pub mod selection;
pub mod tasks;

pub use advice::{AdviceAlgorithm, AdviceRun, Oracle};
pub use engine::{
    AdviceSolver, Backend, BatchRow, BatchRunner, CppeSolver, Election, ElectionBuilder,
    ElectionReport, EngineError, MapSolver, PortElectionSolver, RunContext, Solver, SolverRun,
};
pub use tasks::{ElectionOutcome, NodeOutput, Task, TaskError};
