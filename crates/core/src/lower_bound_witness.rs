//! Measured advice lower bounds: pairwise *conflicts* between members of a class.
//!
//! The paper's lower bounds (Theorems 2.9, 3.11, 4.11/4.12) are pigeonhole arguments:
//! if two class members receive the same advice string, then some node — which has the
//! same augmented truncated view in both, by the indistinguishability lemmas — must
//! answer identically in both, but no single answer is correct for both. Two members
//! with that property cannot share an advice string; we call them **conflicting**.
//!
//! This module *measures* such conflicts on instantiated class members. If every pair
//! of the `N` instantiated members conflicts, every minimum-time algorithm needs at
//! least `N` distinct advice strings on this collection, i.e. at least `⌈log₂ N⌉`
//! advice bits on some member — a lower bound established by computation on the actual
//! graphs rather than quoted from the paper. (For the full, astronomically large
//! classes the paper's closed-form bounds of course remain the relevant figures; the
//! measured bound is their instantiated shadow and grows with the instantiated `N`
//! exactly as the theorems predict: `log₂ N = z·log₂(Δ−1)` for `G_{Δ,k}`, and
//! `|T_{Δ,k}|·log₂(Δ−1)` for `U_{Δ,k}`.)

use crate::engine::{Election, Solver};
use crate::port_election::first_port_towards_degree;
use crate::tasks::Task;
use anet_graph::PortGraph;
use anet_views::JointRefinement;

/// Can two graphs (with equal Selection index `k`) share one advice string for a
/// minimum-time Selection algorithm? Sharing is possible iff one can pick, in each
/// graph, a depth-`k` view class of multiplicity 1 to be "the leader's view" such that
/// the two picks are consistent: either they are the same view, or each pick's view
/// does not occur at all in the other graph (otherwise the algorithm would elect too
/// many or too few leaders in one of them).
pub fn selection_can_share_advice(ga: &PortGraph, gb: &PortGraph, k: usize) -> bool {
    let joint = JointRefinement::compute(&[ga, gb], Some(k));
    // Unique view classes (multiplicity counted per graph).
    let count_in = |graph_idx: usize, class: u32| -> usize {
        let g = if graph_idx == 0 { ga } else { gb };
        g.nodes()
            .filter(|&v| joint.class_at((graph_idx, v), k) == class)
            .count()
    };
    let unique_classes = |graph_idx: usize| -> Vec<u32> {
        let g = if graph_idx == 0 { ga } else { gb };
        let mut out: Vec<u32> = g
            .nodes()
            .map(|v| joint.class_at((graph_idx, v), k))
            .filter(|&c| count_in(graph_idx, c) == 1)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    };
    let ua = unique_classes(0);
    let ub = unique_classes(1);
    for &va in &ua {
        for &vb in &ub {
            if va == vb {
                return true;
            }
            if count_in(1, va) == 0 && count_in(0, vb) == 0 {
                return true;
            }
        }
    }
    false
}

/// Do two graphs *conflict* for minimum-time Selection (cannot share advice)?
pub fn selection_conflict(ga: &PortGraph, gb: &PortGraph, k: usize) -> bool {
    !selection_can_share_advice(ga, gb, k)
}

/// Result of a pairwise conflict census over a collection of class members.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictCensus {
    /// Number of members examined.
    pub members: usize,
    /// Number of unordered pairs that conflict.
    pub conflicting_pairs: usize,
    /// Total number of unordered pairs.
    pub total_pairs: usize,
}

impl ConflictCensus {
    /// Do *all* pairs conflict? In that case every member needs its own advice string.
    pub fn all_conflict(&self) -> bool {
        self.conflicting_pairs == self.total_pairs
    }

    /// The implied lower bound on the number of distinct advice strings needed for the
    /// examined collection. (When all pairs conflict this is the number of members;
    /// otherwise the clique number of the conflict graph would be needed, so we only
    /// report the trivially sound bound of 1.)
    pub fn min_advice_strings(&self) -> usize {
        if self.all_conflict() {
            self.members
        } else {
            1
        }
    }

    /// The implied lower bound on the advice size in bits, `⌈log₂(#strings)⌉`.
    pub fn min_advice_bits(&self) -> usize {
        let s = self.min_advice_strings();
        if s <= 1 {
            0
        } else {
            (usize::BITS - (s - 1).leading_zeros()) as usize
        }
    }
}

/// The shared pairwise loop behind every census: count unordered pairs on which the
/// given conflict predicate holds.
fn pairwise_census(
    members: &[&PortGraph],
    mut conflict: impl FnMut(&PortGraph, &PortGraph) -> bool,
) -> ConflictCensus {
    let n = members.len();
    let mut conflicting = 0usize;
    for a in 0..n {
        for b in (a + 1)..n {
            if conflict(members[a], members[b]) {
                conflicting += 1;
            }
        }
    }
    ConflictCensus {
        members: n,
        conflicting_pairs: conflicting,
        total_pairs: n * (n - 1) / 2,
    }
}

/// Pairwise Selection-conflict census over a collection of graphs that all have
/// Selection index `k`.
pub fn selection_conflict_census(members: &[&PortGraph], k: usize) -> ConflictCensus {
    pairwise_census(members, |a, b| selection_conflict(a, b, k))
}

/// A conflict census *paired with an actual solver run on every member*: the
/// combinatorial pigeonhole bound (how many advice strings are needed) next to what a
/// concrete [`Solver`] achieves on the same collection, both sides measured on the same
/// graphs.
///
/// This is the engine-facing form of the census: instead of reaching into a solver's
/// internals, the members are run through the [`Election`] facade, so *any* solver —
/// the Theorem 2.2 advice pair, the map baseline, or a custom oracle/algorithm pair —
/// can be placed next to the lower bound.
#[derive(Debug, Clone)]
pub struct SolverCensus {
    /// The pairwise combinatorial census (the measured lower bound).
    pub census: ConflictCensus,
    /// The task the members were run on.
    pub task: Task,
    /// Display name of the solver (taken from the first member's run).
    pub solver: String,
    /// Members the solver solved (verifier accepted the outputs).
    pub solved: usize,
    /// Members solved in exactly `k` rounds (i.e. in minimum time, for members with
    /// election index `k`).
    pub min_time: usize,
    /// Maximum advice bits the solver used over all members, if it is advice-based
    /// (`None` for map-based solvers, or if no member produced a report).
    pub max_advice_bits: Option<usize>,
    /// Maximum tree-codec size of the advice's encoded view over all members, when
    /// the oracle reports per-codec sizes.
    pub max_advice_tree_bits: Option<usize>,
    /// Maximum shared-DAG-codec size over all members, when reported — next to
    /// [`max_advice_tree_bits`](SolverCensus::max_advice_tree_bits) this shows how
    /// much of the measured advice is unfolding rather than information.
    pub max_advice_dag_bits: Option<usize>,
}

impl SolverCensus {
    /// Does the solver's measured advice usage respect the census lower bound?
    /// (Only meaningful for advice-based solvers that solved every member.)
    pub fn achieves_lower_bound(&self) -> bool {
        match self.max_advice_bits {
            Some(bits) => bits >= self.census.min_advice_bits(),
            None => false,
        }
    }
}

fn run_members_through_solver<F>(
    census: ConflictCensus,
    members: &[&PortGraph],
    k: usize,
    task: Task,
    mut make_solver: F,
) -> SolverCensus
where
    F: FnMut(usize) -> Box<dyn Solver>,
{
    let mut solver_name = String::new();
    let mut solved = 0usize;
    let mut min_time = 0usize;
    let mut max_advice_bits: Option<usize> = None;
    let mut max_advice_tree_bits: Option<usize> = None;
    let mut max_advice_dag_bits: Option<usize> = None;
    let fold = |acc: &mut Option<usize>, bits: Option<usize>| {
        if let Some(bits) = bits {
            *acc = Some(acc.unwrap_or(0).max(bits));
        }
    };
    for (i, g) in members.iter().enumerate() {
        let report = Election::task(task).solver_boxed(make_solver(i)).run(g);
        if let Ok(report) = report {
            if solver_name.is_empty() {
                solver_name = report.solver.clone();
            }
            if report.solved() {
                solved += 1;
                if report.rounds == k {
                    min_time += 1;
                }
            }
            fold(&mut max_advice_bits, report.advice_bits);
            fold(&mut max_advice_tree_bits, report.advice_tree_bits);
            fold(&mut max_advice_dag_bits, report.advice_dag_bits);
        }
    }
    SolverCensus {
        census,
        task,
        solver: solver_name,
        solved,
        min_time,
        max_advice_bits,
        max_advice_tree_bits,
        max_advice_dag_bits,
    }
}

/// The Selection conflict census over `members` (all of Selection index `k`), with
/// every member additionally run through `make_solver(member_index)` on the
/// [`Election`] facade. See [`SolverCensus`].
pub fn selection_census_with_solver<F>(
    members: &[&PortGraph],
    k: usize,
    make_solver: F,
) -> SolverCensus
where
    F: FnMut(usize) -> Box<dyn Solver>,
{
    let census = selection_conflict_census(members, k);
    run_members_through_solver(census, members, k, Task::Selection, make_solver)
}

/// Pairwise Port-Election conflict census over members of `U_{Δ,k}`, with every member
/// run through `make_solver(member_index)` on the [`Election`] facade (typically the
/// Lemma 3.9 [`PortElectionSolver`](crate::engine::PortElectionSolver), but any
/// [`Solver`] fits). See [`SolverCensus`].
pub fn pe_census_on_u_with_solver<F>(
    members: &[&PortGraph],
    k: usize,
    make_solver: F,
) -> SolverCensus
where
    F: FnMut(usize) -> Box<dyn Solver>,
{
    let census = pairwise_census(members, |a, b| pe_conflict_on_u(a, b, k));
    run_members_through_solver(census, members, k, Task::PortElection, make_solver)
}

/// Do two members of `U_{Δ,k}` conflict for minimum-time Port Election?
///
/// Witness used (the one from the proof of Theorem 3.11): a heavy root `r_{j,1,1}`
/// whose depth-`k` views are equal in the two graphs but whose unique correct first
/// port differs. The port is forced because the connecting path to the cycle is a cut
/// edge: every simple path from the heavy root to *any* admissible leader (a cycle
/// root, by Lemma 3.10) starts with it, and the Part 5 swap moves it to port
/// `Δ−1+s_j`. The function detects the conflict from the graphs alone: it compares,
/// for every pair of nodes of degree `2Δ−1` with equal views, the first port of the
/// BFS path towards the nearest degree-`Δ+2` node.
pub fn pe_conflict_on_u(ga: &PortGraph, gb: &PortGraph, k: usize) -> bool {
    let max_deg = ga.max_degree();
    if max_deg != gb.max_degree() || max_deg < 7 || max_deg.is_multiple_of(2) {
        return false;
    }
    let delta = max_deg.div_ceil(2);
    let heavy = 2 * delta - 1;
    let medium = delta + 2;
    let joint = JointRefinement::compute(&[ga, gb], Some(k));
    for va in ga.nodes().filter(|&v| ga.degree(v) == heavy) {
        for vb in gb.nodes().filter(|&v| gb.degree(v) == heavy) {
            if !joint.same_view((0, va), (1, vb), k) {
                continue;
            }
            let pa = first_port_towards_degree(ga, va, medium);
            let pb = first_port_towards_degree(gb, vb, medium);
            if let (Some(pa), Some(pb)) = (pa, pb) {
                if pa != pb {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_constructions::{GClass, UClass};
    use anet_graph::generators;

    #[test]
    fn identical_graphs_can_share_advice() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        assert!(selection_can_share_advice(&g, &g, 1));
        assert!(!selection_conflict(&g, &g, 1));
    }

    #[test]
    fn unrelated_graphs_can_usually_share_advice() {
        // A star and a feasible ring have disjoint view spaces at depth 1, so one
        // advice string (one decision function) can serve both.
        let a = generators::star(4).unwrap();
        let b = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        assert!(selection_can_share_advice(&a, &b, 1));
    }

    #[test]
    fn all_pairs_of_g_4_1_conflict_theorem_2_9_measured() {
        // The measured form of Theorem 2.9 on the fully instantiated class G_{4,1}:
        // every pair of the 9 members conflicts, so a minimum-time Selection algorithm
        // needs 9 distinct advice strings, i.e. ≥ ⌈log₂ 9⌉ = 4 bits, on this class.
        let class = GClass::new(4, 1).unwrap();
        let members: Vec<_> = (1..=class.size().unwrap())
            .map(|i| class.member(i).unwrap().labeled.graph)
            .collect();
        let refs: Vec<&PortGraph> = members.iter().collect();
        let census = selection_conflict_census(&refs, class.k);
        assert_eq!(census.total_pairs, 36);
        assert!(census.all_conflict(), "{census:?}");
        assert_eq!(census.min_advice_strings(), 9);
        assert_eq!(census.min_advice_bits(), 4);
        // The measured bound exceeds the (constant-burdened) closed form at this tiny
        // parameter point and has the predicted shape log₂ N = z·log₂(Δ−1).
        assert!((census.min_advice_strings() as f64).log2() >= class.log2_size() - 1e-9);
    }

    #[test]
    fn sampled_pairs_of_u_4_1_conflict_for_pe_theorem_3_11_measured() {
        let class = UClass::new(4, 1).unwrap();
        // Pairs of members that differ in at least one swap must conflict.
        let base = vec![1u32; 9];
        let ga = class.member(&base).unwrap();
        for j in [0usize, 4, 8] {
            for s in [2u32, 3] {
                let mut sigma = base.clone();
                sigma[j] = s;
                let gb = class.member(&sigma).unwrap();
                assert!(
                    pe_conflict_on_u(&ga.labeled.graph, &gb.labeled.graph, class.k),
                    "members differing at j={j} (s={s}) must conflict"
                );
            }
        }
        // A member does not conflict with itself.
        assert!(!pe_conflict_on_u(
            &ga.labeled.graph,
            &ga.labeled.graph,
            class.k
        ));
    }

    #[test]
    fn census_accounting() {
        let c = ConflictCensus {
            members: 5,
            conflicting_pairs: 10,
            total_pairs: 10,
        };
        assert!(c.all_conflict());
        assert_eq!(c.min_advice_strings(), 5);
        assert_eq!(c.min_advice_bits(), 3);
        let partial = ConflictCensus {
            members: 5,
            conflicting_pairs: 9,
            total_pairs: 10,
        };
        assert!(!partial.all_conflict());
        assert_eq!(partial.min_advice_strings(), 1);
        assert_eq!(partial.min_advice_bits(), 0);
    }

    #[test]
    fn pe_conflict_rejects_non_u_like_graphs() {
        let a = generators::star(4).unwrap();
        let b = generators::star(4).unwrap();
        assert!(!pe_conflict_on_u(&a, &b, 1));
    }

    #[test]
    fn selection_census_runs_on_the_advice_solver() {
        use crate::engine::AdviceSolver;
        let class = GClass::new(4, 1).unwrap();
        let members: Vec<_> = (1..=class.size().unwrap())
            .map(|i| class.member(i).unwrap().labeled.graph)
            .collect();
        let refs: Vec<&PortGraph> = members.iter().collect();
        let sc =
            selection_census_with_solver(&refs, class.k, |_| Box::new(AdviceSolver::theorem_2_2()));
        assert!(sc.census.all_conflict());
        assert_eq!(sc.census.min_advice_bits(), 4);
        assert_eq!(sc.solved, 9, "Theorem 2.2 solves every member");
        assert_eq!(sc.min_time, 9, "…in exactly ψ_S = k rounds");
        assert_eq!(sc.task, Task::Selection);
        assert!(sc.solver.contains("thm-2.2"));
        // The Theorem 2.2 pair must spend at least the pigeonhole number of bits on
        // some member of this collection.
        assert!(sc.achieves_lower_bound(), "{sc:?}");
        // The oracle reports both codec sizes: the shipped (tree) form is the
        // tree-bits maximum, and the DAG size rides along for the E3b comparison.
        assert_eq!(sc.max_advice_tree_bits, sc.max_advice_bits);
        assert!(sc.max_advice_dag_bits.is_some());
    }

    #[test]
    fn selection_census_on_the_dag_solver_ships_dag_sized_advice() {
        use crate::engine::AdviceSolver;
        let class = GClass::new(4, 1).unwrap();
        let members: Vec<_> = (1..=4)
            .map(|i| class.member(i).unwrap().labeled.graph)
            .collect();
        let refs: Vec<&PortGraph> = members.iter().collect();
        let sc = selection_census_with_solver(&refs, class.k, |_| {
            Box::new(AdviceSolver::theorem_2_2_dag())
        });
        assert_eq!(sc.solved, 4, "the codec does not change solvability");
        assert_eq!(sc.min_time, 4);
        assert_eq!(sc.max_advice_bits, sc.max_advice_dag_bits);
        assert!(sc.max_advice_tree_bits.is_some());
    }

    #[test]
    fn selection_census_runs_on_the_map_solver_too() {
        use crate::engine::MapSolver;
        let class = GClass::new(4, 1).unwrap();
        let members: Vec<_> = (1..=3)
            .map(|i| class.member(i).unwrap().labeled.graph)
            .collect();
        let refs: Vec<&PortGraph> = members.iter().collect();
        let sc = selection_census_with_solver(&refs, class.k, |_| Box::new(MapSolver::default()));
        assert_eq!(sc.solved, 3);
        assert_eq!(sc.min_time, 3);
        // Map-based solvers report no advice bits; the census still runs.
        assert_eq!(sc.max_advice_bits, None);
        assert!(!sc.achieves_lower_bound());
    }

    #[test]
    fn pe_census_runs_on_the_port_election_solver() {
        use crate::engine::PortElectionSolver;
        let class = UClass::new(4, 1).unwrap();
        let base = vec![1u32; 9];
        let members: Vec<_> = [0usize, 4, 8]
            .iter()
            .map(|&j| {
                let mut sigma = base.clone();
                sigma[j] = 2;
                class.member(&sigma).unwrap().labeled.graph
            })
            .collect();
        let refs: Vec<&PortGraph> = members.iter().collect();
        let sc = pe_census_on_u_with_solver(&refs, class.k, |_| {
            Box::new(PortElectionSolver::new(class.k))
        });
        assert!(sc.census.all_conflict(), "{sc:?}");
        assert_eq!(sc.solved, 3, "Lemma 3.9 solves every member");
        assert_eq!(sc.min_time, 3);
        assert_eq!(sc.task, Task::PortElection);
    }
}
