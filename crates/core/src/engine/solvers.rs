//! The built-in [`Solver`] implementations: one per algorithm family of the paper.

use super::{Backend, EngineError, RunContext, Solver, SolverRun};
use crate::advice::{run_with_advice_on, run_with_advice_wired, AdviceAlgorithm, Oracle};
use crate::cppe::solve_cppe_on_j;
use crate::map_algorithms::{solve_with_map_on, solve_with_map_wired, MapRun};
use crate::port_election::{solve_port_election_on_u_wired, solve_port_election_on_u_with};
use crate::selection::{SelectionAlgorithm, SelectionOracle};
use crate::tasks::Task;
use anet_constructions::j_class::JMember;
use anet_graph::PortGraph;

fn map_run_to_solver_run(run: MapRun) -> SolverRun {
    SolverRun {
        rounds: run.rounds,
        outputs: run.outputs,
        messages_delivered: run.messages_delivered,
        advice_bits: None,
        advice_tree_bits: None,
        advice_dag_bits: None,
        search: run.search,
        wire: run.wire,
    }
}

/// The minimum-time map-based baseline: solves any of the four shades on any feasible
/// graph in exactly its election index `ψ_Z(G)` rounds, assuming every node knows the
/// map (Lemmas 2.7 / 3.9 / 4.9, upper-bound halves).
#[derive(Debug, Clone, Copy)]
pub struct MapSolver {
    /// Budget for the simple-path enumeration behind the PPE / CPPE assignments.
    pub max_paths: usize,
}

impl MapSolver {
    /// A map solver with an explicit path-enumeration budget.
    pub fn new(max_paths: usize) -> Self {
        MapSolver { max_paths }
    }
}

impl Default for MapSolver {
    /// The default budget (50 000 simple paths) used throughout the experiments.
    fn default() -> Self {
        MapSolver::new(50_000)
    }
}

impl Solver for MapSolver {
    fn name(&self) -> String {
        "map".to_string()
    }

    fn solve(
        &self,
        graph: &PortGraph,
        task: Task,
        backend: Backend,
    ) -> Result<SolverRun, EngineError> {
        solve_with_map_on(graph, task, self.max_paths, backend)
            .map(map_run_to_solver_run)
            .map_err(|e| EngineError::solver(self.name(), e))
    }

    fn solve_ctx(
        &self,
        graph: &PortGraph,
        task: Task,
        backend: Backend,
        ctx: &RunContext<'_>,
    ) -> Result<SolverRun, EngineError> {
        // The map solver is the view-heavy one: route its `build_all` +
        // canonicalization pass through the process-wide interner when given one,
        // its simulation rounds through the context's trace probe, and its
        // messages through the context's wire codec when the run is metered.
        solve_with_map_wired(
            graph,
            task,
            self.max_paths,
            backend,
            ctx.shared_interner,
            ctx.trace_sink(),
            ctx.wire,
        )
        .map(map_run_to_solver_run)
        .map_err(|e| EngineError::solver(self.name(), e))
    }
}

/// An oracle/algorithm pair run through the advice framework: the oracle sees the
/// whole graph and broadcasts one binary string, the algorithm decides from
/// `(advice, B^r(v))`. The engine records the advice size in the report.
///
/// The requested task is ignored by the solver itself — the pair produces whatever
/// shade its decision function outputs, and the engine weakens per Fact 1.1.
pub struct AdviceSolver<O, A> {
    label: String,
    oracle: O,
    algorithm: A,
}

impl<O, A> AdviceSolver<O, A>
where
    O: Oracle,
    A: AdviceAlgorithm,
{
    /// Wrap an oracle/algorithm pair under a display label.
    pub fn new(label: impl Into<String>, oracle: O, algorithm: A) -> Self {
        AdviceSolver {
            label: label.into(),
            oracle,
            algorithm,
        }
    }
}

impl AdviceSolver<SelectionOracle, SelectionAlgorithm> {
    /// The Theorem 2.2 pair: Selection in minimum time `ψ_S(G)` with
    /// `O((Δ−1)^{ψ_S} log Δ)` advice bits (the encoded view ships in the paper's
    /// unfolded-tree format).
    ///
    /// The oracle requires a graph with finite Selection index and panics otherwise
    /// (matching `SelectionOracle::advise`).
    pub fn theorem_2_2() -> Self {
        AdviceSolver::new(
            "advice(thm-2.2)",
            SelectionOracle::tree(),
            SelectionAlgorithm::tree(),
        )
    }

    /// The Theorem 2.2 pair shipping the chosen view in the **shared-DAG** format:
    /// the same election (identical outputs, rounds, messages), but the advice costs
    /// `O(distinct subtrees)` bits instead of `Θ((Δ−1)^{ψ_S} log Δ)` — on
    /// near-symmetric graphs an exponential saving for the same information. Reports
    /// carry both sizes either way ([`super::ElectionReport::advice_tree_bits`] /
    /// [`super::ElectionReport::advice_dag_bits`]).
    pub fn theorem_2_2_dag() -> Self {
        AdviceSolver::new(
            "advice(thm-2.2, dag)",
            SelectionOracle::dag(),
            SelectionAlgorithm::dag(),
        )
    }
}

impl<O, A> Solver for AdviceSolver<O, A>
where
    O: Oracle,
    A: AdviceAlgorithm,
{
    fn name(&self) -> String {
        self.label.clone()
    }

    fn solve(
        &self,
        graph: &PortGraph,
        _task: Task,
        backend: Backend,
    ) -> Result<SolverRun, EngineError> {
        let run = run_with_advice_on(graph, &self.oracle, &self.algorithm, backend);
        Ok(advice_run_to_solver_run(run))
    }

    fn solve_ctx(
        &self,
        graph: &PortGraph,
        _task: Task,
        backend: Backend,
        ctx: &RunContext<'_>,
    ) -> Result<SolverRun, EngineError> {
        let run = run_with_advice_wired(
            graph,
            &self.oracle,
            &self.algorithm,
            backend,
            ctx.trace_sink(),
            ctx.wire,
        );
        Ok(advice_run_to_solver_run(run))
    }
}

fn advice_run_to_solver_run(run: crate::advice::AdviceRun) -> SolverRun {
    SolverRun {
        rounds: run.rounds,
        messages_delivered: run.messages_delivered,
        advice_bits: Some(run.advice.len()),
        advice_tree_bits: run.advice_tree_bits,
        advice_dag_bits: run.advice_dag_bits,
        // Advice pairs decide from (advice, view): there is no assignment search.
        search: anet_views::SearchStats::default(),
        wire: run.wire,
        outputs: run.outputs,
    }
}

/// The Lemma 3.9 Port Election algorithm: solves `PE` in exactly `k` rounds on every
/// member of `U_{Δ,k}`, given the map. Errors on graphs that are not `U` members.
#[derive(Debug, Clone, Copy)]
pub struct PortElectionSolver {
    /// The class parameter `k` (= `ψ_S` = `ψ_PE` of the member).
    pub k: usize,
}

impl PortElectionSolver {
    /// A Port Election solver for class parameter `k`.
    pub fn new(k: usize) -> Self {
        PortElectionSolver { k }
    }
}

impl Solver for PortElectionSolver {
    fn name(&self) -> String {
        format!("port-election(lemma-3.9, k={})", self.k)
    }

    fn solve(
        &self,
        graph: &PortGraph,
        _task: Task,
        backend: Backend,
    ) -> Result<SolverRun, EngineError> {
        solve_port_election_on_u_with(graph, self.k, backend)
            .map(map_run_to_solver_run)
            .map_err(|e| EngineError::solver(self.name(), e))
    }

    fn solve_ctx(
        &self,
        graph: &PortGraph,
        _task: Task,
        backend: Backend,
        ctx: &RunContext<'_>,
    ) -> Result<SolverRun, EngineError> {
        solve_port_election_on_u_wired(graph, self.k, backend, ctx.trace_sink(), ctx.wire)
            .map(map_run_to_solver_run)
            .map_err(|e| EngineError::solver(self.name(), e))
    }
}

/// The Lemma 4.8 Complete Port Path Election algorithm: solves `CPPE` in `k` rounds on
/// a member of `J_{μ,k}`, given the member handle (which plays the role of the map).
///
/// The solver owns its `JMember`; running the engine on any other graph is an error
/// (the map would not describe the network).
///
/// The paper's algorithm is a function of `B^k(v)`; this implementation evaluates that
/// function analytically from the map instead of simulating the flood, so the engine's
/// [`Backend`] has no effect on it (message accounting is the flood's closed form,
/// `2mk`). `ElectionReport.backend` therefore records the *configured* backend only.
pub struct CppeSolver {
    member: JMember,
    k: usize,
}

impl CppeSolver {
    /// A CPPE solver for one `J_{μ,k}` member with class parameter `k`.
    pub fn new(member: JMember, k: usize) -> Self {
        CppeSolver { member, k }
    }

    /// The member this solver's map describes.
    pub fn member(&self) -> &JMember {
        &self.member
    }
}

impl Solver for CppeSolver {
    fn name(&self) -> String {
        format!("cppe(lemma-4.8, k={})", self.k)
    }

    fn solve(
        &self,
        graph: &PortGraph,
        _task: Task,
        _backend: Backend,
    ) -> Result<SolverRun, EngineError> {
        if *graph != self.member.labeled.graph {
            return Err(EngineError::solver(
                self.name(),
                "the graph is not the J member this solver's map describes",
            ));
        }
        solve_cppe_on_j(&self.member, self.k)
            .map(map_run_to_solver_run)
            .map_err(|e| EngineError::solver(self.name(), e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Election;
    use anet_constructions::{JClass, UClass};

    #[test]
    fn port_election_solver_on_u_member_elects_a_cycle_root() {
        let class = UClass::new(4, 1).unwrap();
        let member = class.member(&[2u32; 9]).unwrap();
        let report = Election::task(Task::PortElection)
            .solver(PortElectionSolver::new(class.k))
            .run(&member.labeled.graph)
            .unwrap();
        assert!(report.solved(), "{}", report.summary());
        assert_eq!(report.rounds, class.k);
        assert!(member.cycle_roots().contains(&report.leader().unwrap()));
        // The same solver serves the weaker Selection shade via Fact 1.1.
        let s = Election::task(Task::Selection)
            .solver(PortElectionSolver::new(class.k))
            .run(&member.labeled.graph)
            .unwrap();
        assert!(s.solved());
    }

    #[test]
    fn port_election_solver_rejects_non_u_graphs() {
        let g = anet_graph::generators::star(3).unwrap();
        let err = Election::task(Task::PortElection)
            .solver(PortElectionSolver::new(1))
            .run(&g)
            .unwrap_err();
        assert!(matches!(err, EngineError::Solver { .. }));
    }

    #[test]
    fn cppe_solver_solves_all_four_shades_on_its_member() {
        let class = JClass::new(2, 4).unwrap();
        let member = class.template(Some(3)).unwrap();
        let graph = member.labeled.graph.clone();
        let rho0 = member.rho(0);
        for task in Task::ALL {
            let report = Election::task(task)
                .solver(CppeSolver::new(class.template(Some(3)).unwrap(), class.k))
                .run(&graph)
                .unwrap();
            assert!(report.solved(), "{task}: {}", report.summary());
            assert_eq!(report.leader(), Some(rho0), "{task}: the leader is ρ_0");
            assert_eq!(report.rounds, class.k);
        }
    }

    #[test]
    fn cppe_solver_rejects_foreign_graphs() {
        let class = JClass::new(2, 4).unwrap();
        let member = class.template(Some(3)).unwrap();
        let other = anet_graph::generators::star(4).unwrap();
        let err = Election::task(Task::CompletePortPathElection)
            .solver(CppeSolver::new(member, class.k))
            .run(&other)
            .unwrap_err();
        assert!(matches!(err, EngineError::Solver { .. }));
    }
}
