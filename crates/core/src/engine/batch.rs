//! Sweeping one engine configuration across a family of graphs.
//!
//! The paper's experiments all have the same shape: fix a task and an algorithm, walk
//! a family of graphs (`G_{Δ,k}` members, `U_{Δ,k}` members, `J_{μ,k}` chains, or an
//! ad-hoc suite), and tabulate measured quantities next to the paper's closed-form
//! bounds. [`BatchRunner`] is that loop, factored out once: it drives the
//! [`Election`](super::Election) builder over every instance of a
//! [`GraphFamily`] and collects uniform [`BatchRow`]s that `anet-bench` renders as
//! paper-bound-vs-measured tables.

use super::{Backend, Election, ElectionReport, EngineError, MessageCodec, Solver};
use crate::tasks::Task;
use anet_constructions::{FamilyInstance, GraphFamily};

/// The result of one engine run inside a sweep.
#[derive(Debug)]
pub struct BatchRow {
    /// The family's display name.
    pub family: String,
    /// The instance's display name.
    pub instance: String,
    /// The family-specific instance parameter (member index / chain cap).
    pub param: u64,
    /// Number of nodes of the instance graph.
    pub nodes: usize,
    /// Maximum degree of the instance graph.
    pub max_degree: usize,
    /// The task that was run.
    pub task: Task,
    /// The engine report, or the engine error for this instance.
    pub report: Result<ElectionReport, EngineError>,
}

impl BatchRow {
    /// Did this instance solve the task?
    pub fn solved(&self) -> bool {
        self.report.as_ref().map(|r| r.solved()).unwrap_or(false)
    }

    /// Rounds used, if the run produced a report.
    pub fn rounds(&self) -> Option<usize> {
        self.report.as_ref().ok().map(|r| r.rounds)
    }

    /// Advice bits, if the run produced a report from an advice-based solver.
    pub fn advice_bits(&self) -> Option<usize> {
        self.report.as_ref().ok().and_then(|r| r.advice_bits)
    }

    /// Tree-codec size of the advice's encoded view, when the oracle reports it.
    pub fn advice_tree_bits(&self) -> Option<usize> {
        self.report.as_ref().ok().and_then(|r| r.advice_tree_bits)
    }

    /// Shared-DAG-codec size of the advice's encoded view, when the oracle reports
    /// it (compare with [`advice_tree_bits`](BatchRow::advice_tree_bits) to see the
    /// sharing collapse per instance).
    pub fn advice_dag_bits(&self) -> Option<usize> {
        self.report.as_ref().ok().and_then(|r| r.advice_dag_bits)
    }

    /// Quotient classes expanded by the map-side assignment search, if the run
    /// produced a report (zero for solvers that never search).
    pub fn classes_expanded(&self) -> Option<usize> {
        self.report.as_ref().ok().map(|r| r.search.classes_expanded)
    }

    /// Candidate paths explored by the map-side assignment search, if the run
    /// produced a report (zero for solvers that never search).
    pub fn paths_explored(&self) -> Option<usize> {
        self.report.as_ref().ok().map(|r| r.search.paths_explored)
    }

    /// Total bits put on the wire, if the run was metered (see
    /// [`ElectionReport::wire`]); `None` on unmetered runs and engine errors.
    pub fn wire_bits(&self) -> Option<u64> {
        self.report
            .as_ref()
            .ok()
            .and_then(|r| r.wire.as_ref())
            .map(|w| w.total_bits())
    }

    /// The heaviest single directed edge's total bits, if the run was metered.
    pub fn wire_max_edge_bits(&self) -> Option<u64> {
        self.report
            .as_ref()
            .ok()
            .and_then(|r| r.wire.as_ref())
            .map(|w| w.max_edge_bits())
    }
}

/// Sweeps an election configuration across the instances of a [`GraphFamily`].
#[derive(Debug, Clone, Copy)]
pub struct BatchRunner {
    backend: Backend,
    max_instances: usize,
    profiled: bool,
    wire: Option<MessageCodec>,
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::new(Backend::Sequential)
    }
}

impl BatchRunner {
    /// A runner executing every instance on `backend`, visiting at most 8 instances
    /// per family (override with [`BatchRunner::max_instances`]).
    pub fn new(backend: Backend) -> Self {
        BatchRunner {
            backend,
            max_instances: 8,
            profiled: false,
            wire: None,
        }
    }

    /// Cap the number of instances visited per family.
    pub fn max_instances(mut self, n: usize) -> Self {
        self.max_instances = n;
        self
    }

    /// Meter every instance run through `codec` (see
    /// [`ElectionBuilder::metered`](super::ElectionBuilder::metered)): each row's
    /// report carries [`ElectionReport::wire`] with per-round / per-edge bit
    /// counts. Outputs and logical accounting are unchanged.
    pub fn metered(mut self, codec: MessageCodec) -> Self {
        self.wire = Some(codec);
        self
    }

    /// Record a round-level profile for every instance run (see
    /// [`ElectionBuilder::profiled`](super::ElectionBuilder::profiled)): each row's
    /// report carries a `round_profile`, which the sweep driver serialises into its
    /// trace artifact. Off by default — the disabled probe keeps sweep output
    /// byte-identical to an unprofiled run.
    pub fn profiled(mut self, on: bool) -> Self {
        self.profiled = on;
        self
    }

    /// Run `task` with a per-instance solver over up to
    /// [`max_instances`](BatchRunner::max_instances) members of `family`.
    ///
    /// `make_solver` builds the solver for each instance — families whose solvers
    /// need per-instance data (the Lemma 4.8 CPPE solver needs the `JMember` map, the
    /// Lemma 3.9 solver needs `k`) rebuild it from [`FamilyInstance::param`].
    ///
    /// Materialises the family's instances once and runs them borrowed; callers that
    /// already hold materialised instances (several sweeps over one family) should use
    /// [`sweep_instances`](BatchRunner::sweep_instances) directly.
    pub fn sweep<F>(&self, family: &dyn GraphFamily, task: Task, make_solver: F) -> Vec<BatchRow>
    where
        F: Fn(&FamilyInstance) -> Box<dyn Solver>,
    {
        let instances = family.instances(self.max_instances);
        self.sweep_instances(&family.family_name(), &instances, task, make_solver)
    }

    /// [`sweep`](BatchRunner::sweep) over already-materialised, *borrowed* instances:
    /// every engine run borrows `&instance.graph` directly, so sweeping the same
    /// instances across many tasks or backends never regenerates or clones a graph.
    /// At most [`max_instances`](BatchRunner::max_instances) instances are visited.
    pub fn sweep_instances<F>(
        &self,
        family_name: &str,
        instances: &[FamilyInstance],
        task: Task,
        make_solver: F,
    ) -> Vec<BatchRow>
    where
        F: Fn(&FamilyInstance) -> Box<dyn Solver>,
    {
        instances
            .iter()
            .take(self.max_instances)
            .map(|instance| {
                let mut builder = Election::task(task)
                    .solver_boxed(make_solver(instance))
                    .backend(self.backend);
                if self.profiled {
                    builder = builder.profiled();
                }
                if let Some(codec) = self.wire {
                    builder = builder.metered(codec);
                }
                let report = builder.run(&instance.graph);
                BatchRow {
                    family: family_name.to_string(),
                    instance: instance.name.clone(),
                    param: instance.param,
                    nodes: instance.graph.num_nodes(),
                    max_degree: instance.graph.max_degree(),
                    task,
                    report,
                }
            })
            .collect()
    }

    /// [`sweep`](BatchRunner::sweep) over several tasks (rows grouped by task). The
    /// family's instances are materialised once and shared, borrowed, by every task.
    pub fn sweep_tasks<F>(
        &self,
        family: &dyn GraphFamily,
        tasks: &[Task],
        make_solver: F,
    ) -> Vec<BatchRow>
    where
        F: Fn(&FamilyInstance) -> Box<dyn Solver>,
    {
        let instances = family.instances(self.max_instances);
        let name = family.family_name();
        tasks
            .iter()
            .flat_map(|&task| self.sweep_instances(&name, &instances, task, &make_solver))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{AdviceSolver, CppeSolver, MapSolver};
    use anet_constructions::{GClass, JClass};

    #[test]
    fn map_sweep_over_g_family_solves_every_task() {
        let class = GClass::new(4, 1).unwrap();
        let runner = BatchRunner::default().max_instances(2);
        let rows = runner.sweep_tasks(&class, &Task::ALL, |_| Box::new(MapSolver::default()));
        assert_eq!(rows.len(), 2 * Task::ALL.len());
        for row in &rows {
            assert!(row.solved(), "{} {} failed", row.instance, row.task);
            assert!(row.rounds().is_some());
            assert!(row.advice_bits().is_none(), "map solver reports no bits");
        }
        // The hierarchy of Fact 1.1 shows up in the measured rounds per instance:
        // rows are grouped by task (weakest first), two instances per task.
        for instance in 0..2 {
            let per_task: Vec<usize> = (0..Task::ALL.len())
                .map(|t| rows[t * 2 + instance].rounds().unwrap())
                .collect();
            assert!(per_task.windows(2).all(|w| w[0] <= w[1]), "{per_task:?}");
        }
    }

    #[test]
    fn sweep_over_borrowed_instances_matches_family_sweep() {
        let class = GClass::new(4, 1).unwrap();
        let runner = BatchRunner::default().max_instances(2);
        let direct = runner.sweep(&class, Task::Selection, |_| Box::new(MapSolver::default()));
        // Materialise once, sweep borrowed — same rows, graphs never rebuilt.
        let instances = class.instances(2);
        let borrowed =
            runner.sweep_instances(&class.family_name(), &instances, Task::Selection, |_| {
                Box::new(MapSolver::default())
            });
        assert_eq!(direct.len(), borrowed.len());
        for (a, b) in direct.iter().zip(&borrowed) {
            assert_eq!(a.family, b.family);
            assert_eq!(a.instance, b.instance);
            assert_eq!(a.param, b.param);
            assert_eq!(a.rounds(), b.rounds());
            assert_eq!(
                a.report.as_ref().unwrap().outputs,
                b.report.as_ref().unwrap().outputs
            );
        }
        // The runner's cap still applies to an over-long borrowed slice.
        let capped = BatchRunner::default().max_instances(1).sweep_instances(
            &class.family_name(),
            &instances,
            Task::Selection,
            |_| Box::new(MapSolver::default()),
        );
        assert_eq!(capped.len(), 1);
    }

    #[test]
    fn advice_sweep_records_bits() {
        let class = GClass::new(4, 1).unwrap();
        let runner = BatchRunner::new(Backend::Parallel { threads: 2 }).max_instances(2);
        let rows = runner.sweep(&class, Task::Selection, |_| {
            Box::new(AdviceSolver::theorem_2_2())
        });
        for row in &rows {
            assert!(row.solved());
            assert!(row.advice_bits().unwrap() > 0);
        }
    }

    #[test]
    fn metered_sweep_rows_carry_wire_bits_without_changing_results() {
        let class = GClass::new(4, 1).unwrap();
        let plain = BatchRunner::default()
            .max_instances(2)
            .sweep(&class, Task::Selection, |_| Box::new(MapSolver::default()));
        let metered = BatchRunner::default()
            .max_instances(2)
            .metered(MessageCodec::Delta)
            .sweep(&class, Task::Selection, |_| Box::new(MapSolver::default()));
        assert_eq!(plain.len(), metered.len());
        for (a, b) in plain.iter().zip(&metered) {
            assert!(a.wire_bits().is_none(), "unmetered rows carry no bits");
            assert!(b.wire_bits().unwrap() > 0, "{}", b.instance);
            assert!(b.wire_max_edge_bits().unwrap() <= b.wire_bits().unwrap());
            assert_eq!(a.rounds(), b.rounds());
            assert_eq!(
                a.report.as_ref().unwrap().outputs,
                b.report.as_ref().unwrap().outputs
            );
        }
    }

    #[test]
    fn cppe_sweep_rebuilds_members_from_params() {
        let class = JClass::new(2, 4).unwrap();
        let runner = BatchRunner::default().max_instances(2);
        let rows = runner.sweep(&class, Task::CompletePortPathElection, |instance| {
            let member = class
                .template(Some(instance.param as usize))
                .expect("param is the chain cap");
            Box::new(CppeSolver::new(member, class.k))
        });
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.solved(), "{}", row.instance);
            assert_eq!(row.rounds(), Some(class.k));
        }
    }
}
