//! # The `ElectionEngine` facade
//!
//! One fluent, composable surface over everything this workspace can do: pick a task
//! shade × pick a solver × pick an execution backend × run on a graph.
//!
//! ```
//! use anet_election::engine::{Backend, Election, MapSolver};
//! use anet_election::tasks::Task;
//! let graph = anet_graph::generators::paper_three_node_line();
//!
//! let report = Election::task(Task::CompletePortPathElection)
//!     .solver(MapSolver::default())
//!     .backend(Backend::Parallel { threads: 4 })
//!     .run(&graph)
//!     .expect("solver ran");
//! assert!(report.solved());
//! println!("{} rounds, {} messages", report.rounds, report.messages_delivered);
//! ```
//!
//! The engine replaced the three historical, disconnected entry points
//! (`anet_sim::run`, `anet_sim::run_parallel`, `anet_election::advice::run_with_advice`
//! — all removed after their deprecation cycle) plus the per-task free functions
//! (`solve_with_map`, `solve_port_election_on_u`, `solve_cppe_on_j`,
//! `solve_selection_min_time`) behind a single builder:
//!
//! * the **task** is one of the paper's four shades ([`Task`]);
//! * the **solver** is any [`Solver`] — the map-based minimum-time baseline
//!   ([`MapSolver`]), the Theorem 2.2 oracle/algorithm pair shipping either view
//!   codec ([`AdviceSolver::theorem_2_2`] / [`AdviceSolver::theorem_2_2_dag`]) or
//!   any other advice pair ([`AdviceSolver`]), the Lemma 3.9 Port Election
//!   algorithm ([`PortElectionSolver`]), or the Lemma 4.8 CPPE algorithm
//!   ([`CppeSolver`]);
//! * the **backend** is an `anet-sim` execution strategy ([`Backend`]) — sequential,
//!   fixed-thread parallel, arena-based message batching, or chunk-size-adaptive
//!   parallel; every backend yields identical outputs and message accounting, so the
//!   choice is purely about wall-clock performance;
//! * the result is a uniform [`ElectionReport`]: advice bits, rounds, messages,
//!   per-node outputs, the verifier's verdict, and wall time.
//!
//! A solver may produce outputs for a *stronger* shade than requested; the engine then
//! applies the paper's Fact 1.1 weakening automatically (a CPPE solution, run with
//! `Task::Selection`, is weakened to a Selection solution before verification). This
//! mirrors the hierarchy `CPPE ⇒ PPE ⇒ PE ⇒ S` exactly as the paper uses it.
//!
//! For sweeping one configuration across a whole family of graphs (the paper's
//! `G`/`U`/`J` constructions, or any `anet_constructions::GraphFamily`), see [`BatchRunner`].

mod batch;
mod solvers;

pub use anet_sim::{Backend, MessageCodec, Simulator, WireStats};
pub use anet_trace::{
    NoopSink, Phase, Recorder, RoundProfile, RoundStat, Tagged, TraceEvent, TraceSink,
};
pub use batch::{BatchRow, BatchRunner};
pub use solvers::{AdviceSolver, CppeSolver, MapSolver, PortElectionSolver};

use crate::tasks::{self, ElectionOutcome, NodeOutput, Task, TaskError};
use anet_graph::{NodeId, PortGraph};
use anet_views::SharedViewInterner;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors of the election engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// `run` was called on a builder with no solver configured.
    MissingSolver,
    /// The configured solver failed on this graph.
    Solver {
        /// The solver's display name.
        solver: String,
        /// The solver-specific failure message.
        message: String,
    },
}

impl EngineError {
    pub(crate) fn solver(name: impl Into<String>, err: impl std::fmt::Display) -> Self {
        EngineError::Solver {
            solver: name.into(),
            message: err.to_string(),
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::MissingSolver => {
                write!(f, "no solver configured (call `.solver(…)` before `.run`)")
            }
            EngineError::Solver { solver, message } => write!(f, "solver {solver}: {message}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// What a [`Solver`] hands back to the engine: the raw run, before verification.
#[derive(Debug, Clone)]
pub struct SolverRun {
    /// Communication rounds used.
    pub rounds: usize,
    /// Per-node outputs, indexed by node.
    pub outputs: Vec<NodeOutput>,
    /// Messages delivered by the underlying simulation.
    pub messages_delivered: usize,
    /// Size of oracle advice in bits, for advice-based solvers (`None` for map-based
    /// solvers, whose "advice" is the whole map and is not measured in bits).
    pub advice_bits: Option<usize>,
    /// Size the advice's encoded view takes under the unfolded-tree codec, when the
    /// oracle reports it (the paper's `O((Δ−1)^h log Δ)` accounting). Independent of
    /// which codec actually shipped.
    pub advice_tree_bits: Option<usize>,
    /// Size the same view takes under the shared-DAG codec (`O(distinct subtrees)`),
    /// when the oracle reports it.
    pub advice_dag_bits: Option<usize>,
    /// Search-cost counters of the map-side assignment search (quotient classes
    /// expanded, candidate paths explored). Zero for solvers that perform no such
    /// search (advice pairs, the analytic Lemma 3.9 / 4.8 algorithms).
    pub search: anet_views::SearchStats,
    /// Per-round / per-edge bits the simulation actually put on the wire, when it
    /// ran through the metered transport ([`ElectionBuilder::metered`] or a
    /// [`Backend::Capped`] backend). `None` on the zero-serialisation fast path
    /// and for analytic solvers that never simulate.
    pub wire: Option<WireStats>,
}

/// Cross-cutting execution context the engine threads to [`Solver::solve_ctx`]:
/// process-wide resources a run may share with concurrent runs. Everything here is
/// optional and purely an execution concern — a solver given the default (empty)
/// context computes exactly the same outputs.
#[derive(Clone, Copy, Default)]
pub struct RunContext<'a> {
    /// A process-wide concurrent view interner. Solvers that hash-cons views (the
    /// map solver's `build_all` + canonicalization pass) intern through this table
    /// instead of a run-private one, so concurrent runs on overlapping graph
    /// families dedup their view DAGs against each other. Set by the multi-tenant
    /// election service; `None` for standalone runs.
    pub shared_interner: Option<&'a SharedViewInterner>,
    /// A trace sink for round-level probes: simulation-backed solvers thread it to
    /// [`anet_sim::Backend::run_traced`], so the engine (and through it the
    /// service) observes per-phase timings and per-round message counts. `None`
    /// means untraced — identical to passing a [`NoopSink`].
    pub trace: Option<&'a dyn TraceSink>,
    /// The wire codec for metered runs: simulation-backed solvers serialise every
    /// message through it (via `anet_sim::run_full_information_metered`) and
    /// report [`WireStats`] in their [`SolverRun`]. `None` means the
    /// zero-serialisation fast path — unless the backend is [`Backend::Capped`],
    /// which forces metering under the default codec.
    pub wire: Option<MessageCodec>,
}

impl<'a> RunContext<'a> {
    /// The context's trace sink, defaulting to the zero-cost [`NoopSink`]: solvers
    /// call this instead of matching on [`RunContext::trace`], so the untraced path
    /// stays branch-free at the probe sites.
    pub fn trace_sink(&self) -> &'a dyn TraceSink {
        self.trace.unwrap_or(&NoopSink)
    }
}

impl std::fmt::Debug for RunContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunContext")
            .field("shared_interner", &self.shared_interner.is_some())
            .field("trace", &self.trace.is_some())
            .field("wire", &self.wire)
            .finish()
    }
}

/// A leader-election solver: anything that can produce per-node outputs for a task on
/// a graph, running its communication on a given [`Backend`].
///
/// Implementations in this crate: [`MapSolver`] (minimum-time, knows the map),
/// [`AdviceSolver`] (oracle/algorithm pairs, e.g. Theorem 2.2), [`PortElectionSolver`]
/// (Lemma 3.9 on `U_{Δ,k}`), [`CppeSolver`] (Lemma 4.8 on `J_{μ,k}`).
pub trait Solver {
    /// Display name used in reports and tables.
    fn name(&self) -> String;

    /// Solve (or attempt) `task` on `graph`, executing rounds on `backend`.
    ///
    /// A solver may ignore `task` and return outputs for the strongest shade it knows
    /// how to produce; the engine weakens them to the requested task per Fact 1.1.
    fn solve(
        &self,
        graph: &PortGraph,
        task: Task,
        backend: Backend,
    ) -> Result<SolverRun, EngineError>;

    /// [`solve`](Solver::solve) with a [`RunContext`]. The default implementation
    /// ignores the context and delegates, so existing solvers are unaffected;
    /// solvers that can exploit shared resources (e.g. [`MapSolver`] and the
    /// shared interner) override this. The engine always calls `solve_ctx`; the
    /// context must never change *what* is computed, only what is shared.
    fn solve_ctx(
        &self,
        graph: &PortGraph,
        task: Task,
        backend: Backend,
        ctx: &RunContext<'_>,
    ) -> Result<SolverRun, EngineError> {
        let _ = ctx;
        self.solve(graph, task, backend)
    }
}

/// Entry point of the facade: `Election::task(…)` starts a builder.
#[derive(Debug, Clone, Copy)]
pub struct Election;

impl Election {
    /// Start configuring an election for one of the four shades.
    pub fn task(task: Task) -> ElectionBuilder {
        ElectionBuilder {
            task,
            solver: None,
            backend: Backend::Sequential,
            thread_budget: None,
            shared_interner: None,
            trace: None,
            profile: false,
            wire: None,
        }
    }
}

/// Builder for a configured election run. Construct with [`Election::task`], then
/// chain [`solver`](ElectionBuilder::solver) and optionally
/// [`backend`](ElectionBuilder::backend), and execute with
/// [`run`](ElectionBuilder::run). The builder is reusable: `run` borrows it, so one
/// configuration can be applied to many graphs (this is what [`BatchRunner`] does).
pub struct ElectionBuilder {
    task: Task,
    solver: Option<Box<dyn Solver>>,
    backend: Backend,
    thread_budget: Option<usize>,
    shared_interner: Option<Arc<SharedViewInterner>>,
    trace: Option<Arc<dyn TraceSink>>,
    profile: bool,
    wire: Option<MessageCodec>,
}

impl ElectionBuilder {
    /// Choose the solver.
    pub fn solver(mut self, solver: impl Solver + 'static) -> Self {
        self.solver = Some(Box::new(solver));
        self
    }

    /// Choose the solver, boxed (for dynamically chosen solvers).
    pub fn solver_boxed(mut self, solver: Box<dyn Solver>) -> Self {
        self.solver = Some(solver);
        self
    }

    /// Choose the execution backend (default: [`Backend::Sequential`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Cap the number of OS threads the backend may use for this run (default:
    /// unbounded). The cap applies via [`anet_sim::with_thread_budget`] around the
    /// solve, so a `Parallel { threads: 8 }` backend under `.thread_budget(2)` runs
    /// with two workers and [`Backend::AdaptiveParallel`] stops sizing itself
    /// against the whole machine. This is how the multi-tenant election service
    /// keeps `n` concurrent runs from spawning `n × available_parallelism` threads.
    /// Outputs are unaffected — backends are output-equivalent at every thread
    /// count.
    pub fn thread_budget(mut self, budget: usize) -> Self {
        self.thread_budget = Some(budget.max(1));
        self
    }

    /// Intern views through a process-wide [`SharedViewInterner`] instead of a
    /// run-private table (default: private). Concurrent runs given the same table
    /// dedup isomorphic view subtrees against each other; see
    /// [`RunContext::shared_interner`].
    pub fn shared_interner(mut self, interner: Arc<SharedViewInterner>) -> Self {
        self.shared_interner = Some(interner);
        self
    }

    /// Stream round-level trace events into `sink`. The engine records the run
    /// through an internal [`Recorder`] (so the report gains a
    /// [`RoundProfile`](ElectionReport::round_profile)) and forwards the drained
    /// events to `sink` after the solve — per-run event batches therefore arrive
    /// contiguous even when many runs share one sink, which is what the
    /// multi-tenant service relies on. Wrap the sink in [`anet_trace::Tagged`] to
    /// stamp every forwarded event with a run id.
    ///
    /// Tracing never changes outputs, rounds or message accounting; it only
    /// observes them.
    pub fn trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Meter the wire: simulation-backed solvers serialise every message through
    /// `codec` (instead of handing over shared [`anet_views::View`] handles for
    /// free) and the report gains per-round / per-edge bit counts in
    /// [`wire`](ElectionReport::wire). Outputs, logical message accounting and —
    /// on ordinary backends — round counts are unchanged; under
    /// [`Backend::Capped`] rounds inflate to the physical count of the
    /// bandwidth-limited stream. A capped backend forces metering (under
    /// [`MessageCodec::default`]) even without this call. Analytic solvers
    /// simulate nothing and ignore it.
    pub fn metered(mut self, codec: MessageCodec) -> Self {
        self.wire = Some(codec);
        self
    }

    /// Record the run's round-level profile without an external sink: the report's
    /// [`round_profile`](ElectionReport::round_profile) is populated with per-round
    /// message counts and per-phase timings. Analytic solvers (e.g.
    /// [`CppeSolver`]) simulate nothing and yield an empty profile.
    pub fn profiled(mut self) -> Self {
        self.profile = true;
        self
    }

    /// The configured task.
    pub fn task_ref(&self) -> Task {
        self.task
    }

    /// Execute the configured election on `graph` and verify the outputs.
    pub fn run(&self, graph: &PortGraph) -> Result<ElectionReport, EngineError> {
        let solver = self.solver.as_ref().ok_or(EngineError::MissingSolver)?;
        let start = Instant::now();
        // When tracing or profiling is requested, the run records into an internal
        // recorder first: the profile is built from the complete event stream, and
        // forwarding after the solve keeps one run's events contiguous on a shared
        // sink. Untraced runs take the `None` branch and pay nothing.
        let recorder = (self.profile || self.trace.is_some()).then(Recorder::new);
        let ctx = RunContext {
            shared_interner: self.shared_interner.as_deref(),
            trace: recorder.as_ref().map(|r| r as &dyn TraceSink),
            wire: self.wire,
        };
        let interner_before = recorder
            .as_ref()
            .and(self.shared_interner.as_ref())
            .map(|t| t.stats());
        let solve = || solver.solve_ctx(graph, self.task, self.backend, &ctx);
        let run = match self.thread_budget {
            Some(budget) => anet_sim::with_thread_budget(budget, solve)?,
            None => solve()?,
        };
        let round_profile = recorder.map(|recorder| {
            // Interner traffic attributable to this run, from table-counter
            // snapshots (exact when runs don't overlap; see
            // `TraceEvent::InternerDelta`).
            if let (Some(before), Some(table)) = (interner_before, self.shared_interner.as_ref()) {
                let after = table.stats();
                recorder.record(TraceEvent::InternerDelta {
                    trace_id: 0,
                    hits: after.hits.saturating_sub(before.hits),
                    misses: after.misses.saturating_sub(before.misses),
                });
            }
            let events = recorder.drain();
            if let Some(sink) = &self.trace {
                for event in &events {
                    sink.record(*event);
                }
            }
            RoundProfile::from_events(&events)
        });
        // Fact 1.1: adapt outputs of a stronger shade to the requested task. If the
        // shapes neither match nor weaken, keep the raw outputs and let the verifier
        // report `WrongShape`.
        let matches_task = run
            .outputs
            .iter()
            .all(|o| o.task().is_none_or(|t| t == self.task));
        let outputs = if matches_task {
            run.outputs
        } else {
            tasks::weaken_outputs(&run.outputs, self.task).unwrap_or(run.outputs)
        };
        // Wall time covers the solve (and Fact 1.1 adaptation) only; verification can
        // dominate on large graphs and is not part of the algorithm being measured.
        let wall_time = start.elapsed();
        let verdict = tasks::verify(self.task, graph, &outputs);
        Ok(ElectionReport {
            task: self.task,
            solver: solver.name(),
            backend: self.backend,
            advice_bits: run.advice_bits,
            advice_tree_bits: run.advice_tree_bits,
            advice_dag_bits: run.advice_dag_bits,
            rounds: run.rounds,
            messages_delivered: run.messages_delivered,
            search: run.search,
            wire: run.wire,
            outputs,
            verdict,
            wall_time,
            round_profile,
        })
    }
}

impl std::fmt::Debug for ElectionBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElectionBuilder")
            .field("task", &self.task)
            .field("solver", &self.solver.as_ref().map(|s| s.name()))
            .field("backend", &self.backend)
            .field("thread_budget", &self.thread_budget)
            .field("shared_interner", &self.shared_interner.is_some())
            .field("trace", &self.trace.is_some())
            .field("profile", &self.profile)
            .field("wire", &self.wire)
            .finish()
    }
}

/// The uniform result of an engine run: everything the paper's tables are about, in
/// one place.
#[derive(Debug, Clone)]
pub struct ElectionReport {
    /// The task that was requested (and verified).
    pub task: Task,
    /// Display name of the solver that ran.
    pub solver: String,
    /// The execution backend the engine was configured with. Simulation-backed
    /// solvers run their rounds on it; solvers that compute outputs analytically
    /// from the map (e.g. [`CppeSolver`]) perform no simulation and ignore it.
    pub backend: Backend,
    /// Oracle advice size in bits, if the solver is advice-based.
    pub advice_bits: Option<usize>,
    /// Tree-codec size of the advice's encoded view, when the oracle reports it
    /// (what Theorem 2.2's `O((Δ−1)^h log Δ)` form counts), regardless of the codec
    /// that shipped.
    pub advice_tree_bits: Option<usize>,
    /// Shared-DAG-codec size of the same view (`O(distinct subtrees)` bits), when
    /// reported — against `advice_tree_bits` this shows the `Θ(Δ^h)` →
    /// `O(distinct subtrees)` collapse per run.
    pub advice_dag_bits: Option<usize>,
    /// Communication rounds used.
    pub rounds: usize,
    /// Total messages delivered.
    pub messages_delivered: usize,
    /// Search-cost counters of the map-side assignment search: quotient classes
    /// expanded by the route BFS and candidate paths explored (lifted routes,
    /// per-member shortest paths, joint search steps, enumerated fallbacks). Zero
    /// for solvers that never search for an assignment.
    pub search: anet_views::SearchStats,
    /// Bits actually put on the wire, per round and per directed edge, when the
    /// run was metered ([`ElectionBuilder::metered`] or a [`Backend::Capped`]
    /// backend): the codec that shipped, the cap if any, and the two breakdowns
    /// (which always sum to the same total). `None` on unmetered runs and for
    /// analytic solvers.
    pub wire: Option<WireStats>,
    /// Per-node outputs (already weakened to `task` if the solver produced a stronger
    /// shade).
    pub outputs: Vec<NodeOutput>,
    /// The verifier's verdict on the outputs.
    pub verdict: Result<ElectionOutcome, TaskError>,
    /// Wall-clock time of the solve (oracle + simulation + decision), excluding
    /// verification.
    pub wall_time: Duration,
    /// The run's round-level profile — per-round message counts, shallow payload
    /// bytes and per-phase nanoseconds — when the builder requested
    /// [`profiled`](ElectionBuilder::profiled) or
    /// [`trace_sink`](ElectionBuilder::trace_sink); `None` on untraced runs.
    /// Per-round message counts sum exactly to
    /// [`messages_delivered`](ElectionReport::messages_delivered) for
    /// simulation-backed solvers; analytic solvers yield an empty profile.
    pub round_profile: Option<RoundProfile>,
}

impl ElectionReport {
    /// Did the run solve the task?
    pub fn solved(&self) -> bool {
        self.verdict.is_ok()
    }

    /// The elected leader, if the task was solved.
    pub fn leader(&self) -> Option<NodeId> {
        self.verdict.as_ref().ok().map(|o| o.leader)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let advice = match self.advice_bits {
            Some(bits) => match (self.advice_tree_bits, self.advice_dag_bits) {
                (Some(tree), Some(dag)) => {
                    format!(", {bits} advice bits (tree {tree} / dag {dag})")
                }
                _ => format!(", {bits} advice bits"),
            },
            None => String::new(),
        };
        let wire = match &self.wire {
            Some(stats) => format!(", {} wire bits ({})", stats.total_bits(), stats.codec),
            None => String::new(),
        };
        match &self.verdict {
            Ok(outcome) => format!(
                "{} via {} on {}: leader {} in {} rounds, {} messages{advice}{wire} ({:?})",
                self.task,
                self.solver,
                self.backend,
                outcome.leader,
                self.rounds,
                self.messages_delivered,
                self.wall_time,
            ),
            Err(e) => format!(
                "{} via {} on {}: UNSOLVED ({e}) after {} rounds{advice}{wire}",
                self.task, self.solver, self.backend, self.rounds,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advice::{FnAlgorithm, FnOracle};
    use anet_graph::generators;
    use anet_views::{BitString, View};

    #[test]
    fn builder_without_solver_errors() {
        let g = generators::paper_three_node_line();
        let err = Election::task(Task::Selection).run(&g).unwrap_err();
        assert_eq!(err, EngineError::MissingSolver);
    }

    #[test]
    fn map_solver_through_the_engine_solves_every_shade() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        for task in Task::ALL {
            let report = Election::task(task)
                .solver(MapSolver::default())
                .run(&g)
                .expect("solvable ring");
            assert!(report.solved(), "{task}: {}", report.summary());
            assert_eq!(report.advice_bits, None);
            assert_eq!(report.outputs.len(), g.num_nodes());
        }
    }

    #[test]
    fn advice_solver_reports_bits_and_verdict() {
        let g = generators::star(5).unwrap();
        let report = Election::task(Task::Selection)
            .solver(AdviceSolver::theorem_2_2())
            .run(&g)
            .unwrap();
        assert!(report.solved());
        assert!(report.advice_bits.unwrap() > 0);
        assert_eq!(report.rounds, 0, "ψ_S(star) = 0");
        assert_eq!(report.messages_delivered, 0);
    }

    #[test]
    fn dag_advice_solver_matches_tree_solver_and_reports_both_sizes() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        let tree = Election::task(Task::Selection)
            .solver(AdviceSolver::theorem_2_2())
            .run(&g)
            .unwrap();
        let dag = Election::task(Task::Selection)
            .solver(AdviceSolver::theorem_2_2_dag())
            .run(&g)
            .unwrap();
        assert!(tree.solved() && dag.solved());
        assert_eq!(
            tree.outputs, dag.outputs,
            "codec changes the wire form only"
        );
        assert_eq!(tree.rounds, dag.rounds);
        // Each run ships its own codec's size and reports both.
        assert_eq!(tree.advice_bits, tree.advice_tree_bits);
        assert_eq!(dag.advice_bits, dag.advice_dag_bits);
        assert_eq!(tree.advice_dag_bits, dag.advice_dag_bits);
        assert_eq!(tree.advice_tree_bits, dag.advice_tree_bits);
        let s = dag.summary();
        assert!(s.contains("tree") && s.contains("dag"), "{s}");
    }

    #[test]
    fn engine_weakens_stronger_outputs_per_fact_1_1() {
        // A custom advice solver that always answers the CPPE shade on the 3-node
        // line; requesting weaker shades must succeed via automatic weakening.
        let g = generators::paper_three_node_line();
        let make = || {
            AdviceSolver::new(
                "hardwired-cppe",
                FnOracle(|_: &PortGraph| BitString::new()),
                FnAlgorithm {
                    rounds: |_: &BitString| 1usize,
                    decide: |_: &BitString, view: &View| {
                        if view.degree() == 2 {
                            NodeOutput::Leader
                        } else {
                            // Both leaves: their single edge leads to the centre.
                            let far = view.children()[0].1;
                            NodeOutput::FullPath(vec![(0, far)])
                        }
                    },
                },
            )
        };
        for task in Task::ALL {
            let report = Election::task(task).solver(make()).run(&g).unwrap();
            assert!(report.solved(), "{task}: {}", report.summary());
            // The stored outputs have been weakened to the requested shade.
            for out in &report.outputs {
                assert!(out.task().is_none_or(|t| t == task), "{task}");
            }
        }
    }

    #[test]
    fn unsolvable_graphs_yield_reports_with_failed_verdicts() {
        let g = generators::symmetric_ring(6).unwrap();
        let report = Election::task(Task::Selection)
            .solver(MapSolver::default())
            .run(&g);
        // The map solver refuses outright on infeasible graphs.
        assert!(matches!(report, Err(EngineError::Solver { .. })));
    }

    #[test]
    fn backends_produce_identical_reports() {
        let g = generators::random_connected(40, 4, 12, 77).unwrap();
        let builder = Election::task(Task::Selection).solver(MapSolver::default());
        let seq = builder.run(&g).unwrap();
        for backend in Backend::smoke_set() {
            let report = Election::task(Task::Selection)
                .solver(MapSolver::default())
                .backend(backend)
                .run(&g)
                .unwrap();
            assert_eq!(report.outputs, seq.outputs, "{backend}");
            assert_eq!(report.rounds, seq.rounds, "{backend}");
            assert_eq!(
                report.messages_delivered, seq.messages_delivered,
                "{backend}"
            );
            assert_eq!(report.leader(), seq.leader(), "{backend}");
        }
    }

    #[test]
    fn shared_interner_runs_match_private_runs_and_record_hits() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        let private = Election::task(Task::Selection)
            .solver(MapSolver::default())
            .run(&g)
            .unwrap();
        let table = Arc::new(SharedViewInterner::new());
        let first = Election::task(Task::Selection)
            .solver(MapSolver::default())
            .shared_interner(Arc::clone(&table))
            .run(&g)
            .unwrap();
        let second = Election::task(Task::Selection)
            .solver(MapSolver::default())
            .shared_interner(Arc::clone(&table))
            .run(&g)
            .unwrap();
        // Sharing the table changes allocation, never results.
        assert_eq!(private.outputs, first.outputs);
        assert_eq!(first.outputs, second.outputs);
        assert_eq!(private.rounds, second.rounds);
        // The second run re-interns the same ring's views: cross-run hits.
        assert!(table.stats().hits > 0, "{:?}", table.stats());
    }

    #[test]
    fn thread_budget_through_the_builder_keeps_outputs_identical() {
        let g = generators::random_connected(40, 4, 12, 77).unwrap();
        let plain = Election::task(Task::Selection)
            .solver(MapSolver::default())
            .backend(Backend::parallel(8))
            .run(&g)
            .unwrap();
        let budgeted = Election::task(Task::Selection)
            .solver(MapSolver::default())
            .backend(Backend::parallel(8))
            .thread_budget(1)
            .run(&g)
            .unwrap();
        assert_eq!(plain.outputs, budgeted.outputs);
        assert_eq!(plain.rounds, budgeted.rounds);
        assert_eq!(plain.messages_delivered, budgeted.messages_delivered);
        // The budget must not leak out of the run.
        assert_eq!(anet_sim::thread_budget(), usize::MAX);
    }

    #[test]
    fn untraced_runs_carry_no_profile() {
        let g = generators::paper_three_node_line();
        let report = Election::task(Task::Selection)
            .solver(MapSolver::default())
            .run(&g)
            .unwrap();
        assert!(report.round_profile.is_none());
    }

    #[test]
    fn profiled_runs_sum_to_messages_delivered_on_every_backend() {
        let g = generators::random_connected(24, 4, 8, 5).unwrap();
        for backend in Backend::smoke_set() {
            for solver in [
                Election::task(Task::Selection).solver(MapSolver::default()),
                Election::task(Task::Selection).solver(AdviceSolver::theorem_2_2()),
            ] {
                let report = solver.backend(backend).profiled().run(&g).unwrap();
                let profile = report.round_profile.as_ref().expect("profiled run");
                assert_eq!(profile.len(), report.rounds, "{backend}");
                assert_eq!(
                    profile.total_messages(),
                    report.messages_delivered as u64,
                    "{backend}"
                );
            }
        }
    }

    #[test]
    fn profiled_per_round_counts_are_backend_independent() {
        let g = generators::random_connected(24, 4, 8, 5).unwrap();
        let reference = Election::task(Task::Selection)
            .solver(MapSolver::default())
            .profiled()
            .run(&g)
            .unwrap();
        let reference_rounds: Vec<u64> = reference
            .round_profile
            .as_ref()
            .unwrap()
            .rounds()
            .iter()
            .map(|r| r.messages)
            .collect();
        for backend in Backend::smoke_set() {
            let report = Election::task(Task::Selection)
                .solver(MapSolver::default())
                .backend(backend)
                .profiled()
                .run(&g)
                .unwrap();
            let rounds: Vec<u64> = report
                .round_profile
                .as_ref()
                .unwrap()
                .rounds()
                .iter()
                .map(|r| r.messages)
                .collect();
            assert_eq!(rounds, reference_rounds, "{backend}");
            assert_eq!(report.outputs, reference.outputs, "{backend}");
        }
    }

    #[test]
    fn trace_sink_receives_tagged_events_and_interner_deltas() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        let recorder = Arc::new(Recorder::new());
        let table = Arc::new(SharedViewInterner::new());
        let report = Election::task(Task::Selection)
            .solver(MapSolver::default())
            .shared_interner(Arc::clone(&table))
            .trace_sink(Arc::new(Tagged::new(recorder.clone(), 42)))
            .run(&g)
            .unwrap();
        let events = recorder.drain();
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.trace_id() == 42), "{events:?}");
        // The forwarded stream reproduces the attached profile exactly.
        let profile = RoundProfile::from_events(&events);
        assert_eq!(Some(&profile), report.round_profile.as_ref());
        assert_eq!(profile.total_messages(), report.messages_delivered as u64);
        // The shared-interner run records its interner traffic.
        let delta = events
            .iter()
            .find(|e| matches!(e, TraceEvent::InternerDelta { .. }))
            .expect("interner delta event");
        match delta {
            TraceEvent::InternerDelta { misses, .. } => {
                assert!(*misses > 0, "first run on an empty table must miss")
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn tracing_never_changes_results() {
        let g = generators::random_connected(24, 4, 8, 5).unwrap();
        let plain = Election::task(Task::Selection)
            .solver(MapSolver::default())
            .run(&g)
            .unwrap();
        let traced = Election::task(Task::Selection)
            .solver(MapSolver::default())
            .trace_sink(Arc::new(Recorder::new()))
            .run(&g)
            .unwrap();
        assert_eq!(plain.outputs, traced.outputs);
        assert_eq!(plain.rounds, traced.rounds);
        assert_eq!(plain.messages_delivered, traced.messages_delivered);
        assert_eq!(plain.leader(), traced.leader());
    }

    #[test]
    fn metered_runs_report_wire_stats_without_changing_results() {
        let g = generators::random_connected(24, 4, 8, 5).unwrap();
        let plain = Election::task(Task::Selection)
            .solver(MapSolver::default())
            .run(&g)
            .unwrap();
        assert!(plain.wire.is_none(), "unmetered runs carry no wire stats");
        for codec in MessageCodec::ALL {
            let metered = Election::task(Task::Selection)
                .solver(MapSolver::default())
                .metered(codec)
                .run(&g)
                .unwrap();
            let wire = metered.wire.as_ref().expect("metered run");
            assert_eq!(wire.codec, codec);
            assert_eq!(wire.bits_per_edge_cap, None);
            assert!(wire.total_bits() > 0, "{codec}");
            // The per-round and per-edge breakdowns account for the same bits.
            assert_eq!(wire.total_bits(), wire.per_edge_total(), "{codec}");
            assert_eq!(metered.outputs, plain.outputs, "{codec}");
            assert_eq!(metered.rounds, plain.rounds, "{codec}");
            assert_eq!(metered.messages_delivered, plain.messages_delivered);
            assert!(
                metered.summary().contains("wire bits"),
                "{}",
                metered.summary()
            );
        }
    }

    #[test]
    fn metered_advice_runs_carry_wire_stats() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        let plain = Election::task(Task::Selection)
            .solver(AdviceSolver::theorem_2_2())
            .run(&g)
            .unwrap();
        let metered = Election::task(Task::Selection)
            .solver(AdviceSolver::theorem_2_2())
            .metered(MessageCodec::Delta)
            .run(&g)
            .unwrap();
        let wire = metered.wire.as_ref().expect("metered run");
        assert_eq!(wire.codec, MessageCodec::Delta);
        assert!(wire.total_bits() > 0);
        assert_eq!(metered.outputs, plain.outputs);
        assert_eq!(metered.rounds, plain.rounds);
        assert_eq!(metered.advice_bits, plain.advice_bits);
    }

    #[test]
    fn capped_backend_forces_metering_and_inflates_rounds_only() {
        let g = generators::random_connected(24, 4, 8, 5).unwrap();
        let plain = Election::task(Task::Selection)
            .solver(MapSolver::default())
            .run(&g)
            .unwrap();
        let capped = Election::task(Task::Selection)
            .solver(MapSolver::default())
            .backend(Backend::capped(8))
            .run(&g)
            .unwrap();
        let wire = capped
            .wire
            .as_ref()
            .expect("a capped run is always metered");
        assert_eq!(wire.bits_per_edge_cap, Some(8));
        assert_eq!(capped.outputs, plain.outputs);
        assert_eq!(capped.leader(), plain.leader());
        assert_eq!(capped.messages_delivered, plain.messages_delivered);
        assert!(capped.rounds >= plain.rounds, "streaming only adds rounds");
        // The cap binds every physical round: no round ships more than B bits on
        // any one of the 2m directed edges.
        let edges = 2 * g.num_edges() as u64;
        assert!(wire.per_round_bits.iter().all(|&b| b <= 8 * edges));
    }

    #[test]
    fn metered_profiles_reconcile_with_wire_stats() {
        let g = generators::random_connected(24, 4, 8, 5).unwrap();
        let report = Election::task(Task::Selection)
            .solver(MapSolver::default())
            .backend(Backend::capped(16))
            .metered(MessageCodec::Dag)
            .profiled()
            .run(&g)
            .unwrap();
        let profile = report.round_profile.as_ref().expect("profiled run");
        let wire = report.wire.as_ref().expect("metered run");
        assert_eq!(
            profile.len(),
            report.rounds,
            "one profile row per physical round"
        );
        assert_eq!(profile.total_wire_bits(), wire.total_bits());
        assert_eq!(profile.total_messages(), report.messages_delivered as u64);
    }

    #[test]
    fn analytic_solvers_profile_empty() {
        use anet_constructions::JClass;
        let class = JClass::new(2, 4).unwrap();
        let member = class.template(Some(3)).unwrap();
        let graph = member.labeled.graph.clone();
        let report = Election::task(Task::CompletePortPathElection)
            .solver(CppeSolver::new(member, class.k))
            .profiled()
            .run(&graph)
            .unwrap();
        let profile = report.round_profile.as_ref().expect("profiled run");
        assert!(
            profile.is_empty(),
            "the CPPE solver simulates nothing, so there are no round events"
        );
        assert!(report.messages_delivered > 0, "accounting is closed-form");
        assert!(report.wire.is_none(), "nothing simulated, nothing metered");
    }

    #[test]
    fn report_summary_is_informative() {
        let g = generators::star(4).unwrap();
        let report = Election::task(Task::Selection)
            .solver(AdviceSolver::theorem_2_2())
            .backend(Backend::Parallel { threads: 2 })
            .run(&g)
            .unwrap();
        let s = report.summary();
        assert!(s.contains("S via"), "{s}");
        assert!(s.contains("par2"), "{s}");
        assert!(s.contains("advice bits"), "{s}");
    }
}
