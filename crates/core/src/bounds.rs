//! Closed-form calculators for every quantitative bound stated in the paper.
//!
//! The experiment binaries print these side by side with the measured quantities
//! (advice bits actually used, class sizes actually instantiated, election indices
//! actually observed). Values that exceed `u64` are reported through their base-2
//! logarithm or as `f64::INFINITY`.

/// `z = (Δ−2)(Δ−1)^{k−1}` — the number of leaves of the tree `T` (Section 2.2.1).
pub fn tree_leaves(delta: usize, k: usize) -> f64 {
    (delta as f64 - 2.0) * (delta as f64 - 1.0).powi(k as i32 - 1)
}

/// Fact 2.3: `|G_{Δ,k}| = |T_{Δ,k}| = (Δ−1)^{(Δ−2)(Δ−1)^{k−1}}`, returned as `log₂`.
pub fn fact_2_3_log2_class_size(delta: usize, k: usize) -> f64 {
    tree_leaves(delta, k) * (delta as f64 - 1.0).log2()
}

/// Theorem 2.2 (upper bound): advice of size `O((Δ−1)^{ψ_S} log Δ)` suffices for
/// Selection in minimum time. Returned in the paper's asymptotic form
/// `(Δ−1)^{ψ_S}·log₂ Δ` (no hidden constant).
pub fn theorem_2_2_upper_form(delta: usize, psi_s: usize) -> f64 {
    (delta as f64 - 1.0).powi(psi_s as i32) * (delta as f64).log2()
}

/// Theorem 2.9 (lower bound): advice of size at least `⅛(Δ−1)^k log₂ Δ` is necessary
/// for Selection in minimum time on some graph of `G_{Δ,k}` (for `Δ ≥ 5`, `k ≥ 1`).
pub fn theorem_2_9_lower_bits(delta: usize, k: usize) -> f64 {
    0.125 * (delta as f64 - 1.0).powi(k as i32) * (delta as f64).log2()
}

/// Fact 3.1: `|U_{Δ,k}| = (Δ−1)^{(Δ−1)^{(Δ−2)(Δ−1)^{k−1}}}`, returned as `log₂`.
pub fn fact_3_1_log2_class_size(delta: usize, k: usize) -> f64 {
    // |T_{Δ,k}| = (Δ−1)^z may itself be astronomically large; log₂|U| = |T|·log₂(Δ−1).
    let t = (delta as f64 - 1.0).powf(tree_leaves(delta, k));
    t * (delta as f64 - 1.0).log2()
}

/// Theorem 3.11 (lower bound): advice of size at least `¼|T_{Δ,k}| log₂ Δ` is necessary
/// for Port Election in minimum time on some graph of `U_{Δ,k}` (for `Δ ≥ 4`, `k ≥ 1`).
pub fn theorem_3_11_lower_bits(delta: usize, k: usize) -> f64 {
    0.25 * (delta as f64 - 1.0).powf(tree_leaves(delta, k)) * (delta as f64).log2()
}

/// Fact 4.1: number of nodes of the layer graph `L_m` for arity `μ`.
pub fn fact_4_1_layer_size(mu: usize, m: usize) -> f64 {
    let mu = mu as f64;
    match m {
        0 => 1.0,
        1 => mu,
        _ => {
            let j = (m / 2) as i32;
            if m.is_multiple_of(2) {
                (mu.powi(j + 1) + mu.powi(j) - 2.0) / (mu - 1.0)
            } else {
                2.0 * (mu.powi(j + 1) - 1.0) / (mu - 1.0)
            }
        }
    }
}

/// Fact 4.2: `|J_{μ,k}| = 2^{2^{z−1}}` where `z = |L_k|`; returned as `log₂`, i.e.
/// `2^{z−1}`.
pub fn fact_4_2_log2_class_size(mu: usize, k: usize) -> f64 {
    2f64.powf(fact_4_1_layer_size(mu, k) - 1.0)
}

/// Theorems 4.11 / 4.12 (lower bound): advice of size at least `2^{Δ^{k/6}}` (stated
/// as `Ω(2^{Δ^{k/6}})`; the proof uses `2^{(4μ)^{k/6}}` with `μ = ⌈Δ/4⌉`) is necessary
/// for PPE / CPPE in minimum time on some graph of `J_{μ,k}` (for `Δ ≥ 16`, `k ≥ 6`).
pub fn theorem_4_11_lower_bits(delta: usize, k: usize) -> f64 {
    2f64.powf((delta as f64).powf(k as f64 / 6.0))
}

/// The proof-level form of the Theorem 4.11 bound, `2^{(4μ)^{k/6}}` with the `μ`
/// actually used in the construction.
pub fn theorem_4_11_lower_bits_mu(mu: usize, k: usize) -> f64 {
    2f64.powf((4.0 * mu as f64).powf(k as f64 / 6.0))
}

/// The headline separation of the paper, as a ratio of logarithms: how many times more
/// advice bits (in the exponent) the strong task needs compared to Selection, for the
/// same `(Δ, k)`. Returns `log₂(lower bound for Z) − log₂(upper bound for S)`.
pub fn separation_log2_gap(delta: usize, k: usize, strong_lower_bits: f64) -> f64 {
    strong_lower_bits.log2() - theorem_2_2_upper_form(delta, k).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_leaves_matches_integer_formula() {
        assert_eq!(tree_leaves(4, 1), 2.0);
        assert_eq!(tree_leaves(4, 2), 6.0);
        assert_eq!(tree_leaves(5, 2), 12.0);
        assert_eq!(tree_leaves(3, 3), 4.0);
    }

    #[test]
    fn fact_2_3_log2_matches_small_cases() {
        assert!((fact_2_3_log2_class_size(4, 1) - 9f64.log2()).abs() < 1e-9);
        assert!((fact_2_3_log2_class_size(4, 2) - 729f64.log2()).abs() < 1e-9);
        assert!((fact_2_3_log2_class_size(5, 1) - 64f64.log2()).abs() < 1e-9);
    }

    #[test]
    fn selection_bounds_nest_properly() {
        // The Theorem 2.9 lower bound is below the Theorem 2.2 upper form (they differ
        // by a constant factor of 8·((Δ−1)/Δ-ish), never crossing).
        for delta in 5..10 {
            for k in 1..5 {
                assert!(theorem_2_9_lower_bits(delta, k) <= theorem_2_2_upper_form(delta, k));
            }
        }
    }

    #[test]
    fn pe_lower_bound_is_exponentially_above_selection_upper_bound() {
        // The separation the paper is about: for fixed k, the PE bound grows like
        // (Δ−1)^{(Δ−2)(Δ−1)^{k−1}} while the S bound grows like (Δ−1)^k — i.e.
        // exponentially vs polynomially in Δ. (At very small Δ the constants of the
        // two bounds still overlap; the asymptotic statement is what the theorem says.)
        for delta in [6usize, 8, 10] {
            let s_bits = theorem_2_2_upper_form(delta, 1);
            let pe_bits = theorem_3_11_lower_bits(delta, 1);
            assert!(pe_bits > s_bits, "Δ = {delta}");
            assert!(
                pe_bits.log2() > (delta as f64 - 2.0),
                "PE advice is exponential in Δ"
            );
        }
        // And the gap widens with Δ.
        assert!(
            separation_log2_gap(8, 1, theorem_3_11_lower_bits(8, 1))
                > separation_log2_gap(6, 1, theorem_3_11_lower_bits(6, 1))
        );
    }

    #[test]
    fn fact_4_1_matches_the_integer_layer_sizes() {
        let expected3 = [1.0, 3.0, 5.0, 8.0, 17.0, 26.0];
        for (m, &e) in expected3.iter().enumerate() {
            assert_eq!(fact_4_1_layer_size(3, m), e);
        }
        let expected2 = [1.0, 2.0, 4.0, 6.0, 10.0, 14.0];
        for (m, &e) in expected2.iter().enumerate() {
            assert_eq!(fact_4_1_layer_size(2, m), e);
        }
    }

    #[test]
    fn fact_4_2_bounds_on_z_hold() {
        // μ^{⌊k/2⌋} ≤ z ≤ 4 μ^{⌊k/2⌋}.
        for mu in 2..5usize {
            for k in 4..8usize {
                let z = fact_4_1_layer_size(mu, k);
                let base = (mu as f64).powi((k / 2) as i32);
                assert!(base <= z && z <= 4.0 * base, "μ={mu}, k={k}");
            }
        }
        assert_eq!(fact_4_2_log2_class_size(2, 4), 2f64.powi(9));
    }

    #[test]
    fn ppe_lower_bound_forms_agree_in_spirit() {
        // 2^{Δ^{k/6}} with Δ = 4μ equals the proof-level form.
        assert_eq!(
            theorem_4_11_lower_bits(16, 6),
            theorem_4_11_lower_bits_mu(4, 6)
        );
        // The bound eventually dwarfs the Selection upper bound (the separation is
        // exponential-in-Δ vs polynomial-in-Δ, so it emerges for Δ beyond ≈40 at k=6,
        // and the ratio keeps growing).
        assert!(theorem_4_11_lower_bits(48, 6) > theorem_2_2_upper_form(48, 6));
        let ratio =
            |d: usize| theorem_4_11_lower_bits(d, 6).log2() - theorem_2_2_upper_form(d, 6).log2();
        assert!(ratio(64) > ratio(48) && ratio(48) > ratio(32));
    }
}
