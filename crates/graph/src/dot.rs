//! Graphviz (DOT) export.
//!
//! Used by the `exp_figures` experiment binary to regenerate the paper's figures: each
//! figure of the paper is a drawing of a construction, and the DOT output contains the
//! same information (nodes, edges and both port labels per edge, plus role names).

use crate::graph::PortGraph;
use crate::labeling::Labeling;
use std::fmt::Write as _;

/// Options controlling DOT output.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph name in the DOT header.
    pub name: String,
    /// Show role names (from a [`Labeling`]) as node labels when available.
    pub show_role_names: bool,
    /// Show the two port numbers of every edge as head/tail labels.
    pub show_ports: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "G".to_string(),
            show_role_names: true,
            show_ports: true,
        }
    }
}

/// Render a graph (optionally with role labels) to DOT format.
pub fn to_dot(g: &PortGraph, labels: Option<&Labeling>, opts: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {} {{", sanitize(&opts.name));
    let _ = writeln!(out, "  node [shape=circle, fontsize=10];");
    for v in g.nodes() {
        let role = labels.and_then(|l| {
            if opts.show_role_names {
                l.name_of(v)
            } else {
                None
            }
        });
        match role {
            Some(name) => {
                let _ = writeln!(out, "  n{v} [label=\"{}\"];", escape(name));
            }
            None => {
                let _ = writeln!(out, "  n{v} [label=\"\"];");
            }
        }
    }
    for e in g.edges() {
        if opts.show_ports {
            let _ = writeln!(
                out,
                "  n{} -- n{} [taillabel=\"{}\", headlabel=\"{}\", fontsize=8];",
                e.u, e.v, e.port_u, e.port_v
            );
        } else {
            let _ = writeln!(out, "  n{} -- n{};", e.u, e.v);
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Render with default options and no labels.
pub fn to_dot_simple(g: &PortGraph) -> String {
    to_dot(g, None, &DotOptions::default())
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "G".to_string()
    } else {
        cleaned
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::labeling::Labeling;

    #[test]
    fn dot_contains_all_edges_and_ports() {
        let g = generators::paper_three_node_line();
        let dot = to_dot_simple(&g);
        assert!(dot.starts_with("graph G {"));
        assert!(dot.trim_end().ends_with('}'));
        // Two edges, each rendered once.
        assert_eq!(dot.matches(" -- ").count(), 2);
        // Port labels of the paper's line: 0,0 and 1,0.
        assert!(dot.contains("taillabel=\"0\", headlabel=\"0\""));
        assert!(dot.contains("taillabel=\"1\", headlabel=\"0\""));
    }

    #[test]
    fn role_names_appear_when_requested() {
        let g = generators::paper_three_node_line();
        let mut l = Labeling::new();
        l.name(1, "centre").unwrap();
        let dot = to_dot(&g, Some(&l), &DotOptions::default());
        assert!(dot.contains("label=\"centre\""));

        let dot_no_roles = to_dot(
            &g,
            Some(&l),
            &DotOptions {
                show_role_names: false,
                ..DotOptions::default()
            },
        );
        assert!(!dot_no_roles.contains("centre"));
    }

    #[test]
    fn ports_can_be_hidden() {
        let g = generators::paper_three_node_line();
        let dot = to_dot(
            &g,
            None,
            &DotOptions {
                show_ports: false,
                ..DotOptions::default()
            },
        );
        assert!(!dot.contains("taillabel"));
    }

    #[test]
    fn graph_name_is_sanitized_and_labels_escaped() {
        let g = generators::paper_three_node_line();
        let dot = to_dot(
            &g,
            None,
            &DotOptions {
                name: "G_{4,1} (i=3)".to_string(),
                ..DotOptions::default()
            },
        );
        assert!(dot.starts_with("graph G__4_1___i_3_ {"));

        let mut l = Labeling::new();
        l.name(0, "say \"hi\"").unwrap();
        let dot = to_dot(&g, Some(&l), &DotOptions::default());
        assert!(dot.contains("say \\\"hi\\\""));
    }
}
