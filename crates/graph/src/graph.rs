//! The core [`PortGraph`] type: a validated, immutable, anonymous port-numbered graph.

use crate::error::GraphError;
use crate::Result;
use std::collections::VecDeque;

/// Index of a node. Nodes are anonymous in the model; these ids exist only so the
/// *simulation infrastructure* (and oracles, which see the whole graph) can address
/// nodes. Distributed algorithms never observe them.
pub type NodeId = u32;

/// A local port number at a node. At a node of degree `d` the ports are exactly
/// `0..d`, with no relation between the two port numbers of an edge.
pub type Port = u32;

/// A single undirected edge together with its two port numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeRef {
    /// First endpoint.
    pub u: NodeId,
    /// Port number of the edge at `u`.
    pub port_u: Port,
    /// Second endpoint.
    pub v: NodeId,
    /// Port number of the edge at `v`.
    pub port_v: Port,
}

impl EdgeRef {
    /// The same edge seen from the other endpoint.
    pub fn reversed(self) -> EdgeRef {
        EdgeRef {
            u: self.v,
            port_u: self.port_v,
            v: self.u,
            port_v: self.port_u,
        }
    }
}

/// An anonymous, simple, undirected, connected port-numbered graph.
///
/// Internally the graph stores, for every node `v` and every port `p` at `v`, the pair
/// `(u, q)` where `u` is the neighbour reached through port `p` and `q` is the port of
/// the same edge at `u`. All invariants of the model (ports are `0..deg(v)`, the port
/// map is an involution, simplicity, connectivity) are validated at construction time
/// by [`crate::GraphBuilder::build`], so every `PortGraph` value is a legal network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortGraph {
    /// `adj[v][p] = (u, q)`.
    adj: Vec<Vec<(NodeId, Port)>>,
    /// Total number of undirected edges.
    num_edges: usize,
}

impl PortGraph {
    /// Construct from a fully specified adjacency structure, validating every model
    /// invariant. Prefer [`crate::GraphBuilder`], which produces this structure safely.
    pub fn from_adjacency(adj: Vec<Vec<(NodeId, Port)>>) -> Result<Self> {
        if adj.is_empty() {
            return Err(GraphError::Empty);
        }
        let n = adj.len() as u32;
        let mut num_edges = 0usize;
        for (v, ports) in adj.iter().enumerate() {
            let v = v as NodeId;
            for (p, &(u, q)) in ports.iter().enumerate() {
                let p = p as Port;
                if u >= n {
                    return Err(GraphError::UnknownNode {
                        node: u,
                        num_nodes: n,
                    });
                }
                if u == v {
                    return Err(GraphError::SelfLoop { node: v });
                }
                // The port map must be an involution: the entry at (u, q) must be (v, p).
                let back = adj[u as usize].get(q as usize).copied();
                if back != Some((v, p)) {
                    return Err(GraphError::NonContiguousPorts {
                        node: u,
                        missing_port: q,
                        degree: adj[u as usize].len() as u32,
                    });
                }
                num_edges += 1;
            }
            // Simplicity: no two ports of v may lead to the same neighbour.
            let mut targets: Vec<NodeId> = ports.iter().map(|&(u, _)| u).collect();
            targets.sort_unstable();
            for w in targets.windows(2) {
                if w[0] == w[1] {
                    return Err(GraphError::ParallelEdge { u: v, v: w[0] });
                }
            }
        }
        debug_assert!(num_edges.is_multiple_of(2));
        let g = PortGraph {
            adj,
            num_edges: num_edges / 2,
        };
        let reachable = g.bfs_distances(0).iter().filter(|d| d.is_some()).count() as u32;
        if reachable != n {
            return Err(GraphError::Disconnected {
                reachable,
                total: n,
            });
        }
        Ok(g)
    }

    /// Number of nodes (`n` in the paper).
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of node `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v as usize].len()
    }

    /// Maximum degree `Δ`.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Minimum degree.
    pub fn min_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// The neighbour reached from `v` through port `p`, together with the port of the
    /// same edge at the neighbour. Returns `None` if `p ≥ deg(v)`.
    pub fn neighbor(&self, v: NodeId, p: Port) -> Option<(NodeId, Port)> {
        self.adj[v as usize].get(p as usize).copied()
    }

    /// Iterator over `(port, neighbour, neighbour_port)` triples at node `v`, in port
    /// order — exactly the local information a node of the network has about its edges.
    pub fn ports(&self, v: NodeId) -> impl Iterator<Item = (Port, NodeId, Port)> + '_ {
        self.adj[v as usize]
            .iter()
            .enumerate()
            .map(|(p, &(u, q))| (p as Port, u, q))
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.adj.len() as NodeId
    }

    /// Iterator over every undirected edge, reported once with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.nodes().flat_map(move |v| {
            self.ports(v).filter_map(move |(p, u, q)| {
                if v < u {
                    Some(EdgeRef {
                        u: v,
                        port_u: p,
                        v: u,
                        port_v: q,
                    })
                } else {
                    None
                }
            })
        })
    }

    /// The port at `v` of the edge `{v, u}`, if such an edge exists.
    pub fn port_towards(&self, v: NodeId, u: NodeId) -> Option<Port> {
        self.ports(v).find(|&(_, w, _)| w == u).map(|(p, _, _)| p)
    }

    /// BFS distances from `source`; `None` for unreachable nodes (cannot happen in a
    /// validated graph but the helper is also used during validation and on subgraphs).
    pub fn bfs_distances(&self, source: NodeId) -> Vec<Option<u32>> {
        self.bfs_distances_avoiding(source, None)
    }

    /// BFS distances from `source` in the graph with the node `avoid` (if any) removed.
    /// Used by the Port Election verifier: a simple path from `v`'s neighbour to the
    /// leader avoiding `v` exists iff the leader is reachable in `G − v`.
    pub fn bfs_distances_avoiding(
        &self,
        source: NodeId,
        avoid: Option<NodeId>,
    ) -> Vec<Option<u32>> {
        let n = self.num_nodes();
        let mut dist = vec![None; n];
        if Some(source) == avoid {
            return dist;
        }
        dist[source as usize] = Some(0);
        let mut queue = VecDeque::new();
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            let dv = dist[v as usize].expect("queued node has a distance");
            for (_, u, _) in self.ports(v) {
                if Some(u) == avoid {
                    continue;
                }
                if dist[u as usize].is_none() {
                    dist[u as usize] = Some(dv + 1);
                    queue.push_back(u);
                }
            }
        }
        dist
    }

    /// Distance between two nodes.
    pub fn distance(&self, u: NodeId, v: NodeId) -> u32 {
        self.bfs_distances(u)[v as usize].expect("validated graphs are connected")
    }

    /// Eccentricity of a node: maximum distance to any other node.
    pub fn eccentricity(&self, v: NodeId) -> u32 {
        self.bfs_distances(v)
            .iter()
            .map(|d| d.expect("connected"))
            .max()
            .unwrap_or(0)
    }

    /// Diameter of the graph (maximum eccentricity). `O(n·m)`; fine for the graph sizes
    /// used in tests and experiments.
    pub fn diameter(&self) -> u32 {
        self.nodes()
            .map(|v| self.eccentricity(v))
            .max()
            .unwrap_or(0)
    }

    /// One shortest path from `u` to `v` as a list of nodes (including both endpoints).
    pub fn shortest_path(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        let n = self.num_nodes();
        let mut prev: Vec<Option<NodeId>> = vec![None; n];
        let mut seen = vec![false; n];
        seen[u as usize] = true;
        let mut queue = VecDeque::new();
        queue.push_back(u);
        while let Some(x) = queue.pop_front() {
            if x == v {
                break;
            }
            for (_, y, _) in self.ports(x) {
                if !seen[y as usize] {
                    seen[y as usize] = true;
                    prev[y as usize] = Some(x);
                    queue.push_back(y);
                }
            }
        }
        let mut path = vec![v];
        let mut cur = v;
        while cur != u {
            cur = prev[cur as usize].expect("connected graph: path exists");
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// Outgoing-port labels along a node path: for consecutive nodes `(a, b)` the port
    /// at `a` of the edge `{a, b}`. Panics if the path uses a non-edge.
    pub fn outgoing_ports_of_path(&self, path: &[NodeId]) -> Vec<Port> {
        path.windows(2)
            .map(|w| {
                self.port_towards(w[0], w[1])
                    .expect("consecutive path nodes must be adjacent")
            })
            .collect()
    }

    /// Both port labels along a node path: for consecutive `(a, b)` the pair
    /// `(port at a, port at b)` of the edge `{a, b}` — the encoding used by the CPPE task.
    pub fn full_ports_of_path(&self, path: &[NodeId]) -> Vec<(Port, Port)> {
        path.windows(2)
            .map(|w| {
                let p = self
                    .port_towards(w[0], w[1])
                    .expect("consecutive path nodes must be adjacent");
                let (_, q) = self.neighbor(w[0], p).expect("port exists");
                (p, q)
            })
            .collect()
    }

    /// Follow a sequence of *outgoing* ports starting at `start`. Returns the visited
    /// nodes (including `start`), or `None` if some port does not exist at the current
    /// node. This is how a PPE output is interpreted.
    pub fn follow_outgoing_ports(&self, start: NodeId, ports: &[Port]) -> Option<Vec<NodeId>> {
        let mut nodes = Vec::with_capacity(ports.len() + 1);
        nodes.push(start);
        let mut cur = start;
        for &p in ports {
            let (u, _) = self.neighbor(cur, p)?;
            nodes.push(u);
            cur = u;
        }
        Some(nodes)
    }

    /// Follow a sequence of `(outgoing, incoming)` port pairs starting at `start`,
    /// checking that the incoming port of every traversed edge matches. This is how a
    /// CPPE output `(p_1, q_1, …, p_k, q_k)` is interpreted.
    pub fn follow_full_ports(&self, start: NodeId, ports: &[(Port, Port)]) -> Option<Vec<NodeId>> {
        let mut nodes = Vec::with_capacity(ports.len() + 1);
        nodes.push(start);
        let mut cur = start;
        for &(p, q) in ports {
            let (u, q_actual) = self.neighbor(cur, p)?;
            if q_actual != q {
                return None;
            }
            nodes.push(u);
            cur = u;
        }
        Some(nodes)
    }

    /// Does the node sequence form a *simple* path (no repeated node)?
    pub fn is_simple_node_sequence(path: &[NodeId]) -> bool {
        let mut sorted = path.to_vec();
        sorted.sort_unstable();
        sorted.windows(2).all(|w| w[0] != w[1])
    }

    /// Degree sequence, sorted descending. Handy fingerprint in tests.
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut ds: Vec<usize> = self.nodes().map(|v| self.degree(v)).collect();
        ds.sort_unstable_by(|a, b| b.cmp(a));
        ds
    }

    /// Count of nodes having each degree, indexed by degree (length `Δ + 1`).
    pub fn degree_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_degree() + 1];
        for v in self.nodes() {
            hist[self.degree(v)] += 1;
        }
        hist
    }

    /// The port-offset table: `offsets[v]` is the index of `(v, port 0)` in a flat
    /// array holding one slot per directed port, in node order; `offsets[n]` is the
    /// total number of directed ports (`2m`). This is the CSR-style indexing the
    /// batching execution backend uses to lay all per-round outboxes and inboxes out
    /// in two flat arenas: the slot of `(v, p)` is `offsets[v] + p`.
    pub fn port_offsets(&self) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(self.adj.len() + 1);
        let mut total = 0usize;
        for ports in &self.adj {
            offsets.push(total);
            total += ports.len();
        }
        offsets.push(total);
        offsets
    }

    /// The flat routing table over the port-offset table: `route[offsets[v] + p] =
    /// offsets[u] + q` where `(u, q)` is across port `p` of `v`. Routing a round of
    /// messages becomes one linear pass over this permutation of `0..2m` (the table is
    /// an involution, like the port map it flattens).
    pub fn flat_route_table(&self) -> Vec<usize> {
        self.flat_route_table_with(&self.port_offsets())
    }

    /// [`flat_route_table`](PortGraph::flat_route_table) against a caller-supplied
    /// port-offset table (which must come from [`PortGraph::port_offsets`] on this
    /// graph), so callers that already hold the offsets build both tables in one pass
    /// each — the batching backend does this once per run.
    pub fn flat_route_table_with(&self, offsets: &[usize]) -> Vec<usize> {
        debug_assert_eq!(offsets.len(), self.adj.len() + 1);
        let mut route = Vec::with_capacity(*offsets.last().expect("offsets non-empty"));
        for ports in &self.adj {
            for &(u, q) in ports {
                route.push(offsets[u as usize] + q as usize);
            }
        }
        route
    }

    /// Access to the raw adjacency (read-only); used by the permutation utilities.
    pub(crate) fn adjacency(&self) -> &Vec<Vec<(NodeId, Port)>> {
        &self.adj
    }

    /// Consume the graph and return its raw adjacency.
    pub fn into_adjacency(self) -> Vec<Vec<(NodeId, Port)>> {
        self.adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// The 3-node line with ports 0,0,1,0 from left to right, used in the paper's
    /// introduction as an example with `ψ_CPPE = 1`.
    fn three_node_line() -> PortGraph {
        let mut b = GraphBuilder::with_nodes(3);
        b.add_edge(0, 0, 1, 0).unwrap();
        b.add_edge(1, 1, 2, 0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = three_node_line();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 1);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 1);
        assert_eq!(g.degree_sequence(), vec![2, 1, 1]);
        assert_eq!(g.degree_histogram(), vec![0, 2, 1]);
    }

    #[test]
    fn neighbor_lookup_and_port_towards() {
        let g = three_node_line();
        assert_eq!(g.neighbor(0, 0), Some((1, 0)));
        assert_eq!(g.neighbor(1, 0), Some((0, 0)));
        assert_eq!(g.neighbor(1, 1), Some((2, 0)));
        assert_eq!(g.neighbor(2, 0), Some((1, 1)));
        assert_eq!(g.neighbor(0, 1), None);
        assert_eq!(g.port_towards(1, 2), Some(1));
        assert_eq!(g.port_towards(2, 1), Some(0));
        assert_eq!(g.port_towards(0, 2), None);
    }

    #[test]
    fn distances_and_diameter() {
        let g = three_node_line();
        assert_eq!(g.distance(0, 2), 2);
        assert_eq!(g.distance(0, 0), 0);
        assert_eq!(g.diameter(), 2);
        assert_eq!(g.eccentricity(1), 1);
    }

    #[test]
    fn bfs_avoiding_disconnects() {
        let g = three_node_line();
        // Removing the middle node separates the endpoints.
        let d = g.bfs_distances_avoiding(0, Some(1));
        assert_eq!(d[0], Some(0));
        assert_eq!(d[1], None);
        assert_eq!(d[2], None);
    }

    #[test]
    fn shortest_path_and_port_extraction() {
        let g = three_node_line();
        let path = g.shortest_path(0, 2);
        assert_eq!(path, vec![0, 1, 2]);
        assert_eq!(g.outgoing_ports_of_path(&path), vec![0, 1]);
        assert_eq!(g.full_ports_of_path(&path), vec![(0, 0), (1, 0)]);
    }

    #[test]
    fn follow_ports_round_trips() {
        let g = three_node_line();
        assert_eq!(g.follow_outgoing_ports(0, &[0, 1]), Some(vec![0, 1, 2]));
        assert_eq!(g.follow_outgoing_ports(0, &[1]), None);
        assert_eq!(
            g.follow_full_ports(0, &[(0, 0), (1, 0)]),
            Some(vec![0, 1, 2])
        );
        // Wrong incoming port is rejected.
        assert_eq!(g.follow_full_ports(0, &[(0, 1)]), None);
    }

    #[test]
    fn edge_iteration_reports_each_edge_once() {
        let g = three_node_line();
        let edges: Vec<EdgeRef> = g.edges().collect();
        assert_eq!(edges.len(), 2);
        assert!(edges.iter().all(|e| e.u < e.v));
        let rev = edges[0].reversed();
        assert_eq!(rev.u, edges[0].v);
        assert_eq!(rev.port_u, edges[0].port_v);
    }

    #[test]
    fn from_adjacency_rejects_broken_involution() {
        // Port map not symmetric: node 1 thinks its port 0 goes back to (0,1).
        let adj = vec![vec![(1, 0)], vec![(0, 1)]];
        assert!(PortGraph::from_adjacency(adj).is_err());
    }

    #[test]
    fn from_adjacency_rejects_self_loop_and_disconnected() {
        let adj = vec![vec![(0, 0)]];
        assert!(matches!(
            PortGraph::from_adjacency(adj),
            Err(GraphError::SelfLoop { node: 0 })
        ));

        // Two disjoint edges: 0-1 and 2-3.
        let adj = vec![vec![(1, 0)], vec![(0, 0)], vec![(3, 0)], vec![(2, 0)]];
        assert!(matches!(
            PortGraph::from_adjacency(adj),
            Err(GraphError::Disconnected { .. })
        ));
    }

    #[test]
    fn from_adjacency_rejects_parallel_edges() {
        // Two nodes joined by two edges.
        let adj = vec![vec![(1, 0), (1, 1)], vec![(0, 0), (0, 1)]];
        assert!(matches!(
            PortGraph::from_adjacency(adj),
            Err(GraphError::ParallelEdge { .. })
        ));
    }

    #[test]
    fn empty_graph_rejected() {
        assert!(matches!(
            PortGraph::from_adjacency(vec![]),
            Err(GraphError::Empty)
        ));
    }

    #[test]
    fn port_offsets_are_degree_prefix_sums() {
        let g = three_node_line();
        assert_eq!(g.port_offsets(), vec![0, 1, 3, 4]);
        let single = PortGraph::from_adjacency(vec![vec![]]).unwrap();
        assert_eq!(single.port_offsets(), vec![0, 0]);
    }

    #[test]
    fn flat_route_table_is_an_involution_matching_neighbor() {
        let g = crate::generators::random_connected(30, 5, 12, 11).unwrap();
        let offsets = g.port_offsets();
        let route = g.flat_route_table();
        assert_eq!(route.len(), 2 * g.num_edges());
        for v in g.nodes() {
            for (p, u, q) in g.ports(v) {
                let slot = offsets[v as usize] + p as usize;
                let far = offsets[u as usize] + q as usize;
                assert_eq!(route[slot], far);
                assert_eq!(route[far], slot, "routing is an involution");
            }
        }
    }

    #[test]
    fn simple_node_sequence_check() {
        assert!(PortGraph::is_simple_node_sequence(&[0, 1, 2]));
        assert!(!PortGraph::is_simple_node_sequence(&[0, 1, 0]));
        assert!(PortGraph::is_simple_node_sequence(&[5]));
        assert!(PortGraph::is_simple_node_sequence(&[]));
    }
}
