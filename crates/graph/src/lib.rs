//! # anet-graph — anonymous port-numbered network graphs
//!
//! This crate provides the network substrate used throughout the reproduction of
//! *"Four Shades of Deterministic Leader Election in Anonymous Networks"*
//! (Gorain, Miller, Pelc — SPAA 2021).
//!
//! A network is modelled as a simple, undirected, connected graph whose nodes carry
//! **no identifiers**. At each node `v` of degree `d`, the incident edges are
//! distinguished only by *port numbers* `0..d`, assigned locally and independently at
//! both endpoints of every edge. The central type is [`PortGraph`].
//!
//! The crate deliberately contains no knowledge of views, elections or advice: those
//! live in the `anet-views` and `anet-election` crates. What lives here is
//!
//! * [`PortGraph`] — the validated immutable graph, with BFS/shortest-path helpers,
//! * [`GraphBuilder`] — incremental construction with automatic or explicit ports,
//! * [`generators`] — the standard families used by tests, examples and benchmarks
//!   (paths, rings, cliques, hypercubes, full trees, random connected graphs),
//! * [`permute`] — port swaps and node relabellings (the paper's constructions are
//!   defined by swapping ports of a template graph),
//! * [`Labeling`] — optional human-readable role names attached to nodes (the paper's
//!   constructions need to talk about `r_{j,b}`, `c_m`, `ρ_i`, … even though the
//!   *nodes themselves* are anonymous; labels are metadata for tests and oracles, and
//!   are never available to distributed algorithms),
//! * [`dot`] — Graphviz export used to regenerate the paper's figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod dot;
pub mod error;
pub mod generators;
pub mod graph;
pub mod labeling;
pub mod permute;
pub mod rng;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{EdgeRef, NodeId, Port, PortGraph};
pub use labeling::{LabeledGraph, Labeling};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
