//! Incremental construction of [`PortGraph`] values.

use crate::error::GraphError;
use crate::graph::{NodeId, Port, PortGraph};
use crate::Result;
use std::collections::BTreeMap;

/// Builder for [`PortGraph`].
///
/// Two styles of edge insertion are supported:
///
/// * [`GraphBuilder::add_edge`] — both port numbers are given explicitly. This is what
///   the paper's constructions use, since every port label matters there.
/// * [`GraphBuilder::add_edge_auto`] — the next free port is assigned at each endpoint.
///   This is convenient for generators and tests where the precise labels are
///   irrelevant (only the invariant "ports at `v` are `0..deg(v)`" matters).
///
/// `build` checks all model invariants and produces an immutable [`PortGraph`].
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    /// Sparse port maps per node; turned into dense `0..deg` vectors by `build`.
    ports: Vec<BTreeMap<Port, (NodeId, Port)>>,
}

impl GraphBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        GraphBuilder { ports: Vec::new() }
    }

    /// Create a builder with `n` isolated nodes (ids `0..n`).
    pub fn with_nodes(n: usize) -> Self {
        GraphBuilder {
            ports: vec![BTreeMap::new(); n],
        }
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.ports.len()
    }

    /// Add one node and return its id.
    pub fn add_node(&mut self) -> NodeId {
        self.ports.push(BTreeMap::new());
        (self.ports.len() - 1) as NodeId
    }

    /// Add `count` nodes and return their ids.
    pub fn add_nodes(&mut self, count: usize) -> Vec<NodeId> {
        (0..count).map(|_| self.add_node()).collect()
    }

    /// Current degree of a node (number of ports already assigned).
    pub fn degree(&self, v: NodeId) -> usize {
        self.ports.get(v as usize).map(|m| m.len()).unwrap_or(0)
    }

    /// Smallest port number not yet used at `v`.
    pub fn next_free_port(&self, v: NodeId) -> Port {
        let used = &self.ports[v as usize];
        let mut p = 0;
        while used.contains_key(&p) {
            p += 1;
        }
        p
    }

    /// Does the builder already contain an edge between `u` and `v`?
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.ports
            .get(u as usize)
            .map(|m| m.values().any(|&(w, _)| w == v))
            .unwrap_or(false)
    }

    /// Add the edge `{u, v}` with explicit port numbers `pu` at `u` and `pv` at `v`.
    pub fn add_edge(&mut self, u: NodeId, pu: Port, v: NodeId, pv: Port) -> Result<()> {
        let n = self.ports.len() as u32;
        if u >= n {
            return Err(GraphError::UnknownNode {
                node: u,
                num_nodes: n,
            });
        }
        if v >= n {
            return Err(GraphError::UnknownNode {
                node: v,
                num_nodes: n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if self.has_edge(u, v) {
            return Err(GraphError::ParallelEdge { u, v });
        }
        if self.ports[u as usize].contains_key(&pu) {
            return Err(GraphError::DuplicatePort { node: u, port: pu });
        }
        if self.ports[v as usize].contains_key(&pv) {
            return Err(GraphError::DuplicatePort { node: v, port: pv });
        }
        self.ports[u as usize].insert(pu, (v, pv));
        self.ports[v as usize].insert(pv, (u, pu));
        Ok(())
    }

    /// Add the edge `{u, v}` using the next free port at each endpoint; returns the
    /// assigned `(port_at_u, port_at_v)`.
    pub fn add_edge_auto(&mut self, u: NodeId, v: NodeId) -> Result<(Port, Port)> {
        let pu = self.next_free_port(u);
        let pv = self.next_free_port(v);
        self.add_edge(u, pu, v, pv)?;
        Ok((pu, pv))
    }

    /// Append a disjoint copy of another builder's partial graph; returns the offset to
    /// add to the other builder's node ids to obtain ids in `self`. This is the basic
    /// tool used by the paper's constructions ("take the disjoint union of …").
    pub fn append_disjoint(&mut self, other: &GraphBuilder) -> NodeId {
        let offset = self.ports.len() as NodeId;
        for m in &other.ports {
            let shifted: BTreeMap<Port, (NodeId, Port)> =
                m.iter().map(|(&p, &(u, q))| (p, (u + offset, q))).collect();
            self.ports.push(shifted);
        }
        offset
    }

    /// Append a disjoint copy of a finished [`PortGraph`]; returns the node-id offset.
    pub fn append_graph(&mut self, g: &PortGraph) -> NodeId {
        let offset = self.ports.len() as NodeId;
        for v in g.nodes() {
            let m: BTreeMap<Port, (NodeId, Port)> =
                g.ports(v).map(|(p, u, q)| (p, (u + offset, q))).collect();
            self.ports.push(m);
        }
        offset
    }

    /// Validate and freeze the graph.
    ///
    /// Validation errors:
    /// * ports at some node are not exactly `0..deg` ([`GraphError::NonContiguousPorts`]),
    /// * the graph is empty or disconnected.
    pub fn build(self) -> Result<PortGraph> {
        if self.ports.is_empty() {
            return Err(GraphError::Empty);
        }
        let mut adj: Vec<Vec<(NodeId, Port)>> = Vec::with_capacity(self.ports.len());
        for (v, m) in self.ports.iter().enumerate() {
            let deg = m.len() as u32;
            let mut row = Vec::with_capacity(m.len());
            for (expected, (&p, &(u, q))) in m.iter().enumerate() {
                if p != expected as u32 {
                    return Err(GraphError::NonContiguousPorts {
                        node: v as u32,
                        missing_port: expected as u32,
                        degree: deg,
                    });
                }
                row.push((u, q));
            }
            adj.push(row);
        }
        PortGraph::from_adjacency(adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_ports_build_a_ring() {
        // 4-ring with ports alternating 0/1 as in the paper's cycle constructions.
        let mut b = GraphBuilder::with_nodes(4);
        for i in 0..4u32 {
            let j = (i + 1) % 4;
            b.add_edge(i, 0, j, 1).unwrap();
        }
        let g = b.build().unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
    }

    #[test]
    fn auto_ports_are_contiguous() {
        let mut b = GraphBuilder::with_nodes(4);
        // Star centred at 0.
        for v in 1..4 {
            let (pu, pv) = b.add_edge_auto(0, v).unwrap();
            assert_eq!(pu, v - 1);
            assert_eq!(pv, 0);
        }
        let g = b.build().unwrap();
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn duplicate_port_rejected() {
        let mut b = GraphBuilder::with_nodes(3);
        b.add_edge(0, 0, 1, 0).unwrap();
        let err = b.add_edge(0, 0, 2, 0).unwrap_err();
        assert_eq!(err, GraphError::DuplicatePort { node: 0, port: 0 });
    }

    #[test]
    fn parallel_edge_rejected() {
        let mut b = GraphBuilder::with_nodes(2);
        b.add_edge(0, 0, 1, 0).unwrap();
        let err = b.add_edge(0, 1, 1, 1).unwrap_err();
        assert_eq!(err, GraphError::ParallelEdge { u: 0, v: 1 });
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = GraphBuilder::with_nodes(1);
        assert_eq!(
            b.add_edge(0, 0, 0, 1).unwrap_err(),
            GraphError::SelfLoop { node: 0 }
        );
    }

    #[test]
    fn unknown_node_rejected() {
        let mut b = GraphBuilder::with_nodes(2);
        assert!(matches!(
            b.add_edge(0, 0, 5, 0).unwrap_err(),
            GraphError::UnknownNode { node: 5, .. }
        ));
    }

    #[test]
    fn gap_in_ports_rejected_at_build() {
        let mut b = GraphBuilder::with_nodes(2);
        // Only port 1 used at node 0: port 0 is missing.
        b.add_edge(0, 1, 1, 0).unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            GraphError::NonContiguousPorts {
                node: 0,
                missing_port: 0,
                ..
            }
        ));
    }

    #[test]
    fn disconnected_rejected_at_build() {
        let mut b = GraphBuilder::with_nodes(4);
        b.add_edge(0, 0, 1, 0).unwrap();
        b.add_edge(2, 0, 3, 0).unwrap();
        assert!(matches!(
            b.build().unwrap_err(),
            GraphError::Disconnected { .. }
        ));
    }

    #[test]
    fn append_disjoint_offsets_ids() {
        let mut half = GraphBuilder::with_nodes(2);
        half.add_edge(0, 0, 1, 0).unwrap();

        let mut b = GraphBuilder::new();
        let off0 = b.append_disjoint(&half);
        let off1 = b.append_disjoint(&half);
        assert_eq!(off0, 0);
        assert_eq!(off1, 2);
        // Connect the two halves so the result is connected.
        b.add_edge(0, 1, 2, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbor(2, 0), Some((3, 0)));
    }

    #[test]
    fn append_graph_offsets_ids() {
        let mut b0 = GraphBuilder::with_nodes(2);
        b0.add_edge(0, 0, 1, 0).unwrap();
        let g0 = b0.build().unwrap();

        let mut b = GraphBuilder::new();
        b.append_graph(&g0);
        let off = b.append_graph(&g0);
        assert_eq!(off, 2);
        b.add_edge(1, 1, 2, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn next_free_port_skips_used() {
        let mut b = GraphBuilder::with_nodes(3);
        b.add_edge(0, 1, 1, 0).unwrap();
        assert_eq!(b.next_free_port(0), 0);
        b.add_edge(0, 0, 2, 0).unwrap();
        assert_eq!(b.next_free_port(0), 2);
    }
}
