//! Role labels for nodes of otherwise-anonymous graphs.
//!
//! The constructions of the paper are described in terms of named nodes
//! (`r_{j,b}`, `c_m`, `ρ_i`, `w_{q,1}` …). Nodes of the network itself remain
//! anonymous: a [`Labeling`] is *metadata* available to tests, oracles (which see the
//! whole graph anyway) and figure exporters, never to distributed algorithms.

use crate::error::GraphError;
use crate::graph::{NodeId, PortGraph};
use crate::Result;
use std::collections::BTreeMap;

/// A bidirectional mapping between node ids and unique role names, plus non-unique
/// group tags ("cycle node", "border node", …).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Labeling {
    name_to_node: BTreeMap<String, NodeId>,
    node_to_name: BTreeMap<NodeId, String>,
    groups: BTreeMap<String, Vec<NodeId>>,
}

impl Labeling {
    /// Empty labeling.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a unique role name to a node. Fails if the name is already used.
    /// A node may carry several names (aliases); lookups by node return the first
    /// name attached.
    pub fn name(&mut self, node: NodeId, name: impl Into<String>) -> Result<()> {
        let name = name.into();
        if self.name_to_node.contains_key(&name) {
            return Err(GraphError::DuplicateLabel { label: name });
        }
        self.name_to_node.insert(name.clone(), node);
        self.node_to_name.entry(node).or_insert(name);
        Ok(())
    }

    /// Node carrying the given unique name.
    pub fn node(&self, name: &str) -> Option<NodeId> {
        self.name_to_node.get(name).copied()
    }

    /// Node carrying the given unique name, panicking with a useful message otherwise.
    /// Constructions use this internally for names they themselves created.
    pub fn expect_node(&self, name: &str) -> NodeId {
        self.node(name)
            .unwrap_or_else(|| panic!("labeling has no node named {name:?}"))
    }

    /// First name of a node, if any.
    pub fn name_of(&self, node: NodeId) -> Option<&str> {
        self.node_to_name.get(&node).map(String::as_str)
    }

    /// Add a node to a (non-unique) group tag.
    pub fn tag(&mut self, node: NodeId, group: impl Into<String>) {
        self.groups.entry(group.into()).or_default().push(node);
    }

    /// All nodes in a group, in insertion order. Empty if the group does not exist.
    pub fn group(&self, group: &str) -> &[NodeId] {
        self.groups.get(group).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Is the node a member of the given group?
    pub fn in_group(&self, node: NodeId, group: &str) -> bool {
        self.group(group).contains(&node)
    }

    /// Names of all groups.
    pub fn group_names(&self) -> impl Iterator<Item = &str> {
        self.groups.keys().map(String::as_str)
    }

    /// All `(name, node)` pairs in name order.
    pub fn names(&self) -> impl Iterator<Item = (&str, NodeId)> {
        self.name_to_node.iter().map(|(s, &v)| (s.as_str(), v))
    }

    /// Number of distinct unique names.
    pub fn num_names(&self) -> usize {
        self.name_to_node.len()
    }

    /// Shift every node id by `offset`. Used when a labelled subgraph is appended into
    /// a larger construction.
    pub fn shifted(&self, offset: NodeId) -> Labeling {
        Labeling {
            name_to_node: self
                .name_to_node
                .iter()
                .map(|(k, &v)| (k.clone(), v + offset))
                .collect(),
            node_to_name: self
                .node_to_name
                .iter()
                .map(|(&k, v)| (k + offset, v.clone()))
                .collect(),
            groups: self
                .groups
                .iter()
                .map(|(k, vs)| (k.clone(), vs.iter().map(|&v| v + offset).collect()))
                .collect(),
        }
    }

    /// Merge another labeling into this one, prefixing every unique name and group of
    /// `other` with `prefix` (e.g. `"HL/"`). Node ids are taken verbatim.
    pub fn merge_prefixed(&mut self, other: &Labeling, prefix: &str) -> Result<()> {
        for (name, node) in other.names() {
            self.name(node, format!("{prefix}{name}"))?;
        }
        for g in other.group_names() {
            for &v in other.group(g) {
                self.tag(v, format!("{prefix}{g}"));
            }
        }
        Ok(())
    }
}

/// A [`PortGraph`] together with the role labels of its nodes. This is what every
/// construction in `anet-constructions` returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledGraph {
    /// The anonymous network itself.
    pub graph: PortGraph,
    /// Role metadata (oracle/test-side only).
    pub labels: Labeling,
}

impl LabeledGraph {
    /// Bundle a graph with its labels.
    pub fn new(graph: PortGraph, labels: Labeling) -> Self {
        LabeledGraph { graph, labels }
    }

    /// Shortcut: node carrying a unique role name (panics if missing).
    pub fn node(&self, name: &str) -> NodeId {
        self.labels.expect_node(name)
    }

    /// Shortcut: members of a group.
    pub fn group(&self, group: &str) -> &[NodeId] {
        self.labels.group(group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn tiny() -> PortGraph {
        let mut b = GraphBuilder::with_nodes(2);
        b.add_edge(0, 0, 1, 0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn unique_names_round_trip() {
        let mut l = Labeling::new();
        l.name(0, "root").unwrap();
        l.name(1, "leaf").unwrap();
        assert_eq!(l.node("root"), Some(0));
        assert_eq!(l.node("leaf"), Some(1));
        assert_eq!(l.name_of(0), Some("root"));
        assert_eq!(l.num_names(), 2);
        assert_eq!(l.node("nope"), None);
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut l = Labeling::new();
        l.name(0, "x").unwrap();
        assert!(matches!(
            l.name(1, "x").unwrap_err(),
            GraphError::DuplicateLabel { .. }
        ));
    }

    #[test]
    fn aliases_allowed_on_same_node() {
        let mut l = Labeling::new();
        l.name(0, "r_1,1").unwrap();
        l.name(0, "first-root").unwrap();
        assert_eq!(l.node("r_1,1"), Some(0));
        assert_eq!(l.node("first-root"), Some(0));
        // name_of returns the first attached name.
        assert_eq!(l.name_of(0), Some("r_1,1"));
    }

    #[test]
    fn groups_accumulate() {
        let mut l = Labeling::new();
        l.tag(0, "cycle");
        l.tag(1, "cycle");
        l.tag(1, "root");
        assert_eq!(l.group("cycle"), &[0, 1]);
        assert_eq!(l.group("root"), &[1]);
        assert!(l.in_group(0, "cycle"));
        assert!(!l.in_group(0, "root"));
        assert_eq!(l.group("missing"), &[] as &[NodeId]);
        let mut names: Vec<&str> = l.group_names().collect();
        names.sort_unstable();
        assert_eq!(names, vec!["cycle", "root"]);
    }

    #[test]
    fn shifted_moves_all_ids() {
        let mut l = Labeling::new();
        l.name(0, "a").unwrap();
        l.tag(1, "g");
        let s = l.shifted(10);
        assert_eq!(s.node("a"), Some(10));
        assert_eq!(s.group("g"), &[11]);
        assert_eq!(s.name_of(10), Some("a"));
    }

    #[test]
    fn merge_prefixed_namespaces() {
        let mut inner = Labeling::new();
        inner.name(0, "root").unwrap();
        inner.tag(0, "cycle");

        let mut outer = Labeling::new();
        outer.name(5, "root").unwrap();
        outer.merge_prefixed(&inner.shifted(3), "HL/").unwrap();
        assert_eq!(outer.node("root"), Some(5));
        assert_eq!(outer.node("HL/root"), Some(3));
        assert_eq!(outer.group("HL/cycle"), &[3]);
    }

    #[test]
    fn labeled_graph_accessors() {
        let mut l = Labeling::new();
        l.name(0, "left").unwrap();
        l.tag(1, "ends");
        let lg = LabeledGraph::new(tiny(), l);
        assert_eq!(lg.node("left"), 0);
        assert_eq!(lg.group("ends"), &[1]);
        assert_eq!(lg.graph.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "no node named")]
    fn expect_node_panics_on_missing() {
        let l = Labeling::new();
        l.expect_node("ghost");
    }
}
