//! Generators of standard port-numbered graph families.
//!
//! These families are used by unit/property tests, examples and benchmarks:
//! simple deterministic topologies with explicit port conventions, and random
//! connected graphs for property tests. The paper-specific constructions
//! (`G_{Δ,k}`, `U_{Δ,k}`, `J_{μ,k}`) live in the `anet-constructions` crate.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::{NodeId, PortGraph};
use crate::rng::Rng;
use crate::Result;

/// Path on `n ≥ 1` nodes. Interior nodes use port 0 towards the lower-indexed
/// neighbour and port 1 towards the higher-indexed one; the end nodes use port 0.
pub fn path(n: usize) -> Result<PortGraph> {
    if n == 0 {
        return Err(GraphError::Empty);
    }
    if n == 1 {
        // A single node has no ports; it is a legal (degenerate) network.
        return PortGraph::from_adjacency(vec![vec![]]);
    }
    let mut b = GraphBuilder::with_nodes(n);
    for i in 0..n - 1 {
        let u = i as NodeId;
        let v = (i + 1) as NodeId;
        let pu = if i == 0 { 0 } else { 1 };
        b.add_edge(u, pu, v, 0)?;
    }
    b.build()
}

/// The 3-node line with ports `0, 0, 1, 0` from left to right — the paper's example
/// (Section 1) of a graph with `ψ_CPPE(G) = 1`.
pub fn paper_three_node_line() -> PortGraph {
    let mut b = GraphBuilder::with_nodes(3);
    b.add_edge(0, 0, 1, 0).expect("valid");
    b.add_edge(1, 1, 2, 0).expect("valid");
    b.build().expect("valid")
}

/// Directed-looking ring on `n ≥ 3` nodes: at every node, port 0 leads "clockwise" and
/// port 1 leads "counter-clockwise". This is the fully symmetric ring: no deterministic
/// leader election is possible on it (all views are equal), which makes it the standard
/// *infeasible* example in tests.
pub fn symmetric_ring(n: usize) -> Result<PortGraph> {
    if n < 3 {
        return Err(GraphError::invalid("symmetric_ring requires n >= 3"));
    }
    let mut b = GraphBuilder::with_nodes(n);
    for i in 0..n {
        let u = i as NodeId;
        let v = ((i + 1) % n) as NodeId;
        b.add_edge(u, 0, v, 1)?;
    }
    b.build()
}

/// Ring on `n ≥ 3` nodes whose port assignment is given per node: `orientation[i]`
/// tells whether node `i` uses port 0 clockwise (`true`) or counter-clockwise
/// (`false`). Choosing a non-rotation-symmetric orientation pattern yields *feasible*
/// rings (all views distinct), which are the simplest interesting inputs for election.
pub fn oriented_ring(orientation: &[bool]) -> Result<PortGraph> {
    let n = orientation.len();
    if n < 3 {
        return Err(GraphError::invalid("oriented_ring requires n >= 3"));
    }
    let mut b = GraphBuilder::with_nodes(n);
    for i in 0..n {
        let u = i as NodeId;
        let v = ((i + 1) % n) as NodeId;
        let pu = if orientation[i] { 0 } else { 1 };
        let pv = if orientation[(i + 1) % n] { 1 } else { 0 };
        b.add_edge(u, pu, v, pv)?;
    }
    b.build()
}

/// Cycle with ports alternately labelled 0 and 1 along the cycle, as used by the
/// construction of `G_{Δ,k}` ("a cycle of `4i−1` nodes with ports alternately labeled
/// 0 and 1"). On an odd cycle this is realised by: each edge `(c_m, c_{m+1})` gets
/// port 0 at `c_m` and port 1 at `c_{m+1}` — so every node has port 0 towards its
/// successor and port 1 towards its predecessor, matching Figure 2.
pub fn alternating_cycle(n: usize) -> Result<PortGraph> {
    symmetric_ring(n)
}

/// Star with `leaves ≥ 1` leaves. The centre (node 0) has ports `0..leaves` in leaf
/// order; every leaf uses port 0.
pub fn star(leaves: usize) -> Result<PortGraph> {
    if leaves == 0 {
        return Err(GraphError::invalid("star requires at least one leaf"));
    }
    let mut b = GraphBuilder::with_nodes(leaves + 1);
    for l in 0..leaves {
        b.add_edge(0, l as u32, (l + 1) as NodeId, 0)?;
    }
    b.build()
}

/// Complete graph on `n ≥ 2` nodes. Node `i`'s port towards node `j` is
/// `j` if `j < i`, else `j − 1` (the natural "skip yourself" numbering).
pub fn complete(n: usize) -> Result<PortGraph> {
    if n < 2 {
        return Err(GraphError::invalid("complete requires n >= 2"));
    }
    let mut b = GraphBuilder::with_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let pi = (j - 1) as u32; // j > i, so skip-yourself index of j at i is j-1
            let pj = i as u32; // i < j, so skip-yourself index of i at j is i
            b.add_edge(i as NodeId, pi, j as NodeId, pj)?;
        }
    }
    b.build()
}

/// `d`-dimensional hypercube (`2^d` nodes). The port of the edge flipping bit `b` is
/// `b` at both endpoints — a fully symmetric (hence infeasible) network.
pub fn hypercube(d: usize) -> Result<PortGraph> {
    if d == 0 {
        return Err(GraphError::invalid("hypercube requires d >= 1"));
    }
    if d > 20 {
        return Err(GraphError::invalid("hypercube dimension too large"));
    }
    let n = 1usize << d;
    let mut b = GraphBuilder::with_nodes(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if v < u {
                b.add_edge(v as NodeId, bit as u32, u as NodeId, bit as u32)?;
            }
        }
    }
    b.build()
}

/// Full `arity`-ary rooted tree of the given `height` using the paper's Section 4 port
/// convention for `T^h`: the root has degree `arity` with ports `0..arity` towards its
/// children; every internal node has port `arity` towards its parent and ports
/// `0..arity` towards its children; every leaf has port 0 towards its parent.
/// Returns the graph and the id of the root (always 0).
pub fn full_tree(arity: usize, height: usize) -> Result<(PortGraph, NodeId)> {
    if arity == 0 {
        return Err(GraphError::invalid("full_tree requires arity >= 1"));
    }
    if height == 0 {
        return Ok((PortGraph::from_adjacency(vec![vec![]])?, 0));
    }
    let mut b = GraphBuilder::new();
    let root = b.add_node();
    // frontier: nodes of the current level awaiting children.
    let mut frontier = vec![root];
    for level in 1..=height {
        let mut next = Vec::with_capacity(frontier.len() * arity);
        for &parent in &frontier {
            for c in 0..arity {
                let child = b.add_node();
                // Port at the parent towards this child.
                let parent_port = c as u32;
                // Port at the child towards the parent.
                let child_port = if level == height {
                    0 // leaves: single port 0 to the parent
                } else {
                    arity as u32 // internal nodes: port `arity` to the parent
                };
                b.add_edge(parent, parent_port, child, child_port)?;
                next.push(child);
            }
        }
        frontier = next;
    }
    Ok((b.build()?, root))
}

/// Random connected port-numbered graph on `n ≥ 2` nodes with maximum degree at most
/// `max_degree ≥ 2`. Construction: a random spanning tree (random attachment), then
/// extra random edges are attempted until `extra_edges` have been added or too many
/// attempts fail. Port numbers are assigned in arrival order, then shuffled per node so
/// the port labelling is itself random. Deterministic for a fixed `seed`.
pub fn random_connected(
    n: usize,
    max_degree: usize,
    extra_edges: usize,
    seed: u64,
) -> Result<PortGraph> {
    if n < 2 {
        return Err(GraphError::invalid("random_connected requires n >= 2"));
    }
    if max_degree < 2 {
        return Err(GraphError::invalid(
            "random_connected requires max_degree >= 2",
        ));
    }
    let mut rng = Rng::seed(seed);
    let mut b = GraphBuilder::with_nodes(n);
    let mut degree = vec![0usize; n];

    // Random spanning tree: attach node i to a uniformly random earlier node with
    // spare degree. Node ids are first shuffled so the tree shape is not biased by id.
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    for idx in 1..n {
        let v = order[idx];
        // Candidates: earlier nodes in the order with spare capacity.
        let candidates: Vec<usize> = order[..idx]
            .iter()
            .copied()
            .filter(|&u| degree[u] + 1 < max_degree || (idx == 1 && degree[u] < max_degree))
            .collect();
        let candidates = if candidates.is_empty() {
            order[..idx]
                .iter()
                .copied()
                .filter(|&u| degree[u] < max_degree)
                .collect()
        } else {
            candidates
        };
        if candidates.is_empty() {
            return Err(GraphError::invalid(
                "max_degree too small to build a connected graph of this size",
            ));
        }
        let u = candidates[rng.below(candidates.len())];
        b.add_edge_auto(u as NodeId, v as NodeId)?;
        degree[u] += 1;
        degree[v] += 1;
    }

    // Extra edges.
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < extra_edges && attempts < 50 * (extra_edges + 1) {
        attempts += 1;
        let u = rng.below(n);
        let v = rng.below(n);
        if u == v || degree[u] >= max_degree || degree[v] >= max_degree {
            continue;
        }
        if b.has_edge(u as NodeId, v as NodeId) {
            continue;
        }
        b.add_edge_auto(u as NodeId, v as NodeId)?;
        degree[u] += 1;
        degree[v] += 1;
        added += 1;
    }

    let g = b.build()?;
    // Shuffle port labels per node to randomise the port numbering itself.
    let perms: Vec<Vec<u32>> = g
        .nodes()
        .map(|v| {
            let d = g.degree(v);
            let mut p: Vec<u32> = (0..d as u32).collect();
            rng.shuffle(&mut p);
            p
        })
        .collect();
    crate::permute::permute_ports(&g, &perms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_ports_follow_convention() {
        let g = path(4).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        // Interior node 1: port 0 to the left (node 0), port 1 to the right (node 2).
        assert_eq!(g.neighbor(1, 0), Some((0, 0)));
        assert_eq!(g.neighbor(1, 1), Some((2, 0)));
    }

    #[test]
    fn single_node_path_is_legal() {
        let g = path(1).unwrap();
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(0), 0);
    }

    #[test]
    fn paper_line_matches_paper_ports() {
        let g = paper_three_node_line();
        assert_eq!(g.neighbor(0, 0), Some((1, 0)));
        assert_eq!(g.neighbor(1, 1), Some((2, 0)));
    }

    #[test]
    fn symmetric_ring_is_regular_and_uniform() {
        let g = symmetric_ring(5).unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 5);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
            // port 0 goes clockwise: the neighbour's port on that edge is 1.
            let (_, q) = g.neighbor(v, 0).unwrap();
            assert_eq!(q, 1);
        }
    }

    #[test]
    fn oriented_ring_respects_orientation() {
        let g = oriented_ring(&[true, true, false, true]).unwrap();
        assert_eq!(g.num_nodes(), 4);
        // Node 2 has orientation=false: its port 0 points counter-clockwise (to node 1).
        assert_eq!(g.neighbor(2, 1).unwrap().0, 3);
        assert_eq!(g.neighbor(2, 0).unwrap().0, 1);
    }

    #[test]
    fn ring_too_small_rejected() {
        assert!(symmetric_ring(2).is_err());
        assert!(oriented_ring(&[true, false]).is_err());
    }

    #[test]
    fn star_and_complete_counts() {
        let s = star(4).unwrap();
        assert_eq!(s.degree(0), 4);
        assert_eq!(s.num_edges(), 4);

        let k5 = complete(5).unwrap();
        assert_eq!(k5.num_edges(), 10);
        assert!(k5.nodes().all(|v| k5.degree(v) == 4));
        // Skip-yourself port convention.
        assert_eq!(k5.neighbor(0, 0), Some((1, 0)));
        assert_eq!(k5.neighbor(2, 0), Some((0, 1)));
        assert_eq!(k5.neighbor(2, 1), Some((1, 1)));
        assert_eq!(k5.neighbor(2, 2), Some((3, 2)));
    }

    #[test]
    fn hypercube_is_symmetric() {
        let q3 = hypercube(3).unwrap();
        assert_eq!(q3.num_nodes(), 8);
        assert_eq!(q3.num_edges(), 12);
        for v in q3.nodes() {
            for (p, _, q) in q3.ports(v) {
                assert_eq!(p, q, "hypercube edges use the same port at both ends");
            }
        }
    }

    #[test]
    fn full_tree_shape_and_ports() {
        let (t, root) = full_tree(3, 2).unwrap();
        // 1 + 3 + 9 nodes.
        assert_eq!(t.num_nodes(), 13);
        assert_eq!(t.degree(root), 3);
        // Children of the root are internal: degree 4 with port 3 to the parent.
        let (child, _) = t.neighbor(root, 0).unwrap();
        assert_eq!(t.degree(child), 4);
        assert_eq!(t.neighbor(child, 3).unwrap().0, root);
        // Leaves have degree 1.
        assert_eq!(t.degree_histogram()[1], 9);
    }

    #[test]
    fn full_tree_height_zero_is_single_node() {
        let (t, root) = full_tree(5, 0).unwrap();
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(root, 0);
    }

    #[test]
    fn random_connected_is_valid_and_deterministic() {
        let g1 = random_connected(40, 5, 15, 42).unwrap();
        let g2 = random_connected(40, 5, 15, 42).unwrap();
        assert_eq!(g1, g2, "same seed must give the same graph");
        assert!(g1.max_degree() <= 5);
        assert_eq!(g1.num_nodes(), 40);
        assert!(g1.num_edges() >= 39);

        let g3 = random_connected(40, 5, 15, 43).unwrap();
        assert_ne!(
            g1, g3,
            "different seeds should differ (overwhelmingly likely)"
        );
    }

    #[test]
    fn random_connected_respects_degree_cap_two() {
        // With max_degree=2 the only connected graphs are paths/cycles; the generator
        // must still succeed.
        let g = random_connected(12, 2, 0, 7).unwrap();
        assert!(g.max_degree() <= 2);
        assert_eq!(g.num_nodes(), 12);
    }

    #[test]
    fn generator_parameter_validation() {
        assert!(path(0).is_err());
        assert!(star(0).is_err());
        assert!(complete(1).is_err());
        assert!(hypercube(0).is_err());
        assert!(full_tree(0, 3).is_err());
        assert!(random_connected(1, 3, 0, 0).is_err());
        assert!(random_connected(5, 1, 0, 0).is_err());
    }
}
