//! Error type for graph construction and validation.

use std::fmt;

/// Errors raised while building or validating a [`crate::PortGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node id referenced by an operation does not exist.
    UnknownNode {
        /// The offending node id.
        node: u32,
        /// Number of nodes in the graph under construction.
        num_nodes: u32,
    },
    /// A port was used twice at the same node.
    DuplicatePort {
        /// Node at which the duplicate occurred.
        node: u32,
        /// The port number used twice.
        port: u32,
    },
    /// The same unordered node pair was connected by more than one edge.
    ParallelEdge {
        /// First endpoint.
        u: u32,
        /// Second endpoint.
        v: u32,
    },
    /// An edge connected a node to itself.
    SelfLoop {
        /// The node with the self-loop.
        node: u32,
    },
    /// After construction, the ports at some node were not exactly `0..deg`.
    NonContiguousPorts {
        /// Node with the gap.
        node: u32,
        /// The smallest missing port number.
        missing_port: u32,
        /// The degree of the node.
        degree: u32,
    },
    /// The graph is not connected (the model requires connectivity).
    Disconnected {
        /// Number of nodes reachable from node 0.
        reachable: u32,
        /// Total number of nodes.
        total: u32,
    },
    /// The graph has no nodes at all.
    Empty,
    /// A port swap or permutation referenced a port that does not exist at the node.
    UnknownPort {
        /// The node.
        node: u32,
        /// The missing port.
        port: u32,
        /// The degree of the node.
        degree: u32,
    },
    /// A label name was attached to two different nodes.
    DuplicateLabel {
        /// The duplicated label.
        label: String,
    },
    /// Generic invalid-parameter error for generators and constructions.
    InvalidParameter {
        /// Human readable explanation.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode { node, num_nodes } => {
                write!(f, "unknown node {node} (graph has {num_nodes} nodes)")
            }
            GraphError::DuplicatePort { node, port } => {
                write!(f, "port {port} used twice at node {node}")
            }
            GraphError::ParallelEdge { u, v } => {
                write!(f, "parallel edge between nodes {u} and {v}")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::NonContiguousPorts {
                node,
                missing_port,
                degree,
            } => write!(
                f,
                "ports at node {node} are not 0..{degree}: port {missing_port} is missing"
            ),
            GraphError::Disconnected { reachable, total } => write!(
                f,
                "graph is disconnected: only {reachable} of {total} nodes reachable from node 0"
            ),
            GraphError::Empty => write!(f, "graph has no nodes"),
            GraphError::UnknownPort { node, port, degree } => {
                write!(
                    f,
                    "node {node} has degree {degree}, port {port} does not exist"
                )
            }
            GraphError::DuplicateLabel { label } => {
                write!(f, "label {label:?} attached to more than one node")
            }
            GraphError::InvalidParameter { message } => write!(f, "invalid parameter: {message}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl GraphError {
    /// Convenience constructor for [`GraphError::InvalidParameter`].
    pub fn invalid(message: impl Into<String>) -> Self {
        GraphError::InvalidParameter {
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offenders() {
        let e = GraphError::UnknownNode {
            node: 7,
            num_nodes: 3,
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('3'));

        let e = GraphError::DuplicatePort { node: 2, port: 5 };
        assert!(e.to_string().contains('2'));
        assert!(e.to_string().contains('5'));

        let e = GraphError::invalid("delta must be at least 3");
        assert!(e.to_string().contains("delta must be at least 3"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            GraphError::SelfLoop { node: 1 },
            GraphError::SelfLoop { node: 1 }
        );
        assert_ne!(
            GraphError::SelfLoop { node: 1 },
            GraphError::SelfLoop { node: 2 }
        );
    }
}
