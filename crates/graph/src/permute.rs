//! Port permutations and node relabellings.
//!
//! The lower-bound constructions of the paper generate whole graph classes by
//! *swapping ports* at designated nodes of a template graph (Section 3, Part 5 of
//! Section 4). These helpers implement such operations while re-validating the result.

use crate::error::GraphError;
use crate::graph::{NodeId, Port, PortGraph};
use crate::Result;

/// Swap two ports `p1` and `p2` at node `v`, returning a new graph.
///
/// After the swap, the edge previously reached through `p1` is reached through `p2`
/// and vice versa; the port numbers at the *other* endpoints are unaffected.
pub fn swap_ports(g: &PortGraph, v: NodeId, p1: Port, p2: Port) -> Result<PortGraph> {
    let deg = g.degree(v) as u32;
    for p in [p1, p2] {
        if p >= deg {
            return Err(GraphError::UnknownPort {
                node: v,
                port: p,
                degree: deg,
            });
        }
    }
    if p1 == p2 {
        return Ok(g.clone());
    }
    let mut adj = g.adjacency().clone();
    adj[v as usize].swap(p1 as usize, p2 as usize);
    // Fix the back-pointers of the two affected edges.
    for p in [p1, p2] {
        let (u, q) = adj[v as usize][p as usize];
        adj[u as usize][q as usize] = (v, p);
    }
    PortGraph::from_adjacency(adj)
}

/// Apply several port swaps in sequence (each `(node, p1, p2)`).
pub fn swap_ports_many(g: &PortGraph, swaps: &[(NodeId, Port, Port)]) -> Result<PortGraph> {
    // Perform all swaps on a single adjacency copy for efficiency; validate once.
    let mut adj = g.adjacency().clone();
    for &(v, p1, p2) in swaps {
        let deg = adj[v as usize].len() as u32;
        for p in [p1, p2] {
            if p >= deg {
                return Err(GraphError::UnknownPort {
                    node: v,
                    port: p,
                    degree: deg,
                });
            }
        }
        if p1 == p2 {
            continue;
        }
        adj[v as usize].swap(p1 as usize, p2 as usize);
        for p in [p1, p2] {
            let (u, q) = adj[v as usize][p as usize];
            adj[u as usize][q as usize] = (v, p);
        }
    }
    PortGraph::from_adjacency(adj)
}

/// Apply a full port permutation at every node: `perms[v][p]` is the *new* port number
/// of the edge currently at port `p` of node `v`. Every `perms[v]` must be a
/// permutation of `0..deg(v)`.
pub fn permute_ports(g: &PortGraph, perms: &[Vec<Port>]) -> Result<PortGraph> {
    if perms.len() != g.num_nodes() {
        return Err(GraphError::invalid(
            "permute_ports: one permutation per node is required",
        ));
    }
    let n = g.num_nodes();
    let mut adj: Vec<Vec<(NodeId, Port)>> =
        (0..n).map(|v| vec![(0, 0); g.degree(v as u32)]).collect();
    for v in g.nodes() {
        let perm = &perms[v as usize];
        if perm.len() != g.degree(v) {
            return Err(GraphError::invalid(format!(
                "permute_ports: permutation at node {v} has wrong length"
            )));
        }
        let mut seen = vec![false; perm.len()];
        for &np in perm {
            if np as usize >= perm.len() || seen[np as usize] {
                return Err(GraphError::invalid(format!(
                    "permute_ports: not a permutation at node {v}"
                )));
            }
            seen[np as usize] = true;
        }
    }
    for v in g.nodes() {
        for (p, u, q) in g.ports(v) {
            let np = perms[v as usize][p as usize];
            let nq = perms[u as usize][q as usize];
            adj[v as usize][np as usize] = (u, nq);
        }
    }
    PortGraph::from_adjacency(adj)
}

/// Relabel nodes by a permutation: `perm[old] = new`. Ports are untouched. The result
/// is port-preserving isomorphic to the input — anonymous algorithms cannot tell them
/// apart, which is what the property tests assert.
pub fn relabel_nodes(g: &PortGraph, perm: &[NodeId]) -> Result<PortGraph> {
    let n = g.num_nodes();
    if perm.len() != n {
        return Err(GraphError::invalid(
            "relabel_nodes: wrong permutation length",
        ));
    }
    let mut seen = vec![false; n];
    for &p in perm {
        if p as usize >= n || seen[p as usize] {
            return Err(GraphError::invalid("relabel_nodes: not a permutation"));
        }
        seen[p as usize] = true;
    }
    let mut adj: Vec<Vec<(NodeId, Port)>> = vec![Vec::new(); n];
    for v in g.nodes() {
        let nv = perm[v as usize] as usize;
        adj[nv] = g.ports(v).map(|(_, u, q)| (perm[u as usize], q)).collect();
    }
    PortGraph::from_adjacency(adj)
}

/// Check whether `map` (a node bijection, `map[a] = b`) is a port-preserving
/// isomorphism from `a` to `b`: it must map the edge at port `p` of `v` to the edge at
/// port `p` of `map[v]`, preserving the far-end port as well.
pub fn is_port_isomorphism(a: &PortGraph, b: &PortGraph, map: &[NodeId]) -> bool {
    if a.num_nodes() != b.num_nodes() || map.len() != a.num_nodes() {
        return false;
    }
    for v in a.nodes() {
        let bv = map[v as usize];
        if a.degree(v) != b.degree(bv) {
            return false;
        }
        for (p, u, q) in a.ports(v) {
            match b.neighbor(bv, p) {
                Some((bu, bq)) => {
                    if bu != map[u as usize] || bq != q {
                        return false;
                    }
                }
                None => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators;

    fn square() -> PortGraph {
        // 4-cycle with ports 0 clockwise / 1 counter-clockwise.
        generators::symmetric_ring(4).unwrap()
    }

    #[test]
    fn swap_ports_swaps_the_two_edges() {
        let g = square();
        let h = swap_ports(&g, 0, 0, 1).unwrap();
        // Originally port 0 of node 0 goes to node 1; after the swap it goes to node 3.
        assert_eq!(g.neighbor(0, 0).unwrap().0, 1);
        assert_eq!(h.neighbor(0, 0).unwrap().0, 3);
        assert_eq!(h.neighbor(0, 1).unwrap().0, 1);
        // Back-pointers fixed: node 1's edge to node 0 now records port 1 at node 0.
        assert_eq!(h.neighbor(1, 1), Some((0, 1)));
        // Other nodes untouched.
        assert_eq!(h.neighbor(2, 0), g.neighbor(2, 0));
    }

    #[test]
    fn swap_same_port_is_identity() {
        let g = square();
        assert_eq!(swap_ports(&g, 2, 1, 1).unwrap(), g);
    }

    #[test]
    fn swap_unknown_port_rejected() {
        let g = square();
        assert!(matches!(
            swap_ports(&g, 0, 0, 5).unwrap_err(),
            GraphError::UnknownPort {
                node: 0,
                port: 5,
                ..
            }
        ));
    }

    #[test]
    fn swap_many_equals_sequential_swaps() {
        let g = square();
        let a = swap_ports(&swap_ports(&g, 0, 0, 1).unwrap(), 2, 0, 1).unwrap();
        let b = swap_ports_many(&g, &[(0, 0, 1), (2, 0, 1)]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn permute_ports_identity_and_reversal() {
        let g = square();
        let id: Vec<Vec<u32>> = g
            .nodes()
            .map(|v| (0..g.degree(v) as u32).collect())
            .collect();
        assert_eq!(permute_ports(&g, &id).unwrap(), g);

        let rev: Vec<Vec<u32>> = g
            .nodes()
            .map(|v| (0..g.degree(v) as u32).rev().collect())
            .collect();
        let h = permute_ports(&g, &rev).unwrap();
        // Reversing ports at every node of the symmetric ring flips its orientation.
        assert_eq!(h.neighbor(0, 1).unwrap().0, 1);
        assert_eq!(h.neighbor(0, 0).unwrap().0, 3);
    }

    #[test]
    fn permute_ports_rejects_non_permutation() {
        let g = square();
        let bad: Vec<Vec<u32>> = g.nodes().map(|_| vec![0, 0]).collect();
        assert!(permute_ports(&g, &bad).is_err());
        assert!(permute_ports(&g, &[]).is_err());
    }

    #[test]
    fn relabel_nodes_gives_isomorphic_graph() {
        let g = square();
        let perm = vec![2, 3, 0, 1];
        let h = relabel_nodes(&g, &perm).unwrap();
        assert!(is_port_isomorphism(&g, &h, &perm));
        assert_eq!(h.num_edges(), g.num_edges());
    }

    #[test]
    fn relabel_rejects_bad_permutation() {
        let g = square();
        assert!(relabel_nodes(&g, &[0, 0, 1, 2]).is_err());
        assert!(relabel_nodes(&g, &[0, 1]).is_err());
    }

    #[test]
    fn isomorphism_check_detects_mismatch() {
        let g = square();
        let h = swap_ports(&g, 0, 0, 1).unwrap();
        let id: Vec<NodeId> = (0..4).collect();
        assert!(is_port_isomorphism(&g, &g, &id));
        assert!(!is_port_isomorphism(&g, &h, &id));
    }

    #[test]
    fn isomorphism_respects_far_end_ports() {
        // Two paths on 3 nodes that differ only in one far-end port label.
        let a = generators::paper_three_node_line();
        let mut b = GraphBuilder::with_nodes(3);
        b.add_edge(0, 0, 1, 1).unwrap();
        b.add_edge(1, 0, 2, 0).unwrap();
        let b = b.build().unwrap();
        let id: Vec<NodeId> = (0..3).collect();
        assert!(!is_port_isomorphism(&a, &b, &id));
    }
}
