//! A small deterministic pseudo-random number generator.
//!
//! The random graph generators (and the randomised tests downstream) need
//! reproducible randomness, but this workspace deliberately has no external
//! dependencies, so the standard `rand` crate is not available. This module provides a
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c) generator — a tiny, well-mixed
//! 64-bit PRNG that is more than adequate for generating test topologies (it is *not*
//! cryptographic). The sequence produced for a given seed is stable across platforms
//! and releases, so seeded graphs are reproducible.

/// A deterministic SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed. Equal seeds yield equal sequences.
    pub fn seed(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`; panics if `bound == 0`.
    ///
    /// Uses rejection sampling to avoid modulo bias (which would be negligible for the
    /// small bounds used here, but exactness is cheap).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "Rng::below requires a positive bound");
        let bound = bound as u64;
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let x = self.next_u64();
            if x < zone {
                return (x % bound) as usize;
            }
        }
    }

    /// A uniform value in the half-open range (`gen_range(a..b)` analogue).
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(
            range.start < range.end,
            "Rng::gen_range requires a non-empty range"
        );
        range.start + self.below(range.end - range.start)
    }

    /// A uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_deterministic_per_seed() {
        let mut a = Rng::seed(42);
        let mut b = Rng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_range_and_hits_every_value() {
        let mut rng = Rng::seed(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let x = rng.below(5);
            assert!(x < 5);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Rng::seed(3);
        for _ in 0..200 {
            let x = rng.gen_range(10..13);
            assert!((10..13).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // With 50 elements the identity permutation is astronomically unlikely.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
