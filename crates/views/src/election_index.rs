//! Feasibility and election indices `ψ_S`, `ψ_PE`, `ψ_PPE`, `ψ_CPPE`.
//!
//! For a graph `G` whose map is known to the nodes, version `Z` of leader election is
//! solvable in `h` rounds iff outputs that are constant on `B^h`-equivalence classes
//! can satisfy `Z`'s correctness condition (a node's decision after `h` rounds is a
//! function of `B^h(v)` only — Proposition 2.1 and its analogues). The minimum such
//! `h` is the `Z`-index `ψ_Z(G)`.
//!
//! Concretely:
//!
//! * `ψ_S(G)` — the least depth at which some node's view class is a singleton;
//! * `ψ_PE(G)` — the least depth at which some singleton class `{u}` admits, for every
//!   other class, a single port that is the first port of a simple path to `u` from
//!   *every* member of the class;
//! * `ψ_PPE(G)` / `ψ_CPPE(G)` — ditto with a single outgoing-port sequence /
//!   `(outgoing, incoming)`-pair sequence tracing a simple path to `u` from every
//!   member.
//!
//! All searches stop at the refinement's stable depth: deeper views carry no additional
//! information, so if a task is unsolvable there it is unsolvable at every time bound
//! (the graph is infeasible for that task).
//!
//! The exact `ψ_PPE`/`ψ_CPPE` computations enumerate candidate simple paths and are
//! meant for the small graphs used in experiment E1; the paper's constructions get
//! their indices from the paper's own arguments (implemented in `anet-election` and the
//! construction tests) rather than from this brute-force search.

use crate::paths::{cppe_sequence_is_valid, pe_port_is_valid, ppe_sequence_is_valid, simple_paths};
use crate::refinement::Refinement;
use anet_graph::{NodeId, Port, PortGraph};

/// Error produced by the exact index computations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// The simple-path enumeration cap was reached without an answer; the result would
    /// not be sound, so none is returned. Increase `max_paths` or use a smaller graph.
    PathBudgetExceeded {
        /// The cap that was in force.
        max_paths: usize,
    },
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::PathBudgetExceeded { max_paths } => write!(
                f,
                "simple-path enumeration cap of {max_paths} paths exceeded; result would be unsound"
            ),
        }
    }
}

impl std::error::Error for IndexError {}

/// Feasibility of a graph in the sense of the paper: leader election (in the strong
/// formulations) is possible knowing the map iff the views of all nodes are distinct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Feasibility {
    /// Are all (infinite) views distinct?
    pub feasible: bool,
    /// If feasible, the least depth at which all truncated views are already distinct.
    pub views_distinct_at: Option<usize>,
    /// Number of distinct view classes once refinement stabilises.
    pub stable_classes: usize,
}

/// Compute feasibility by running refinement to stability (two nodes have equal
/// infinite views iff they have equal views at the stable depth).
pub fn feasibility(g: &PortGraph) -> Feasibility {
    let r = Refinement::compute(g, None);
    let n = g.num_nodes();
    let stable_classes = r.num_classes_at(r.stable_depth());
    if stable_classes != n {
        return Feasibility {
            feasible: false,
            views_distinct_at: None,
            stable_classes,
        };
    }
    let first = (0..=r.stable_depth())
        .find(|&h| r.num_classes_at(h) == n)
        .unwrap_or(r.stable_depth());
    Feasibility {
        feasible: true,
        views_distinct_at: Some(first),
        stable_classes,
    }
}

/// The four election indices of a graph. `None` means the corresponding task is not
/// solvable on this graph at any time bound, even knowing the map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElectionIndices {
    /// `ψ_S` — Selection index.
    pub s: Option<usize>,
    /// `ψ_PE` — Port Election index.
    pub pe: Option<usize>,
    /// `ψ_PPE` — Port Path Election index.
    pub ppe: Option<usize>,
    /// `ψ_CPPE` — Complete Port Path Election index.
    pub cppe: Option<usize>,
}

impl ElectionIndices {
    /// Does the hierarchy of Fact 1.1 hold (`ψ_CPPE ≥ ψ_PPE ≥ ψ_PE ≥ ψ_S`, with
    /// "unsolvable" treated as `+∞`)?
    pub fn satisfies_hierarchy(&self) -> bool {
        fn key(x: Option<usize>) -> usize {
            x.unwrap_or(usize::MAX)
        }
        key(self.cppe) >= key(self.ppe)
            && key(self.ppe) >= key(self.pe)
            && key(self.pe) >= key(self.s)
    }
}

/// `ψ_S(G)`: least depth at which some node has a unique view. `None` if no node ever
/// does (e.g. vertex-transitive port-symmetric graphs such as the symmetric ring).
pub fn psi_s(g: &PortGraph) -> Option<usize> {
    let r = Refinement::compute_until_unique(g);
    psi_s_with(&r)
}

/// `ψ_S` given a precomputed refinement.
pub fn psi_s_with(r: &Refinement) -> Option<usize> {
    (0..=r.stable_depth().max(r.computed_depth())).find(|&h| !r.unique_nodes_at(h).is_empty())
}

/// For a fixed depth and candidate leader, the Port Election output assignment: one
/// port per non-leader node, constant on view classes, such that every node's port is
/// the first port of a simple path to the leader. `None` if no such assignment exists.
pub fn pe_assignment(
    g: &PortGraph,
    r: &Refinement,
    depth: usize,
    leader: NodeId,
) -> Option<Vec<Option<Port>>> {
    let classes = r.classes_at(depth);
    let mut out: Vec<Option<Port>> = vec![None; g.num_nodes()];
    for class in classes {
        if class.contains(&leader) {
            // The leader's class must be the singleton {leader}; its output is "leader".
            if class.len() > 1 {
                return None;
            }
            continue;
        }
        let degree = g.degree(class[0]) as u32;
        let valid_port =
            (0..degree).find(|&p| class.iter().all(|&v| pe_port_is_valid(g, v, p, leader)));
        match valid_port {
            Some(p) => {
                for &v in &class {
                    out[v as usize] = Some(p);
                }
            }
            None => return None,
        }
    }
    Some(out)
}

/// `ψ_PE(G)`: least depth at which some uniquely-identifiable node can serve as leader
/// with a class-uniform valid port assignment for all other nodes.
pub fn psi_pe(g: &PortGraph) -> Option<usize> {
    let r = Refinement::compute(g, None);
    for h in 0..=r.stable_depth() {
        for leader in r.unique_nodes_at(h) {
            if pe_assignment(g, &r, h, leader).is_some() {
                return Some(h);
            }
        }
    }
    None
}

/// Candidate-sequence search shared by the PPE and CPPE assignments.
fn common_sequence<T, F>(
    g: &PortGraph,
    class: &[NodeId],
    leader: NodeId,
    max_paths: usize,
    extract: impl Fn(&PortGraph, &[NodeId]) -> T,
    valid: F,
) -> Result<Option<T>, IndexError>
where
    F: Fn(&PortGraph, NodeId, &T) -> bool,
{
    let enumeration = simple_paths(g, class[0], leader, max_paths);
    let complete = enumeration.is_complete();
    for path in enumeration.items() {
        let candidate = extract(g, path);
        if class.iter().all(|&v| valid(g, v, &candidate)) {
            return Ok(Some(candidate));
        }
    }
    if complete {
        Ok(None)
    } else {
        Err(IndexError::PathBudgetExceeded { max_paths })
    }
}

/// For a fixed depth and candidate leader, the Port Path Election output assignment:
/// one outgoing-port sequence per non-leader node, constant on view classes, tracing a
/// simple path to the leader from every member. `Ok(None)` if no assignment exists.
pub fn ppe_assignment(
    g: &PortGraph,
    r: &Refinement,
    depth: usize,
    leader: NodeId,
    max_paths: usize,
) -> Result<Option<Vec<Option<Vec<Port>>>>, IndexError> {
    let classes = r.classes_at(depth);
    let mut out: Vec<Option<Vec<Port>>> = vec![None; g.num_nodes()];
    for class in classes {
        if class.contains(&leader) {
            if class.len() > 1 {
                return Ok(None);
            }
            continue;
        }
        let found = common_sequence(
            g,
            &class,
            leader,
            max_paths,
            |g, path| g.outgoing_ports_of_path(path),
            |g, v, seq: &Vec<Port>| ppe_sequence_is_valid(g, v, seq, leader),
        )?;
        match found {
            Some(seq) => {
                for &v in &class {
                    out[v as usize] = Some(seq.clone());
                }
            }
            None => return Ok(None),
        }
    }
    Ok(Some(out))
}

/// Per-node CPPE output assignment: `None` for the leader, the full (outgoing,
/// incoming) port sequence of a simple path to the leader otherwise.
pub type CppeAssignment = Vec<Option<Vec<(Port, Port)>>>;

/// For a fixed depth and candidate leader, the Complete Port Path Election output
/// assignment (pairs of ports per edge). `Ok(None)` if no assignment exists.
pub fn cppe_assignment(
    g: &PortGraph,
    r: &Refinement,
    depth: usize,
    leader: NodeId,
    max_paths: usize,
) -> Result<Option<CppeAssignment>, IndexError> {
    let classes = r.classes_at(depth);
    let mut out: Vec<Option<Vec<(Port, Port)>>> = vec![None; g.num_nodes()];
    for class in classes {
        if class.contains(&leader) {
            if class.len() > 1 {
                return Ok(None);
            }
            continue;
        }
        let found = common_sequence(
            g,
            &class,
            leader,
            max_paths,
            |g, path| g.full_ports_of_path(path),
            |g, v, seq: &Vec<(Port, Port)>| cppe_sequence_is_valid(g, v, seq, leader),
        )?;
        match found {
            Some(seq) => {
                for &v in &class {
                    out[v as usize] = Some(seq.clone());
                }
            }
            None => return Ok(None),
        }
    }
    Ok(Some(out))
}

/// `ψ_PPE(G)`: exact Port Path Election index (for small graphs).
pub fn psi_ppe(g: &PortGraph, max_paths: usize) -> Result<Option<usize>, IndexError> {
    let r = Refinement::compute(g, None);
    for h in 0..=r.stable_depth() {
        for leader in r.unique_nodes_at(h) {
            if ppe_assignment(g, &r, h, leader, max_paths)?.is_some() {
                return Ok(Some(h));
            }
        }
    }
    Ok(None)
}

/// `ψ_CPPE(G)`: exact Complete Port Path Election index (for small graphs).
pub fn psi_cppe(g: &PortGraph, max_paths: usize) -> Result<Option<usize>, IndexError> {
    let r = Refinement::compute(g, None);
    for h in 0..=r.stable_depth() {
        for leader in r.unique_nodes_at(h) {
            if cppe_assignment(g, &r, h, leader, max_paths)?.is_some() {
                return Ok(Some(h));
            }
        }
    }
    Ok(None)
}

/// Compute all four election indices (exact; intended for small graphs).
pub fn compute_all(g: &PortGraph, max_paths: usize) -> Result<ElectionIndices, IndexError> {
    Ok(ElectionIndices {
        s: psi_s(g),
        pe: psi_pe(g),
        ppe: psi_ppe(g, max_paths)?,
        cppe: psi_cppe(g, max_paths)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_graph::generators;

    #[test]
    fn symmetric_ring_is_infeasible_for_everything() {
        let g = generators::symmetric_ring(4).unwrap();
        let f = feasibility(&g);
        assert!(!f.feasible);
        assert_eq!(f.stable_classes, 1);
        let idx = compute_all(&g, 1000).unwrap();
        assert_eq!(
            idx,
            ElectionIndices {
                s: None,
                pe: None,
                ppe: None,
                cppe: None
            }
        );
        assert!(idx.satisfies_hierarchy());
    }

    #[test]
    fn star_has_selection_index_zero() {
        // The centre has unique degree, so ψ_S = 0 — the paper's own example of
        // "ψ_S(G) = 0 iff G contains a node whose degree is unique".
        let g = generators::star(3).unwrap();
        assert_eq!(psi_s(&g), Some(0));
        // The star is feasible: the leaves are distinguished by the far-end port of
        // their unique edge (the augmented view records both port numbers).
        let f = feasibility(&g);
        assert!(f.feasible);
        // PE is solvable in 0 rounds: every leaf's only port leads to the centre.
        assert_eq!(psi_pe(&g), Some(0));
    }

    #[test]
    fn paper_three_node_line_cppe_index_is_one() {
        // Quoted in Section 1: for the 3-node line with ports 0,0,1,0, ψ_CPPE(G) = 1.
        // (PPE, by contrast, is solvable in 0 rounds on this graph: both endpoints
        // output the outgoing-port sequence (0), which is a simple path to the centre
        // from either of them; CPPE needs 1 round because the centre-side port of the
        // two pendant edges differs.)
        let g = generators::paper_three_node_line();
        let idx = compute_all(&g, 1000).unwrap();
        assert_eq!(idx.cppe, Some(1));
        assert_eq!(idx.ppe, Some(0));
        assert_eq!(idx.pe, Some(0));
        // The centre has unique degree: ψ_S = 0.
        assert_eq!(idx.s, Some(0));
        assert!(idx.satisfies_hierarchy());
    }

    #[test]
    fn feasible_oriented_ring_indices() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        let f = feasibility(&g);
        assert!(f.feasible);
        assert_eq!(f.stable_classes, 5);
        let idx = compute_all(&g, 1000).unwrap();
        assert!(idx.s.is_some());
        assert!(idx.cppe.is_some());
        assert!(idx.satisfies_hierarchy());
        // All nodes have degree 2, so no node is unique at depth 0.
        assert!(idx.s.unwrap() >= 1);
    }

    #[test]
    fn hierarchy_holds_on_random_graphs() {
        for seed in 0..8u64 {
            let g = generators::random_connected(10, 4, 3, seed).unwrap();
            let idx = compute_all(&g, 20_000).unwrap();
            assert!(idx.satisfies_hierarchy(), "seed {seed}: {idx:?}");
        }
    }

    #[test]
    fn pe_assignment_is_class_uniform_and_valid() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        let r = Refinement::compute(&g, None);
        let h = psi_pe(&g).unwrap();
        let leader = r
            .unique_nodes_at(h)
            .into_iter()
            .find(|&u| pe_assignment(&g, &r, h, u).is_some())
            .unwrap();
        let assignment = pe_assignment(&g, &r, h, leader).unwrap();
        for v in g.nodes() {
            if v == leader {
                assert!(assignment[v as usize].is_none());
            } else {
                let p = assignment[v as usize].unwrap();
                assert!(pe_port_is_valid(&g, v, p, leader));
            }
        }
        // Uniform on classes.
        for class in r.classes_at(h) {
            let vals: Vec<_> = class.iter().map(|&v| assignment[v as usize]).collect();
            assert!(vals.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn ppe_and_cppe_assignments_trace_simple_paths() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        let r = Refinement::compute(&g, None);
        let h = psi_cppe(&g, 1000).unwrap().unwrap();
        let leader = r
            .unique_nodes_at(h)
            .into_iter()
            .find(|&u| cppe_assignment(&g, &r, h, u, 1000).unwrap().is_some())
            .unwrap();
        let ppe = ppe_assignment(&g, &r, h, leader, 1000).unwrap().unwrap();
        let cppe = cppe_assignment(&g, &r, h, leader, 1000).unwrap().unwrap();
        for v in g.nodes() {
            if v == leader {
                continue;
            }
            assert!(ppe_sequence_is_valid(
                &g,
                v,
                ppe[v as usize].as_ref().unwrap(),
                leader
            ));
            assert!(cppe_sequence_is_valid(
                &g,
                v,
                cppe[v as usize].as_ref().unwrap(),
                leader
            ));
        }
    }

    #[test]
    fn path_budget_error_is_reported() {
        // A 4-cycle with a pendant node: at depth 0 the three degree-2 cycle nodes form
        // one class, and with a path cap of 1 the single path enumerated from the first
        // member fails for the others, so the computation must refuse to conclude.
        use anet_graph::GraphBuilder;
        let mut b = GraphBuilder::with_nodes(5);
        for i in 0..4u32 {
            b.add_edge(i, 0, (i + 1) % 4, 1).unwrap();
        }
        b.add_edge(0, 2, 4, 0).unwrap();
        let g = b.build().unwrap();
        let r = Refinement::compute(&g, None);
        let res = ppe_assignment(&g, &r, 0, 0, 1);
        assert_eq!(res, Err(IndexError::PathBudgetExceeded { max_paths: 1 }));
        // With a generous budget the computation terminates with a definite answer.
        assert!(ppe_assignment(&g, &r, 0, 0, 10_000).is_ok());
        assert!(psi_ppe(&g, 10_000).is_ok());
    }

    #[test]
    fn feasibility_depth_is_minimal() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        let f = feasibility(&g);
        let d = f.views_distinct_at.unwrap();
        let r = Refinement::compute(&g, None);
        assert_eq!(r.num_classes_at(d), g.num_nodes());
        if d > 0 {
            assert!(r.num_classes_at(d - 1) < g.num_nodes());
        }
    }

    #[test]
    fn index_error_displays_cap() {
        let e = IndexError::PathBudgetExceeded { max_paths: 7 };
        assert!(e.to_string().contains('7'));
    }
}
