//! Feasibility and election indices `ψ_S`, `ψ_PE`, `ψ_PPE`, `ψ_CPPE`.
//!
//! For a graph `G` whose map is known to the nodes, version `Z` of leader election is
//! solvable in `h` rounds iff outputs that are constant on `B^h`-equivalence classes
//! can satisfy `Z`'s correctness condition (a node's decision after `h` rounds is a
//! function of `B^h(v)` only — Proposition 2.1 and its analogues). The minimum such
//! `h` is the `Z`-index `ψ_Z(G)`.
//!
//! Concretely:
//!
//! * `ψ_S(G)` — the least depth at which some node's view class is a singleton;
//! * `ψ_PE(G)` — the least depth at which some singleton class `{u}` admits, for every
//!   other class, a single port that is the first port of a simple path to `u` from
//!   *every* member of the class;
//! * `ψ_PPE(G)` / `ψ_CPPE(G)` — ditto with a single outgoing-port sequence /
//!   `(outgoing, incoming)`-pair sequence tracing a simple path to `u` from every
//!   member.
//!
//! All searches stop at the refinement's stable depth: deeper views carry no additional
//! information, so if a task is unsolvable there it is unsolvable at every time bound
//! (the graph is infeasible for that task).
//!
//! ## How the strong indices are computed
//!
//! The per-class candidate search runs on the class quotient graph ([`crate::quotient`])
//! as a ladder of stages, cheapest and most scalable first:
//!
//! 1. **Uniform route lift** — BFS over the quotient's uniform edges yields one
//!    route per class whose lifted port sequence is valid for *every* member by
//!    construction (see the quotient module docs); it is still re-validated with
//!    the `paths` predicates as defense-in-depth.
//! 2. **Member shortest paths** — each member's concrete shortest path to the
//!    leader (from one BFS) is tried as a common candidate. For singleton classes
//!    this always succeeds, so at the depth where all views are distinct the
//!    whole assignment completes with no enumeration at all.
//! 3. **Guided merge finder** (PPE only) — synchronized walks from all members
//!    are forward-deterministic given the port script, so a common sequence must
//!    *merge* all walks into one by the time they reach the leader. The finder
//!    steers the walks pairwise into the nearest *merger* (a node with two
//!    incident edges sharing a far port) via a BFS in the synchronized pair
//!    graph, then rides a shortest path to the leader that avoids every walk's
//!    earlier nodes. The result is only ever used after exact re-validation, so
//!    the heuristic cannot affect soundness — only which instances resolve.
//!    The merged prefix is leader-independent and cached across the leaders of
//!    one depth.
//! 4. **Joint bounded search** — a DFS over synchronized walks, pruning any
//!    branch where a walk revisits a node, loses its port, or reaches the leader
//!    before the others. Exhausting it is a sound proof that no common sequence
//!    exists; exceeding `max_paths` explored steps falls through to stage 5.
//! 5. **Bounded enumeration** (the original implementation) — enumerate simple
//!    paths from the class representative, capped at `max_paths`, with
//!    [`IndexError::PathBudgetExceeded`] as the typed escape hatch when the cap
//!    is hit without an answer.
//!
//! For CPPE the ladder collapses: a complete port sequence `((p_1,q_1) … (p_L,q_L))`
//! replayed *backward* from the leader is deterministic — the incoming port `q_L`
//! pins the predecessor `neighbor(leader, q_L)`, and so on down to the start — so
//! at most one node can validly output any given sequence, and a class with two
//! or more members can never share one. CPPE assignments therefore exist exactly
//! at the depths where every view class is a singleton, where stage 2 always
//! succeeds; no bounded search is ever needed and `ψ_CPPE` is exact at any scale.
//!
//! The pre-quotient implementations are kept as `*_enumerated` — the oracle for
//! the equivalence tests and the baseline for the `bench_index` benchmark.

use crate::paths::{cppe_sequence_is_valid, pe_port_is_valid, ppe_sequence_is_valid, simple_paths};
use crate::quotient::{QuotientSearch, SearchStats};
use crate::refinement::Refinement;
use anet_graph::{NodeId, Port, PortGraph};

/// Error produced by the exact index computations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// The simple-path enumeration cap was reached without an answer; the result would
    /// not be sound, so none is returned. Increase `max_paths` or use a smaller graph.
    PathBudgetExceeded {
        /// The cap that was in force.
        max_paths: usize,
    },
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::PathBudgetExceeded { max_paths } => write!(
                f,
                "simple-path enumeration cap of {max_paths} paths exceeded; result would be unsound"
            ),
        }
    }
}

impl std::error::Error for IndexError {}

/// Feasibility of a graph in the sense of the paper: leader election (in the strong
/// formulations) is possible knowing the map iff the views of all nodes are distinct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Feasibility {
    /// Are all (infinite) views distinct?
    pub feasible: bool,
    /// If feasible, the least depth at which all truncated views are already distinct.
    pub views_distinct_at: Option<usize>,
    /// Number of distinct view classes once refinement stabilises.
    pub stable_classes: usize,
}

/// Compute feasibility by running refinement to stability (two nodes have equal
/// infinite views iff they have equal views at the stable depth).
pub fn feasibility(g: &PortGraph) -> Feasibility {
    let r = Refinement::compute(g, None);
    let n = g.num_nodes();
    let stable_classes = r.num_classes_at(r.stable_depth());
    if stable_classes != n {
        return Feasibility {
            feasible: false,
            views_distinct_at: None,
            stable_classes,
        };
    }
    let first = (0..=r.stable_depth())
        .find(|&h| r.num_classes_at(h) == n)
        .unwrap_or(r.stable_depth());
    Feasibility {
        feasible: true,
        views_distinct_at: Some(first),
        stable_classes,
    }
}

/// The four election indices of a graph. `None` means the corresponding task is not
/// solvable on this graph at any time bound, even knowing the map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElectionIndices {
    /// `ψ_S` — Selection index.
    pub s: Option<usize>,
    /// `ψ_PE` — Port Election index.
    pub pe: Option<usize>,
    /// `ψ_PPE` — Port Path Election index.
    pub ppe: Option<usize>,
    /// `ψ_CPPE` — Complete Port Path Election index.
    pub cppe: Option<usize>,
}

impl ElectionIndices {
    /// Does the hierarchy of Fact 1.1 hold (`ψ_CPPE ≥ ψ_PPE ≥ ψ_PE ≥ ψ_S`, with
    /// "unsolvable" treated as `+∞`)?
    pub fn satisfies_hierarchy(&self) -> bool {
        fn key(x: Option<usize>) -> usize {
            x.unwrap_or(usize::MAX)
        }
        key(self.cppe) >= key(self.ppe)
            && key(self.ppe) >= key(self.pe)
            && key(self.pe) >= key(self.s)
    }
}

/// `ψ_S(G)`: least depth at which some node has a unique view. `None` if no node ever
/// does (e.g. vertex-transitive port-symmetric graphs such as the symmetric ring).
pub fn psi_s(g: &PortGraph) -> Option<usize> {
    let r = Refinement::compute_until_unique(g);
    psi_s_with(&r)
}

/// `ψ_S` given a precomputed refinement.
pub fn psi_s_with(r: &Refinement) -> Option<usize> {
    (0..=r.stable_depth().max(r.computed_depth())).find(|&h| !r.unique_nodes_at(h).is_empty())
}

/// For a fixed depth and candidate leader, the Port Election output assignment: one
/// port per non-leader node, constant on view classes, such that every node's port is
/// the first port of a simple path to the leader. `None` if no such assignment exists.
pub fn pe_assignment(
    g: &PortGraph,
    r: &Refinement,
    depth: usize,
    leader: NodeId,
) -> Option<Vec<Option<Port>>> {
    let mut search = QuotientSearch::new(g, r);
    pe_assignment_with(&mut search, depth, leader)
}

/// [`pe_assignment`] on a reusable [`QuotientSearch`] (caches the quotient per depth
/// and the BFS passes per leader across calls). The distance certificate from the
/// leader BFS fast-accepts ports leading strictly closer to the leader; ports are
/// still tried in increasing order with the exact predicate as the fallback, so the
/// selected assignment is identical to [`pe_assignment_enumerated`]'s.
pub fn pe_assignment_with(
    search: &mut QuotientSearch<'_>,
    depth: usize,
    leader: NodeId,
) -> Option<Vec<Option<Port>>> {
    search.prepare(depth, leader);
    let g = search.graph();
    let classes = search.refinement().classes_at(depth);
    let mut out: Vec<Option<Port>> = vec![None; g.num_nodes()];
    for class in classes {
        if class.contains(&leader) {
            // The leader's class must be the singleton {leader}; its output is "leader".
            if class.len() > 1 {
                return None;
            }
            continue;
        }
        let degree = g.degree(class[0]) as u32;
        let valid_port = (0..degree).find(|&p| {
            class
                .iter()
                .all(|&v| search.pe_certified(v, p) || pe_port_is_valid(g, v, p, leader))
        });
        match valid_port {
            Some(p) => {
                for &v in &class {
                    out[v as usize] = Some(p);
                }
            }
            None => return None,
        }
    }
    Some(out)
}

/// `ψ_PE(G)`: least depth at which some uniquely-identifiable node can serve as leader
/// with a class-uniform valid port assignment for all other nodes.
pub fn psi_pe(g: &PortGraph) -> Option<usize> {
    let r = Refinement::compute(g, None);
    let mut search = QuotientSearch::new(g, &r);
    psi_pe_with(&mut search)
}

/// [`psi_pe`] on a caller-owned search (so one search serves all four indices).
pub fn psi_pe_with(search: &mut QuotientSearch<'_>) -> Option<usize> {
    let r = search.refinement();
    for h in 0..=r.stable_depth() {
        for leader in r.unique_nodes_at(h) {
            if pe_assignment_with(search, h, leader).is_some() {
                return Some(h);
            }
        }
    }
    None
}

/// Node count above which the legacy simple-path enumeration (stage 5) is never
/// consulted: generating `max_paths` simple paths on graphs this large takes
/// unbounded time and memory per path, so its budget is reported as exceeded up
/// front. Below the ceiling the ladder's answers are a strict superset of the
/// pre-quotient implementation's; the equivalence corpora all sit well under it.
const ENUMERATION_CEILING: usize = 512;

/// Which strong shade a candidate sequence is validated against.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Shade {
    /// Outgoing ports only (`ppe_sequence_is_valid` on the projection).
    Ppe,
    /// Full `(outgoing, incoming)` pairs (`cppe_sequence_is_valid`).
    Cppe,
}

/// Is the full-pair candidate valid, under `shade`'s predicate, for every member?
fn candidate_valid_for_all(
    g: &PortGraph,
    class: &[NodeId],
    leader: NodeId,
    pairs: &[(Port, Port)],
    shade: Shade,
) -> bool {
    match shade {
        Shade::Ppe => {
            let ports: Vec<Port> = pairs.iter().map(|&(p, _)| p).collect();
            class
                .iter()
                .all(|&v| ppe_sequence_is_valid(g, v, &ports, leader))
        }
        Shade::Cppe => class
            .iter()
            .all(|&v| cppe_sequence_is_valid(g, v, pairs, leader)),
    }
}

/// Outcome of the joint synchronized-walk search (stage 3).
enum Joint {
    /// A common sequence, as the first member's full port pairs.
    Found(Vec<(Port, Port)>),
    /// The search exhausted all synchronized walks: no common sequence exists.
    NoneExists,
    /// The step budget was hit before an answer.
    Budget,
}

/// Stage 3: DFS over synchronized walks of all members. Every member follows the
/// same outgoing port at every step (for [`Shade::Cppe`], the far ports must also
/// agree); a branch is pruned when a member's walk revisits one of its own nodes,
/// a port is missing, or a member reaches the leader before the others (its walk
/// would have to revisit the leader later). A sequence is found exactly when all
/// walks reach the leader simultaneously — by construction it is then valid for
/// every member. Exhausting the search soundly proves no common sequence exists:
/// any valid sequence induces synchronized walks surviving every prune.
///
/// `explored` counts generated joint steps; exceeding `max_states` aborts with
/// [`Joint::Budget`] (the caller then falls back to plain enumeration, keeping
/// the original budget semantics).
fn joint_search(
    g: &PortGraph,
    members: &[NodeId],
    leader: NodeId,
    shade: Shade,
    max_states: usize,
    explored: &mut usize,
) -> Joint {
    let n = g.num_nodes();
    let k = members.len();
    let mut cur: Vec<NodeId> = members.to_vec();
    let mut on_walk = vec![false; k * n];
    for (i, &m) in members.iter().enumerate() {
        on_walk[i * n + m as usize] = true;
    }
    let mut seq: Vec<(Port, Port)> = Vec::new();
    match joint_step(
        g,
        leader,
        shade,
        max_states,
        explored,
        &mut cur,
        &mut on_walk,
        &mut seq,
    ) {
        JointStep::Found => Joint::Found(seq),
        JointStep::Exhausted => Joint::NoneExists,
        JointStep::Budget => Joint::Budget,
    }
}

enum JointStep {
    Found,
    Exhausted,
    Budget,
}

#[allow(clippy::too_many_arguments)]
fn joint_step(
    g: &PortGraph,
    leader: NodeId,
    shade: Shade,
    max_states: usize,
    explored: &mut usize,
    cur: &mut [NodeId],
    on_walk: &mut [bool],
    seq: &mut Vec<(Port, Port)>,
) -> JointStep {
    let n = g.num_nodes();
    let k = cur.len();
    let degree = g.degree(cur[0]) as Port;
    for p in 0..degree {
        let Some((u0, q0)) = g.neighbor(cur[0], p) else {
            continue;
        };
        *explored += 1;
        if *explored > max_states {
            return JointStep::Budget;
        }
        // Materialise the joint step; prune on missing ports or (CPPE) far-port
        // disagreement.
        let mut nexts: Vec<NodeId> = Vec::with_capacity(k);
        nexts.push(u0);
        let mut ok = true;
        for &c in cur.iter().skip(1) {
            match g.neighbor(c, p) {
                Some((u, q)) if shade == Shade::Ppe || q == q0 => nexts.push(u),
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        let all_leader = nexts.iter().all(|&u| u == leader);
        if !all_leader {
            // Simplicity per walk, and no member may hit the leader early.
            for (i, &u) in nexts.iter().enumerate() {
                if u == leader || on_walk[i * n + u as usize] {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        seq.push((p, q0));
        if all_leader {
            return JointStep::Found;
        }
        for (i, next) in nexts.iter_mut().enumerate() {
            on_walk[i * n + *next as usize] = true;
            std::mem::swap(&mut cur[i], next);
        }
        let step = joint_step(g, leader, shade, max_states, explored, cur, on_walk, seq);
        for (i, &u) in nexts.iter().enumerate() {
            // `nexts` now holds the previous positions; undo the swap and flags.
            on_walk[i * n + cur[i] as usize] = false;
            cur[i] = u;
        }
        match step {
            JointStep::Exhausted => {
                seq.pop();
            }
            done => return done,
        }
    }
    JointStep::Exhausted
}

/// A leader-independent merged prefix produced by the guided finder: a common
/// port script that drives every member of one class onto a single node.
struct MergedPrefix {
    /// The script as the first member's `(outgoing, incoming)` pairs.
    script: Vec<(Port, Port)>,
    /// The common position of all walks after the prefix.
    endpoint: NodeId,
    /// Union of the nodes visited by any member's walk (endpoint included).
    visited_union: Vec<bool>,
}

impl MergedPrefix {
    /// Package fully merged `walks` + `script` into a prefix.
    fn of(walks: &Walks, script: Vec<(Port, Port)>, k: usize, n: usize) -> MergedPrefix {
        let endpoint = walks.positions[0];
        let mut visited_union = vec![false; n];
        for row in walks.visited.chunks(n).take(k) {
            for (flag, &seen) in visited_union.iter_mut().zip(row) {
                *flag |= seen;
            }
        }
        MergedPrefix {
            script,
            endpoint,
            visited_union,
        }
    }
}

/// Per-depth cache of guided-merge prefixes, keyed by class id. The merge is
/// leader-independent, so one computation serves every candidate leader of a
/// depth; only the leader-avoidance check and the final suffix are per-leader.
#[derive(Default)]
struct MergeCache {
    depth: Option<usize>,
    /// Some class at this depth was proved sequence-free: the whole depth is
    /// refuted for every leader, so later leaders return `Ok(None)` instantly.
    refuted: bool,
    by_class: std::collections::HashMap<u32, MergeOutcome>,
    /// Landmark tables are depth-independent, computed once per cache lifetime.
    landmarks: Option<Landmarks>,
    /// Lazily sized near-field pair table (outer `None` = not yet sized,
    /// inner `None` = graph too large for `n²` bits).
    pair_scratch: Option<Option<PairScratch>>,
}

impl MergeCache {
    fn reset(&mut self, depth: usize) {
        if self.depth != Some(depth) {
            self.depth = Some(depth);
            self.refuted = false;
            self.by_class.clear();
        }
    }
}

/// Landmark BFS distance tables that steer the guided merge finder. The gap
/// `max_L |d_L(x) − d_L(y)|` is an admissible lower bound on the number of
/// synchronized steps needed to bring walkers at `x` and `y` together: one
/// shared port moves each walker across one edge, so each `d_L` changes by at
/// most one and the gap closes by at most two per step. The gap both orders
/// ports (walk down the potential) and prunes depth-limited search — essential
/// on large-diameter graphs (e.g. circulants) where class partners start
/// hundreds of hops apart and blind search in the pair graph is hopeless.
struct Landmarks {
    dists: Vec<Vec<u32>>,
}

impl Landmarks {
    /// Number of landmark BFS trees (farthest-point placement from node 0).
    const COUNT: usize = 8;

    /// Run [`Landmarks::COUNT`] BFS passes, each rooted at the node farthest
    /// from all previous roots (classic farthest-point landmark placement).
    fn compute(g: &PortGraph) -> Landmarks {
        let n = g.num_nodes();
        let mut dists: Vec<Vec<u32>> = Vec::with_capacity(Self::COUNT);
        let mut next: NodeId = 0;
        for _ in 0..Self::COUNT {
            dists.push(bfs_dists(g, next));
            let mut best = (0u32, next);
            for v in 0..n {
                let m = dists.iter().map(|d| d[v]).min().unwrap_or(0);
                if m != u32::MAX && m > best.0 {
                    best = (m, v as NodeId);
                }
            }
            next = best.1;
        }
        Landmarks { dists }
    }

    /// `max_L |d_L(x) − d_L(y)|` — admissible estimate of the merge distance.
    fn gap(&self, x: NodeId, y: NodeId) -> u32 {
        self.dists
            .iter()
            .map(|d| {
                let (a, b) = (d[x as usize], d[y as usize]);
                if a == u32::MAX || b == u32::MAX {
                    0
                } else {
                    a.abs_diff(b)
                }
            })
            .max()
            .unwrap_or(0)
    }
}

/// Single-source BFS distances (`u32::MAX` for unreachable nodes).
fn bfs_dists(g: &PortGraph, root: NodeId) -> Vec<u32> {
    let mut d = vec![u32::MAX; g.num_nodes()];
    d[root as usize] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(root);
    while let Some(x) = queue.pop_front() {
        for (_, u, _) in g.ports(x) {
            if d[u as usize] == u32::MAX {
                d[u as usize] = d[x as usize] + 1;
                queue.push_back(u);
            }
        }
    }
    d
}

/// Walk state of the guided finder: one position and visited set per member.
struct Walks {
    positions: Vec<NodeId>,
    /// `visited[i * n + v]`: has member `i`'s walk visited `v`?
    visited: Vec<bool>,
    /// Scratch buffer for the check phase of [`Walks::try_step`].
    scratch: Vec<NodeId>,
    n: usize,
}

impl Walks {
    fn new(members: &[NodeId], n: usize) -> Self {
        let mut visited = vec![false; members.len() * n];
        for (i, &m) in members.iter().enumerate() {
            visited[i * n + m as usize] = true;
        }
        Walks {
            positions: members.to_vec(),
            visited,
            scratch: Vec::with_capacity(members.len()),
            n,
        }
    }

    /// Apply one shared port to every walk. Transactional: returns `false` with
    /// the state untouched if any walk lacks the port or would revisit one of
    /// its own nodes; commits all walks otherwise.
    fn try_step(&mut self, g: &PortGraph, p: Port) -> bool {
        self.scratch.clear();
        for i in 0..self.positions.len() {
            match g.neighbor(self.positions[i], p) {
                Some((u, _)) if !self.visited[i * self.n + u as usize] => self.scratch.push(u),
                _ => return false,
            }
        }
        for i in 0..self.positions.len() {
            let u = self.scratch[i];
            self.positions[i] = u;
            self.visited[i * self.n + u as usize] = true;
        }
        true
    }

    /// Revert the most recent [`Walks::try_step`], restoring `prev` positions.
    fn undo_step(&mut self, prev: &[NodeId]) {
        for ((pos, row), &old) in self
            .positions
            .iter_mut()
            .zip(self.visited.chunks_mut(self.n))
            .zip(prev)
        {
            row[*pos as usize] = false;
            *pos = old;
        }
    }

    /// Index of the first walk not co-located with walk 0, if any.
    fn first_distinct_index(&self) -> Option<usize> {
        let a = self.positions[0];
        self.positions.iter().position(|&b| b != a)
    }
}

/// Depth-limited DFS on the full synchronized walk state: drive walk `i` and
/// walk `j` together (landmark gap ≤ `target_gap`; exact merge when 0) while
/// keeping every member's walk simple. Ports are tried in order of the
/// post-step landmark gap (immediate merges first), so on graphs with
/// informative landmarks the search walks nearly straight toward the partner;
/// simplicity dead ends are handled by backtracking. On success
/// `walks`/`script` hold the reached state; on failure both are restored.
/// `ops` counts DFS expansions, capped at `max_ops`.
#[allow(clippy::too_many_arguments)]
fn merge_dfs(
    g: &PortGraph,
    walks: &mut Walks,
    i: usize,
    j: usize,
    lm: &Landmarks,
    target_gap: u32,
    limit: u32,
    salt: Port,
    max_ops: usize,
    ops: &mut usize,
    script: &mut Vec<(Port, Port)>,
    seen: &mut std::collections::HashMap<u64, u32>,
) -> bool {
    let (a, b) = (walks.positions[i], walks.positions[j]);
    if a == b || (target_gap > 0 && lm.gap(a, b) <= target_gap) {
        return true;
    }
    // Admissible prune: each step closes the landmark gap by at most two.
    if limit == 0 || lm.gap(a, b).saturating_sub(target_gap).div_ceil(2) > limit {
        return false;
    }
    // Depth-dominance table: where the heuristic is flat (e.g. the near field of
    // a large-diameter graph) plain DFS churns exponentially on permutations of
    // the same few states. Re-expanding a state is useful only with strictly
    // more remaining depth than any earlier expansion — anything else
    // re-explores a subtree of what already failed. The key hashes the FULL
    // position vector: with more than two walks the same target pair recurs
    // with the other walks elsewhere, and pruning those would be far too
    // aggressive. (Heuristic: positions can recur with different visited sets,
    // which the table ignores.)
    let state_key = walks
        .positions
        .iter()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, &v| {
            (h ^ v as u64).wrapping_mul(0x0000_0100_0000_01b3)
        });
    match seen.entry(state_key) {
        std::collections::hash_map::Entry::Occupied(mut e) => {
            if *e.get() >= limit {
                return false;
            }
            e.insert(limit);
        }
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(limit);
        }
    }
    *ops += 1;
    if *ops > max_ops {
        return false;
    }
    let degree = g.degree(a).min(g.degree(b)) as Port;
    let mut order: Vec<(u32, Port, Port)> = Vec::with_capacity(degree as usize);
    for p in 0..degree {
        let (Some((ua, _)), Some((ub, _))) = (g.neighbor(a, p), g.neighbor(b, p)) else {
            continue;
        };
        let key = if ua == ub { 0 } else { 1 + lm.gap(ua, ub) };
        // `salt` rotates the tie-break among equal-key ports so that restart
        // attempts explore genuinely different prefixes even for size-2
        // classes, where the target-pair rule cannot vary.
        order.push((key, (p + salt) % degree, p));
    }
    order.sort_unstable();
    let prev = walks.positions.clone();
    for &(_, _, p) in &order {
        if !walks.try_step(g, p) {
            continue;
        }
        // The script records walk 0's `(outgoing, incoming)` pairs regardless
        // of which pair of walks is being merged.
        let q = g
            .neighbor(prev[0], p)
            .expect("try_step moved every walk, including walk 0")
            .1;
        script.push((p, q));
        if merge_dfs(
            g,
            walks,
            i,
            j,
            lm,
            target_gap,
            limit - 1,
            salt,
            max_ops,
            ops,
            script,
            seen,
        ) {
            return true;
        }
        script.pop();
        walks.undo_step(&prev);
    }
    false
}

/// Reusable `n²`-state tables for the exact near-field pair search: 2 bits per
/// ordered pair state — 0 unvisited, otherwise BFS level mod 3 plus one (the
/// classic mod-3 tag is enough to walk shortest paths backward, since adjacent
/// BFS levels differ by exactly one). Reset is sparse: only words touched by
/// the previous search are zeroed, so a probe costs proportional to the
/// component it explored, not to `n²`.
struct PairScratch {
    words: Vec<u64>,
    touched: Vec<u32>,
    n: u64,
}

impl PairScratch {
    /// Largest graph for which the tables are allocated (`n²/4` bytes — 64 MiB
    /// at the bound). Beyond it the finder falls back to pure corridor DFS.
    const MAX_N: usize = 16_384;

    /// Allocate tables for `g`, or `None` if the graph is too large.
    fn for_graph(g: &PortGraph) -> Option<PairScratch> {
        let n = g.num_nodes();
        (1..=Self::MAX_N).contains(&n).then(|| PairScratch {
            words: vec![0u64; (n * n).div_ceil(32)],
            touched: Vec::new(),
            n: n as u64,
        })
    }

    fn reset(&mut self) {
        for &w in &self.touched {
            self.words[w as usize] = 0;
        }
        self.touched.clear();
    }

    fn pack(&self, a: NodeId, b: NodeId) -> u64 {
        a as u64 * self.n + b as u64
    }

    fn get(&self, s: u64) -> u64 {
        (self.words[(s / 32) as usize] >> ((s % 32) * 2)) & 3
    }

    /// Tag an unvisited state (BFS discovers each state once).
    fn set(&mut self, s: u64, tag: u64) {
        let w = (s / 32) as usize;
        if self.words[w] == 0 {
            self.touched.push(w as u32);
        }
        self.words[w] |= tag << ((s % 32) * 2);
    }
}

/// Outcome of one [`near_field_probe`].
enum NearField {
    /// A reconstructed script applied cleanly; the walks are merged.
    Merged,
    /// The pair component was exhausted without any merging move: the two
    /// walkers can never coincide from these positions, under any script.
    NeverMerges,
    /// Mergers were found but none applied, or the state cap was hit.
    Inconclusive,
}

/// Exact near-field probe for one pair of walks: exhaustive BFS over the
/// synchronized pair graph from their current positions (simplicity relaxed),
/// collecting up to `alternatives` distinct merging moves, then replaying each
/// reconstructed shortest script on the real walks — shortest first, all-or-
/// nothing per script — until one survives every member's simplicity check.
#[allow(clippy::too_many_arguments)]
fn near_field_probe(
    g: &PortGraph,
    walks: &mut Walks,
    i: usize,
    j: usize,
    scratch: &mut PairScratch,
    max_states: usize,
    alternatives: usize,
    ops: &mut usize,
    script: &mut Vec<(Port, Port)>,
) -> NearField {
    scratch.reset();
    let (a0, b0) = (walks.positions[i], walks.positions[j]);
    let mut queue: std::collections::VecDeque<(NodeId, NodeId, u32)> =
        std::collections::VecDeque::new();
    scratch.set(scratch.pack(a0, b0), 1);
    queue.push_back((a0, b0, 0));
    // (state, merging port, BFS level of state), in BFS (shortest-first) order.
    let mut targets: Vec<(NodeId, NodeId, Port, u32)> = Vec::new();
    let mut explored = 0usize;
    let mut capped = false;
    'bfs: while let Some((a, b, lv)) = queue.pop_front() {
        explored += 1;
        if explored > max_states {
            capped = true;
            break;
        }
        let degree = g.degree(a).min(g.degree(b)) as Port;
        for p in 0..degree {
            let (Some((ua, _)), Some((ub, _))) = (g.neighbor(a, p), g.neighbor(b, p)) else {
                continue;
            };
            if ua == ub {
                targets.push((a, b, p, lv));
                if targets.len() >= alternatives {
                    break 'bfs;
                }
                continue;
            }
            let s = scratch.pack(ua, ub);
            if scratch.get(s) == 0 {
                scratch.set(s, (lv as u64 + 1) % 3 + 1);
                queue.push_back((ua, ub, lv + 1));
            }
        }
    }
    // Pair-BFS states are an order of magnitude cheaper than DFS expansions;
    // scale them before charging the shared ops budget.
    *ops += explored / 8 + 1;
    if targets.is_empty() {
        return if capped {
            NearField::Inconclusive
        } else {
            NearField::NeverMerges
        };
    }
    let script_base = script.len();
    'targets: for &(ta, tb, mp, lv) in &targets {
        // Walk the shortest path back to the start via the mod-3 level tags.
        let mut ports_rev: Vec<Port> = vec![mp];
        let (mut ca, mut cb, mut clv) = (ta, tb, lv);
        'reconstruct: while clv > 0 {
            let want = (clv as u64 - 1) % 3 + 1;
            for (_, xa, pa) in g.ports(ca) {
                for (_, xb, pb) in g.ports(cb) {
                    if pa == pb && xa != xb && scratch.get(scratch.pack(xa, xb)) == want {
                        ports_rev.push(pa);
                        (ca, cb) = (xa, xb);
                        clv -= 1;
                        continue 'reconstruct;
                    }
                }
            }
            // No tagged predecessor (can happen only if the tag word tracking
            // were broken) — skip this target rather than panic.
            debug_assert!(false, "BFS level tags admit no predecessor");
            continue 'targets;
        }
        // Replay start→merger, undoing everything if any step breaks a walk.
        let mut undo: Vec<Vec<NodeId>> = Vec::with_capacity(ports_rev.len());
        for &p in ports_rev.iter().rev() {
            let prev = walks.positions.clone();
            if !walks.try_step(g, p) {
                for prev in undo.drain(..).rev() {
                    walks.undo_step(&prev);
                }
                script.truncate(script_base);
                continue 'targets;
            }
            let q = g
                .neighbor(prev[0], p)
                .expect("try_step moved every walk, including walk 0")
                .1;
            script.push((p, q));
            undo.push(prev);
        }
        // The pair graph is directed, so the mod-3 tags can (rarely) alias a
        // deeper state during reconstruction; accept the replay only if it
        // really merged the pair.
        if walks.positions[i] == walks.positions[j] {
            return NearField::Merged;
        }
        for prev in undo.drain(..).rev() {
            walks.undo_step(&prev);
        }
        script.truncate(script_base);
    }
    NearField::Inconclusive
}

/// How one [`guided_merge`] attempt picks the next pair of walks to merge.
/// Different phase orders commit to different prefixes, and a prefix that
/// strands a later phase in one order often succeeds in another — restarting
/// with a new strategy is the cheap cure for greedy commitment.
#[derive(Clone, Copy)]
enum TargetRule {
    /// The distinct pair with the smallest landmark gap (easiest merge first).
    Nearest,
    /// Walk 0 and the first walk not co-located with it.
    First,
    /// The distinct pair with the largest landmark gap (hardest merge first).
    Farthest,
}

/// Outcome of one [`merge_phase`] (merging one pair of walks).
enum PhaseResult {
    /// The target pair is merged; the steps are committed to `walks`/`script`.
    Merged,
    /// Exact proof that the target pair can never coincide from its current
    /// positions (only class-refuting when nothing was committed before it).
    NeverMerges,
    /// No conclusion within the budget.
    Failed,
}

/// Merge one pair of walks: corridor DFS down the landmark potential until the
/// pair is near, then the exact [`near_field_probe`]; if the probe is
/// inconclusive, commit a few rotated shift steps to move the window and try
/// again. Without `n²` tables (`scratch` is `None`) the corridor DFS runs all
/// the way to the merge, as on small graphs every field is the near field.
#[allow(clippy::too_many_arguments)]
fn merge_phase(
    g: &PortGraph,
    walks: &mut Walks,
    i: usize,
    j: usize,
    lm: &Landmarks,
    scratch: &mut Option<PairScratch>,
    salt: Port,
    max_ops: usize,
    ops: &mut usize,
    script: &mut Vec<(Port, Port)>,
    seen: &mut std::collections::HashMap<u64, u32>,
) -> PhaseResult {
    /// Landmark gap below which the pair counts as near.
    const NEAR_GAP: u32 = 12;
    /// Pair-state cap of one near-field probe.
    const NEAR_STATES: usize = 150_000;
    /// Distinct merging moves collected per probe.
    const NEAR_ALTERNATIVES: usize = 64;
    /// Probe rounds before the phase gives up.
    const ROUNDS: usize = 4;
    /// Committed steps between rounds, to shift the probe window.
    const SHIFT_STEPS: usize = 6;

    for round in 0..ROUNDS {
        if *ops > max_ops {
            return PhaseResult::Failed;
        }
        // Only a share of the remaining budget goes to the corridor DFS, so
        // the exact probe below always gets its turn.
        let dfs_cap = *ops + max_ops.saturating_sub(*ops) / 2;
        // (a) The simplicity-aware corridor DFS, all the way to the merge.
        // Iterative deepening; the extra widest round only when the landmark
        // gap is small, where the admissible bound is a gross underestimate of
        // the simplicity-constrained merge depth.
        let h0 = lm.gap(walks.positions[i], walks.positions[j]).max(4);
        let mults: &[u32] = if h0 <= 8 { &[1, 2, 4, 8] } else { &[1, 2, 4] };
        for &mult in mults {
            seen.clear();
            let limit = mult * (h0 + 8);
            if merge_dfs(
                g, walks, i, j, lm, 0, limit, salt, dfs_cap, ops, script, seen,
            ) {
                return PhaseResult::Merged;
            }
            if *ops > dfs_cap {
                break;
            }
        }
        let Some(scratch) = scratch.as_mut() else {
            return PhaseResult::Failed;
        };
        // (b) Approach until the landmark gap is small enough for the probe.
        let gap = lm.gap(walks.positions[i], walks.positions[j]);
        if gap > NEAR_GAP {
            let mut near = false;
            for mult in [1u32, 2, 4] {
                seen.clear();
                let limit = mult * (gap + 8);
                if merge_dfs(
                    g, walks, i, j, lm, NEAR_GAP, limit, salt, dfs_cap, ops, script, seen,
                ) {
                    near = true;
                    break;
                }
                if *ops > dfs_cap {
                    break;
                }
            }
            if !near {
                return PhaseResult::Failed;
            }
        }
        // (c) Exact near-field probe — charged like a DFS expansion up front,
        // so a starved call degrades to "no conclusion" instead of doing
        // unpaid work (the typed budget contract: the escape hatch must stay
        // reachable at tiny budgets).
        *ops += 1;
        if *ops > max_ops {
            return PhaseResult::Failed;
        }
        match near_field_probe(
            g,
            walks,
            i,
            j,
            scratch,
            NEAR_STATES,
            NEAR_ALTERNATIVES,
            ops,
            script,
        ) {
            NearField::Merged => return PhaseResult::Merged,
            NearField::NeverMerges => return PhaseResult::NeverMerges,
            NearField::Inconclusive => {}
        }
        // (d) Shift the window so the next probe sees fresh merger candidates;
        // the preferred port rotates with the round and attempt.
        for s in 0..SHIFT_STEPS {
            let degree = g.degree(walks.positions[i]) as Port;
            let mut stepped = false;
            for off in 0..degree {
                let p = (off + salt + round as Port + s as Port) % degree;
                let prev0 = walks.positions[0];
                if walks.try_step(g, p) {
                    let q = g.neighbor(prev0, p).expect("walk 0 just stepped").1;
                    script.push((p, q));
                    stepped = true;
                    break;
                }
            }
            if !stepped {
                return PhaseResult::Failed;
            }
        }
    }
    PhaseResult::Failed
}

/// Outcome of one [`merge_attempt`].
enum AttemptResult {
    /// All walks are co-located; `walks`/`script` hold the merged state.
    Done,
    /// Some pair of members provably never coincides: no common sequence
    /// exists for this class at this depth, for any leader.
    NoSequence,
    /// No conclusion.
    Failed,
}

/// One full merge attempt: repeatedly pick a target pair by `rule` and merge
/// it with [`merge_phase`].
#[allow(clippy::too_many_arguments)]
fn merge_attempt(
    g: &PortGraph,
    walks: &mut Walks,
    lm: &Landmarks,
    scratch: &mut Option<PairScratch>,
    rule: TargetRule,
    salt: Port,
    max_ops: usize,
    ops: &mut usize,
    script: &mut Vec<(Port, Port)>,
    seen: &mut std::collections::HashMap<u64, u32>,
) -> AttemptResult {
    while let Some(first_j) = walks.first_distinct_index() {
        if *ops > max_ops {
            return AttemptResult::Failed;
        }
        let k = walks.positions.len();
        let distinct_pairs =
            || (0..k).flat_map(move |i| (i + 1..k).filter_map(move |j| (i != j).then_some((i, j))));
        let gap_of = |&(i, j): &(usize, usize)| lm.gap(walks.positions[i], walks.positions[j]);
        let (i, j) = match rule {
            TargetRule::First => Some((0, first_j)),
            TargetRule::Nearest => distinct_pairs()
                .filter(|&(i, j)| walks.positions[i] != walks.positions[j])
                .min_by_key(gap_of),
            TargetRule::Farthest => distinct_pairs()
                .filter(|&(i, j)| walks.positions[i] != walks.positions[j])
                .max_by_key(gap_of),
        }
        .expect("a distinct pair exists");
        match merge_phase(
            g, walks, i, j, lm, scratch, salt, max_ops, ops, script, seen,
        ) {
            PhaseResult::Merged => continue,
            // The refutation is only class-refuting when the probe ran from
            // the original member positions — i.e. nothing was committed
            // before it (the probe itself commits nothing on NeverMerges).
            PhaseResult::NeverMerges if script.is_empty() => return AttemptResult::NoSequence,
            PhaseResult::NeverMerges | PhaseResult::Failed => return AttemptResult::Failed,
        }
    }
    AttemptResult::Done
}

/// Exhaustive depth-unbounded DFS over the joint simple-script tree of all
/// walks: every branch keeps every member's walk simple ([`Walks::try_step`]),
/// success is full co-location. No heuristics, no pruning, no depth limit —
/// so exhausting the tree without a merge is a *sound, leader-independent*
/// proof that no common sequence merges this class (any valid PPE sequence
/// ends all members on the leader, i.e. merges them). The tree is finite
/// (simple walks) and, with several members, usually tiny: each extra member
/// must avoid backtracking at every step, thinning the branching factor
/// geometrically. Returns `None` when the ops budget ran out (no conclusion),
/// `Some(true)` with `walks`/`script` holding the merged state, `Some(false)`
/// for the exhausted-tree refutation.
fn exhaustive_merge_dfs(
    g: &PortGraph,
    walks: &mut Walks,
    max_ops: usize,
    ops: &mut usize,
    script: &mut Vec<(Port, Port)>,
) -> Option<bool> {
    if walks.first_distinct_index().is_none() {
        return Some(true);
    }
    *ops += 1;
    if *ops > max_ops {
        return None;
    }
    let degree = walks
        .positions
        .iter()
        .map(|&v| g.degree(v))
        .min()
        .unwrap_or(0) as Port;
    let prev = walks.positions.clone();
    for p in 0..degree {
        if !walks.try_step(g, p) {
            continue;
        }
        let q = g
            .neighbor(prev[0], p)
            .expect("try_step moved every walk, including walk 0")
            .1;
        script.push((p, q));
        match exhaustive_merge_dfs(g, walks, max_ops, ops, script) {
            Some(true) => return Some(true),
            Some(false) => {}
            None => {
                script.pop();
                walks.undo_step(&prev);
                return None;
            }
        }
        script.pop();
        walks.undo_step(&prev);
    }
    Some(false)
}

/// Outcome of [`guided_merge`] for one class.
enum MergeOutcome {
    /// A common prefix merging every member was found and committed.
    Merged(MergedPrefix),
    /// Exact proof that some pair of members can never be driven onto one
    /// node from their starting positions: no common sequence exists for this
    /// class at this depth, for any leader.
    NoSequence,
    /// No conclusion within the budget.
    Unknown,
}

/// Stage 3, the guided merge finder: drive all members' synchronized walks onto
/// one node by merging one pair at a time with [`merge_phase`], restarting with
/// a different pair order when an attempt dead-ends. Heuristic and bounded —
/// [`MergeOutcome::Unknown`] means "no conclusion"; only the exact near-field
/// refutation yields [`MergeOutcome::NoSequence`]. The caller re-validates any
/// produced prefix plus suffix with the exact predicates. Merged walks stay
/// merged: co-located walks follow the same ports to the same nodes, and
/// [`Walks::try_step`] commits all or none.
fn guided_merge(
    g: &PortGraph,
    members: &[NodeId],
    lm: &Landmarks,
    scratch: &mut Option<PairScratch>,
    max_ops: usize,
    ops: &mut usize,
) -> MergeOutcome {
    const RULES: [TargetRule; 3] = [TargetRule::Nearest, TargetRule::First, TargetRule::Farthest];
    let n = g.num_nodes();
    // With several members the joint simple-script tree thins geometrically
    // (every member must keep its walk simple under one shared port choice),
    // so the exhaustive search usually either finds a merge or refutes the
    // class outright in a few thousand expansions — run it first. For pairs
    // and triples the tree is typically far too wide to exhaust; the guided
    // attempts go first and the refuter mops up with the remaining budget.
    let refuter_first = members.len() >= 4;
    if refuter_first {
        if let Some(out) = exhaustive_stage(g, members, n, *ops + max_ops / 4, ops) {
            return out;
        }
    }
    let per_attempt = (max_ops / 2).max(1);
    let mut seen = std::collections::HashMap::new();
    for (attempt, rule) in RULES.into_iter().enumerate() {
        let mut walks = Walks::new(members, n);
        let mut script: Vec<(Port, Port)> = Vec::new();
        let mut attempt_ops = 0usize;
        let done = merge_attempt(
            g,
            &mut walks,
            lm,
            scratch,
            rule,
            attempt as Port,
            per_attempt,
            &mut attempt_ops,
            &mut script,
            &mut seen,
        );
        *ops += attempt_ops;
        match done {
            AttemptResult::Failed => continue,
            AttemptResult::NoSequence => return MergeOutcome::NoSequence,
            AttemptResult::Done => {}
        }
        return MergeOutcome::Merged(MergedPrefix::of(&walks, script, members.len(), n));
    }
    if !refuter_first {
        if let Some(out) = exhaustive_stage(g, members, n, max_ops, ops) {
            return out;
        }
    }
    MergeOutcome::Unknown
}

/// Run [`exhaustive_merge_dfs`] on fresh walks up to `cap` total ops; `None`
/// when the budget ran out without a conclusion.
fn exhaustive_stage(
    g: &PortGraph,
    members: &[NodeId],
    n: usize,
    cap: usize,
    ops: &mut usize,
) -> Option<MergeOutcome> {
    let mut walks = Walks::new(members, n);
    let mut script: Vec<(Port, Port)> = Vec::new();
    match exhaustive_merge_dfs(g, &mut walks, cap, ops, &mut script) {
        Some(false) => Some(MergeOutcome::NoSequence),
        Some(true) => Some(MergeOutcome::Merged(MergedPrefix::of(
            &walks,
            script,
            members.len(),
            n,
        ))),
        None => None,
    }
}

/// Shortest path from `from` to `to` by BFS, never entering a banned node
/// (`from` itself exempt). Returns the node sequence including both endpoints.
fn path_avoiding(g: &PortGraph, from: NodeId, to: NodeId, banned: &[bool]) -> Option<Vec<NodeId>> {
    if from == to {
        return Some(vec![from]);
    }
    let n = g.num_nodes();
    let mut prev: Vec<u32> = vec![u32::MAX; n];
    prev[from as usize] = from;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    while let Some(x) = queue.pop_front() {
        for (_, u, _) in g.ports(x) {
            if prev[u as usize] != u32::MAX || banned[u as usize] {
                continue;
            }
            prev[u as usize] = x;
            if u == to {
                let mut path = vec![u];
                let mut cur = x;
                while cur != from {
                    path.push(cur);
                    cur = prev[cur as usize];
                }
                path.push(from);
                path.reverse();
                return Some(path);
            }
            queue.push_back(u);
        }
    }
    None
}

/// Stage 4 / 5 (and the `*_enumerated` oracle): candidate-sequence search by bounded
/// simple-path enumeration from the class representative, as before the quotient
/// search existed — except that the enumeration now also carries a DFS *step*
/// budget (see [`simple_paths`]), so topologies whose dead-end wandering used to
/// spin forever without completing a single path (shuffled circulants from ~256
/// nodes) now surface the typed budget error instead of hanging. `explored`
/// counts tested candidates.
fn common_sequence<T, F>(
    g: &PortGraph,
    class: &[NodeId],
    leader: NodeId,
    max_paths: usize,
    explored: &mut usize,
    extract: impl Fn(&PortGraph, &[NodeId]) -> T,
    valid: F,
) -> Result<Option<T>, IndexError>
where
    F: Fn(&PortGraph, NodeId, &T) -> bool,
{
    let enumeration = simple_paths(g, class[0], leader, max_paths);
    let complete = enumeration.is_complete();
    for path in enumeration.items() {
        *explored += 1;
        let candidate = extract(g, path);
        if class.iter().all(|&v| valid(g, v, &candidate)) {
            return Ok(Some(candidate));
        }
    }
    if complete {
        Ok(None)
    } else {
        Err(IndexError::PathBudgetExceeded { max_paths })
    }
}

/// The cached per-class merge outcome: compute [`guided_merge`] on a cache
/// miss, sharing landmark tables and the near-field scratch. Returns the
/// outcome and the ops the computation charged (0 on a cache hit).
fn merge_outcome_cached<'c>(
    cache: &'c mut MergeCache,
    g: &PortGraph,
    class_id: u32,
    class: &[NodeId],
    max_paths: usize,
) -> (&'c MergeOutcome, usize) {
    let MergeCache {
        by_class,
        landmarks,
        pair_scratch,
        ..
    } = cache;
    let lm = landmarks.get_or_insert_with(|| Landmarks::compute(g));
    let scratch = pair_scratch.get_or_insert_with(|| PairScratch::for_graph(g));
    let mut ops = 0usize;
    let out = by_class
        .entry(class_id)
        .or_insert_with(|| guided_merge(g, class, lm, scratch, max_paths, &mut ops));
    (out, ops)
}

/// The shared PPE/CPPE assignment driver: per class, run the candidate ladder
/// (uniform route → member shortest paths → guided merge → joint search →
/// bounded enumeration) and assign the first candidate valid for every member.
/// Returns full port pairs per node; PPE projects to outgoing ports afterwards.
///
/// With `find_only` set, the sound-but-expensive refutation stages (joint
/// search, enumeration) are skipped: an unresolved class yields the budget
/// error rather than burning the budget again. [`psi_strong_with`] switches to
/// this mode for the remaining leaders of a depth once one leader has already
/// produced an error — at that point only a *success* can change the depth's
/// outcome, so refutation work on further leaders is wasted.
fn strong_assignment_inner(
    search: &mut QuotientSearch<'_>,
    depth: usize,
    leader: NodeId,
    max_paths: usize,
    shade: Shade,
    cache: &mut MergeCache,
    find_only: bool,
) -> Result<Option<CppeAssignment>, IndexError> {
    cache.reset(depth);
    // Some earlier leader's run proved a class at this depth sequence-free;
    // the proof is leader-independent, so every leader's answer here is known.
    if cache.refuted {
        return Ok(None);
    }
    // The CPPE collapse (backward determinism, see the module docs): a class
    // with two or more members can never share a complete port sequence, so an
    // assignment exists iff every class at this depth is a singleton.
    if shade == Shade::Cppe
        && search.refinement().num_classes_at(depth) < search.graph().num_nodes()
    {
        return Ok(None);
    }
    search.prepare(depth, leader);
    let g = search.graph();
    let classes = search.refinement().classes_at(depth);
    // Refute hunt (PPE): before assigning anything, probe the multi-member
    // classes largest first for an exact sequence-free proof — the joint
    // simple-script tree thins geometrically with the member count, so the
    // largest classes conclude fastest, and a single refutation settles this
    // depth for every leader at once. Without it, an unresolved class
    // encountered first would turn a (provably) refuted depth into a budget
    // error.
    if shade == Shade::Ppe {
        let mut multi: Vec<&Vec<NodeId>> = classes
            .iter()
            .filter(|c| c.len() >= 4 && !c.contains(&leader))
            .collect();
        multi.sort_unstable_by_key(|c| std::cmp::Reverse(c.len()));
        for class in multi {
            let class_id = search.quotient().class_of(class[0]);
            let (outcome, ops) = merge_outcome_cached(cache, g, class_id, class, max_paths);
            let refuted = matches!(outcome, MergeOutcome::NoSequence);
            search.stats_mut().paths_explored += ops;
            if refuted {
                cache.refuted = true;
                return Ok(None);
            }
        }
    }
    let mut out: Vec<Option<Vec<(Port, Port)>>> = vec![None; g.num_nodes()];
    for class in classes {
        if class.contains(&leader) {
            if class.len() > 1 {
                return Ok(None);
            }
            continue;
        }
        let mut found: Option<Vec<(Port, Port)>> = None;
        // Stage 1: the lifted uniform route (valid for all members by construction,
        // re-validated as defense-in-depth).
        let class_id = search.quotient().class_of(class[0]);
        if let Some(pairs) = search.route_full(class_id) {
            search.stats_mut().paths_explored += 1;
            if candidate_valid_for_all(g, &class, leader, &pairs, shade) {
                found = Some(pairs);
            } else {
                debug_assert!(false, "a uniform route lifted to an invalid sequence");
            }
        }
        // Stage 2: each member's concrete shortest path as a common candidate
        // (always succeeds for singleton classes).
        if found.is_none() {
            for &m in &class {
                if let Some(pairs) = search.concrete_path_full(m) {
                    search.stats_mut().paths_explored += 1;
                    if candidate_valid_for_all(g, &class, leader, &pairs, shade) {
                        found = Some(pairs);
                        break;
                    }
                }
            }
        }
        // Stage 3 (PPE only; pointless for CPPE after the collapse above): the
        // guided merge finder, with the leader-independent prefix cached across
        // the leaders of this depth.
        if found.is_none() && shade == Shade::Ppe && class.len() > 1 {
            let (outcome, ops) = merge_outcome_cached(cache, g, class_id, &class, max_paths);
            let is_refuted = matches!(outcome, MergeOutcome::NoSequence);
            search.stats_mut().paths_explored += ops;
            if is_refuted {
                // The refutation is exact and leader-independent: no common
                // sequence merges this class for any leader at this depth.
                cache.refuted = true;
                return Ok(None);
            }
            let (outcome, _) = merge_outcome_cached(cache, g, class_id, &class, max_paths);
            if let MergeOutcome::Merged(prefix) = outcome {
                // Per-leader parts: none of the walks may have touched the
                // leader, and a suffix to it must avoid all of them.
                if prefix.endpoint == leader {
                    let pairs = prefix.script.clone();
                    if candidate_valid_for_all(g, &class, leader, &pairs, shade) {
                        found = Some(pairs);
                    }
                } else if !prefix.visited_union[leader as usize] {
                    let mut banned = prefix.visited_union.clone();
                    banned[prefix.endpoint as usize] = false;
                    if let Some(path) = path_avoiding(g, prefix.endpoint, leader, &banned) {
                        let mut pairs = prefix.script.clone();
                        pairs.extend(g.full_ports_of_path(&path));
                        search.stats_mut().paths_explored += 1;
                        if candidate_valid_for_all(g, &class, leader, &pairs, shade) {
                            found = Some(pairs);
                        }
                    }
                }
            }
        }
        // Stage 4: joint synchronized-walk search — sound in both directions
        // when it completes within the step budget.
        if found.is_none() {
            if find_only {
                return Err(IndexError::PathBudgetExceeded { max_paths });
            }
            let mut explored = 0usize;
            let joint = joint_search(g, &class, leader, shade, max_paths, &mut explored);
            search.stats_mut().paths_explored += explored;
            match joint {
                Joint::Found(pairs) => {
                    debug_assert!(candidate_valid_for_all(g, &class, leader, &pairs, shade));
                    found = Some(pairs);
                }
                Joint::NoneExists => return Ok(None),
                Joint::Budget if g.num_nodes() > ENUMERATION_CEILING => {
                    // Beyond the ceiling the legacy enumeration cannot finish
                    // meaningfully (each of the `max_paths` simple paths can be
                    // thousands of nodes long), so its budget is deemed exceeded
                    // up front and the typed escape hatch fires directly.
                    return Err(IndexError::PathBudgetExceeded { max_paths });
                }
                Joint::Budget => {
                    // Stage 5: the original bounded enumeration, with its exact
                    // budget semantics (the typed escape hatch).
                    let mut explored = 0usize;
                    let res = common_sequence(
                        g,
                        &class,
                        leader,
                        max_paths,
                        &mut explored,
                        |g, path| g.full_ports_of_path(path),
                        |g, v, pairs: &Vec<(Port, Port)>| match shade {
                            Shade::Ppe => {
                                let ports: Vec<Port> = pairs.iter().map(|&(p, _)| p).collect();
                                ppe_sequence_is_valid(g, v, &ports, leader)
                            }
                            Shade::Cppe => cppe_sequence_is_valid(g, v, pairs, leader),
                        },
                    );
                    search.stats_mut().paths_explored += explored;
                    match res? {
                        Some(pairs) => found = Some(pairs),
                        None => return Ok(None),
                    }
                }
            }
        }
        let pairs = found.expect("every arm either assigns or returns");
        for &v in &class {
            out[v as usize] = Some(pairs.clone());
        }
    }
    Ok(Some(out))
}

/// For a fixed depth and candidate leader, the Port Path Election output assignment:
/// one outgoing-port sequence per non-leader node, constant on view classes, tracing a
/// simple path to the leader from every member. `Ok(None)` if no assignment exists.
pub fn ppe_assignment(
    g: &PortGraph,
    r: &Refinement,
    depth: usize,
    leader: NodeId,
    max_paths: usize,
) -> Result<Option<Vec<Option<Vec<Port>>>>, IndexError> {
    let mut search = QuotientSearch::new(g, r);
    ppe_assignment_with(&mut search, depth, leader, max_paths)
}

/// [`ppe_assignment`] on a reusable [`QuotientSearch`].
pub fn ppe_assignment_with(
    search: &mut QuotientSearch<'_>,
    depth: usize,
    leader: NodeId,
    max_paths: usize,
) -> Result<Option<Vec<Option<Vec<Port>>>>, IndexError> {
    let mut cache = MergeCache::default();
    let full = strong_assignment_inner(
        search,
        depth,
        leader,
        max_paths,
        Shade::Ppe,
        &mut cache,
        false,
    )?;
    Ok(full.map(|out| {
        out.into_iter()
            .map(|seq| seq.map(|pairs| pairs.into_iter().map(|(p, _)| p).collect()))
            .collect()
    }))
}

/// Per-node CPPE output assignment: `None` for the leader, the full (outgoing,
/// incoming) port sequence of a simple path to the leader otherwise.
pub type CppeAssignment = Vec<Option<Vec<(Port, Port)>>>;

/// For a fixed depth and candidate leader, the Complete Port Path Election output
/// assignment (pairs of ports per edge). `Ok(None)` if no assignment exists.
pub fn cppe_assignment(
    g: &PortGraph,
    r: &Refinement,
    depth: usize,
    leader: NodeId,
    max_paths: usize,
) -> Result<Option<CppeAssignment>, IndexError> {
    let mut search = QuotientSearch::new(g, r);
    cppe_assignment_with(&mut search, depth, leader, max_paths)
}

/// [`cppe_assignment`] on a reusable [`QuotientSearch`].
pub fn cppe_assignment_with(
    search: &mut QuotientSearch<'_>,
    depth: usize,
    leader: NodeId,
    max_paths: usize,
) -> Result<Option<CppeAssignment>, IndexError> {
    let mut cache = MergeCache::default();
    strong_assignment_inner(
        search,
        depth,
        leader,
        max_paths,
        Shade::Cppe,
        &mut cache,
        false,
    )
}

/// The depth loop shared by `ψ_PPE` and `ψ_CPPE`: at each depth try every unique
/// node as leader. A budget error at one leader no longer aborts the whole
/// computation immediately: a *success* at the same depth still soundly gives
/// the index (the depth is viable, and all smaller depths were fully resolved),
/// so the error is only propagated once the depth ends without a success.
fn psi_strong_with(
    search: &mut QuotientSearch<'_>,
    max_paths: usize,
    shade: Shade,
) -> Result<Option<usize>, IndexError> {
    let r = search.refinement();
    let mut cache = MergeCache::default();
    for h in 0..=r.stable_depth() {
        let mut deferred: Option<IndexError> = None;
        for leader in r.unique_nodes_at(h) {
            // After the first unresolved leader only a success can still change
            // this depth's outcome: probe the rest in find-only mode.
            let find_only = deferred.is_some();
            match strong_assignment_inner(
                search, h, leader, max_paths, shade, &mut cache, find_only,
            ) {
                Ok(Some(_)) => return Ok(Some(h)),
                Ok(None) => {}
                Err(e) => {
                    if deferred.is_none() {
                        deferred = Some(e);
                    }
                }
            }
        }
        if let Some(e) = deferred {
            // Some leader at this depth is unresolved: a deeper answer would not
            // be the least depth, so refuse to conclude.
            return Err(e);
        }
    }
    Ok(None)
}

/// `ψ_PPE(G)`: exact Port Path Election index.
pub fn psi_ppe(g: &PortGraph, max_paths: usize) -> Result<Option<usize>, IndexError> {
    let r = Refinement::compute(g, None);
    let mut search = QuotientSearch::new(g, &r);
    psi_ppe_with(&mut search, max_paths)
}

/// [`psi_ppe`] on a caller-owned search.
pub fn psi_ppe_with(
    search: &mut QuotientSearch<'_>,
    max_paths: usize,
) -> Result<Option<usize>, IndexError> {
    psi_strong_with(search, max_paths, Shade::Ppe)
}

/// `ψ_CPPE(G)`: exact Complete Port Path Election index.
pub fn psi_cppe(g: &PortGraph, max_paths: usize) -> Result<Option<usize>, IndexError> {
    let r = Refinement::compute(g, None);
    let mut search = QuotientSearch::new(g, &r);
    psi_cppe_with(&mut search, max_paths)
}

/// [`psi_cppe`] on a caller-owned search.
pub fn psi_cppe_with(
    search: &mut QuotientSearch<'_>,
    max_paths: usize,
) -> Result<Option<usize>, IndexError> {
    psi_strong_with(search, max_paths, Shade::Cppe)
}

/// Compute all four election indices (exact).
pub fn compute_all(g: &PortGraph, max_paths: usize) -> Result<ElectionIndices, IndexError> {
    compute_all_with_stats(g, max_paths).map(|(indices, _)| indices)
}

/// [`compute_all`] plus the accumulated [`SearchStats`] of the shared quotient
/// search (on an error the stats spent so far are lost with it).
pub fn compute_all_with_stats(
    g: &PortGraph,
    max_paths: usize,
) -> Result<(ElectionIndices, SearchStats), IndexError> {
    let s = psi_s(g);
    let r = Refinement::compute(g, None);
    let mut search = QuotientSearch::new(g, &r);
    let pe = psi_pe_with(&mut search);
    let ppe = psi_ppe_with(&mut search, max_paths)?;
    let cppe = psi_cppe_with(&mut search, max_paths)?;
    Ok((ElectionIndices { s, pe, ppe, cppe }, search.stats()))
}

// ---------------------------------------------------------------------------
// Pre-quotient reference implementations: the oracle for the equivalence tests
// and the baseline side of `bench_index`.
// ---------------------------------------------------------------------------

/// [`pe_assignment`] by the pre-quotient implementation (exact predicate on every
/// port, no distance certificate). Kept as the equivalence-test oracle.
pub fn pe_assignment_enumerated(
    g: &PortGraph,
    r: &Refinement,
    depth: usize,
    leader: NodeId,
) -> Option<Vec<Option<Port>>> {
    let classes = r.classes_at(depth);
    let mut out: Vec<Option<Port>> = vec![None; g.num_nodes()];
    for class in classes {
        if class.contains(&leader) {
            if class.len() > 1 {
                return None;
            }
            continue;
        }
        let degree = g.degree(class[0]) as u32;
        let valid_port =
            (0..degree).find(|&p| class.iter().all(|&v| pe_port_is_valid(g, v, p, leader)));
        match valid_port {
            Some(p) => {
                for &v in &class {
                    out[v as usize] = Some(p);
                }
            }
            None => return None,
        }
    }
    Some(out)
}

/// [`ppe_assignment`] by pure bounded enumeration (the pre-quotient
/// implementation). Kept as the equivalence-test oracle and bench baseline.
pub fn ppe_assignment_enumerated(
    g: &PortGraph,
    r: &Refinement,
    depth: usize,
    leader: NodeId,
    max_paths: usize,
) -> Result<Option<Vec<Option<Vec<Port>>>>, IndexError> {
    let classes = r.classes_at(depth);
    let mut out: Vec<Option<Vec<Port>>> = vec![None; g.num_nodes()];
    let mut explored = 0usize;
    for class in classes {
        if class.contains(&leader) {
            if class.len() > 1 {
                return Ok(None);
            }
            continue;
        }
        let found = common_sequence(
            g,
            &class,
            leader,
            max_paths,
            &mut explored,
            |g, path| g.outgoing_ports_of_path(path),
            |g, v, seq: &Vec<Port>| ppe_sequence_is_valid(g, v, seq, leader),
        )?;
        match found {
            Some(seq) => {
                for &v in &class {
                    out[v as usize] = Some(seq.clone());
                }
            }
            None => return Ok(None),
        }
    }
    Ok(Some(out))
}

/// [`cppe_assignment`] by pure bounded enumeration (the pre-quotient
/// implementation). Kept as the equivalence-test oracle and bench baseline.
pub fn cppe_assignment_enumerated(
    g: &PortGraph,
    r: &Refinement,
    depth: usize,
    leader: NodeId,
    max_paths: usize,
) -> Result<Option<CppeAssignment>, IndexError> {
    let classes = r.classes_at(depth);
    let mut out: Vec<Option<Vec<(Port, Port)>>> = vec![None; g.num_nodes()];
    let mut explored = 0usize;
    for class in classes {
        if class.contains(&leader) {
            if class.len() > 1 {
                return Ok(None);
            }
            continue;
        }
        let found = common_sequence(
            g,
            &class,
            leader,
            max_paths,
            &mut explored,
            |g, path| g.full_ports_of_path(path),
            |g, v, seq: &Vec<(Port, Port)>| cppe_sequence_is_valid(g, v, seq, leader),
        )?;
        match found {
            Some(seq) => {
                for &v in &class {
                    out[v as usize] = Some(seq.clone());
                }
            }
            None => return Ok(None),
        }
    }
    Ok(Some(out))
}

/// `ψ_PPE` by pure bounded enumeration (the pre-quotient implementation, which
/// aborts on the first budget error).
pub fn psi_ppe_enumerated(g: &PortGraph, max_paths: usize) -> Result<Option<usize>, IndexError> {
    let r = Refinement::compute(g, None);
    for h in 0..=r.stable_depth() {
        for leader in r.unique_nodes_at(h) {
            if ppe_assignment_enumerated(g, &r, h, leader, max_paths)?.is_some() {
                return Ok(Some(h));
            }
        }
    }
    Ok(None)
}

/// `ψ_CPPE` by pure bounded enumeration (the pre-quotient implementation, which
/// aborts on the first budget error).
pub fn psi_cppe_enumerated(g: &PortGraph, max_paths: usize) -> Result<Option<usize>, IndexError> {
    let r = Refinement::compute(g, None);
    for h in 0..=r.stable_depth() {
        for leader in r.unique_nodes_at(h) {
            if cppe_assignment_enumerated(g, &r, h, leader, max_paths)?.is_some() {
                return Ok(Some(h));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_graph::generators;

    #[test]
    fn symmetric_ring_is_infeasible_for_everything() {
        let g = generators::symmetric_ring(4).unwrap();
        let f = feasibility(&g);
        assert!(!f.feasible);
        assert_eq!(f.stable_classes, 1);
        let idx = compute_all(&g, 1000).unwrap();
        assert_eq!(
            idx,
            ElectionIndices {
                s: None,
                pe: None,
                ppe: None,
                cppe: None
            }
        );
        assert!(idx.satisfies_hierarchy());
    }

    #[test]
    fn star_has_selection_index_zero() {
        // The centre has unique degree, so ψ_S = 0 — the paper's own example of
        // "ψ_S(G) = 0 iff G contains a node whose degree is unique".
        let g = generators::star(3).unwrap();
        assert_eq!(psi_s(&g), Some(0));
        // The star is feasible: the leaves are distinguished by the far-end port of
        // their unique edge (the augmented view records both port numbers).
        let f = feasibility(&g);
        assert!(f.feasible);
        // PE is solvable in 0 rounds: every leaf's only port leads to the centre.
        assert_eq!(psi_pe(&g), Some(0));
    }

    #[test]
    fn paper_three_node_line_cppe_index_is_one() {
        // Quoted in Section 1: for the 3-node line with ports 0,0,1,0, ψ_CPPE(G) = 1.
        // (PPE, by contrast, is solvable in 0 rounds on this graph: both endpoints
        // output the outgoing-port sequence (0), which is a simple path to the centre
        // from either of them; CPPE needs 1 round because the centre-side port of the
        // two pendant edges differs.)
        let g = generators::paper_three_node_line();
        let idx = compute_all(&g, 1000).unwrap();
        assert_eq!(idx.cppe, Some(1));
        assert_eq!(idx.ppe, Some(0));
        assert_eq!(idx.pe, Some(0));
        // The centre has unique degree: ψ_S = 0.
        assert_eq!(idx.s, Some(0));
        assert!(idx.satisfies_hierarchy());
    }

    #[test]
    fn feasible_oriented_ring_indices() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        let f = feasibility(&g);
        assert!(f.feasible);
        assert_eq!(f.stable_classes, 5);
        let idx = compute_all(&g, 1000).unwrap();
        assert!(idx.s.is_some());
        assert!(idx.cppe.is_some());
        assert!(idx.satisfies_hierarchy());
        // All nodes have degree 2, so no node is unique at depth 0.
        assert!(idx.s.unwrap() >= 1);
    }

    #[test]
    fn hierarchy_holds_on_random_graphs() {
        for seed in 0..8u64 {
            let g = generators::random_connected(10, 4, 3, seed).unwrap();
            let idx = compute_all(&g, 20_000).unwrap();
            assert!(idx.satisfies_hierarchy(), "seed {seed}: {idx:?}");
        }
    }

    #[test]
    fn pe_assignment_is_class_uniform_and_valid() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        let r = Refinement::compute(&g, None);
        let h = psi_pe(&g).unwrap();
        let leader = r
            .unique_nodes_at(h)
            .into_iter()
            .find(|&u| pe_assignment(&g, &r, h, u).is_some())
            .unwrap();
        let assignment = pe_assignment(&g, &r, h, leader).unwrap();
        for v in g.nodes() {
            if v == leader {
                assert!(assignment[v as usize].is_none());
            } else {
                let p = assignment[v as usize].unwrap();
                assert!(pe_port_is_valid(&g, v, p, leader));
            }
        }
        // Uniform on classes.
        for class in r.classes_at(h) {
            let vals: Vec<_> = class.iter().map(|&v| assignment[v as usize]).collect();
            assert!(vals.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn ppe_and_cppe_assignments_trace_simple_paths() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        let r = Refinement::compute(&g, None);
        let h = psi_cppe(&g, 1000).unwrap().unwrap();
        let leader = r
            .unique_nodes_at(h)
            .into_iter()
            .find(|&u| cppe_assignment(&g, &r, h, u, 1000).unwrap().is_some())
            .unwrap();
        let ppe = ppe_assignment(&g, &r, h, leader, 1000).unwrap().unwrap();
        let cppe = cppe_assignment(&g, &r, h, leader, 1000).unwrap().unwrap();
        for v in g.nodes() {
            if v == leader {
                continue;
            }
            assert!(ppe_sequence_is_valid(
                &g,
                v,
                ppe[v as usize].as_ref().unwrap(),
                leader
            ));
            assert!(cppe_sequence_is_valid(
                &g,
                v,
                cppe[v as usize].as_ref().unwrap(),
                leader
            ));
        }
    }

    #[test]
    fn path_budget_error_is_reported() {
        // A 4-cycle with a pendant node: at depth 0 the three degree-2 cycle nodes form
        // one class with no uniform quotient edge and no common shortest-path
        // candidate, so the search degrades to the joint walk and then to plain
        // enumeration — and with a budget of 1 both stages exceed it, so the
        // computation must refuse to conclude (the typed escape hatch).
        use anet_graph::GraphBuilder;
        let mut b = GraphBuilder::with_nodes(5);
        for i in 0..4u32 {
            b.add_edge(i, 0, (i + 1) % 4, 1).unwrap();
        }
        b.add_edge(0, 2, 4, 0).unwrap();
        let g = b.build().unwrap();
        let r = Refinement::compute(&g, None);
        let res = ppe_assignment(&g, &r, 0, 0, 1);
        assert_eq!(res, Err(IndexError::PathBudgetExceeded { max_paths: 1 }));
        // With a generous budget the computation terminates with a definite answer.
        assert!(ppe_assignment(&g, &r, 0, 0, 10_000).is_ok());
        assert!(psi_ppe(&g, 10_000).is_ok());
        // The enumerated oracle agrees about the tight budget.
        assert_eq!(
            ppe_assignment_enumerated(&g, &r, 0, 0, 1),
            Err(IndexError::PathBudgetExceeded { max_paths: 1 })
        );
    }

    #[test]
    fn feasibility_depth_is_minimal() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        let f = feasibility(&g);
        let d = f.views_distinct_at.unwrap();
        let r = Refinement::compute(&g, None);
        assert_eq!(r.num_classes_at(d), g.num_nodes());
        if d > 0 {
            assert!(r.num_classes_at(d - 1) < g.num_nodes());
        }
    }

    #[test]
    fn index_error_displays_cap() {
        let e = IndexError::PathBudgetExceeded { max_paths: 7 };
        assert!(e.to_string().contains('7'));
    }

    #[test]
    fn quotient_and_enumerated_indices_agree_on_random_graphs() {
        for seed in 0..8u64 {
            let g = generators::random_connected(10, 4, 3, seed).unwrap();
            let new_ppe = psi_ppe(&g, 20_000).unwrap();
            let new_cppe = psi_cppe(&g, 20_000).unwrap();
            assert_eq!(new_ppe, psi_ppe_enumerated(&g, 20_000).unwrap(), "{seed}");
            assert_eq!(new_cppe, psi_cppe_enumerated(&g, 20_000).unwrap(), "{seed}");
        }
    }

    #[test]
    fn compute_all_records_search_stats() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        let (idx, stats) = compute_all_with_stats(&g, 1000).unwrap();
        assert!(idx.cppe.is_some());
        assert!(stats.classes_expanded > 0, "{stats:?}");
        assert!(stats.paths_explored > 0, "{stats:?}");
    }
}
