//! Explicit augmented truncated views `B^h(v)`.
//!
//! The view `V(v)` of a node `v` is the infinite rooted tree of all finite paths in
//! the graph starting at `v`, where the `i`-th edge of a path is coded by its pair of
//! port numbers `(p_i, q_i)`. The truncated view `V^h(v)` keeps paths of length at most
//! `h`; the **augmented** truncated view `B^h(v)` additionally labels each node of the
//! tree with the degree of the corresponding graph node (the paper only needs leaf
//! degrees, but internal degrees are determined by the branching anyway, so we store
//! the degree everywhere — it makes the structure self-describing).
//!
//! Note that view paths are *arbitrary* walks (they may immediately return through the
//! edge they came from); consequently the subtree hanging off the child reached through
//! edge `(p, q)` is exactly `B^{h-1}` of that neighbour.
//!
//! `ViewTree` is the *owned* form: a plain recursive `Vec` tree, convenient for tests,
//! construction by hand, and the binary encoding, but expensive to pass around (every
//! clone copies up to `Δ^h` nodes). The hot paths — the full-information collector in
//! `anet-sim` and the solvers in `anet-core` — work on the structurally shared
//! [`crate::interned::View`] handles instead; the two forms convert losslessly into
//! each other (`View::from_tree` / `View::to_tree`).

use anet_graph::{NodeId, Port, PortGraph};
use std::cmp::Ordering;

/// An augmented truncated view: a rooted tree whose edges carry the pair of port
/// numbers of the corresponding graph edge and whose nodes carry graph degrees.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ViewTree {
    /// Degree (in the graph) of the node this view position corresponds to.
    pub degree: u32,
    /// Children in increasing order of outgoing port: `(p, q, subtree)` where `p` is
    /// the port at this node and `q` the port at the far end of the traversed edge.
    /// Empty at the truncation depth.
    pub children: Vec<(Port, Port, ViewTree)>,
}

impl ViewTree {
    /// Build `B^depth(v)` in graph `g`.
    pub fn build(g: &PortGraph, v: NodeId, depth: usize) -> ViewTree {
        let degree = g.degree(v) as u32;
        if depth == 0 {
            return ViewTree {
                degree,
                children: Vec::new(),
            };
        }
        let children = g
            .ports(v)
            .map(|(p, u, q)| (p, q, ViewTree::build(g, u, depth - 1)))
            .collect();
        ViewTree { degree, children }
    }

    /// Height of the tree (0 for a bare leaf). For a view built with
    /// [`ViewTree::build`]`(g, v, h)` on a graph with at least one edge this equals `h`.
    pub fn height(&self) -> usize {
        self.children
            .iter()
            .map(|(_, _, c)| 1 + c.height())
            .max()
            .unwrap_or(0)
    }

    /// Number of tree nodes (root included).
    pub fn size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(|(_, _, c)| c.size())
            .sum::<usize>()
    }

    /// Number of tree edges (= size − 1).
    pub fn num_edges(&self) -> usize {
        self.size() - 1
    }

    /// Truncate the view to a smaller depth, returning a new tree.
    /// Panics if `depth` exceeds the current height only in the sense that the result
    /// simply keeps everything (truncation to a larger depth is the identity).
    pub fn truncated(&self, depth: usize) -> ViewTree {
        if depth == 0 {
            return ViewTree {
                degree: self.degree,
                children: Vec::new(),
            };
        }
        ViewTree {
            degree: self.degree,
            children: self
                .children
                .iter()
                .map(|&(p, q, ref c)| (p, q, c.truncated(depth - 1)))
                .collect(),
        }
    }

    /// Canonical token sequence. Two views are equal iff their token sequences are
    /// equal, and the lexicographic order of token sequences is the total order used
    /// whenever the paper says "lexicographically smallest view".
    ///
    /// Format (pre-order): for every tree node, `[degree, #children]` followed, for
    /// each child in port order, by `[p, q]` and the child's tokens.
    pub fn tokens(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.size() * 4);
        crate::search::write_tokens_by(self, Self::node_degree, Self::node_children, &mut out);
        out
    }

    /// Accessors handed to the traversals shared with the interned form
    /// (`crate::search`), so the two representations cannot diverge. Every owned node
    /// is a distinct allocation, so the address-based `node_id` makes the searches'
    /// shared-subtree dedup a semantic no-op here.
    fn node_id(&self) -> usize {
        self as *const ViewTree as usize
    }

    fn node_degree(&self) -> u32 {
        self.degree
    }

    fn node_children(&self) -> impl ExactSizeIterator<Item = (Port, Port, &ViewTree)> {
        self.children.iter().map(|&(p, q, ref c)| (p, q, c))
    }

    /// The maximum port number mentioned anywhere in the view, or `None` for a bare
    /// single node. Used by the binary encoder to pick a field width.
    pub fn max_port(&self) -> Option<u32> {
        crate::search::max_port_by(self, Self::node_id, Self::node_children)
    }

    /// The maximum degree mentioned anywhere in the view.
    pub fn max_degree(&self) -> u32 {
        crate::search::max_degree_by(self, Self::node_id, Self::node_degree, Self::node_children)
    }

    /// Does this view contain (at any tree node, root included) a node of the given
    /// graph degree? Used by algorithms of the paper that branch on "is there a node
    /// of degree `Δ + 2` in my view?" (e.g. Lemma 3.9).
    pub fn contains_degree(&self, degree: u32) -> bool {
        crate::search::contains_degree_by(
            self,
            degree,
            Self::node_id,
            Self::node_degree,
            Self::node_children,
        )
    }

    /// The port sequence (outgoing ports only) of the lexicographically smallest
    /// root-to-node path that reaches a tree node of the given degree, or `None` if no
    /// such node exists. Distance ties are *not* broken by length: the search is
    /// breadth-first, so the returned path is a shortest one.
    pub fn shortest_path_to_degree(&self, degree: u32) -> Option<Vec<Port>> {
        crate::search::shortest_path_to_degree_by(
            self,
            degree,
            Self::node_id,
            Self::node_degree,
            Self::node_children,
        )
    }

    /// Compare two views lexicographically (by their canonical token sequences).
    pub fn lex_cmp(&self, other: &ViewTree) -> Ordering {
        self.tokens().cmp(&other.tokens())
    }
}

impl PartialOrd for ViewTree {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ViewTree {
    fn cmp(&self, other: &Self) -> Ordering {
        self.lex_cmp(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_graph::generators;

    #[test]
    fn depth_zero_view_is_just_the_degree() {
        let g = generators::paper_three_node_line();
        let v = ViewTree::build(&g, 1, 0);
        assert_eq!(v.degree, 2);
        assert!(v.children.is_empty());
        assert_eq!(v.size(), 1);
        assert_eq!(v.height(), 0);
    }

    #[test]
    fn depth_one_view_of_line_centre() {
        let g = generators::paper_three_node_line();
        let v = ViewTree::build(&g, 1, 1);
        assert_eq!(v.degree, 2);
        assert_eq!(v.children.len(), 2);
        // Port 0 leads to the left end (degree 1, far port 0); port 1 to the right end.
        assert_eq!(v.children[0].0, 0);
        assert_eq!(v.children[0].1, 0);
        assert_eq!(v.children[0].2.degree, 1);
        assert_eq!(v.children[1].0, 1);
        assert_eq!(v.children[1].1, 0);
        assert_eq!(v.children[1].2.degree, 1);
        assert_eq!(v.height(), 1);
    }

    #[test]
    fn views_walk_back_through_the_incoming_edge() {
        // In the 3-node line, the view of an endpoint at depth 2 goes endpoint ->
        // centre -> (back to endpoint or to the other endpoint): 2 paths of length 2.
        let g = generators::paper_three_node_line();
        let v = ViewTree::build(&g, 0, 2);
        assert_eq!(v.size(), 1 + 1 + 2);
        assert_eq!(v.children.len(), 1);
        let centre = &v.children[0].2;
        assert_eq!(centre.children.len(), 2);
    }

    #[test]
    fn symmetric_ring_views_are_all_equal() {
        let g = generators::symmetric_ring(5).unwrap();
        let views: Vec<ViewTree> = g.nodes().map(|v| ViewTree::build(&g, v, 3)).collect();
        assert!(views.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn oriented_ring_views_differ() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        let v0 = ViewTree::build(&g, 0, 3);
        let v1 = ViewTree::build(&g, 1, 3);
        assert_ne!(v0, v1);
    }

    #[test]
    fn truncation_matches_direct_build() {
        let g = generators::random_connected(20, 4, 6, 11).unwrap();
        for v in [0u32, 5, 13] {
            let deep = ViewTree::build(&g, v, 4);
            for h in 0..=4 {
                assert_eq!(deep.truncated(h), ViewTree::build(&g, v, h));
            }
        }
    }

    #[test]
    fn tokens_are_injective_on_small_sample() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        let views: Vec<ViewTree> = g.nodes().map(|v| ViewTree::build(&g, v, 4)).collect();
        for i in 0..views.len() {
            for j in 0..views.len() {
                assert_eq!(
                    views[i] == views[j],
                    views[i].tokens() == views[j].tokens(),
                    "token equality must coincide with structural equality"
                );
            }
        }
    }

    #[test]
    fn lexicographic_order_is_total_and_consistent() {
        let g = generators::random_connected(15, 4, 5, 3).unwrap();
        let mut views: Vec<ViewTree> = g.nodes().map(|v| ViewTree::build(&g, v, 3)).collect();
        views.sort();
        for w in views.windows(2) {
            assert_ne!(w[0].lex_cmp(&w[1]), Ordering::Greater);
        }
    }

    #[test]
    fn max_port_and_degree_statistics() {
        let g = generators::star(4).unwrap();
        let v = ViewTree::build(&g, 1, 2);
        assert_eq!(v.degree, 1);
        assert_eq!(v.max_degree(), 4);
        assert_eq!(v.max_port(), Some(3));
        let leaf = ViewTree::build(&g, 1, 0);
        assert_eq!(leaf.max_port(), None);
    }

    #[test]
    fn contains_degree_and_shortest_path_to_degree() {
        let g = generators::star(3).unwrap();
        // From a leaf, the centre (degree 3) is one hop through port 0.
        let v = ViewTree::build(&g, 2, 2);
        assert!(v.contains_degree(3));
        assert!(!v.contains_degree(7));
        assert_eq!(v.shortest_path_to_degree(3), Some(vec![0]));
        assert_eq!(v.shortest_path_to_degree(1), Some(vec![]));
        assert_eq!(v.shortest_path_to_degree(9), None);
    }

    #[test]
    fn num_edges_is_at_most_delta_to_the_h() {
        // A crude but exact bound: every tree node of B^h has at most Δ children, so
        // B^h has at most Δ^h edges. (Theorem 2.2's sharper accounting is asymptotic.)
        let (g, root) = generators::full_tree(3, 4).unwrap();
        let delta = g.max_degree();
        for h in 1..=3usize {
            let v = ViewTree::build(&g, root, h);
            let bound = delta.pow(h as u32);
            assert!(
                v.num_edges() <= bound,
                "depth {h}: {} edges exceeds bound {bound}",
                v.num_edges()
            );
        }
    }
}
