//! Exact-length bit strings.
//!
//! The paper measures *advice* as a single binary string given to every node; its
//! length in bits is the "size of advice". [`BitString`] stores bits exactly (not
//! rounded to bytes) so that measured advice sizes can be compared to the paper's
//! bounds bit-for-bit.

/// A growable sequence of bits with fixed-width integer read/write helpers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BitString {
    bits: Vec<bool>,
}

impl BitString {
    /// The empty bit string (advice of size 0).
    pub fn new() -> Self {
        BitString { bits: Vec::new() }
    }

    /// Number of bits — the *size of advice* in the paper's terminology.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Is the string empty?
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Append a single bit.
    pub fn push_bit(&mut self, bit: bool) {
        self.bits.push(bit);
    }

    /// Remove every bit, keeping the allocation. Scratch buffers on hot paths (the
    /// metered transport's per-message serialisation) clear and refill one string
    /// instead of allocating a fresh one per message.
    pub fn clear(&mut self) {
        self.bits.clear();
    }

    /// Append the `width` low-order bits of `value`, most significant first.
    /// Panics if `value` does not fit in `width` bits.
    pub fn push_uint(&mut self, value: u64, width: usize) {
        assert!(width <= 64, "width must be at most 64");
        if width < 64 {
            assert!(
                value < (1u64 << width),
                "value {value} does not fit in {width} bits"
            );
        }
        for i in (0..width).rev() {
            self.bits.push((value >> i) & 1 == 1);
        }
    }

    /// Bit at position `i`.
    pub fn bit(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// Iterate over the bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.bits.iter().copied()
    }

    /// Render as a 0/1 string (for debugging and experiment output).
    pub fn to_binary_string(&self) -> String {
        self.bits
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect()
    }

    /// Parse from a 0/1 string.
    pub fn from_binary_string(s: &str) -> Option<BitString> {
        let mut bits = Vec::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '0' => bits.push(false),
                '1' => bits.push(true),
                _ => return None,
            }
        }
        Some(BitString { bits })
    }

    /// Append `value` as a variable-length integer: groups of 4 payload bits (least
    /// significant group first), each preceded by a continuation bit that is 1 iff
    /// more groups follow. Values below 16 cost 5 bits, and the cost grows by 5 bits
    /// per factor of 16 — the encoding the DAG view codec uses for node ids, which
    /// are almost always small.
    ///
    /// ```
    /// use anet_views::BitString;
    /// let mut b = BitString::new();
    /// b.push_varint(7);
    /// b.push_varint(1000);
    /// let mut r = b.reader();
    /// assert_eq!(r.read_varint(), Some(7));
    /// assert_eq!(r.read_varint(), Some(1000));
    /// ```
    pub fn push_varint(&mut self, mut value: u64) {
        loop {
            let group = value & 0xF;
            value >>= 4;
            self.push_bit(value != 0);
            self.push_uint(group, 4);
            if value == 0 {
                return;
            }
        }
    }

    /// A cursor for sequential reads.
    pub fn reader(&self) -> BitReader<'_> {
        BitReader { bits: self, pos: 0 }
    }

    /// Number of bits needed to write any value in `0..=max_value`
    /// (at least 1, so that a value can always be read back).
    pub fn width_for(max_value: u64) -> usize {
        (64 - max_value.leading_zeros() as usize).max(1)
    }
}

/// Sequential reader over a [`BitString`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bits: &'a BitString,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Read one bit; `None` when exhausted.
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.pos >= self.bits.len() {
            return None;
        }
        let b = self.bits.bit(self.pos);
        self.pos += 1;
        Some(b)
    }

    /// Read a `width`-bit unsigned integer (most significant bit first).
    pub fn read_uint(&mut self, width: usize) -> Option<u64> {
        if width > 64 || self.pos + width > self.bits.len() {
            return None;
        }
        let mut value = 0u64;
        for _ in 0..width {
            value = (value << 1) | u64::from(self.bits.bit(self.pos));
            self.pos += 1;
        }
        Some(value)
    }

    /// Read a variable-length integer written by [`BitString::push_varint`]. `None`
    /// when the string ends mid-value or the value would exceed 64 bits (16 groups) —
    /// the cursor position is unspecified afterwards, so treat `None` as fatal.
    pub fn read_varint(&mut self) -> Option<u64> {
        let mut value = 0u64;
        for group in 0..16 {
            let more = self.read_bit()?;
            let payload = self.read_uint(4)?;
            value |= payload << (4 * group);
            if !more {
                return Some(value);
            }
        }
        None // a 17th group would shift past 64 bits
    }

    /// Number of bits not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bits.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_round_trip() {
        let mut b = BitString::new();
        b.push_uint(5, 3);
        b.push_bit(true);
        b.push_uint(1023, 10);
        b.push_uint(0, 4);
        assert_eq!(b.len(), 18);

        let mut r = b.reader();
        assert_eq!(r.read_uint(3), Some(5));
        assert_eq!(r.read_bit(), Some(true));
        assert_eq!(r.read_uint(10), Some(1023));
        assert_eq!(r.read_uint(4), Some(0));
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_uint(1), None);
    }

    #[test]
    fn width_checked_on_push() {
        let mut b = BitString::new();
        b.push_uint(7, 3);
        assert_eq!(b.len(), 3);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        let mut b = BitString::new();
        b.push_uint(8, 3);
    }

    #[test]
    fn binary_string_round_trip() {
        let mut b = BitString::new();
        b.push_uint(0b1011, 4);
        assert_eq!(b.to_binary_string(), "1011");
        assert_eq!(BitString::from_binary_string("1011"), Some(b));
        assert_eq!(BitString::from_binary_string("10x1"), None);
        assert_eq!(BitString::from_binary_string(""), Some(BitString::new()));
    }

    #[test]
    fn width_for_is_minimal() {
        assert_eq!(BitString::width_for(0), 1);
        assert_eq!(BitString::width_for(1), 1);
        assert_eq!(BitString::width_for(2), 2);
        assert_eq!(BitString::width_for(3), 2);
        assert_eq!(BitString::width_for(4), 3);
        assert_eq!(BitString::width_for(255), 8);
        assert_eq!(BitString::width_for(256), 9);
    }

    #[test]
    fn empty_string_properties() {
        let b = BitString::new();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.to_binary_string(), "");
        assert_eq!(b.iter().count(), 0);
    }

    #[test]
    fn varint_round_trips_across_the_range() {
        let values = [0u64, 1, 15, 16, 255, 256, 4095, 1 << 20, u64::MAX];
        let mut b = BitString::new();
        for &v in &values {
            b.push_varint(v);
        }
        let mut r = b.reader();
        for &v in &values {
            assert_eq!(r.read_varint(), Some(v));
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn varint_costs_five_bits_per_group() {
        for (value, groups) in [(0u64, 1usize), (15, 1), (16, 2), (255, 2), (256, 3)] {
            let mut b = BitString::new();
            b.push_varint(value);
            assert_eq!(b.len(), 5 * groups, "value {value}");
        }
    }

    #[test]
    fn truncated_varint_reads_none() {
        let mut b = BitString::new();
        b.push_varint(1 << 20);
        let cut = BitString::from_binary_string(&b.to_binary_string()[..b.len() - 3]).unwrap();
        assert_eq!(cut.reader().read_varint(), None);
        assert_eq!(BitString::new().reader().read_varint(), None);
    }

    #[test]
    fn overlong_varint_reads_none() {
        // 17 groups, every continuation bit set: the value would exceed 64 bits.
        let mut b = BitString::new();
        for _ in 0..17 {
            b.push_bit(true);
            b.push_uint(1, 4);
        }
        assert_eq!(b.reader().read_varint(), None);
    }

    #[test]
    fn sixty_four_bit_values_supported() {
        let mut b = BitString::new();
        b.push_uint(u64::MAX, 64);
        let mut r = b.reader();
        assert_eq!(r.read_uint(64), Some(u64::MAX));
    }
}
