//! The class quotient graph and the shortest-path-first assignment search over it.
//!
//! The exact `ψ_PPE`/`ψ_CPPE` computations need, per view class, one port sequence
//! that traces a simple path to the leader from *every* member of the class. The
//! original implementation enumerated raw simple paths per member
//! (`paths::simple_paths`), which exhausts any reasonable budget beyond ~25 nodes
//! on expander-like graphs. This module replaces the enumeration with search on
//! the *class quotient graph* that the refinement machinery already computes:
//!
//! * [`ClassQuotient`] — one node per depth-`h` view class, one edge per
//!   (class, port) labelled with the far-end port and the target class, plus a
//!   *uniformity* flag: the edge is uniform iff **every** member of the class
//!   agrees on the (far port, target class) pair at that port.
//! * [`QuotientSearch`] — the reusable search state: a BFS over the quotient's
//!   uniform edges from the leader's class (the arena-allocated
//!   `expand_routes` inner loop, registered with anet-lint's `hot-path-alloc`
//!   pass) yielding one representative route per class, plus a concrete BFS from
//!   the leader yielding per-node shortest-path candidates and the PE distance
//!   certificate.
//!
//! **Why uniform routes lift soundly.** Let the route from class `c` use only
//! uniform edges. Following the route's port sequence from *any* member of `c`
//! walks the same class sequence (uniformity pins the target class at every
//! step), and the classes along the route have strictly decreasing BFS distance
//! to the leader class, so they are pairwise distinct — hence the concrete nodes
//! visited are pairwise distinct and the walk is automatically simple. The
//! leader's class is a singleton, so the walk ends exactly at the leader. The
//! lifted candidates are therefore valid for every member by construction; the
//! callers in `election_index` still validate them with the
//! `ppe_sequence_is_valid`/`cppe_sequence_is_valid` predicates as
//! defense-in-depth.

use crate::refinement::Refinement;
use anet_graph::{NodeId, Port, PortGraph};

/// Cost counters of one assignment search, surfaced all the way into
/// `ElectionReport` and the sweep JSON (schema `anet-workloads/v3`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Quotient classes expanded by the route BFS (one count per queue pop).
    pub classes_expanded: usize,
    /// Candidate paths tested: lifted routes, per-member shortest paths, joint
    /// search steps, and enumerated fallback paths.
    pub paths_explored: usize,
}

impl SearchStats {
    /// Component-wise sum (used when several searches contribute to one report).
    pub fn add(&mut self, other: SearchStats) {
        self.classes_expanded += other.classes_expanded;
        self.paths_explored += other.paths_explored;
    }
}

/// One outgoing edge of a quotient class: the edge at port `p` of every member
/// (members of a class share their degree, so the port exists for all of them).
#[derive(Debug, Clone, Copy)]
pub struct QEdge {
    /// Class of the far endpoint of the representative member's edge.
    pub target: u32,
    /// Far-end port of the representative member's edge.
    pub far_port: Port,
    /// Do **all** members agree on `(far_port, target)` at this port?
    pub uniform: bool,
}

/// The class quotient graph of a graph at one refinement depth.
#[derive(Debug, Default)]
pub struct ClassQuotient {
    /// Number of classes (quotient nodes).
    num_classes: usize,
    /// Node → positional class index (position in `Refinement::classes_at` order).
    class_of: Vec<u32>,
    /// CSR offsets into `members`, length `num_classes + 1`.
    member_offsets: Vec<usize>,
    /// Class members, grouped by class.
    members: Vec<NodeId>,
    /// CSR offsets into `edges`, length `num_classes + 1` (per class: one edge
    /// per port, in port order).
    edge_offsets: Vec<usize>,
    /// All quotient edges.
    edges: Vec<QEdge>,
    /// CSR offsets into `rev`, length `num_classes + 1`: reverse adjacency over
    /// the *uniform* edges only, grouped by target class.
    rev_offsets: Vec<usize>,
    /// Reverse uniform edges: `(source class, source port)`.
    rev: Vec<(u32, Port)>,
}

impl ClassQuotient {
    /// Build the quotient of `g` at `depth` from a precomputed refinement.
    /// Costs `O(n + m)` plus the `classes_at` grouping.
    pub fn build(g: &PortGraph, r: &Refinement, depth: usize) -> ClassQuotient {
        let classes = r.classes_at(depth);
        let num_classes = classes.len();
        let mut class_of = vec![0u32; g.num_nodes()];
        for (ci, class) in classes.iter().enumerate() {
            for &v in class {
                class_of[v as usize] = ci as u32;
            }
        }
        let mut member_offsets = Vec::with_capacity(num_classes + 1);
        let mut members = Vec::with_capacity(g.num_nodes());
        member_offsets.push(0);
        for class in &classes {
            members.extend_from_slice(class);
            member_offsets.push(members.len());
        }
        let mut edge_offsets = Vec::with_capacity(num_classes + 1);
        edge_offsets.push(0);
        let mut edges: Vec<QEdge> = Vec::new();
        for class in &classes {
            let rep = class[0];
            for (p, u, q) in g.ports(rep) {
                let target = class_of[u as usize];
                let uniform = class.iter().all(|&v| match g.neighbor(v, p) {
                    Some((u2, q2)) => q2 == q && class_of[u2 as usize] == target,
                    None => false,
                });
                edges.push(QEdge {
                    target,
                    far_port: q,
                    uniform,
                });
            }
            edge_offsets.push(edges.len());
        }
        // Reverse adjacency over the uniform edges (counting sort by target, so
        // within a bucket sources appear in (class, port) order — deterministic).
        let mut rev_offsets = vec![0usize; num_classes + 1];
        for e in &edges {
            if e.uniform {
                rev_offsets[e.target as usize + 1] += 1;
            }
        }
        for i in 0..num_classes {
            rev_offsets[i + 1] += rev_offsets[i];
        }
        let mut cursor = rev_offsets.clone();
        let mut rev = vec![(0u32, 0 as Port); *rev_offsets.last().unwrap_or(&0)];
        for ci in 0..num_classes {
            for (k, e) in edges[edge_offsets[ci]..edge_offsets[ci + 1]]
                .iter()
                .enumerate()
            {
                if e.uniform {
                    rev[cursor[e.target as usize]] = (ci as u32, k as Port);
                    cursor[e.target as usize] += 1;
                }
            }
        }
        ClassQuotient {
            num_classes,
            class_of,
            member_offsets,
            members,
            edge_offsets,
            edges,
            rev_offsets,
            rev,
        }
    }

    /// Number of classes (quotient nodes).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Positional class index of a node.
    pub fn class_of(&self, v: NodeId) -> u32 {
        self.class_of[v as usize]
    }

    /// Members of a class.
    pub fn members(&self, c: u32) -> &[NodeId] {
        &self.members[self.member_offsets[c as usize]..self.member_offsets[c as usize + 1]]
    }

    /// Outgoing edges of a class, one per port, in port order.
    pub fn edges_of(&self, c: u32) -> &[QEdge] {
        &self.edges[self.edge_offsets[c as usize]..self.edge_offsets[c as usize + 1]]
    }
}

/// Reusable search state over a `(graph, refinement)` pair: caches the quotient
/// per depth and the two BFS passes per leader, so the `ψ` loops over
/// `(depth, leader)` pairs pay construction once per coordinate change.
#[derive(Debug)]
pub struct QuotientSearch<'a> {
    g: &'a PortGraph,
    r: &'a Refinement,
    depth: Option<usize>,
    quotient: ClassQuotient,
    leader: Option<NodeId>,
    /// Concrete BFS distance to the leader per node (`u32::MAX` = unreachable).
    dist: Vec<u32>,
    /// Per node: a port leading to a node one step closer to the leader.
    step_port: Vec<Port>,
    /// Arena for the concrete BFS queue.
    node_queue: Vec<NodeId>,
    /// Route BFS: per class, distance to the leader class over uniform edges.
    route_len: Vec<u32>,
    /// Per class: the port of the uniform edge one step along the route.
    route_port: Vec<Port>,
    /// Arena for the route BFS queue.
    class_queue: Vec<u32>,
    stats: SearchStats,
}

impl<'a> QuotientSearch<'a> {
    /// A fresh search over `g` with its refinement `r`.
    pub fn new(g: &'a PortGraph, r: &'a Refinement) -> Self {
        QuotientSearch {
            g,
            r,
            depth: None,
            quotient: ClassQuotient::default(),
            leader: None,
            dist: vec![u32::MAX; g.num_nodes()],
            step_port: vec![0; g.num_nodes()],
            node_queue: vec![0; g.num_nodes()],
            route_len: Vec::new(),
            route_port: Vec::new(),
            class_queue: Vec::new(),
            stats: SearchStats::default(),
        }
    }

    /// The graph this search runs over.
    pub fn graph(&self) -> &'a PortGraph {
        self.g
    }

    /// The refinement this search runs over.
    pub fn refinement(&self) -> &'a Refinement {
        self.r
    }

    /// Prepare the caches for a `(depth, leader)` coordinate: rebuild the
    /// quotient if the depth changed, rerun the two BFS passes if the leader
    /// (or depth) changed. Idempotent for a repeated coordinate.
    pub fn prepare(&mut self, depth: usize, leader: NodeId) {
        if self.depth != Some(depth) {
            self.quotient = ClassQuotient::build(self.g, self.r, depth);
            self.depth = Some(depth);
            self.leader = None;
            let nc = self.quotient.num_classes();
            self.route_len.resize(nc, u32::MAX);
            self.route_port.resize(nc, 0);
            self.class_queue.resize(nc, 0);
        }
        if self.leader != Some(leader) {
            self.leader_bfs(leader);
            let expanded = expand_routes(
                &self.quotient.rev_offsets,
                &self.quotient.rev,
                self.quotient.class_of(leader),
                &mut self.route_len,
                &mut self.route_port,
                &mut self.class_queue,
            );
            self.stats.classes_expanded += expanded;
            self.leader = Some(leader);
        }
    }

    /// The quotient at the prepared depth.
    pub fn quotient(&self) -> &ClassQuotient {
        &self.quotient
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> SearchStats {
        self.stats
    }

    /// Mutable access to the counters (the assignment drivers in
    /// `election_index` record candidate tests here).
    pub fn stats_mut(&mut self) -> &mut SearchStats {
        &mut self.stats
    }

    /// Concrete BFS distance from `v` to the prepared leader (`None` if
    /// unreachable — impossible on the validated connected graphs, but kept
    /// total).
    pub fn leader_dist(&self, v: NodeId) -> Option<u32> {
        match self.dist[v as usize] {
            u32::MAX => None,
            d => Some(d),
        }
    }

    /// The PE distance certificate: port `p` at `v` leads to a node strictly
    /// closer to the leader, so `p` is the first port of a simple path to the
    /// leader (the shortest path from the closer endpoint cannot pass through
    /// `v`, since every node on it is closer to the leader than `v` is).
    pub fn pe_certified(&self, v: NodeId, p: Port) -> bool {
        match self.g.neighbor(v, p) {
            Some((u, _)) => {
                self.dist[v as usize] != u32::MAX && self.dist[u as usize] < self.dist[v as usize]
            }
            None => false,
        }
    }

    /// The `(outgoing, incoming)` port pairs of one concrete shortest path from
    /// `v` to the prepared leader (from the BFS tree), or `None` if unreachable.
    pub fn concrete_path_full(&self, v: NodeId) -> Option<Vec<(Port, Port)>> {
        if self.dist[v as usize] == u32::MAX {
            return None;
        }
        let mut out = Vec::with_capacity(self.dist[v as usize] as usize);
        let mut cur = v;
        while self.dist[cur as usize] > 0 {
            let p = self.step_port[cur as usize];
            let (u, q) = self
                .g
                .neighbor(cur, p)
                .expect("BFS recorded an existing port");
            out.push((p, q));
            cur = u;
        }
        Some(out)
    }

    /// The uniform-route candidate for class `c` as `(outgoing, incoming)` port
    /// pairs, or `None` if no all-uniform route to the leader class exists.
    /// Valid for every member of `c` by the lifting argument in the module docs.
    pub fn route_full(&self, c: u32) -> Option<Vec<(Port, Port)>> {
        if self.route_len[c as usize] == u32::MAX {
            return None;
        }
        let mut out = Vec::with_capacity(self.route_len[c as usize] as usize);
        let mut cur = c;
        while self.route_len[cur as usize] > 0 {
            let p = self.route_port[cur as usize];
            let e = self.quotient.edges_of(cur)[p as usize];
            debug_assert!(e.uniform, "routes only use uniform edges");
            out.push((p, e.far_port));
            cur = e.target;
        }
        Some(out)
    }

    /// Concrete BFS from the leader filling `dist` and `step_port` (the port at
    /// each node towards a node one step closer).
    fn leader_bfs(&mut self, leader: NodeId) {
        for d in self.dist.iter_mut() {
            *d = u32::MAX;
        }
        self.dist[leader as usize] = 0;
        self.node_queue[0] = leader;
        let (mut head, mut tail) = (0usize, 1usize);
        while head < tail {
            let x = self.node_queue[head];
            head += 1;
            let dx = self.dist[x as usize];
            for (_, u, q) in self.g.ports(x) {
                if self.dist[u as usize] == u32::MAX {
                    self.dist[u as usize] = dx + 1;
                    self.step_port[u as usize] = q;
                    self.node_queue[tail] = u;
                    tail += 1;
                }
            }
        }
    }
}

/// The route BFS inner loop: breadth-first over the reverse *uniform* quotient
/// edges from the leader's class, filling per-class route length and next port.
/// Runs over caller-owned arenas so repeated leaders reuse the allocations; the
/// quotient search's per-(depth, leader) cost is this loop plus one concrete
/// BFS. Returns the number of classes expanded (queue pops).
// anet-lint: hot-path
fn expand_routes(
    rev_offsets: &[usize],
    rev: &[(u32, Port)],
    leader_class: u32,
    route_len: &mut [u32],
    route_port: &mut [Port],
    queue: &mut [u32],
) -> usize {
    for x in route_len.iter_mut() {
        *x = u32::MAX;
    }
    route_len[leader_class as usize] = 0;
    queue[0] = leader_class;
    let (mut head, mut tail) = (0usize, 1usize);
    let mut expanded = 0usize;
    while head < tail {
        let c = queue[head] as usize;
        head += 1;
        expanded += 1;
        let d = route_len[c] + 1;
        let mut k = rev_offsets[c];
        while k < rev_offsets[c + 1] {
            let (s, p) = rev[k];
            if route_len[s as usize] == u32::MAX {
                route_len[s as usize] = d;
                route_port[s as usize] = p;
                queue[tail] = s;
                tail += 1;
            }
            k += 1;
        }
    }
    expanded
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_graph::generators;

    #[test]
    fn quotient_of_all_singleton_depth_is_the_graph() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        let r = Refinement::compute(&g, None);
        let h = (0..=r.stable_depth())
            .find(|&h| r.num_classes_at(h) == g.num_nodes())
            .unwrap();
        let q = ClassQuotient::build(&g, &r, h);
        assert_eq!(q.num_classes(), g.num_nodes());
        for c in 0..q.num_classes() as u32 {
            assert_eq!(q.members(c).len(), 1);
            let v = q.members(c)[0];
            // Singleton classes: every edge is trivially uniform and mirrors the
            // concrete edge.
            for (p, u, far) in g.ports(v) {
                let e = q.edges_of(c)[p as usize];
                assert!(e.uniform);
                assert_eq!(e.far_port, far);
                assert_eq!(q.members(e.target)[0], u);
            }
        }
    }

    #[test]
    fn symmetric_ring_collapses_to_one_class_with_no_uniform_edges() {
        // All four nodes share one class; port 0 leads member 0 to 1 but member 1
        // to 2 — same class, but the far ports at the two receiving ends differ
        // only when labellings are asymmetric. On the symmetric ring everything
        // agrees, so the single self-loop class is uniform.
        let g = generators::symmetric_ring(4).unwrap();
        let r = Refinement::compute(&g, None);
        let q = ClassQuotient::build(&g, &r, r.stable_depth());
        assert_eq!(q.num_classes(), 1);
        for e in q.edges_of(0) {
            assert_eq!(e.target, 0);
            assert!(e.uniform);
        }
    }

    #[test]
    fn routes_lift_to_valid_sequences_at_the_distinct_depth() {
        use crate::paths::{cppe_sequence_is_valid, ppe_sequence_is_valid};
        let g = generators::random_connected(12, 4, 3, 7).unwrap();
        let r = Refinement::compute(&g, None);
        let h = (0..=r.stable_depth())
            .find(|&h| r.num_classes_at(h) == g.num_nodes())
            .expect("random connected graphs are feasible");
        let leader = r.unique_nodes_at(h)[0];
        let mut s = QuotientSearch::new(&g, &r);
        s.prepare(h, leader);
        let q = s.quotient();
        for v in g.nodes() {
            if v == leader {
                continue;
            }
            let c = q.class_of(v);
            let full = s.route_full(c).expect("all classes reachable");
            let ports: Vec<Port> = full.iter().map(|&(p, _)| p).collect();
            assert!(ppe_sequence_is_valid(&g, v, &ports, leader), "node {v}");
            assert!(cppe_sequence_is_valid(&g, v, &full, leader), "node {v}");
        }
        assert!(s.stats().classes_expanded > 0);
    }

    #[test]
    fn concrete_paths_and_certificates_agree_with_bfs() {
        let g = generators::random_connected(10, 3, 2, 3).unwrap();
        let r = Refinement::compute(&g, None);
        let mut s = QuotientSearch::new(&g, &r);
        s.prepare(0, 0);
        let dist = g.bfs_distances(0);
        for v in g.nodes() {
            assert_eq!(s.leader_dist(v), dist[v as usize]);
            let full = s.concrete_path_full(v).unwrap();
            assert_eq!(full.len() as u32, dist[v as usize].unwrap());
            if v != 0 {
                let nodes = g.follow_full_ports(v, &full).unwrap();
                assert_eq!(*nodes.last().unwrap(), 0);
                // The certificate is sound: a certified port is PE-valid.
                for (p, _, _) in g.ports(v) {
                    if s.pe_certified(v, p) {
                        assert!(crate::paths::pe_port_is_valid(&g, v, p, 0));
                    }
                }
            }
        }
    }

    #[test]
    fn preparing_the_same_coordinate_twice_is_idempotent() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        let r = Refinement::compute(&g, None);
        let mut s = QuotientSearch::new(&g, &r);
        s.prepare(1, 0);
        let first = s.stats();
        s.prepare(1, 0);
        assert_eq!(s.stats(), first, "no re-expansion on a repeated coordinate");
    }
}
