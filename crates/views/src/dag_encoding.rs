//! Shared-DAG binary encoding of augmented truncated views.
//!
//! The tree format in [`crate::encoding`] writes the *unfolded* view: a subtree that
//! occurs `t` times is written `t` times, so advice for a depth-`h` view costs
//! `Θ((Δ−1)^h log Δ)` bits even when the whole view is one shared node per depth
//! (as the hash-consing [`ViewInterner`] produces on symmetric topologies). This
//! module serialises the **shared DAG itself**: a topologically ordered node table —
//! children strictly before parents — with one entry per *distinct* subtree, plus the
//! root's table id. The size is `O(distinct subtrees · (Δ log Δ + log #nodes))` bits:
//! linear in the height on symmetric families, never worse than the tree format by
//! more than the table ids.
//!
//! ## Format
//!
//! * 6 bits: `w` — the field width used for every degree, far-port and height field
//!   (`w = max(width(Δ), width(max port), width(h))`),
//! * `w` bits: the truncation depth `h` the view was built with (stored for the same
//!   reason as in the tree format: a degree-0 view of any depth is a bare leaf),
//! * varint: `N`, the number of table entries (≥ 1),
//! * `N` node records; record `i` describes one distinct subtree:
//!   * `w` bits: the node's degree,
//!   * if the degree is non-zero, 1 bit: does the node have children? (0 for nodes at
//!     the truncation cut),
//!   * if it does, for each of its `degree` children in outgoing-port order (the
//!     outgoing port is implied, as in the tree format): the far-end port `q`
//!     (`w` bits) followed by the child's table id as a varint — which must reference
//!     an **earlier** record (`id < i`),
//! * varint: the root's table id (`< N`).
//!
//! Ids are written with [`BitString::push_varint`] (5 bits for ids below 16), so
//! small tables pay almost nothing for the indirection.
//!
//! ## Canonical form
//!
//! [`encode_view_dag`] hash-conses the view first, so structurally equal subtrees
//! always collapse to one table entry regardless of how the handle was built
//! (`ViewInterner::build_all`, `View::from_tree`, a collector run, …), and emits the
//! table in first-visit post-order of the canonical DAG. Encoding is therefore a
//! deterministic function of the view's *structure*: equal views produce identical
//! bit strings and distinct views produce distinct ones, exactly like the tree
//! format. [`decode_view_dag`] enforces every invariant that could corrupt the
//! *decoded view* — backward-only ids (which makes cycles unrepresentable), no
//! duplicate table entries, degree/port fields within the `u32` domain, no reading
//! past the string — each rejected with a typed [`DecodeError`]. Like the tree
//! decoder, it stays permissive where the decoded view is unaffected: unreferenced
//! table entries, bits after the root id, and non-minimal varints are accepted (so
//! some encoder-unreachable bit strings decode; canonicity claims are about encoder
//! *output*, not about the decoder's accepted language).
//!
//! ```
//! use anet_views::dag_encoding::{decode_view_dag, encode_view_dag};
//! use anet_views::{encoding, View, ViewInterner};
//!
//! // On a symmetric ring every depth shares one node: B^9 unfolds to 2^10 − 1 tree
//! // nodes but is a 10-entry DAG, and the encodings show exactly that gap.
//! let g = anet_graph::generators::symmetric_ring(6).unwrap();
//! let view = ViewInterner::new().build_all(&g, 9).swap_remove(0);
//! let dag = encode_view_dag(&view, 9);
//! let tree = encoding::encode_view_interned(&view, 9);
//! assert!(dag.len() < 400 && tree.len() > 6000);
//!
//! // Lossless: the decoded view is structurally identical (and shared again).
//! let (decoded, height) = decode_view_dag(&dag).unwrap();
//! assert_eq!(height, 9);
//! assert_eq!(decoded, view);
//! ```

// anet-lint: deny(panic-path)

use crate::bits::{BitReader, BitString};
use crate::encoding::DecodeError;
use crate::interned::{View, ViewInterner};
use crate::view_tree::ViewTree;
use anet_graph::Port;
use std::collections::HashMap;

/// Encode `view` (built at truncation depth `height`) as a shared DAG.
///
/// The view is canonicalized through a fresh [`ViewInterner`] first, so the cost is
/// linear in the number of *distinct* subtrees (`O(h)` on symmetric views of any
/// height), and equal-but-unshared inputs produce identical bit strings.
pub fn encode_view_dag(view: &View, height: usize) -> BitString {
    let canonical = ViewInterner::new().intern(view);
    let max_val = u64::from(canonical.max_degree())
        .max(canonical.max_port().map(u64::from).unwrap_or(0))
        .max(height as u64);
    let w = BitString::width_for(max_val);
    assert!(w <= 63, "view values too large to encode");
    let mut bits = BitString::new();
    bits.push_uint(w as u64, 6);
    bits.push_uint(height as u64, w);

    // Post-order over the canonical DAG: each distinct node is emitted once, after
    // its children. `ids` maps a node's address to its table id — addresses are
    // stable and unique while `canonical` keeps every reachable node alive.
    let mut table = BitString::new();
    let mut ids: HashMap<usize, u64> = HashMap::new();
    let root_id = emit_node(&canonical, w, &mut table, &mut ids);
    bits.push_varint(ids.len() as u64);
    for bit in table.iter() {
        bits.push_bit(bit);
    }
    bits.push_varint(root_id);
    bits
}

/// Emit `node`'s record (and, first, its children's) into `table`, assigning table
/// ids in first-visit post-order. `pub(crate)` so the delta codec can emit new
/// records over a table whose first `ids.len()` entries were pre-assigned to the
/// base view's nodes.
pub(crate) fn emit_node(
    node: &View,
    w: usize,
    table: &mut BitString,
    ids: &mut HashMap<usize, u64>,
) -> u64 {
    if let Some(&id) = ids.get(&node.node_id()) {
        return id;
    }
    let children: Vec<(Port, u64)> = node
        .children()
        .iter()
        .map(|(_, q, child)| (*q, emit_node(child, w, table, ids)))
        .collect();
    table.push_uint(u64::from(node.degree()), w);
    if node.degree() > 0 {
        table.push_bit(!children.is_empty());
        for (q, child_id) in children {
            table.push_uint(u64::from(q), w);
            table.push_varint(child_id);
        }
    }
    let id = ids.len() as u64;
    ids.insert(node.node_id(), id);
    id
}

/// Decode a view previously produced by [`encode_view_dag`]; returns the view (with
/// its subtree sharing restored) and the stored truncation depth.
///
/// The decoder validates the invariants of the canonical form: a non-empty table,
/// child and root ids that reference strictly earlier entries (so adversarial ids
/// cannot form cycles or dangle), and no two entries encoding the same subtree. It
/// never allocates proportionally to a *declared* count, only to bits actually
/// present, so a huge forged `N` just reads off the end of the string.
pub fn decode_view_dag(bits: &BitString) -> Result<(View, usize), DecodeError> {
    let mut r = bits.reader();
    let w = r.read_uint(6).ok_or(DecodeError::Truncated)? as usize;
    if w == 0 || w > 63 {
        return Err(DecodeError::BadWidth);
    }
    let height = r.read_uint(w).ok_or(DecodeError::Truncated)? as usize;
    let count = r.read_varint().ok_or(DecodeError::Truncated)?;
    if count == 0 {
        return Err(DecodeError::EmptyTable);
    }
    let mut interner = ViewInterner::new();
    let mut nodes: Vec<View> = Vec::new();
    for index in 0..count {
        let (degree, children) = read_node(&mut r, w, &nodes)?;
        // The children are canonical handles of this interner, so filing the record
        // grows the interner by exactly one node — unless the record duplicates an
        // earlier entry, which the canonical form forbids.
        let before = interner.len();
        let node = interner.node(degree, children);
        if interner.len() == before {
            return Err(DecodeError::DuplicateNode {
                index: index as usize,
            });
        }
        nodes.push(node);
    }
    let root = r.read_varint().ok_or(DecodeError::Truncated)? as usize;
    let view = nodes.get(root).cloned().ok_or(DecodeError::BadNodeId {
        id: root,
        limit: nodes.len(),
    })?;
    Ok((view, height))
}

pub(crate) type NodeRecord = (u32, Vec<(Port, Port, View)>);

/// Read one node record against the already-decoded `earlier` slice. `pub(crate)`
/// so the delta decoder can read records over a combined base + new table.
pub(crate) fn read_node(
    r: &mut BitReader<'_>,
    w: usize,
    earlier: &[View],
) -> Result<NodeRecord, DecodeError> {
    let degree = crate::encoding::read_u32_field(r, w)?;
    // No `reserve(degree)`: the declared degree is attacker-controlled and may be
    // astronomically larger than the bits backing it.
    let mut children = Vec::new();
    if degree > 0 && r.read_bit().ok_or(DecodeError::Truncated)? {
        for p in 0..degree {
            let q = crate::encoding::read_u32_field(r, w)?;
            let id = r.read_varint().ok_or(DecodeError::Truncated)? as usize;
            let child = earlier.get(id).cloned().ok_or(DecodeError::BadNodeId {
                id,
                limit: earlier.len(),
            })?;
            children.push((p, q, child));
        }
    }
    Ok((degree, children))
}

/// Number of advice bits the DAG encoding of the given view takes — the
/// `O(distinct subtrees)` counterpart of [`crate::encoding::encoded_size_bits`].
pub fn dag_encoded_size_bits(view: &View, height: usize) -> usize {
    encode_view_dag(view, height).len()
}

/// [`encode_view_dag`] for an owned [`ViewTree`] (converted, then hash-consed — the
/// output is identical to encoding the equivalent [`View`] handle).
pub fn encode_tree_dag(tree: &ViewTree, height: usize) -> BitString {
    encode_view_dag(&View::from_tree(tree), height)
}

/// [`decode_view_dag`] producing an owned [`ViewTree`] (unfolds the shared DAG, so
/// this costs `O(Δ^h)` on deep symmetric views — prefer the handle form).
pub fn decode_tree_dag(bits: &BitString) -> Result<(ViewTree, usize), DecodeError> {
    decode_view_dag(bits).map(|(view, height)| (view.to_tree(), height))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{encode_view, encode_view_interned};
    use anet_graph::generators;

    #[test]
    fn round_trip_on_simple_graphs() {
        for g in [
            generators::paper_three_node_line(),
            generators::star(4).unwrap(),
            generators::oriented_ring(&[true, true, false, true, false]).unwrap(),
        ] {
            for v in g.nodes() {
                for h in 0..=3usize {
                    let view = View::build(&g, v, h);
                    let bits = encode_view_dag(&view, h);
                    let (decoded, dh) = decode_view_dag(&bits).unwrap();
                    assert_eq!(dh, h);
                    assert_eq!(decoded, view);
                }
            }
        }
    }

    #[test]
    fn round_trip_on_random_graphs() {
        for seed in 0..5u64 {
            let g = generators::random_connected(18, 5, 7, seed).unwrap();
            for v in [0u32, 7, 17] {
                for h in 0..=3usize {
                    let view = View::build(&g, v, h);
                    let bits = encode_view_dag(&view, h);
                    let (decoded, dh) = decode_view_dag(&bits).unwrap();
                    assert_eq!(dh, h);
                    assert_eq!(decoded, view);
                    assert_eq!(decoded.to_tree(), view.to_tree());
                }
            }
        }
    }

    #[test]
    fn encoding_is_canonical_across_construction_paths() {
        // Interned, unshared-from-tree and collector-style handles of the same view
        // must all produce one bit string.
        let g = generators::random_connected(14, 4, 6, 3).unwrap();
        for v in [0u32, 6, 13] {
            let interned = View::build(&g, v, 3);
            let unshared = View::from_tree(&ViewTree::build(&g, v, 3));
            assert!(!View::ptr_eq(&interned, &unshared));
            assert_eq!(encode_view_dag(&interned, 3), encode_view_dag(&unshared, 3));
            assert_eq!(
                encode_tree_dag(&ViewTree::build(&g, v, 3), 3),
                encode_view_dag(&interned, 3)
            );
        }
    }

    #[test]
    fn distinct_views_have_distinct_encodings() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        let views: Vec<_> = g.nodes().map(|v| View::build(&g, v, 3)).collect();
        let encs: Vec<_> = views.iter().map(|v| encode_view_dag(v, 3)).collect();
        for i in 0..views.len() {
            for j in 0..views.len() {
                assert_eq!(views[i] == views[j], encs[i] == encs[j]);
            }
        }
    }

    #[test]
    fn symmetric_views_encode_in_linear_not_exponential_size() {
        // One distinct node per depth: B^60 unfolds to 2^61 − 1 tree nodes, far past
        // anything the tree codec could materialise, yet the DAG table has 61 entries.
        let g = generators::symmetric_ring(5).unwrap();
        let deep = ViewInterner::new().build_all(&g, 60).swap_remove(0);
        let bits = encode_view_dag(&deep, 60);
        assert!(bits.len() < 61 * 40, "{} bits", bits.len());
        let (decoded, h) = decode_view_dag(&bits).unwrap();
        assert_eq!(h, 60);
        assert_eq!(decoded, deep);
        // The decoded view is shared again: both children of the root are one node.
        assert!(View::ptr_eq(
            &decoded.children()[0].2,
            &decoded.children()[1].2
        ));
    }

    #[test]
    fn agrees_with_the_tree_codec_where_both_apply() {
        for seed in 0..4u64 {
            let g = generators::random_connected(16, 4, 6, seed).unwrap();
            for v in [0u32, 5, 15] {
                for h in 0..=3usize {
                    let owned = ViewTree::build(&g, v, h);
                    let view = View::build(&g, v, h);
                    let (from_dag, hd) = decode_view_dag(&encode_view_dag(&view, h)).unwrap();
                    let (from_tree, ht) =
                        crate::encoding::decode_view_interned(&encode_view_interned(&view, h))
                            .unwrap();
                    assert_eq!((hd, ht), (h, h));
                    assert_eq!(from_dag, from_tree);
                    assert_eq!(from_dag.to_tree(), owned);
                }
            }
        }
    }

    #[test]
    fn dag_is_never_larger_than_tree_plus_id_overhead_on_branching_views() {
        // On views with repetition the DAG should win outright; check a torus-like
        // repetitive graph and a random one.
        let ring = generators::symmetric_ring(8).unwrap();
        let v = View::build(&ring, 0, 8);
        assert!(encode_view_dag(&v, 8).len() < encode_view(&v.to_tree(), 8).len());
    }

    #[test]
    fn truncated_input_reports_truncated_everywhere() {
        let g = generators::random_connected(12, 4, 5, 1).unwrap();
        let bits = encode_view_dag(&View::build(&g, 0, 2), 2);
        // Every proper prefix must fail cleanly with Truncated (never panic, never
        // succeed — the root id is the final field, so no prefix is complete).
        for cut in 0..bits.len() {
            let prefix = BitString::from_binary_string(&bits.to_binary_string()[..cut]).unwrap();
            assert_eq!(
                decode_view_dag(&prefix),
                Err(DecodeError::Truncated),
                "prefix of {cut} bits"
            );
        }
    }

    #[test]
    fn zero_width_header_is_rejected() {
        let mut bits = BitString::new();
        bits.push_uint(0, 6);
        bits.push_uint(0, 8);
        assert_eq!(decode_view_dag(&bits), Err(DecodeError::BadWidth));
    }

    #[test]
    fn empty_table_is_rejected() {
        let mut bits = BitString::new();
        bits.push_uint(3, 6); // w = 3
        bits.push_uint(0, 3); // height 0
        bits.push_varint(0); // N = 0
        assert_eq!(decode_view_dag(&bits), Err(DecodeError::EmptyTable));
    }

    #[test]
    fn forward_and_out_of_range_child_ids_are_rejected() {
        // Hand-build: w=3, h=1, N=2; entry 0 is a degree-1 node whose child id points
        // forwards (to itself / a later entry) — the shape a cycle would need.
        for bad_id in [0u64, 1, 7] {
            let mut bits = BitString::new();
            bits.push_uint(3, 6);
            bits.push_uint(1, 3);
            bits.push_varint(2);
            bits.push_uint(1, 3); // degree 1
            bits.push_bit(true); // has children
            bits.push_uint(0, 3); // far port
            bits.push_varint(bad_id); // references entry 0 itself or later: illegal
            let err = decode_view_dag(&bits).unwrap_err();
            assert_eq!(
                err,
                DecodeError::BadNodeId {
                    id: bad_id as usize,
                    limit: 0
                }
            );
        }
    }

    #[test]
    fn out_of_range_root_id_is_rejected() {
        let g = generators::star(3).unwrap();
        let bits = encode_view_dag(&View::build(&g, 0, 1), 1);
        // Rewrite the trailing root id (the last varint) to an out-of-range value.
        let s = bits.to_binary_string();
        let mut forged = BitString::from_binary_string(&s[..s.len() - 5]).unwrap();
        forged.push_varint(9);
        match decode_view_dag(&forged) {
            Err(DecodeError::BadNodeId { id: 9, .. }) => {}
            other => panic!("expected BadNodeId for the forged root, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_table_entries_are_rejected() {
        // Two identical leaf records: the second is a non-canonical duplicate.
        let mut bits = BitString::new();
        bits.push_uint(3, 6);
        bits.push_uint(0, 3);
        bits.push_varint(2);
        bits.push_uint(2, 3); // leaf of degree 2, no children (cut)
        bits.push_bit(false);
        bits.push_uint(2, 3); // identical leaf again
        bits.push_bit(false);
        bits.push_varint(1);
        assert_eq!(
            decode_view_dag(&bits),
            Err(DecodeError::DuplicateNode { index: 1 })
        );
    }

    #[test]
    fn degree_and_port_fields_beyond_u32_are_rejected_not_truncated() {
        // Width 33 is legal (the height field may need it), but a degree of 2^32
        // would truncate to 0 under a silent `as u32`: the decoder must reject it.
        let mut bits = BitString::new();
        bits.push_uint(33, 6); // w = 33
        bits.push_uint(0, 33); // height 0
        bits.push_varint(1);
        bits.push_uint(1u64 << 32, 33); // degree 2^32: outside the u32 domain
        bits.push_bit(false);
        bits.push_varint(0);
        assert_eq!(decode_view_dag(&bits), Err(DecodeError::ValueTooLarge));

        // Same for a far-port field.
        let mut bits = BitString::new();
        bits.push_uint(33, 6);
        bits.push_uint(1, 33); // height 1
        bits.push_varint(2);
        bits.push_uint(1, 33); // leaf of degree 1 (cut)
        bits.push_bit(false);
        bits.push_uint(1, 33); // node of degree 1…
        bits.push_bit(true); // …with a child
        bits.push_uint(1u64 << 32, 33); // far port 2^32
        bits.push_varint(0);
        bits.push_varint(1);
        assert_eq!(decode_view_dag(&bits), Err(DecodeError::ValueTooLarge));
    }

    #[test]
    fn huge_declared_node_count_fails_without_allocating() {
        // N = 2^40 with no table behind it: must report Truncated promptly (the
        // decoder allocates per record actually read, not per declared count).
        let mut bits = BitString::new();
        bits.push_uint(3, 6);
        bits.push_uint(0, 3);
        bits.push_varint(1 << 40);
        assert_eq!(decode_view_dag(&bits), Err(DecodeError::Truncated));
    }

    #[test]
    fn size_helper_matches_encoding() {
        let g = generators::star(4).unwrap();
        let view = View::build(&g, 0, 2);
        assert_eq!(
            dag_encoded_size_bits(&view, 2),
            encode_view_dag(&view, 2).len()
        );
    }

    #[test]
    fn tree_entry_points_round_trip() {
        let g = generators::random_connected(10, 3, 4, 2).unwrap();
        let tree = ViewTree::build(&g, 0, 2);
        let (decoded, h) = decode_tree_dag(&encode_tree_dag(&tree, 2)).unwrap();
        assert_eq!((decoded, h), (tree, 2));
    }
}
