//! Port colour refinement: view-equivalence classes at every depth.
//!
//! Building explicit view trees costs `Θ(Δ^h)` per node. For questions of the form
//! "which nodes have equal `B^h`?" — which is what every lemma of the paper asks —
//! a partition-refinement computation is exponentially cheaper:
//!
//! * depth 0: the class of `v` is its degree;
//! * depth `h+1`: the class of `v` is determined by the ordered list, over the ports
//!   `p = 0..deg(v)`, of pairs `(q_p, class_h(u_p))`, where `(u_p, q_p)` is the edge at
//!   port `p`.
//!
//! Because the children of the root of `B^{h+1}(v)` are exactly the trees `B^h(u_p)`
//! attached with port pair `(p, q_p)`, two nodes get the same class at depth `h` **iff**
//! their augmented truncated views at depth `h` are isomorphic (equal). The classes are
//! therefore a faithful, compact representative of view equality; the property tests in
//! this module check the equivalence against explicit [`crate::ViewTree`]s.
//!
//! The same computation run on several graphs *jointly* answers the paper's cross-graph
//! questions ("`B^k(r_{j,b})` in `G_α` equals `B^k(r_{j',b'})` in `G_β`", Lemma 2.5,
//! Lemma 2.8, Lemma 4.10(1), …): see [`JointRefinement`].

use anet_graph::{NodeId, PortGraph};
use std::collections::HashMap;

/// Identifier of a node inside a [`JointRefinement`]: which graph, and which node.
pub type JointNode = (usize, NodeId);

/// View-equivalence classes at every depth for a *collection* of graphs considered
/// together (equivalently: for their disjoint union).
///
/// # Arena layout
///
/// The per-depth class rows live in **one flat arena** (`classes`, depth-major with
/// stride `total`), and the refinement loop builds each depth's signatures into one
/// reused flat signature arena indexed by a port-offset table — node `v`'s signature
/// occupies the slice `sig_offsets[v]..sig_offsets[v+1]` (length `1 + 2·deg(v)`).
/// Dense class ids are assigned by sorting a reused index permutation by signature
/// slice, so a refinement step performs **no per-node allocation** (the historical
/// implementation allocated one signature `Vec` per node per depth plus a
/// `HashMap<Vec<u32>, u32>` of owned keys, which dominated on the 132k-node `J`
/// template).
#[derive(Debug, Clone)]
pub struct JointRefinement {
    /// Number of nodes of each graph, in order.
    sizes: Vec<usize>,
    /// Prefix sums of `sizes` (flat indexing).
    offsets: Vec<usize>,
    /// Total number of nodes across all graphs (the arena stride).
    total: usize,
    /// Flat class arena: the dense class id of flat node `v` at depth `h` is
    /// `classes[h * total + v]`, for `h ≤ computed_depth`.
    classes: Vec<u32>,
    /// Number of distinct classes at each computed depth.
    counts: Vec<usize>,
    /// First depth at which the partition stopped refining (classes at any larger depth
    /// equal the classes at this depth).
    stable_depth: usize,
}

/// Assign dense class ids to `0..row.len()` by their signature slices in `sig_arena`
/// (node `i`'s signature is `sig_arena[sig_offsets[i]..sig_offsets[i + 1]]`): sort the
/// reused `order` permutation by signature and number the runs of equal signatures.
/// Returns the number of distinct classes. Ids are deterministic (signature-sorted
/// order) but otherwise arbitrary, exactly like the insertion-order ids they replace.
// anet-lint: hot-path
fn assign_dense_ids(
    sig_arena: &[u32],
    sig_offsets: &[usize],
    order: &mut [u32],
    row: &mut [u32],
) -> usize {
    let sig = |i: u32| &sig_arena[sig_offsets[i as usize]..sig_offsets[i as usize + 1]];
    order.sort_unstable_by(|&a, &b| sig(a).cmp(sig(b)));
    let mut next_id = 0u32;
    for k in 0..order.len() {
        if k > 0 && sig(order[k - 1]) != sig(order[k]) {
            next_id += 1;
        }
        row[order[k] as usize] = next_id;
    }
    next_id as usize + 1
}

/// Write every node's depth-`d` signature into the reused signature arena:
/// the node's previous class, then per port (far port, neighbour's previous
/// class). `current` is the previous depth's class row; `offsets` maps graph
/// index → first flat node id. Runs once per refinement level over every port
/// of every graph — a registered hot path, so it must write in place only.
// anet-lint: hot-path
fn fill_signatures(
    graphs: &[&PortGraph],
    offsets: &[usize],
    current: &[u32],
    sig_offsets: &[usize],
    sig_arena: &mut [u32],
) {
    let mut flat = 0usize;
    for (gi, g) in graphs.iter().enumerate() {
        for v in g.nodes() {
            let mut slot = sig_offsets[flat];
            sig_arena[slot] = current[flat];
            slot += 1;
            for (_, u, q) in g.ports(v) {
                sig_arena[slot] = q;
                sig_arena[slot + 1] = current[offsets[gi] + u as usize];
                slot += 2;
            }
            flat += 1;
        }
    }
}

impl JointRefinement {
    /// Run refinement on `graphs` up to `max_depth`, stopping early when the partition
    /// stabilises. `max_depth = None` means "until stable".
    pub fn compute(graphs: &[&PortGraph], max_depth: Option<usize>) -> JointRefinement {
        Self::compute_with_options(graphs, max_depth, false)
    }

    /// Like [`JointRefinement::compute`], but when `stop_on_unique` is set the
    /// computation additionally stops at the first depth at which some node's class is
    /// a singleton. This is what `ψ_S`-style computations need: on graphs of large
    /// diameter, running refinement to stability would cost `Θ(diameter · m)` even
    /// though the answer is known after `ψ_S + 1` levels.
    pub fn compute_with_options(
        graphs: &[&PortGraph],
        max_depth: Option<usize>,
        stop_on_unique: bool,
    ) -> JointRefinement {
        assert!(!graphs.is_empty(), "at least one graph is required");
        let sizes: Vec<usize> = graphs.iter().map(|g| g.num_nodes()).collect();
        let mut offsets = Vec::with_capacity(sizes.len());
        let mut total = 0usize;
        for &s in &sizes {
            offsets.push(total);
            total += s;
        }

        // Per-node signature ranges in the flat signature arena: 1 slot for the
        // node's previous class + 2 per port (far port, neighbour's previous class).
        let mut sig_offsets = Vec::with_capacity(total + 1);
        let mut sig_total = 0usize;
        for g in graphs {
            for v in g.nodes() {
                sig_offsets.push(sig_total);
                sig_total += 1 + 2 * g.degree(v);
            }
        }
        sig_offsets.push(sig_total);

        // All buffers of the refinement loop, allocated once for the whole run.
        let mut sig_arena = vec![0u32; sig_total];
        let mut order: Vec<u32> = (0..total as u32).collect();
        let mut row = vec![0u32; total];
        let mut classes: Vec<u32> = Vec::new();
        let mut counts: Vec<usize> = Vec::new();

        // Depth 0: classes by degree (a length-1 "signature" per node — write the
        // degree into the first slot of each node's range and compare those).
        {
            let mut flat = 0usize;
            for g in graphs {
                for v in g.nodes() {
                    sig_arena[sig_offsets[flat]] = g.degree(v) as u32;
                    flat += 1;
                }
            }
            let deg_of = |i: u32| sig_arena[sig_offsets[i as usize]];
            order.sort_unstable_by_key(|&i| deg_of(i));
            let mut next_id = 0u32;
            for k in 0..order.len() {
                if k > 0 && deg_of(order[k - 1]) != deg_of(order[k]) {
                    next_id += 1;
                }
                row[order[k] as usize] = next_id;
            }
            counts.push(next_id as usize + 1);
            classes.extend_from_slice(&row);
        }

        // Is some class at the given level a singleton?
        let has_singleton = |row: &[u32], num_classes: usize| -> bool {
            let mut freq = vec![0u32; num_classes];
            for &c in row {
                freq[c as usize] += 1;
            }
            freq.contains(&1)
        };

        let mut stable_depth = 0usize;
        let hard_cap = max_depth.unwrap_or(total.max(1));
        let mut depth = 0usize;
        if stop_on_unique && has_singleton(&row, counts[0]) {
            // ψ_S = 0: the degree sequence already singles a node out.
            return JointRefinement {
                sizes,
                offsets,
                total,
                classes,
                counts,
                stable_depth,
            };
        }
        while depth < hard_cap {
            depth += 1;
            // Signature of v: (previous class of v is implied; include it anyway to be
            // robust) + per-port (far port, previous class of neighbour) — written in
            // place into the reused signature arena.
            {
                let current = &classes[(depth - 1) * total..depth * total];
                fill_signatures(graphs, &offsets, current, &sig_offsets, &mut sig_arena);
            }
            let count = assign_dense_ids(&sig_arena, &sig_offsets, &mut order, &mut row);
            let stabilised = count == *counts.last().expect("non-empty");
            counts.push(count);
            classes.extend_from_slice(&row);
            if stabilised {
                stable_depth = depth - 1;
                // The partition at `depth` equals the one at `depth − 1`; anything
                // deeper is identical too, so we can stop.
                // Keep the extra level so callers asking for `depth` get an answer
                // without clamping surprises.
                break;
            }
            stable_depth = depth;
            if stop_on_unique && has_singleton(&row, count) {
                // A unique view exists at this depth; callers that set this flag only
                // need the partition up to here. NOTE: in this mode `stable_depth()` is
                // merely the deepest computed level, not the true stabilisation depth.
                break;
            }
        }

        JointRefinement {
            sizes,
            offsets,
            total,
            classes,
            counts,
            stable_depth,
        }
    }

    /// Refinement of a single graph.
    pub fn compute_single(g: &PortGraph, max_depth: Option<usize>) -> JointRefinement {
        JointRefinement::compute(&[g], max_depth)
    }

    fn flat(&self, (gi, v): JointNode) -> usize {
        assert!(gi < self.sizes.len(), "graph index out of range");
        assert!((v as usize) < self.sizes[gi], "node index out of range");
        self.offsets[gi] + v as usize
    }

    /// The class row of one depth in the flat arena (clamped to the computed range).
    fn row(&self, depth: usize) -> &[u32] {
        let d = depth.min(self.computed_depth());
        &self.classes[d * self.total..(d + 1) * self.total]
    }

    /// The largest depth that was explicitly computed.
    pub fn computed_depth(&self) -> usize {
        // `total ≥ 1` always (the collection is non-empty and `PortGraph` rejects
        // empty graphs), so at least the depth-0 row exists; saturate anyway.
        (self.classes.len() / self.total.max(1)).saturating_sub(1)
    }

    /// Depth at which the partition became stable (no further refinement happens at
    /// larger depths). If `max_depth` cut the computation short, this is the last
    /// depth at which refinement was still observed.
    pub fn stable_depth(&self) -> usize {
        self.stable_depth
    }

    /// Class id of a node at a given depth. Depths beyond the computed range return the
    /// class at the deepest computed level (correct once the partition is stable).
    pub fn class_at(&self, node: JointNode, depth: usize) -> u32 {
        let flat = self.flat(node);
        self.row(depth)[flat]
    }

    /// Number of distinct classes at a depth (clamped like [`Self::class_at`]).
    pub fn num_classes_at(&self, depth: usize) -> usize {
        let d = depth.min(self.computed_depth());
        self.counts[d]
    }

    /// Are the augmented truncated views of two nodes equal at the given depth?
    pub fn same_view(&self, a: JointNode, b: JointNode, depth: usize) -> bool {
        self.class_at(a, depth) == self.class_at(b, depth)
    }

    /// Number of nodes (across all graphs) sharing the class of `node` at `depth`.
    pub fn multiplicity(&self, node: JointNode, depth: usize) -> usize {
        let c = self.class_at(node, depth);
        self.row(depth).iter().filter(|&&x| x == c).count()
    }

    /// Is the view of `node` at `depth` unique across all graphs of the collection?
    pub fn is_unique(&self, node: JointNode, depth: usize) -> bool {
        self.multiplicity(node, depth) == 1
    }

    /// All nodes (as [`JointNode`]) whose class at `depth` is a singleton.
    pub fn unique_nodes_at(&self, depth: usize) -> Vec<JointNode> {
        let row = self.row(depth);
        let mut freq: HashMap<u32, usize> = HashMap::new();
        for &c in row {
            *freq.entry(c).or_insert(0) += 1;
        }
        let mut out = Vec::new();
        for (gi, &size) in self.sizes.iter().enumerate() {
            for v in 0..size {
                let c = row[self.offsets[gi] + v];
                if freq[&c] == 1 {
                    out.push((gi, v as NodeId));
                }
            }
        }
        out
    }

    /// Group the nodes of graph `gi` by class at `depth`, returning the classes as
    /// lists of node ids (order of classes unspecified but deterministic).
    pub fn classes_of_graph(&self, gi: usize, depth: usize) -> Vec<Vec<NodeId>> {
        let row = self.row(depth);
        let mut map: HashMap<u32, Vec<NodeId>> = HashMap::new();
        for v in 0..self.sizes[gi] {
            map.entry(row[self.offsets[gi] + v])
                .or_default()
                .push(v as NodeId);
        }
        let mut keys: Vec<u32> = map.keys().copied().collect();
        keys.sort_unstable();
        keys.into_iter().map(|k| map.remove(&k).unwrap()).collect()
    }
}

/// View-equivalence classes of a single graph — a thin convenience wrapper around
/// [`JointRefinement`] with node-id (rather than `(graph, node)`) accessors.
#[derive(Debug, Clone)]
pub struct Refinement {
    inner: JointRefinement,
}

impl Refinement {
    /// Run refinement on one graph (see [`JointRefinement::compute`]).
    pub fn compute(g: &PortGraph, max_depth: Option<usize>) -> Refinement {
        Refinement {
            inner: JointRefinement::compute(&[g], max_depth),
        }
    }

    /// Run refinement, stopping at the first depth at which some node's view is unique
    /// (see [`JointRefinement::compute_with_options`]). In this mode
    /// [`Refinement::stable_depth`] is merely the deepest level computed. Intended for
    /// `ψ_S`-style computations on graphs of large diameter.
    pub fn compute_until_unique(g: &PortGraph) -> Refinement {
        Refinement {
            inner: JointRefinement::compute_with_options(&[g], None, true),
        }
    }

    /// Depth at which the partition became stable.
    pub fn stable_depth(&self) -> usize {
        self.inner.stable_depth()
    }

    /// The largest depth explicitly computed.
    pub fn computed_depth(&self) -> usize {
        self.inner.computed_depth()
    }

    /// Class id of `v` at `depth`.
    pub fn class_at(&self, v: NodeId, depth: usize) -> u32 {
        self.inner.class_at((0, v), depth)
    }

    /// Number of distinct view classes at `depth`.
    pub fn num_classes_at(&self, depth: usize) -> usize {
        self.inner.num_classes_at(depth)
    }

    /// `B^depth(u) = B^depth(v)`?
    pub fn same_view(&self, u: NodeId, v: NodeId, depth: usize) -> bool {
        self.inner.same_view((0, u), (0, v), depth)
    }

    /// Number of nodes sharing `v`'s view at `depth`.
    pub fn multiplicity(&self, v: NodeId, depth: usize) -> usize {
        self.inner.multiplicity((0, v), depth)
    }

    /// Does `v` have a unique view at `depth`?
    pub fn is_unique(&self, v: NodeId, depth: usize) -> bool {
        self.inner.is_unique((0, v), depth)
    }

    /// Nodes with a unique view at `depth`.
    pub fn unique_nodes_at(&self, depth: usize) -> Vec<NodeId> {
        self.inner
            .unique_nodes_at(depth)
            .into_iter()
            .map(|(_, v)| v)
            .collect()
    }

    /// Partition of the node set into view classes at `depth`.
    pub fn classes_at(&self, depth: usize) -> Vec<Vec<NodeId>> {
        self.inner.classes_of_graph(0, depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view_tree::ViewTree;
    use anet_graph::generators;

    /// Refinement classes must coincide with explicit view-tree equality at every depth.
    fn assert_matches_view_trees(g: &PortGraph, max_depth: usize) {
        let r = Refinement::compute(g, Some(max_depth));
        for h in 0..=max_depth {
            let views: Vec<ViewTree> = g.nodes().map(|v| ViewTree::build(g, v, h)).collect();
            for u in g.nodes() {
                for v in g.nodes() {
                    assert_eq!(
                        r.same_view(u, v, h),
                        views[u as usize] == views[v as usize],
                        "depth {h}, nodes {u} and {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_explicit_views_on_line_star_and_random() {
        assert_matches_view_trees(&generators::paper_three_node_line(), 3);
        assert_matches_view_trees(&generators::star(4).unwrap(), 3);
        assert_matches_view_trees(&generators::random_connected(14, 4, 5, 77).unwrap(), 4);
    }

    #[test]
    fn symmetric_ring_never_refines() {
        let g = generators::symmetric_ring(6).unwrap();
        let r = Refinement::compute(&g, None);
        assert_eq!(r.num_classes_at(0), 1);
        assert_eq!(r.num_classes_at(r.stable_depth()), 1);
        assert!(r.unique_nodes_at(10).is_empty());
        assert_eq!(r.multiplicity(0, 5), 6);
    }

    #[test]
    fn hypercube_is_fully_symmetric() {
        let g = generators::hypercube(3).unwrap();
        let r = Refinement::compute(&g, None);
        assert_eq!(r.num_classes_at(r.stable_depth() + 3), 1);
    }

    #[test]
    fn star_centre_is_unique_at_depth_zero() {
        let g = generators::star(3).unwrap();
        let r = Refinement::compute(&g, None);
        assert!(r.is_unique(0, 0));
        assert!(!r.is_unique(1, 0));
        assert_eq!(r.unique_nodes_at(0), vec![0]);
        assert_eq!(r.classes_at(0).len(), 2);
    }

    #[test]
    fn oriented_ring_becomes_fully_separated() {
        // A ring with an asymmetric orientation pattern is feasible: all views distinct.
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        let r = Refinement::compute(&g, None);
        let d = r.stable_depth();
        assert_eq!(r.num_classes_at(d), g.num_nodes());
        assert!(g.nodes().all(|v| r.is_unique(v, d)));
    }

    #[test]
    fn stability_means_no_further_refinement() {
        let g = generators::random_connected(20, 4, 8, 5).unwrap();
        let r = Refinement::compute(&g, None);
        let d = r.stable_depth();
        // Ask far beyond the computed depth: counts must not change.
        assert_eq!(r.num_classes_at(d), r.num_classes_at(d + 50));
        for v in g.nodes() {
            assert_eq!(r.class_at(v, d), r.class_at(v, d + 50));
        }
    }

    #[test]
    fn classes_partition_the_node_set() {
        let g = generators::random_connected(25, 5, 10, 9).unwrap();
        let r = Refinement::compute(&g, None);
        for h in [0, 1, 2, r.stable_depth()] {
            let classes = r.classes_at(h);
            let total: usize = classes.iter().map(Vec::len).sum();
            assert_eq!(total, g.num_nodes());
            assert_eq!(classes.len(), r.num_classes_at(h));
        }
    }

    #[test]
    fn joint_refinement_agrees_with_per_graph_views_across_graphs() {
        // Two different oriented rings: check cross-graph view equality against
        // explicit trees.
        let g1 = generators::oriented_ring(&[true, true, false, true]).unwrap();
        let g2 = generators::oriented_ring(&[true, false, true, true]).unwrap();
        let joint = JointRefinement::compute(&[&g1, &g2], Some(4));
        for h in 0..=4usize {
            for u in g1.nodes() {
                for v in g2.nodes() {
                    let t1 = ViewTree::build(&g1, u, h);
                    let t2 = ViewTree::build(&g2, v, h);
                    assert_eq!(
                        joint.same_view((0, u), (1, v), h),
                        t1 == t2,
                        "depth {h}, nodes {u}@g1 and {v}@g2"
                    );
                }
            }
        }
    }

    #[test]
    fn joint_refinement_identical_graphs_pair_up() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        let joint = JointRefinement::compute(&[&g, &g], None);
        // Every node's view is shared with its copy in the other graph, so nothing is
        // unique, and each multiplicity is exactly 2 at the stable depth.
        let d = joint.stable_depth() + 2;
        assert!(joint.unique_nodes_at(d).is_empty());
        for v in g.nodes() {
            assert_eq!(joint.multiplicity((0, v), d), 2);
            assert!(joint.same_view((0, v), (1, v), d));
        }
    }

    #[test]
    fn stop_on_unique_finds_the_same_first_depth() {
        // The early-stopping mode must agree with the full computation about the first
        // depth at which a unique view exists.
        for seed in 0..5u64 {
            let g = generators::random_connected(18, 4, 6, seed).unwrap();
            let full = Refinement::compute(&g, None);
            let fast = Refinement::compute_until_unique(&g);
            let first_full =
                (0..=full.stable_depth()).find(|&h| !full.unique_nodes_at(h).is_empty());
            let first_fast =
                (0..=fast.computed_depth()).find(|&h| !fast.unique_nodes_at(h).is_empty());
            assert_eq!(first_full, first_fast, "seed {seed}");
            if let Some(d) = first_fast {
                assert_eq!(
                    full.unique_nodes_at(d),
                    fast.unique_nodes_at(d),
                    "seed {seed}"
                );
            }
        }
        // On a fully symmetric graph the early-stopping mode still terminates (at
        // stability) and reports no unique nodes.
        let ring = generators::symmetric_ring(6).unwrap();
        let fast = Refinement::compute_until_unique(&ring);
        assert!(fast.unique_nodes_at(fast.computed_depth()).is_empty());
    }

    #[test]
    fn stop_on_unique_handles_depth_zero() {
        let g = generators::star(3).unwrap();
        let fast = Refinement::compute_until_unique(&g);
        assert_eq!(fast.computed_depth(), 0);
        assert_eq!(fast.unique_nodes_at(0), vec![0]);
    }

    #[test]
    #[should_panic(expected = "graph index out of range")]
    fn joint_refinement_rejects_bad_graph_index() {
        let g = generators::star(3).unwrap();
        let joint = JointRefinement::compute(&[&g], None);
        joint.class_at((1, 0), 0);
    }
}
