//! Delta binary encoding of augmented truncated views against a base view.
//!
//! In the metered transport (`anet-sim`), the message a node sends in round `r` is
//! its accumulated view — one depth deeper than the message it sent on the same edge
//! in round `r − 1`, which the receiver still holds. The hash-consing
//! [`ViewInterner`] makes the shared substructure between the two explicit: interning
//! base and target into one table turns every subtree the receiver already knows into
//! a pointer-identical canonical node. This module serialises only the *new* table
//! entries, referencing the base's entries by id; the receiver reconstructs the base
//! half of the table from its own copy.
//!
//! ## Format
//!
//! * 6 bits: `w` — the field width for every degree, far-port and height field
//!   (`w = max(width(Δ), width(max port), width(h))`, computed from the **target**;
//!   base nodes are referenced, never re-emitted, so their fields don't matter),
//! * `w` bits: the truncation depth `h` of the target,
//! * 1 bit: `has_base` — does the encoding reference a base view?
//! * if `has_base`:
//!   * 16 bits: a fingerprint of the base (the low 16 bits of the canonical base
//!     root's structural hash) — a best-effort check that encoder and decoder hold
//!     the same base,
//!   * varint: `K`, the number of distinct nodes of the base (the base half of the
//!     table: ids `0..K` in first-visit post-order of the canonical base DAG),
//! * varint: `M`, the number of *new* records,
//! * `M` node records in the exact [`crate::dag_encoding`] record format, with child
//!   ids ranging over the **combined** table (base ids `< K`, new ids from `K`),
//! * varint: the root's combined-table id.
//!
//! ## Adaptive: never worse than the DAG format by more than one bit
//!
//! Sharing between `B^{r−1}(v)` and `B^r(v)` is a graph property, not a given: a
//! node of `B^r(v)` is some `B^{r−d}(u)` for a length-`d` walk `v → u`, so a subtree
//! shared with the base needs walks of *both parities* to `u` — on bipartite graphs
//! (even rings, hypercubes, even tori) successive views share **nothing**. The
//! encoder therefore encodes both ways — against the base and standalone — and emits
//! whichever is smaller. The standalone form is the DAG format plus the `has_base`
//! bit, so `delta ≤ dag + 1` always, and `delta < dag` wherever real sharing exists
//! (odd cycles somewhere in range: non-bipartite graphs, odd rings/tori).
//!
//! [`decode_view_delta`] enforces the same invariants as the DAG decoder (backward
//! ids, no duplicates — including a new record duplicating a base node —, `u32`
//! domains, no reading past the end) and additionally rejects a declared base the
//! decoder does not hold with [`DecodeError::BaseMismatch`]. A supplied-but-unused
//! base is fine: the standalone form ignores it.
//!
//! ```
//! use anet_views::delta_encoding::{decode_view_delta, encode_view_delta};
//! use anet_views::ViewInterner;
//!
//! // Successive-depth views on an odd ring share almost everything.
//! let g = anet_graph::generators::symmetric_ring(5).unwrap();
//! let base = ViewInterner::new().build_all(&g, 7).swap_remove(0);
//! let next = ViewInterner::new().build_all(&g, 8).swap_remove(0);
//! let delta = encode_view_delta(&next, 8, Some(&base));
//! let dag = anet_views::dag_encoding::encode_view_dag(&next, 8);
//! assert!(delta.len() < dag.len());
//! let (decoded, h) = decode_view_delta(&delta, Some(&base)).unwrap();
//! assert_eq!((decoded, h), (next, 8));
//! ```

// anet-lint: deny(panic-path)

use crate::bits::BitString;
use crate::dag_encoding::{emit_node, read_node};
use crate::encoding::DecodeError;
use crate::interned::{View, ViewInterner};
use std::collections::HashMap;

/// Width of the base-fingerprint field.
const FINGERPRINT_BITS: usize = 16;

/// The 16-bit base fingerprint: low bits of the canonical root's structural hash.
fn fingerprint(base: &View) -> u64 {
    base.structural_hash() & ((1 << FINGERPRINT_BITS) - 1)
}

/// Assign table ids to every distinct node of `view` in first-visit post-order —
/// the identical order [`emit_node`] emits in — collecting the canonical handles
/// in id order. Used to pre-fill the base half of the combined table on both the
/// encode and the decode side without writing or reading any bits.
fn assign_ids(node: &View, ids: &mut HashMap<usize, u64>, order: &mut Vec<View>) {
    if ids.contains_key(&node.node_id()) {
        return;
    }
    for (_, _, child) in node.children() {
        assign_ids(child, ids, order);
    }
    // Re-check: a child may equal this node only in cyclic structures, which views
    // cannot form, but the guard keeps the id assignment append-only regardless.
    if !ids.contains_key(&node.node_id()) {
        ids.insert(node.node_id(), ids.len() as u64);
        order.push(node.clone());
    }
}

/// Encode `view` (built at truncation depth `height`) against `base`: the receiver
/// must hold a structurally equal base to decode. With `base = None` (round 1: no
/// previous message exists) the output is the standalone form — the DAG format plus
/// a cleared `has_base` bit.
///
/// Adaptive: both forms are produced and the smaller one is returned, so the result
/// is never more than one bit longer than [`crate::dag_encoding::encode_view_dag`].
pub fn encode_view_delta(view: &View, height: usize, base: Option<&View>) -> BitString {
    let standalone = encode_with(view, height, None);
    match base {
        None => standalone,
        Some(base) => {
            let delta = encode_with(view, height, Some(base));
            if delta.len() < standalone.len() {
                delta
            } else {
                standalone
            }
        }
    }
}

fn encode_with(view: &View, height: usize, base: Option<&View>) -> BitString {
    let mut interner = ViewInterner::new();
    let canonical = interner.intern(view);
    let max_val = u64::from(canonical.max_degree())
        .max(canonical.max_port().map(u64::from).unwrap_or(0))
        .max(height as u64);
    let w = BitString::width_for(max_val);
    assert!(w <= 63, "view values too large to encode");
    let mut bits = BitString::new();
    bits.push_uint(w as u64, 6);
    bits.push_uint(height as u64, w);
    let mut ids: HashMap<usize, u64> = HashMap::new();
    let mut base_order: Vec<View> = Vec::new();
    match base {
        Some(base) => {
            // Intern the base into the SAME table: every subtree the target shares
            // with it becomes pointer-identical, so `emit_node`'s memo skips it.
            let canonical_base = interner.intern(base);
            assign_ids(&canonical_base, &mut ids, &mut base_order);
            bits.push_bit(true);
            bits.push_uint(fingerprint(&canonical_base), FINGERPRINT_BITS);
            bits.push_varint(base_order.len() as u64);
        }
        None => bits.push_bit(false),
    }
    let k = ids.len();
    let mut table = BitString::new();
    let root_id = emit_node(&canonical, w, &mut table, &mut ids);
    bits.push_varint((ids.len() - k) as u64);
    for bit in table.iter() {
        bits.push_bit(bit);
    }
    bits.push_varint(root_id);
    bits
}

/// Decode a view previously produced by [`encode_view_delta`]; returns the view and
/// the stored truncation depth. `base` must be structurally equal to the encoder's
/// base whenever the encoding declares one ([`DecodeError::BaseMismatch`] otherwise,
/// best-effort via the 16-bit fingerprint and the declared table size); a supplied
/// base is ignored when the encoding is standalone.
pub fn decode_view_delta(
    bits: &BitString,
    base: Option<&View>,
) -> Result<(View, usize), DecodeError> {
    let mut r = bits.reader();
    let w = r.read_uint(6).ok_or(DecodeError::Truncated)? as usize;
    if w == 0 || w > 63 {
        return Err(DecodeError::BadWidth);
    }
    let height = r.read_uint(w).ok_or(DecodeError::Truncated)? as usize;
    let has_base = r.read_bit().ok_or(DecodeError::Truncated)?;
    let mut interner = ViewInterner::new();
    let mut nodes: Vec<View> = Vec::new();
    if has_base {
        let declared_print = r
            .read_uint(FINGERPRINT_BITS)
            .ok_or(DecodeError::Truncated)?;
        let declared_k = r.read_varint().ok_or(DecodeError::Truncated)?;
        let base = base.ok_or(DecodeError::BaseMismatch)?;
        let canonical_base = interner.intern(base);
        let mut ids: HashMap<usize, u64> = HashMap::new();
        assign_ids(&canonical_base, &mut ids, &mut nodes);
        if fingerprint(&canonical_base) != declared_print || nodes.len() as u64 != declared_k {
            return Err(DecodeError::BaseMismatch);
        }
    }
    let count = r.read_varint().ok_or(DecodeError::Truncated)?;
    if !has_base && count == 0 {
        // Standalone with an empty table is the DAG format's EmptyTable condition;
        // with a base, zero new records is legal (a fully shared target).
        return Err(DecodeError::EmptyTable);
    }
    for index in 0..count {
        let (degree, children) = read_node(&mut r, w, &nodes)?;
        let before = interner.len();
        let node = interner.node(degree, children);
        if interner.len() == before {
            // Duplicates an earlier entry — a new record *or* a base node the
            // canonical encoder would have referenced by id instead.
            return Err(DecodeError::DuplicateNode {
                index: index as usize,
            });
        }
        nodes.push(node);
    }
    let root = r.read_varint().ok_or(DecodeError::Truncated)? as usize;
    let view = nodes.get(root).cloned().ok_or(DecodeError::BadNodeId {
        id: root,
        limit: nodes.len(),
    })?;
    Ok((view, height))
}

/// Number of bits [`encode_view_delta`] takes for the given view/base pair — the
/// per-message cost the metered transport's `delta` codec charges.
pub fn delta_encoded_size_bits(view: &View, height: usize, base: Option<&View>) -> usize {
    encode_view_delta(view, height, base).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag_encoding::encode_view_dag;
    use anet_graph::generators;

    #[test]
    fn standalone_round_trips_and_costs_dag_plus_one_bit() {
        for seed in 0..4u64 {
            let g = generators::random_connected(16, 4, 6, seed).unwrap();
            for v in [0u32, 5, 15] {
                for h in 0..=3usize {
                    let view = View::build(&g, v, h);
                    let bits = encode_view_delta(&view, h, None);
                    assert_eq!(bits.len(), encode_view_dag(&view, h).len() + 1);
                    let (decoded, dh) = decode_view_delta(&bits, None).unwrap();
                    assert_eq!((decoded, dh), (view, h));
                }
            }
        }
    }

    #[test]
    fn based_round_trips_on_successive_depths() {
        for g in [
            generators::symmetric_ring(5).unwrap(),
            generators::random_connected(14, 4, 6, 9).unwrap(),
        ] {
            for v in [0u32, 3] {
                for h in 1..=4usize {
                    let base = View::build(&g, v, h - 1);
                    let view = View::build(&g, v, h);
                    let bits = encode_view_delta(&view, h, Some(&base));
                    let (decoded, dh) = decode_view_delta(&bits, Some(&base)).unwrap();
                    assert_eq!((decoded, dh), (view.clone(), h));
                    // Adaptive bound holds whatever the encoder chose.
                    assert!(bits.len() <= encode_view_dag(&view, h).len() + 1);
                }
            }
        }
    }

    #[test]
    fn sharing_beats_the_dag_format_on_odd_rings() {
        let g = generators::symmetric_ring(5).unwrap();
        let base = ViewInterner::new().build_all(&g, 7).swap_remove(0);
        let view = ViewInterner::new().build_all(&g, 8).swap_remove(0);
        let delta = encode_view_delta(&view, 8, Some(&base));
        assert!(delta.len() < encode_view_dag(&view, 8).len());
    }

    #[test]
    fn shareless_pairs_fall_back_to_standalone() {
        // On the 3-node path, B^1(end) = {leaf(2), B^1} and B^2(end) =
        // {leaf(1), B^1(centre), B^2} are disjoint node sets (the parity
        // obstruction: a shared node needs walks of both parities to one node),
        // so the adaptive encoder must pick the standalone form (dag + 1 bit).
        let g = generators::paper_three_node_line();
        let base = View::build(&g, 0, 1);
        let view = View::build(&g, 0, 2);
        let bits = encode_view_delta(&view, 2, Some(&base));
        assert_eq!(bits.len(), encode_view_dag(&view, 2).len() + 1);
        // And a standalone string decodes with or without a base on hand.
        assert_eq!(
            decode_view_delta(&bits, Some(&base)).unwrap().0,
            decode_view_delta(&bits, None).unwrap().0
        );
    }

    #[test]
    fn missing_base_is_rejected() {
        let g = generators::symmetric_ring(5).unwrap();
        let base = View::build(&g, 0, 4);
        let view = View::build(&g, 0, 5);
        let bits = encode_view_delta(&view, 5, Some(&base));
        // The odd ring shares, so the encoder really used the base.
        assert!(bits.bit(6 + BitString::width_for(5)), "has_base set");
        assert_eq!(
            decode_view_delta(&bits, None),
            Err(DecodeError::BaseMismatch)
        );
    }

    #[test]
    fn wrong_base_is_rejected() {
        let g = generators::symmetric_ring(5).unwrap();
        let base = View::build(&g, 0, 4);
        let view = View::build(&g, 0, 5);
        let wrong = View::build(&g, 0, 3);
        assert_ne!(fingerprint(&base), fingerprint(&wrong));
        let bits = encode_view_delta(&view, 5, Some(&base));
        assert_eq!(
            decode_view_delta(&bits, Some(&wrong)),
            Err(DecodeError::BaseMismatch)
        );
    }

    #[test]
    fn size_helper_matches_encoding() {
        let g = generators::symmetric_ring(5).unwrap();
        let base = View::build(&g, 0, 3);
        let view = View::build(&g, 0, 4);
        assert_eq!(
            delta_encoded_size_bits(&view, 4, Some(&base)),
            encode_view_delta(&view, 4, Some(&base)).len()
        );
    }
}
