//! Structurally shared augmented truncated views: [`View`] handles and hash-consing.
//!
//! The owned [`ViewTree`] materialises `B^h(v)` as a recursive `Vec` tree, so every
//! hand-off (a message, a map entry, a comparison key) deep-copies up to `Δ^h` nodes.
//! But views are *maximally shareable*: the subtree hanging off the child reached
//! through edge `(p, q)` is by definition the neighbour's `B^{h-1}` — the very object
//! the neighbour just computed (and, in the simulator, just sent to everyone). This
//! module exploits that:
//!
//! * [`View`] is an immutable handle to an `Arc`-backed tree node that carries a
//!   precomputed structural hash, subtree size and height. Cloning a `View` is an
//!   `Arc` reference-count bump; equality is pointer-then-hash-then-structure (a
//!   negative answer is `O(1)`, and a positive answer verifies each distinct node
//!   pair at most once — shared subtrees short-circuit on pointers and unshared but
//!   equal ones are pair-memoized); [`View::lex_cmp`] realises the canonical token
//!   order with the same short-circuits.
//! * [`ViewInterner`] hash-conses structurally identical subtrees to one canonical
//!   representative. [`ViewInterner::build_all`] constructs `B^h(v)` for *every* node
//!   of a graph in `O(n · h · Δ)` handle operations — level `d` reuses the level
//!   `d − 1` handles of the neighbours — instead of the `Θ(n · Δ^h)` nodes the owned
//!   construction materialises. On symmetric topologies (rings, tori, hypercubes,
//!   circulants) almost all subtrees collapse: the interner ends up holding one node
//!   per (view class × depth), and equal views are pointer-equal.
//!
//! [`View`] and [`ViewTree`] convert losslessly into each other
//! ([`View::from_tree`] / [`View::to_tree`]); the owned form remains the test and
//! interop representation, while every hot path — the full-information collector in
//! `anet-sim`, the solvers in `anet-core` — works on handles. Both forms serialise
//! through either wire codec ([`crate::encoding`] unfolds the tree,
//! [`crate::dag_encoding`] writes the shared DAG itself).
//!
//! Everything here is deterministic: the structural hash is a fixed SplitMix64-style
//! mix of degrees and ports, so hashes, interner contents and all derived outputs are
//! reproducible across runs, threads and execution backends.
//!
//! ## Thread-safety invariants
//!
//! [`View`] is `Send + Sync` (enforced by compile-time assertions below): a handle is
//! an `Arc` to a node whose fields are immutable after construction, so sharing
//! handles across threads is safe and cheap. [`ViewInterner`] is `Send` (it can move
//! to, or be owned by, another thread — e.g. inside one shard of the sharded
//! [`crate::SharedViewInterner`]) but all its useful methods take `&mut self`, so
//! concurrent use requires external synchronisation. The sharded wrapper relies on
//! exactly these invariants, documented here so they cannot rot silently:
//!
//! 1. **Structural hashes are pure and deterministic** — `node_hash` is a fixed
//!    function of `(degree, child ports, child hashes)` with no per-process or
//!    per-thread state (no `RandomState`, no addresses). Two threads computing the
//!    hash of the same structure always agree, which is what makes hash-based shard
//!    routing consistent across threads.
//! 2. **Canonical pointers are stable and unique per interner** — an interner keeps
//!    every canonical node (and a keepalive of every canonicalized foreign node)
//!    alive for its own lifetime, so the `Arc` addresses used in `NodeKey` cannot
//!    be recycled while the interner lives, and one structure never has two
//!    canonical nodes within one interner.
//! 3. **Nodes are immutable after construction** — no method mutates `degree`,
//!    `children`, `hash`, `size` or `height` behind a handle, so a canonical node
//!    read by one thread while another thread files new (different) nodes is never
//!    torn. All interner mutation is confined to its two `HashMap`s behind
//!    `&mut self`.
//!
//! ```
//! use anet_views::{View, ViewInterner};
//!
//! // On the symmetric 6-ring every node has the same B^h — one interner collapses
//! // the whole graph to one shared node per depth, and equal means pointer-equal.
//! let g = anet_graph::generators::symmetric_ring(6).unwrap();
//! let mut interner = ViewInterner::new();
//! let views = interner.build_all(&g, 4);
//! assert!(View::ptr_eq(&views[0], &views[5]));
//! assert_eq!(interner.len(), 5); // depths 0..=4
//! // The unfolded size is exponential; the handle knows it in O(1).
//! assert_eq!(views[0].size(), (1 << 5) - 1);
//! ```

use crate::view_tree::ViewTree;
use anet_graph::{NodeId, Port, PortGraph};
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// One shared tree node. Not public: all access goes through [`View`], which
/// guarantees the cached `hash`/`size`/`height` always agree with the structure.
#[derive(Debug)]
struct ViewNode {
    /// Degree (in the graph) of the node this view position corresponds to.
    degree: u32,
    /// Children in increasing order of outgoing port: `(p, q, subtree)`.
    children: Vec<(Port, Port, View)>,
    /// Structural hash: a deterministic function of the token sequence.
    hash: u64,
    /// Number of *unfolded* tree nodes in this subtree (root included), saturating:
    /// deep shared views can unfold past usize::MAX even though they are cheap to
    /// hold, so the count caps instead of overflowing. (Equality does not rely on
    /// exact sizes — a saturated tie just falls through to the structural compare.)
    size: usize,
    /// Height of this subtree (0 for a leaf).
    height: usize,
}

/// An immutable, structurally shared augmented truncated view `B^h(v)`.
///
/// Semantically identical to [`ViewTree`] (same token sequence, same lexicographic
/// order, lossless conversions both ways); operationally a cheap handle: `clone` is an
/// `Arc` bump, equality and ordering short-circuit on shared subtrees, and `size`,
/// `height` and the structural hash are precomputed.
#[derive(Clone)]
pub struct View {
    node: Arc<ViewNode>,
}

/// SplitMix64 finalizer: the deterministic mixer behind the structural hash.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The structural hash a node built from `degree` and `children` will carry — the
/// single definition shared by [`View::from_parts`] and the shard router of
/// [`crate::SharedViewInterner`], so a prospective node can be routed to its shard
/// *before* it is allocated and the two can never disagree.
pub(crate) fn node_hash(degree: u32, children: &[(Port, Port, View)]) -> u64 {
    let mut hash = mix64(0x9E37_79B9_7F4A_7C15 ^ u64::from(degree))
        ^ mix64(children.len() as u64 ^ 0xD1B5_4A32_D192_ED03);
    for (p, q, child) in children {
        hash = mix64(
            hash ^ mix64(u64::from(*p) | (u64::from(*q) << 32)).wrapping_add(child.node.hash),
        );
    }
    hash
}

impl View {
    /// Build a view node from a degree and already-built children. The children are
    /// shared, not copied: this is `O(children)` regardless of subtree sizes, which is
    /// what makes the full-information collector's per-round graft cheap.
    pub fn from_parts(degree: u32, children: Vec<(Port, Port, View)>) -> View {
        let hash = node_hash(degree, &children);
        let mut size = 1usize;
        let mut height = 0usize;
        for (_, _, child) in &children {
            size = size.saturating_add(child.node.size);
            height = height.max(1 + child.node.height);
        }
        View {
            node: Arc::new(ViewNode {
                degree,
                children,
                hash,
                size,
                height,
            }),
        }
    }

    /// A bare leaf: `B^0` of a node of the given degree.
    pub fn leaf(degree: u32) -> View {
        View::from_parts(degree, Vec::new())
    }

    /// Build `B^depth(v)` in graph `g` with full structural sharing (a fresh interner
    /// builds the views of every node up to `depth` in `O(n · depth · Δ)` and returns
    /// the one for `v`). For the views of all nodes at once, use
    /// [`ViewInterner::build_all`] directly.
    pub fn build(g: &PortGraph, v: NodeId, depth: usize) -> View {
        let mut interner = ViewInterner::new();
        interner.build_all(g, depth).swap_remove(v as usize)
    }

    /// Degree (in the graph) of the node this view position corresponds to.
    pub fn degree(&self) -> u32 {
        self.node.degree
    }

    /// Children in increasing order of outgoing port: `(p, q, subtree)`.
    pub fn children(&self) -> &[(Port, Port, View)] {
        &self.node.children
    }

    /// Precomputed height of the tree (0 for a bare leaf). `O(1)`.
    pub fn height(&self) -> usize {
        self.node.height
    }

    /// Precomputed number of unfolded tree nodes (root included), saturating at
    /// `usize::MAX` for views whose walk tree exceeds it. `O(1)`.
    pub fn size(&self) -> usize {
        self.node.size
    }

    /// Number of tree edges (= size − 1). `O(1)`.
    pub fn num_edges(&self) -> usize {
        self.node.size - 1
    }

    /// The precomputed structural hash (a deterministic function of the token
    /// sequence; equal views always hash equal).
    pub fn structural_hash(&self) -> u64 {
        self.node.hash
    }

    /// Are the two handles the *same object* (shared, not merely equal)? Interned
    /// views built through one [`ViewInterner`] are equal iff they are shared.
    pub fn ptr_eq(a: &View, b: &View) -> bool {
        Arc::ptr_eq(&a.node, &b.node)
    }

    /// Truncate the view to a smaller depth. Truncation to `depth ≥ height` is the
    /// identity and costs one `Arc` bump; otherwise only the nodes above the cut are
    /// rebuilt — shared subtrees are rebuilt once per (subtree, depth) through a
    /// per-call memo and stay shared in the result, so the cost is linear in the
    /// *distinct* nodes above the cut, not the unfolded tree prefix.
    pub fn truncated(&self, depth: usize) -> View {
        // Keyed by (node address, remaining depth); safe because `self` keeps every
        // reachable node alive for the duration of the call, and the memo does not
        // outlive it.
        let mut memo: HashMap<(usize, usize), View> = HashMap::new();
        self.truncated_memo(depth, &mut memo)
    }

    fn truncated_memo(&self, depth: usize, memo: &mut HashMap<(usize, usize), View>) -> View {
        if depth >= self.node.height {
            return self.clone();
        }
        let key = (Arc::as_ptr(&self.node) as usize, depth);
        if let Some(done) = memo.get(&key) {
            return done.clone();
        }
        let out = if depth == 0 {
            View::leaf(self.node.degree)
        } else {
            View::from_parts(
                self.node.degree,
                self.node
                    .children
                    .iter()
                    .map(|(p, q, c)| (*p, *q, c.truncated_memo(depth - 1, memo)))
                    .collect(),
            )
        };
        memo.insert(key, out.clone());
        out
    }

    /// Canonical token sequence — identical to [`ViewTree::tokens`]: pre-order
    /// `[degree, #children]` then, per child in port order, `[p, q]` and the child's
    /// tokens. Materialises the full (unshared) sequence; meant for tests and interop.
    pub fn tokens(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.node.size.saturating_mul(4));
        crate::search::write_tokens_by(self, Self::node_degree, Self::node_children, &mut out);
        out
    }

    /// Accessors handed to the traversals shared with the owned form
    /// (`crate::search`), so the two representations cannot diverge. `node_id` is the
    /// shared node's address, so the searches visit every distinct subtree once
    /// instead of unfolding the walk tree. (`pub(crate)` so the DAG codec can key its
    /// emission memo the same way; only meaningful while the handle is alive.)
    pub(crate) fn node_id(&self) -> usize {
        Arc::as_ptr(&self.node) as usize
    }

    fn node_degree(&self) -> u32 {
        self.node.degree
    }

    fn node_children(&self) -> impl ExactSizeIterator<Item = (Port, Port, &View)> {
        self.node.children.iter().map(|&(p, q, ref c)| (p, q, c))
    }

    /// Compare two views in the canonical lexicographic token order, without
    /// materialising tokens: scalar fields are compared in token position, recursion
    /// descends child by child, pointer-equal subtrees compare `Equal` in `O(1)`, and
    /// pairs proven equal once are memoized for the rest of the call — so the cost is
    /// bounded by the *product of distinct nodes* on the two sides (any unequal pair
    /// short-circuits the whole comparison), never the unfolded walk trees, even when
    /// the operands share no `Arc`s with each other (views from different interners
    /// or collector runs).
    ///
    /// Agrees exactly with `self.tokens().cmp(&other.tokens())`: the `#children`
    /// token precedes the children, so any structural divergence is decided at the
    /// same position at which the flat sequences first differ.
    pub fn lex_cmp(&self, other: &View) -> Ordering {
        // `HashSet::new` does not allocate, so the ptr-equal fast path stays free.
        let mut equal_pairs: HashSet<(usize, usize)> = HashSet::new();
        self.lex_cmp_memo(other, &mut equal_pairs)
    }

    fn lex_cmp_memo(&self, other: &View, equal_pairs: &mut HashSet<(usize, usize)>) -> Ordering {
        if Arc::ptr_eq(&self.node, &other.node) {
            return Ordering::Equal;
        }
        // Pairs proven equal earlier in this call; keyed by the borrowed nodes'
        // addresses, which both operands keep alive for the duration of the call.
        let key = (
            Arc::as_ptr(&self.node) as usize,
            Arc::as_ptr(&other.node) as usize,
        );
        if equal_pairs.contains(&key) {
            return Ordering::Equal;
        }
        let step = self
            .node
            .degree
            .cmp(&other.node.degree)
            .then_with(|| self.node.children.len().cmp(&other.node.children.len()))
            .then_with(|| {
                for ((ap, aq, ac), (bp, bq, bc)) in
                    self.node.children.iter().zip(&other.node.children)
                {
                    let step = ap
                        .cmp(bp)
                        .then_with(|| aq.cmp(bq))
                        .then_with(|| ac.lex_cmp_memo(bc, equal_pairs));
                    if step != Ordering::Equal {
                        return step;
                    }
                }
                Ordering::Equal
            });
        if step == Ordering::Equal {
            equal_pairs.insert(key);
        }
        step
    }

    /// The maximum port number mentioned anywhere in the view, or `None` for a bare
    /// single node.
    pub fn max_port(&self) -> Option<u32> {
        crate::search::max_port_by(self, Self::node_id, Self::node_children)
    }

    /// The maximum degree mentioned anywhere in the view.
    pub fn max_degree(&self) -> u32 {
        crate::search::max_degree_by(self, Self::node_id, Self::node_degree, Self::node_children)
    }

    /// Does this view contain (at any tree node, root included) a node of the given
    /// graph degree?
    pub fn contains_degree(&self, degree: u32) -> bool {
        crate::search::contains_degree_by(
            self,
            degree,
            Self::node_id,
            Self::node_degree,
            Self::node_children,
        )
    }

    /// The port sequence (outgoing ports only) of the lexicographically smallest
    /// shortest root-to-node path reaching a tree node of the given degree, or `None`
    /// if no such node exists. Breadth-first in port order; paths are reconstructed
    /// through parent links, so only the returned path is allocated.
    pub fn shortest_path_to_degree(&self, degree: u32) -> Option<Vec<Port>> {
        crate::search::shortest_path_to_degree_by(
            self,
            degree,
            Self::node_id,
            Self::node_degree,
            Self::node_children,
        )
    }

    /// Convert to the owned tree form (deep copy; `O(size)`).
    pub fn to_tree(&self) -> ViewTree {
        ViewTree {
            degree: self.node.degree,
            children: self
                .node
                .children
                .iter()
                .map(|(p, q, c)| (*p, *q, c.to_tree()))
                .collect(),
        }
    }

    /// Convert from the owned tree form (no interning: the result shares nothing, but
    /// compares and hashes like any other handle). Use
    /// [`ViewInterner::intern_tree`] to also collapse repeated subtrees.
    pub fn from_tree(tree: &ViewTree) -> View {
        View::from_parts(
            tree.degree,
            tree.children
                .iter()
                .map(|(p, q, c)| (*p, *q, View::from_tree(c)))
                .collect(),
        )
    }
}

impl PartialEq for View {
    fn eq(&self, other: &Self) -> bool {
        // `HashSet::new` does not allocate, so the fast paths below stay free.
        let mut equal_pairs: HashSet<(usize, usize)> = HashSet::new();
        eq_memo(self, other, &mut equal_pairs)
    }
}

/// Structural equality with the same pair memoization as [`View::lex_cmp`]: pointer
/// equality and the hash/size/height/degree guards give `O(1)` answers for shared or
/// unequal nodes, and each distinct (left, right) node pair is verified at most once
/// per call — so equal-but-unshared deep views (built by different interners or
/// collector runs) compare in the product of their distinct node counts, not the
/// unfolded walk tree.
fn eq_memo(a: &View, b: &View, equal_pairs: &mut HashSet<(usize, usize)>) -> bool {
    if Arc::ptr_eq(&a.node, &b.node) {
        return true;
    }
    let (na, nb) = (&*a.node, &*b.node);
    if na.hash != nb.hash
        || na.size != nb.size
        || na.height != nb.height
        || na.degree != nb.degree
        || na.children.len() != nb.children.len()
    {
        return false;
    }
    let key = (Arc::as_ptr(&a.node) as usize, Arc::as_ptr(&b.node) as usize);
    if equal_pairs.contains(&key) {
        return true;
    }
    let equal = na
        .children
        .iter()
        .zip(&nb.children)
        .all(|(x, y)| x.0 == y.0 && x.1 == y.1 && eq_memo(&x.2, &y.2, equal_pairs));
    if equal {
        equal_pairs.insert(key);
    }
    equal
}

impl Eq for View {}

impl std::hash::Hash for View {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.node.hash);
    }
}

impl PartialOrd for View {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for View {
    fn cmp(&self, other: &Self) -> Ordering {
        self.lex_cmp(other)
    }
}

impl std::fmt::Debug for View {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("View")
            .field("degree", &self.node.degree)
            .field("size", &self.node.size)
            .field("height", &self.node.height)
            .field("children", &self.node.children)
            .finish()
    }
}

/// Structural identity of an interned node: its degree and, per child, the ports and
/// the *canonical child pointer*. Valid as a key because the interner (a) only ever
/// files nodes whose children are already canonical and (b) keeps every canonical
/// node alive for its own lifetime, so the addresses are stable and unique.
#[derive(PartialEq, Eq, Hash)]
struct NodeKey {
    degree: u32,
    children: Vec<(Port, Port, usize)>,
}

fn node_key(degree: u32, children: &[(Port, Port, View)]) -> NodeKey {
    NodeKey {
        degree,
        children: children
            .iter()
            .map(|(p, q, c)| (*p, *q, Arc::as_ptr(&c.node) as usize))
            .collect(),
    }
}

/// A hash-consing interner: structurally equal subtrees map to one canonical
/// representative, so equality between interned views is pointer equality and the
/// memory held is one node per *distinct* subtree (per view class × depth, once
/// refinement-equal nodes collapse — on symmetric graphs that is `O(h)` nodes total
/// for the whole graph).
///
/// The interner retains every canonical node it ever created, plus a handle to every
/// foreign node it has canonicalized (that is what keeps the pointer-based keys
/// stable and valid); drop it to release them — handles already given out keep their
/// subtrees alive independently.
#[derive(Default)]
pub struct ViewInterner {
    nodes: HashMap<NodeKey, View>,
    /// Memo of already-canonicalized foreign nodes: foreign address → (keepalive of
    /// the foreign node, its canonical representative). The keepalive pins the
    /// address, so it cannot be recycled for a different node while the entry lives;
    /// persisting the memo across [`ViewInterner::intern`] calls means a subtree
    /// shared by many inputs (e.g. across all of a run's collected views) is walked
    /// once, not once per call.
    foreign: HashMap<usize, (View, View)>,
}

impl ViewInterner {
    /// An empty interner.
    pub fn new() -> Self {
        ViewInterner::default()
    }

    /// Number of distinct subtrees interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Has nothing been interned yet?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The canonical leaf of the given degree.
    pub fn leaf(&mut self, degree: u32) -> View {
        self.node(degree, Vec::new())
    }

    /// The canonical node with the given degree and children. The children must be
    /// canonical handles from *this* interner (as produced by [`ViewInterner::leaf`],
    /// [`ViewInterner::node`], [`ViewInterner::intern`] or
    /// [`ViewInterner::build_all`]); handing in foreign handles files them as new
    /// structure, which forfeits sharing but never affects equality semantics.
    ///
    /// The sharded [`crate::SharedViewInterner`] relaxes the "this interner"
    /// requirement across its own shards: children canonical in *any* shard are
    /// valid here, because each structure has exactly one canonical node overall
    /// (its hash routes it to exactly one shard) and every shard keeps its canonical
    /// nodes alive, so the pointer-based `NodeKey` stays stable and unique.
    pub fn node(&mut self, degree: u32, children: Vec<(Port, Port, View)>) -> View {
        self.node_interned(degree, children).0
    }

    /// [`node`](ViewInterner::node), also reporting whether the canonical node
    /// already existed (`true` = hit, i.e. the structure was deduplicated against
    /// earlier work). This is what the sharded shared interner's hit-rate metric
    /// counts.
    pub fn node_interned(
        &mut self,
        degree: u32,
        children: Vec<(Port, Port, View)>,
    ) -> (View, bool) {
        let mut hit = true;
        let view = self
            .nodes
            .entry(node_key(degree, &children))
            .or_insert_with(|| {
                hit = false;
                View::from_parts(degree, children)
            })
            .clone();
        (view, hit)
    }

    /// Canonicalize an arbitrary view: returns the representative that is pointer-equal
    /// for every structurally equal view interned here. Each distinct foreign node is
    /// walked once over the interner's lifetime (the memo persists across calls and
    /// retains the foreign handles it has seen), so canonicalizing a whole run's
    /// collected views — which share most of their subtrees — costs the total number
    /// of *distinct* nodes, not `Δ^h` path counts and not a re-walk per call.
    pub fn intern(&mut self, view: &View) -> View {
        let ptr = Arc::as_ptr(&view.node) as usize;
        if let Some((_, canonical)) = self.foreign.get(&ptr) {
            return canonical.clone();
        }
        let children = view
            .node
            .children
            .iter()
            .map(|(p, q, c)| (*p, *q, self.intern(c)))
            .collect();
        let canonical = self.node(view.node.degree, children);
        self.foreign.insert(ptr, (view.clone(), canonical.clone()));
        canonical
    }

    /// Canonicalize an owned [`ViewTree`].
    pub fn intern_tree(&mut self, tree: &ViewTree) -> View {
        let children = tree
            .children
            .iter()
            .map(|(p, q, c)| (*p, *q, self.intern_tree(c)))
            .collect();
        self.node(tree.degree, children)
    }

    /// Build `B^depth(v)` for **every** node `v` of `g`, maximally shared: level `d`
    /// grafts the level-`d − 1` handles of the neighbours, so the whole construction
    /// performs `O(n · depth · Δ)` handle operations and the interner holds one node
    /// per distinct subtree. Returns the views indexed by node.
    pub fn build_all(&mut self, g: &PortGraph, depth: usize) -> Vec<View> {
        let mut level: Vec<View> = g.nodes().map(|v| self.leaf(g.degree(v) as u32)).collect();
        for _ in 0..depth {
            level = g
                .nodes()
                .map(|v| {
                    let children = g
                        .ports(v)
                        .map(|(p, u, q)| (p, q, level[u as usize].clone()))
                        .collect();
                    self.node(g.degree(v) as u32, children)
                })
                .collect();
        }
        level
    }
}

impl std::fmt::Debug for ViewInterner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ViewInterner")
            .field("distinct_subtrees", &self.nodes.len())
            .finish()
    }
}

// Compile-time enforcement of the thread-safety invariants the sharded
// `SharedViewInterner` builds on (see the module docs): handles are freely shareable
// across threads, and a whole interner can be owned by (moved into) another thread —
// e.g. behind one shard's mutex. If a future change smuggles in a non-`Send` field
// (an `Rc`, a raw pointer without a wrapper), these stop compiling.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<View>();
    assert_send::<ViewInterner>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use anet_graph::generators;

    #[test]
    fn build_agrees_with_owned_build_everywhere() {
        let g = generators::random_connected(18, 4, 6, 11).unwrap();
        for depth in 0..=4usize {
            let mut interner = ViewInterner::new();
            let views = interner.build_all(&g, depth);
            for v in g.nodes() {
                let owned = ViewTree::build(&g, v, depth);
                let view = &views[v as usize];
                assert_eq!(view.to_tree(), owned, "node {v} depth {depth}");
                assert_eq!(view.tokens(), owned.tokens(), "node {v} depth {depth}");
                assert_eq!(view.size(), owned.size());
                assert_eq!(view.height(), owned.height());
                assert_eq!(view.max_port(), owned.max_port());
                assert_eq!(view.max_degree(), owned.max_degree());
            }
        }
    }

    #[test]
    fn interned_equality_is_pointer_equality() {
        // On the symmetric ring every node has the same view at every depth, so all
        // handles from one interner must be the same object.
        let g = generators::symmetric_ring(6).unwrap();
        let mut interner = ViewInterner::new();
        let views = interner.build_all(&g, 4);
        for w in views.windows(2) {
            assert!(View::ptr_eq(&w[0], &w[1]));
        }
        // One distinct subtree per depth 0..=4.
        assert_eq!(interner.len(), 5);
    }

    #[test]
    fn interner_collapses_equal_foreign_views() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        let mut interner = ViewInterner::new();
        for v in g.nodes() {
            let foreign = View::from_tree(&ViewTree::build(&g, v, 3));
            let a = interner.intern(&foreign);
            let b = interner.intern(&foreign);
            assert!(View::ptr_eq(&a, &b));
            assert_eq!(a, foreign, "canonicalization preserves structure");
        }
        // Equal subtrees from different nodes collapse: interning again changes nothing.
        let before = interner.len();
        for v in g.nodes() {
            interner.intern(&View::from_tree(&ViewTree::build(&g, v, 3)));
        }
        assert_eq!(interner.len(), before);
    }

    #[test]
    fn lex_cmp_matches_token_order() {
        let g = generators::random_connected(15, 4, 5, 3).unwrap();
        let mut interner = ViewInterner::new();
        let views = interner.build_all(&g, 3);
        for a in &views {
            for b in &views {
                assert_eq!(
                    a.lex_cmp(b),
                    a.tokens().cmp(&b.tokens()),
                    "lex_cmp must realise the canonical token order"
                );
                assert_eq!(a == b, a.tokens() == b.tokens());
            }
        }
    }

    #[test]
    fn truncation_matches_owned_truncation_and_shares_beyond_height() {
        let g = generators::random_connected(20, 4, 6, 11).unwrap();
        let view = View::build(&g, 5, 4);
        for h in 0..=4usize {
            assert_eq!(view.truncated(h).to_tree(), view.to_tree().truncated(h));
        }
        assert!(View::ptr_eq(&view.truncated(4), &view));
        assert!(View::ptr_eq(&view.truncated(9), &view));
    }

    #[test]
    fn truncation_of_shared_views_is_linear_in_distinct_nodes() {
        // B^60 of the symmetric ring unfolds to 2^61 − 1 walk-tree nodes but is 61
        // distinct shared nodes; truncating to depth 50 must touch only the distinct
        // nodes (exponential recursion would hang here) and keep the result shared.
        let g = generators::symmetric_ring(5).unwrap();
        let deep = ViewInterner::new().build_all(&g, 60).swap_remove(0);
        let t = deep.truncated(50);
        assert_eq!(t.height(), 50);
        assert_eq!(t.size(), (1usize << 51) - 1);
        // Both children of the rebuilt root are one object, as in the input.
        assert!(View::ptr_eq(&t.children()[0].2, &t.children()[1].2));
        // The degree searches dedup on shared nodes too: an exhaustive (absent-degree)
        // search over the 2^61-node unfolded tree must visit its 61 distinct nodes.
        assert_eq!(deep.shortest_path_to_degree(99), None);
        assert!(!deep.contains_degree(99));
        assert_eq!(deep.max_degree(), 2);
        assert_eq!(deep.max_port(), Some(1));
    }

    #[test]
    fn equality_of_unshared_deep_views_is_pair_memoized() {
        // Two interners produce equal views that share no Arcs with each other; the
        // comparison must verify each (left, right) node pair once — exponential
        // unfolding would hang on these 2^61-node walk trees.
        let g = generators::symmetric_ring(5).unwrap();
        let a = ViewInterner::new().build_all(&g, 60).swap_remove(0);
        let b = ViewInterner::new().build_all(&g, 60).swap_remove(0);
        assert!(!View::ptr_eq(&a, &b));
        assert_eq!(a, b);
        assert_eq!(a.lex_cmp(&b), std::cmp::Ordering::Equal);
        // And a deep inequality is still decided (at the divergence, not by unfolding).
        let c = ViewInterner::new().build_all(&g, 59).swap_remove(0);
        assert_ne!(a, c);
        assert_ne!(a.lex_cmp(&c), std::cmp::Ordering::Equal);
    }

    #[test]
    fn intern_memo_persists_across_calls() {
        let g = generators::random_connected(14, 4, 5, 21).unwrap();
        let collected: Vec<View> = {
            // Simulate collector-style foreign views sharing subtrees across roots.
            let mut source = ViewInterner::new();
            source.build_all(&g, 3)
        };
        let mut interner = ViewInterner::new();
        let first: Vec<View> = collected.iter().map(|v| interner.intern(v)).collect();
        let walked = interner.len();
        // Re-interning is pure memo hits: no new canonical nodes, same handles.
        let second: Vec<View> = collected.iter().map(|v| interner.intern(v)).collect();
        assert_eq!(interner.len(), walked);
        for (x, y) in first.iter().zip(&second) {
            assert!(View::ptr_eq(x, y));
        }
    }

    #[test]
    fn shortest_path_to_degree_matches_owned() {
        let g = generators::star(3).unwrap();
        let view = View::build(&g, 2, 2);
        let owned = ViewTree::build(&g, 2, 2);
        for d in [1u32, 3, 9] {
            assert_eq!(
                view.shortest_path_to_degree(d),
                owned.shortest_path_to_degree(d)
            );
            assert_eq!(view.contains_degree(d), owned.contains_degree(d));
        }
        let g = generators::random_connected(16, 5, 6, 42).unwrap();
        for v in [0u32, 7, 15] {
            let view = View::build(&g, v, 3);
            let owned = ViewTree::build(&g, v, 3);
            for d in 0..=6u32 {
                assert_eq!(
                    view.shortest_path_to_degree(d),
                    owned.shortest_path_to_degree(d),
                    "node {v} degree {d}"
                );
            }
        }
    }

    #[test]
    fn from_parts_grafts_in_constant_work_per_child() {
        // The graft used by the full-information collector: degree + children.
        let left = View::leaf(1);
        let right = View::leaf(1);
        let centre = View::from_parts(2, vec![(0, 0, left.clone()), (1, 0, right.clone())]);
        assert_eq!(centre.size(), 3);
        assert_eq!(centre.height(), 1);
        // The children are shared, not copied.
        assert!(View::ptr_eq(&centre.children()[0].2, &left));
        assert!(View::ptr_eq(&centre.children()[1].2, &right));
    }

    #[test]
    fn hash_is_structural_across_sources() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        let interned = View::build(&g, 2, 3);
        let foreign = View::from_tree(&ViewTree::build(&g, 2, 3));
        assert_eq!(interned, foreign);
        assert_eq!(interned.structural_hash(), foreign.structural_hash());
        use std::collections::HashMap;
        let mut map: HashMap<View, u32> = HashMap::new();
        map.insert(interned, 7);
        assert_eq!(map.get(&foreign), Some(&7));
    }

    #[test]
    fn views_stay_alive_after_the_interner_is_dropped() {
        let g = generators::symmetric_ring(5).unwrap();
        let views = {
            let mut interner = ViewInterner::new();
            interner.build_all(&g, 3)
        };
        assert_eq!(views[0].size(), ViewTree::build(&g, 0, 3).size());
        assert_eq!(views[0], views[4]);
    }
}
