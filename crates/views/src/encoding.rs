//! Binary encoding of augmented truncated views.
//!
//! Theorem 2.2 of the paper gives an oracle whose advice is a single encoded view
//! `B^{ψ_S(G)}(u)`, using `O((Δ−1)^{ψ_S(G)} log Δ)` bits: the view has at most
//! `Δ·(Δ−1)^{ψ_S−1}` edges and the two port numbers of an edge take `O(log Δ)` bits.
//! This module provides exactly such an encoding, together with a decoder, so the
//! distributed Selection algorithm can recover the view (and in particular its height,
//! which tells every node how many rounds to run).
//!
//! ## Format
//!
//! * 6 bits: `w` — the field width used for every subsequent integer
//!   (`w = max(width(Δ), width(h))`, where `Δ` is the largest degree and `h` the height
//!   appearing in the view),
//! * `w` bits: the height `h` of the encoded view,
//! * then the tree in pre-order: for every tree node, its degree (`w` bits); for every
//!   non-leaf-level tree node additionally, for each of its `degree` children in port
//!   order, the far-end port `q` (`w` bits) followed by the child's encoding. The
//!   outgoing port `p` is *not* stored: children appear in port order, so `p` is
//!   implied — this saves a factor close to 2 and matches the paper's accounting of
//!   "each edge's two port numbers" (the implied one is free).
//!
//! The encoding length is therefore `6 + w·(1 + #tree nodes + #tree edges)`, i.e.
//! `O((Δ−1)^h log Δ)` as in the paper.
//!
//! This is the paper's *unfolded* accounting: repeated subtrees are written once per
//! occurrence. The sibling [`crate::dag_encoding`] module serialises the shared DAG
//! instead (one table entry per *distinct* subtree), which collapses symmetric views
//! from `Θ(Δ^h)` to `O(h)` encoded nodes; [`ViewCodec`] names the two formats so
//! advice-producing code can choose per run.

use crate::bits::{BitReader, BitString};
use crate::interned::View;
use crate::view_tree::ViewTree;

/// Errors produced while decoding an encoded view — by this module's tree codec or
/// by the shared-DAG codec in [`crate::dag_encoding`] (the DAG-specific conditions
/// only arise there).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The bit string ended before the view was complete (also reported for a
    /// malformed varint in the DAG format).
    Truncated,
    /// The header declared an invalid field width.
    BadWidth,
    /// DAG format: the node table is empty (a view always has a root).
    EmptyTable,
    /// DAG format: a child or root id does not reference an *earlier* table entry.
    /// Child ids must point strictly backwards (children precede parents in the
    /// topological table order), so any forward or out-of-range id — the bit patterns
    /// that would smuggle in a cycle — is rejected with this error.
    BadNodeId {
        /// The offending id.
        id: usize,
        /// Number of table entries legally referenceable at that point.
        limit: usize,
    },
    /// DAG format: a table entry is structurally identical to an earlier one. The
    /// encoder hash-conses before writing, so canonical encodings never contain
    /// duplicates; rejecting them keeps "distinct views ⇔ distinct encodings".
    DuplicateNode {
        /// Index of the duplicate entry.
        index: usize,
    },
    /// A degree or far-port field exceeds the `u32` domain of port graphs. Wide
    /// field widths are legal (the height field can need them), but no encoder can
    /// emit a degree or port above `u32::MAX`, so the value is forged rather than
    /// silently truncated.
    ValueTooLarge,
    /// Delta format: the encoding references a base view the decoder does not hold —
    /// either no base was supplied although the string declares one, or the supplied
    /// base disagrees with the declared base fingerprint / table size. (Best-effort:
    /// the fingerprint is 16 bits, so a colliding wrong base may instead surface as
    /// [`DecodeError::BadNodeId`] / [`DecodeError::DuplicateNode`] or as a decoded
    /// view that fails downstream equality — never as memory unsafety.)
    BaseMismatch,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "bit string too short for the declared view"),
            DecodeError::BadWidth => write!(f, "invalid field width in view encoding header"),
            DecodeError::EmptyTable => write!(f, "DAG node table is empty"),
            DecodeError::BadNodeId { id, limit } => {
                write!(f, "node id {id} out of range (must be < {limit})")
            }
            DecodeError::DuplicateNode { index } => {
                write!(f, "table entry {index} duplicates an earlier node")
            }
            DecodeError::ValueTooLarge => {
                write!(f, "degree or port field exceeds the u32 value domain")
            }
            DecodeError::BaseMismatch => {
                write!(
                    f,
                    "delta encoding references a base view the decoder does not hold"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Which binary form a view is shipped in. Both are lossless and self-delimiting;
/// they differ only in what they charge for repeated subtrees.
///
/// * [`ViewCodec::Tree`] — the pre-order unfolded-tree format of this module
///   (the original Theorem 2.2 accounting: `O((Δ−1)^h log Δ)` bits).
/// * [`ViewCodec::Dag`] — the hash-consed shared-DAG format of
///   [`crate::dag_encoding`]: `O(distinct subtrees)` table entries, so symmetric
///   views collapse from exponential to linear in the height.
///
/// The two formats are **not** self-describing relative to each other (a DAG
/// bit string may also parse as some tree encoding), so encoder and decoder must
/// agree on the codec out of band — exactly like the height parameter.
///
/// ```
/// use anet_views::{encoding::ViewCodec, View};
/// let g = anet_graph::generators::symmetric_ring(6).unwrap();
/// let view = View::build(&g, 0, 8);
/// let tree = ViewCodec::Tree.encode(&view, 8);
/// let dag = ViewCodec::Dag.encode(&view, 8);
/// assert!(dag.len() < tree.len()); // the ring's views share everything
/// for codec in [ViewCodec::Tree, ViewCodec::Dag] {
///     let (decoded, h) = codec.decode(&codec.encode(&view, 8)).unwrap();
///     assert_eq!((decoded, h), (view.clone(), 8));
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ViewCodec {
    /// The unfolded pre-order tree format ([`encode_view_interned`]).
    #[default]
    Tree,
    /// The hash-consed shared-DAG format ([`crate::dag_encoding::encode_view_dag`]).
    Dag,
}

impl ViewCodec {
    /// Encode `view` at truncation depth `height` in this format.
    pub fn encode(self, view: &View, height: usize) -> BitString {
        match self {
            ViewCodec::Tree => encode_view_interned(view, height),
            ViewCodec::Dag => crate::dag_encoding::encode_view_dag(view, height),
        }
    }

    /// Decode a view previously produced by [`ViewCodec::encode`] with the same
    /// codec; returns the view and its height.
    pub fn decode(self, bits: &BitString) -> Result<(View, usize), DecodeError> {
        match self {
            ViewCodec::Tree => decode_view_interned(bits),
            ViewCodec::Dag => crate::dag_encoding::decode_view_dag(bits),
        }
    }

    /// Short label used in solver names and JSON artifacts (`tree` / `dag`).
    pub fn label(self) -> &'static str {
        match self {
            ViewCodec::Tree => "tree",
            ViewCodec::Dag => "dag",
        }
    }
}

impl std::fmt::Display for ViewCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Encode an augmented truncated view of the given height into a [`BitString`].
///
/// `height` must be the truncation depth the view was built with (it cannot always be
/// recovered from the tree itself: a view that happens to hit only degree-1 nodes stops
/// branching early).
pub fn encode_view(view: &ViewTree, height: usize) -> BitString {
    encode_view_interned(&View::from_tree(view), height)
}

/// Decode a view previously produced by [`encode_view`]; returns the view and its
/// height.
pub fn decode_view(bits: &BitString) -> Result<(ViewTree, usize), DecodeError> {
    decode_view_interned(bits).map(|(view, height)| (view.to_tree(), height))
}

/// Number of advice bits used to encode the given view at the given height — a
/// convenience for experiments that only need the size.
pub fn encoded_size_bits(view: &ViewTree, height: usize) -> usize {
    encode_view(view, height).len()
}

/// The exact length [`encode_view_interned`] would produce, computed in closed form
/// (`6 + w · (1 + #tree nodes + #tree edges)` = `6 + 2·w·size`) from the handle's
/// precomputed metadata — `O(distinct nodes)` for the width scan, without
/// materialising the exponential unfolded encoding. This is how DAG-codec advice
/// runs report their tree-bits counterpart (saturating: a view whose unfolded size
/// saturates [`View::size`] could not be materialised by the tree codec either).
pub fn tree_encoded_size_bits(view: &View, height: usize) -> usize {
    let max_val = u64::from(view.max_degree())
        .max(view.max_port().map(u64::from).unwrap_or(0))
        .max(height as u64);
    let w = BitString::width_for(max_val);
    6 + 2usize.saturating_mul(w).saturating_mul(view.size())
}

/// [`encode_view`] for a shared [`View`] handle. This is the single implementation
/// of the bit format (the owned entry points delegate through the lossless
/// `View ↔ ViewTree` conversions, so the two forms cannot diverge); note the output
/// is the *unfolded* tree either way — for a format that charges per distinct
/// subtree instead, use [`crate::dag_encoding::encode_view_dag`].
pub fn encode_view_interned(view: &View, height: usize) -> BitString {
    let max_val = u64::from(view.max_degree())
        .max(view.max_port().map(u64::from).unwrap_or(0))
        .max(height as u64);
    let w = BitString::width_for(max_val);
    assert!(w <= 63, "view values too large to encode");
    let mut bits = BitString::new();
    bits.push_uint(w as u64, 6);
    bits.push_uint(height as u64, w);
    encode_interned_node(view, height, w, &mut bits);
    bits
}

fn encode_interned_node(node: &View, remaining: usize, w: usize, bits: &mut BitString) {
    bits.push_uint(u64::from(node.degree()), w);
    if remaining == 0 {
        return;
    }
    debug_assert_eq!(
        node.children().len(),
        node.degree() as usize,
        "non-leaf view nodes have one child per port"
    );
    for (_, q, child) in node.children() {
        bits.push_uint(u64::from(*q), w);
        encode_interned_node(child, remaining - 1, w, bits);
    }
}

/// [`decode_view`] producing a shared [`View`] handle (unshared internally — run it
/// through [`crate::ViewInterner::intern`] to collapse repeated subtrees).
pub fn decode_view_interned(bits: &BitString) -> Result<(View, usize), DecodeError> {
    let mut r = bits.reader();
    let w = r.read_uint(6).ok_or(DecodeError::Truncated)? as usize;
    if w == 0 || w > 63 {
        return Err(DecodeError::BadWidth);
    }
    let height = r.read_uint(w).ok_or(DecodeError::Truncated)? as usize;
    let view = decode_interned_node(&mut r, height, w)?;
    Ok((view, height))
}

/// Read a `w`-bit degree or far-port field, rejecting values outside the `u32`
/// domain of port graphs instead of silently truncating them (shared by the tree
/// and DAG decoders).
pub(crate) fn read_u32_field(r: &mut BitReader<'_>, w: usize) -> Result<u32, DecodeError> {
    let raw = r.read_uint(w).ok_or(DecodeError::Truncated)?;
    u32::try_from(raw).map_err(|_| DecodeError::ValueTooLarge)
}

fn decode_interned_node(
    r: &mut BitReader<'_>,
    remaining: usize,
    w: usize,
) -> Result<View, DecodeError> {
    let degree = read_u32_field(r, w)?;
    // No `reserve(degree)`: the declared degree is attacker-controlled and may be
    // astronomically larger than the bits backing it (same hardening as the DAG
    // decoder) — the Vec grows as children are actually read.
    let mut children = Vec::new();
    if remaining > 0 {
        for p in 0..degree {
            let q = read_u32_field(r, w)?;
            let child = decode_interned_node(r, remaining - 1, w)?;
            children.push((p, q, child));
        }
    }
    Ok(View::from_parts(degree, children))
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_graph::generators;

    #[test]
    fn round_trip_on_line_views() {
        let g = generators::paper_three_node_line();
        for v in g.nodes() {
            for h in 0..=3usize {
                let view = ViewTree::build(&g, v, h);
                let bits = encode_view(&view, h);
                let (decoded, dh) = decode_view(&bits).unwrap();
                assert_eq!(dh, h);
                assert_eq!(decoded, view);
            }
        }
    }

    #[test]
    fn round_trip_on_random_graphs() {
        for seed in 0..5u64 {
            let g = generators::random_connected(18, 5, 7, seed).unwrap();
            for v in [0u32, 7, 17] {
                for h in 0..=3usize {
                    let view = ViewTree::build(&g, v, h);
                    let bits = encode_view(&view, h);
                    let (decoded, dh) = decode_view(&bits).unwrap();
                    assert_eq!((decoded, dh), (view, h));
                }
            }
        }
    }

    #[test]
    fn encoding_size_is_within_paper_bound() {
        // Theorem 2.2: O((Δ−1)^h log Δ) bits. We check against the explicit count
        // (1 + nodes + edges)·⌈log₂(Δ+1)⌉ + 6 with a small constant slack.
        let (g, root) = generators::full_tree(4, 3).unwrap();
        let delta = g.max_degree() as u64;
        for h in 1..=3usize {
            let view = ViewTree::build(&g, root, h);
            let bits = encode_view(&view, h);
            let w = BitString::width_for(delta.max(h as u64));
            let exact = 6 + w * (1 + view.size() + view.num_edges());
            assert_eq!(bits.len(), exact);
            let asymptotic = 4 * (delta as usize) * (delta as usize - 1).pow(h as u32 - 1) * w;
            assert!(bits.len() <= asymptotic + 6 + w);
        }
    }

    #[test]
    fn truncated_bitstring_reports_error() {
        let g = generators::star(3).unwrap();
        let view = ViewTree::build(&g, 0, 2);
        let bits = encode_view(&view, 2);
        let short =
            BitString::from_binary_string(&bits.to_binary_string()[..bits.len() - 5]).unwrap();
        assert_eq!(decode_view(&short), Err(DecodeError::Truncated));
    }

    #[test]
    fn empty_bitstring_is_truncated() {
        assert_eq!(decode_view(&BitString::new()), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_width_detected() {
        let mut bits = BitString::new();
        bits.push_uint(0, 6); // width 0 is invalid
        bits.push_uint(0, 8);
        assert_eq!(decode_view(&bits), Err(DecodeError::BadWidth));
    }

    #[test]
    fn degree_fields_beyond_u32_are_rejected_not_truncated() {
        let mut bits = BitString::new();
        bits.push_uint(33, 6); // w = 33 (legal: the height field may need it)
        bits.push_uint(1, 33); // height 1
        bits.push_uint(1u64 << 32, 33); // root degree 2^32: outside the u32 domain
        assert_eq!(decode_view(&bits), Err(DecodeError::ValueTooLarge));
    }

    #[test]
    fn huge_declared_degree_fails_without_allocating() {
        // w = 32, height 1, root degree u32::MAX, no bits behind it: the decoder
        // must hit Truncated while reading children, never pre-allocate ~4G slots.
        let mut bits = BitString::new();
        bits.push_uint(32, 6);
        bits.push_uint(1, 32);
        bits.push_uint(u64::from(u32::MAX), 32);
        assert_eq!(decode_view(&bits), Err(DecodeError::Truncated));
    }

    #[test]
    fn distinct_views_have_distinct_encodings() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        let views: Vec<_> = g.nodes().map(|v| ViewTree::build(&g, v, 3)).collect();
        let encs: Vec<_> = views.iter().map(|v| encode_view(v, 3)).collect();
        for i in 0..views.len() {
            for j in 0..views.len() {
                assert_eq!(views[i] == views[j], encs[i] == encs[j]);
            }
        }
    }

    #[test]
    fn size_helper_matches_encoding() {
        let g = generators::star(4).unwrap();
        let view = ViewTree::build(&g, 0, 2);
        assert_eq!(encoded_size_bits(&view, 2), encode_view(&view, 2).len());
    }

    #[test]
    fn closed_form_size_matches_the_materialised_encoding() {
        for seed in 0..4u64 {
            let g = generators::random_connected(15, 5, 6, seed).unwrap();
            for v in [0u32, 7, 14] {
                for h in 0..=3usize {
                    let view = View::build(&g, v, h);
                    assert_eq!(
                        tree_encoded_size_bits(&view, h),
                        encode_view_interned(&view, h).len(),
                        "node {v} depth {h}"
                    );
                }
            }
        }
        // And it stays O(distinct nodes) on views whose unfolded encoding could
        // never be materialised: B^50 of the symmetric ring is 2^51 − 1 tree nodes.
        let ring = generators::symmetric_ring(5).unwrap();
        let deep = crate::ViewInterner::new()
            .build_all(&ring, 50)
            .swap_remove(0);
        let w = BitString::width_for(50);
        assert_eq!(
            tree_encoded_size_bits(&deep, 50),
            6 + 2 * w * ((1usize << 51) - 1)
        );
    }

    #[test]
    fn interned_encoding_is_bit_identical_to_owned() {
        for seed in 0..4u64 {
            let g = generators::random_connected(14, 5, 6, seed).unwrap();
            for v in [0u32, 5, 13] {
                for h in 0..=3usize {
                    let owned = ViewTree::build(&g, v, h);
                    let shared = View::build(&g, v, h);
                    let owned_bits = encode_view(&owned, h);
                    assert_eq!(encode_view_interned(&shared, h), owned_bits);
                    let (decoded, dh) = decode_view_interned(&owned_bits).unwrap();
                    assert_eq!(dh, h);
                    assert_eq!(decoded, shared);
                    assert_eq!(decoded.to_tree(), owned);
                }
            }
        }
    }
}
