//! A concurrent, sharded hash-consing interner: one canonical DAG shared by many
//! threads (and, in the multi-tenant election service, by many tenants).
//!
//! [`crate::ViewInterner`] is single-threaded by construction (`&mut self`
//! everywhere). [`SharedViewInterner`] scales it out with **lock striping**: the
//! canonical node table is split across `S` shards, each an ordinary `ViewInterner`
//! behind its own `Mutex`, and a node is filed in the shard selected by its
//! structural hash. Filing a node therefore takes exactly one short-lived shard
//! lock; threads interning *different* structures almost always hit different
//! shards and proceed without contention, while threads interning the *same*
//! structure serialise on one shard and resolve to the same `Arc` node — which is
//! precisely the cross-tenant dedup the election service wants: isomorphic subtrees
//! from different requests become one shared node.
//!
//! Why cross-shard structures stay canonical: a node's children are canonicalized
//! (bottom-up) before the node itself, each child lives in the single shard its own
//! hash selects, and every shard keeps its canonical nodes alive — so the
//! pointer-based node keys (invariant 2 of the [`crate::interned`] thread-safety
//! contract) are stable and globally unique even though parent and child may live
//! in different shards. No operation ever holds two shard locks at once, so the
//! striping cannot deadlock.
//!
//! The interner counts hits and misses ([`SharedViewInterner::stats`]): a *hit* is
//! a filed structure that already had a canonical node — on a multi-tenant mix this
//! is the measured "how much work did tenants share" axis reported in
//! `BENCH_service_*.json`.
//!
//! ```
//! use anet_views::SharedViewInterner;
//! use anet_views::View;
//! use std::thread;
//!
//! // Two threads intern the views of the same symmetric ring concurrently; every
//! // equal view resolves to the same shared node.
//! let g = anet_graph::generators::symmetric_ring(6).unwrap();
//! let interner = SharedViewInterner::new();
//! let (a, b) = thread::scope(|s| {
//!     let ta = s.spawn(|| interner.build_all(&g, 3).swap_remove(0));
//!     let tb = s.spawn(|| interner.build_all(&g, 3).swap_remove(0));
//!     (ta.join().unwrap(), tb.join().unwrap())
//! });
//! assert!(View::ptr_eq(&a, &b));
//! assert!(interner.stats().hits > 0);
//! ```

// anet-lint: deny(lock-order)
// anet-lint: deny(panic-path)

use crate::interned::node_hash;
use crate::view_tree::ViewTree;
use crate::{View, ViewInterner};
use anet_graph::{NodeId, Port, PortGraph};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};
use std::time::Duration;

/// Acquire `mutex`, treating a poisoned lock as fatal.
///
/// This is the workspace's **single** audited poisoned-lock decision point: a
/// poisoned mutex means another thread panicked while holding the guard, so the
/// protected data (an interner shard, a scheduler deque) may be mid-mutation and
/// no recovery story exists — continuing would silently corrupt canonical DAG
/// identities or drop queued jobs. Every other call site goes through this
/// helper instead of repeating `lock().expect(…)`, so the panic-path lint can
/// hold the rest of the tree to "no unwrap/expect" while this one site stays
/// deliberately, visibly panicking.
pub fn lock_or_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // anet-lint: allow(panic-path) — the one audited poisoned-lock panic; see above.
    mutex
        .lock()
        .expect("mutex poisoned: a thread panicked while holding this lock")
}

/// [`Condvar::wait_timeout`] with the same poisoned-lock policy as
/// [`lock_or_poison`]: a poisoned wait means a peer panicked while holding the
/// mutex this condvar guards, and the condition state is unrecoverable.
pub fn wait_timeout_or_poison<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    // anet-lint: allow(panic-path) — same audited poisoned-lock policy as lock_or_poison.
    condvar
        .wait_timeout(guard, timeout)
        .expect("mutex poisoned during condvar wait")
}

/// Counters of a [`SharedViewInterner`]: how much structure was deduplicated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InternerStats {
    /// Filed structures that already had a canonical node (work shared).
    pub hits: u64,
    /// Filed structures that created a new canonical node (work done once).
    pub misses: u64,
    /// Distinct subtrees currently held across all shards (= total misses).
    pub distinct_subtrees: usize,
}

impl InternerStats {
    /// Fraction of filings that were deduplicated, in `[0, 1]` (`0.0` before any
    /// filing).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A concurrent hash-consing interner: `S` lock-striped shards of
/// [`ViewInterner`], routed by structural hash. Structurally equal views interned
/// through one `SharedViewInterner` — from any thread, any tenant, any graph —
/// resolve to the same `Arc` node.
///
/// All methods take `&self`; the type is `Send + Sync` and is meant to be shared
/// behind an `Arc` (the election service hands one to every worker).
pub struct SharedViewInterner {
    /// Power-of-two shard array; a node lives in `shards[hash & (len - 1)]`.
    shards: Box<[Mutex<ViewInterner>]>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for SharedViewInterner {
    fn default() -> Self {
        SharedViewInterner::new()
    }
}

/// Default shard count: enough stripes that a worker pool on any current machine
/// rarely collides on unrelated structures, small enough to stay cache-friendly.
const DEFAULT_SHARDS: usize = 64;

impl SharedViewInterner {
    /// A shared interner with the default shard count.
    pub fn new() -> Self {
        SharedViewInterner::with_shards(DEFAULT_SHARDS)
    }

    /// A shared interner with at least `shards` stripes (rounded up to a power of
    /// two, minimum 1). Shard count affects contention only, never results: the
    /// canonical DAG and all hashes are identical for any shard count.
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        SharedViewInterner {
            shards: (0..n).map(|_| Mutex::new(ViewInterner::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Number of shards (always a power of two).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a node with this structural hash lives in. The hash is already a
    /// SplitMix64-mixed value, so the low bits are well distributed.
    fn shard(&self, hash: u64) -> &Mutex<ViewInterner> {
        &self.shards[(hash as usize) & (self.shards.len() - 1)]
    }

    /// File the canonical node for `(degree, children)`; the children must already
    /// be canonical handles from this shared interner. One shard lock, held only
    /// for the table lookup/insert.
    pub fn node(&self, degree: u32, children: Vec<(Port, Port, View)>) -> View {
        let hash = node_hash(degree, &children);
        let (view, hit) = lock_or_poison(self.shard(hash)).node_interned(degree, children);
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        view
    }

    /// The canonical leaf of the given degree.
    pub fn leaf(&self, degree: u32) -> View {
        self.node(degree, Vec::new())
    }

    /// Canonicalize an arbitrary view bottom-up: returns the representative that is
    /// pointer-equal for every structurally equal view interned here, from any
    /// thread. Each distinct node of `view`'s DAG is walked once per call (shared
    /// subtrees are resolved through a per-call memo); for repeated interning of
    /// views that share structure across calls, hold an [`InternerHandle`], whose
    /// memo persists.
    pub fn intern(&self, view: &View) -> View {
        let mut memo: HashMap<usize, View> = HashMap::new();
        self.intern_memo(view, &mut memo)
    }

    /// [`intern`](SharedViewInterner::intern) against a caller-owned memo mapping
    /// foreign node address → canonical handle. The caller must keep every memoized
    /// foreign view alive for as long as it uses the memo (an [`InternerHandle`]
    /// does, by retaining the foreign handles alongside).
    fn intern_memo(&self, view: &View, memo: &mut HashMap<usize, View>) -> View {
        if let Some(done) = memo.get(&view.node_id()) {
            return done.clone();
        }
        let children = view
            .children()
            .iter()
            .map(|(p, q, c)| (*p, *q, self.intern_memo(c, memo)))
            .collect();
        let canonical = self.node(view.degree(), children);
        memo.insert(view.node_id(), canonical.clone());
        canonical
    }

    /// Canonicalize an owned [`ViewTree`].
    pub fn intern_tree(&self, tree: &ViewTree) -> View {
        let children = tree
            .children
            .iter()
            .map(|(p, q, c)| (*p, *q, self.intern_tree(c)))
            .collect();
        self.node(tree.degree, children)
    }

    /// Build `B^depth(v)` for **every** node of `g` through the shared table —
    /// the concurrent analogue of [`ViewInterner::build_all`], with the same
    /// `O(n · depth · Δ)` handle-operation cost (each op now takes one shard lock).
    /// Views already built by other threads or for other graphs are reused, not
    /// rebuilt: this is where isomorphic subtrees across tenants collapse.
    pub fn build_all(&self, g: &PortGraph, depth: usize) -> Vec<View> {
        let mut level: Vec<View> = g.nodes().map(|v| self.leaf(g.degree(v) as u32)).collect();
        for _ in 0..depth {
            level = g
                .nodes()
                .map(|v| {
                    let children = g
                        .ports(v)
                        .map(|(p, u, q)| (p, q, level[u as usize].clone()))
                        .collect();
                    self.node(g.degree(v) as u32, children)
                })
                .collect();
        }
        level
    }

    /// Build `B^depth(v)` for one node (a fresh per-call construction over the
    /// shared table; for all nodes at once use
    /// [`build_all`](SharedViewInterner::build_all)).
    pub fn build(&self, g: &PortGraph, v: NodeId, depth: usize) -> View {
        self.build_all(g, depth).swap_remove(v as usize)
    }

    /// Distinct subtrees currently held, summed across shards. Takes every shard
    /// lock in turn (never two at once).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_or_poison(s).len()).sum()
    }

    /// Has nothing been interned yet?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters and current size. The counters are `Relaxed` atomics:
    /// exact totals once all writer threads are joined, a close approximation while
    /// they run.
    pub fn stats(&self) -> InternerStats {
        InternerStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            distinct_subtrees: self.len(),
        }
    }
}

impl std::fmt::Debug for SharedViewInterner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("SharedViewInterner")
            .field("shards", &self.shards.len())
            .field("distinct_subtrees", &stats.distinct_subtrees)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

// The whole point of the type: it is shareable across scoped worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SharedViewInterner>();
};

/// A uniform handle over "somewhere to intern views": either an owned, private
/// [`ViewInterner`] (the historical single-threaded path) or a borrowed
/// [`SharedViewInterner`] (the multi-tenant service path). Solvers that hash-cons
/// views take an `InternerHandle`, so the same algorithm code serves both worlds —
/// these are the "borrowed-interner entry points" of the engine facade.
///
/// In shared mode the handle layers a private memo (foreign node address →
/// canonical handle, with a keepalive of the foreign view) over the shared table,
/// restoring the cross-call memoization an owned `ViewInterner` gets from its
/// `foreign` map: a subtree shared by many interned views is resolved against the
/// shared table once per handle, not once per call.
pub enum InternerHandle<'a> {
    /// A private interner owned by this handle.
    Own(ViewInterner),
    /// A borrowed shared interner plus this handle's private cross-call memo.
    Shared {
        /// The shared table (typically service-owned, one per process).
        interner: &'a SharedViewInterner,
        /// foreign node address → (keepalive, canonical); private to this handle.
        memo: HashMap<usize, (View, View)>,
    },
}

impl<'a> InternerHandle<'a> {
    /// A handle over a fresh private interner.
    pub fn own() -> Self {
        InternerHandle::Own(ViewInterner::new())
    }

    /// A handle borrowing the shared interner.
    pub fn shared(interner: &'a SharedViewInterner) -> Self {
        InternerHandle::Shared {
            interner,
            memo: HashMap::new(),
        }
    }

    /// Build every node's `B^depth` through this handle's table (see
    /// [`ViewInterner::build_all`] / [`SharedViewInterner::build_all`]).
    pub fn build_all(&mut self, g: &PortGraph, depth: usize) -> Vec<View> {
        match self {
            InternerHandle::Own(interner) => interner.build_all(g, depth),
            InternerHandle::Shared { interner, .. } => interner.build_all(g, depth),
        }
    }

    /// Canonicalize an arbitrary view against this handle's table; repeated
    /// structure across calls is resolved through the handle's memo in both modes.
    pub fn intern(&mut self, view: &View) -> View {
        if let InternerHandle::Own(interner) = self {
            return interner.intern(view);
        }
        if let InternerHandle::Shared { memo, .. } = &*self {
            if let Some((_, canonical)) = memo.get(&view.node_id()) {
                return canonical.clone();
            }
        }
        let children: Vec<_> = view
            .children()
            .iter()
            .map(|(p, q, c)| (*p, *q, self.intern(c)))
            .collect();
        match self {
            InternerHandle::Shared { interner, memo } => {
                let canonical = interner.node(view.degree(), children);
                memo.insert(view.node_id(), (view.clone(), canonical.clone()));
                canonical
            }
            // anet-lint: allow(panic-path) — Own mode returned at the top of the fn.
            InternerHandle::Own(_) => unreachable!("mode cannot change mid-call"),
        }
    }
}

impl std::fmt::Debug for InternerHandle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InternerHandle::Own(i) => f.debug_tuple("InternerHandle::Own").field(i).finish(),
            InternerHandle::Shared { interner, memo } => f
                .debug_struct("InternerHandle::Shared")
                .field("interner", interner)
                .field("memoized", &memo.len())
                .finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_graph::generators;

    #[test]
    fn shared_interner_agrees_with_owned_interner() {
        let g = generators::random_connected(18, 4, 6, 11).unwrap();
        let shared = SharedViewInterner::new();
        let mut owned = ViewInterner::new();
        for depth in 0..=3usize {
            let a = shared.build_all(&g, depth);
            let b = owned.build_all(&g, depth);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x, y, "depth {depth}");
                assert_eq!(x.structural_hash(), y.structural_hash());
                assert_eq!(x.tokens(), y.tokens());
            }
        }
    }

    #[test]
    fn equal_structures_resolve_to_one_node_across_calls() {
        let g = generators::symmetric_ring(6).unwrap();
        let shared = SharedViewInterner::with_shards(4);
        let a = shared.build_all(&g, 4);
        let b = shared.build_all(&g, 4);
        assert!(View::ptr_eq(&a[0], &b[5]));
        // One distinct subtree per depth 0..=4, regardless of how often rebuilt.
        assert_eq!(shared.len(), 5);
        let stats = shared.stats();
        assert_eq!(stats.misses, 5);
        assert!(stats.hits > 0);
        assert!(stats.hit_rate() > 0.9, "{stats:?}");
    }

    #[test]
    fn shard_count_does_not_change_the_canonical_dag() {
        let g = generators::oriented_ring(&[true, true, false, true, false]).unwrap();
        for shards in [1usize, 2, 7, 64] {
            let shared = SharedViewInterner::with_shards(shards);
            assert!(shared.num_shards().is_power_of_two());
            let views = shared.build_all(&g, 3);
            let owned = ViewInterner::new().build_all(&g, 3);
            for (x, y) in views.iter().zip(&owned) {
                assert_eq!(x, y, "{shards} shards");
            }
            assert_eq!(shared.len(), shared.stats().misses as usize);
        }
    }

    #[test]
    fn intern_canonicalizes_foreign_views() {
        let g = generators::random_connected(14, 4, 5, 21).unwrap();
        let shared = SharedViewInterner::new();
        let built = shared.build_all(&g, 3);
        for v in g.nodes() {
            let foreign = View::from_tree(&ViewTree::build(&g, v, 3));
            let canonical = shared.intern(&foreign);
            assert!(View::ptr_eq(&canonical, &built[v as usize]), "node {v}");
        }
        let tree = ViewTree::build(&g, 0, 3);
        assert!(View::ptr_eq(&shared.intern_tree(&tree), &built[0]));
    }

    #[test]
    fn handle_memo_persists_across_calls_in_shared_mode() {
        let g = generators::random_connected(14, 4, 5, 21).unwrap();
        let source = ViewInterner::new().build_all(&g, 3);
        let shared = SharedViewInterner::new();
        let mut handle = InternerHandle::shared(&shared);
        let first: Vec<View> = source.iter().map(|v| handle.intern(v)).collect();
        let hits_before = shared.stats().hits;
        // Re-interning through the same handle is pure memo hits: the shared table
        // is not consulted again.
        let second: Vec<View> = source.iter().map(|v| handle.intern(v)).collect();
        assert_eq!(shared.stats().hits, hits_before);
        for (x, y) in first.iter().zip(&second) {
            assert!(View::ptr_eq(x, y));
        }
        // An owned-mode handle produces equal (but privately canonical) views.
        let mut own = InternerHandle::own();
        for (v, canonical) in source.iter().zip(&first) {
            assert_eq!(&own.intern(v), canonical);
        }
    }

    #[test]
    fn cross_tenant_dedup_shares_subtrees_between_different_graphs() {
        // Two different tenants (different rings) still share every per-depth
        // subtree their views have in common — here all of them, since all nodes
        // are degree 2 and the orientations only differ near the top.
        let a = generators::symmetric_ring(6).unwrap();
        let b = generators::symmetric_ring(8).unwrap();
        let shared = SharedViewInterner::new();
        let va = shared.build_all(&a, 4).swap_remove(0);
        let vb = shared.build_all(&b, 4).swap_remove(0);
        assert!(View::ptr_eq(&va, &vb), "isomorphic balls collapse");
        let stats = shared.stats();
        assert!(stats.hits >= stats.misses, "{stats:?}");
    }
}
