//! # anet-views — views of anonymous networks and election indices
//!
//! The central notion in the study of anonymous networks is the **view** of a node
//! (Yamashita–Kameda): the infinite tree of all finite paths starting at the node,
//! coded by port numbers. What a node can learn in `r` rounds of the LOCAL model is
//! exactly its **augmented truncated view** `B^r(v)` — the view truncated at depth `r`
//! with leaves labelled by their degrees (Section 1 of the paper).
//!
//! This crate implements:
//!
//! * [`view_tree`] — explicit owned `B^h(v)` trees (the test / interop form),
//! * [`interned`] — structurally shared [`View`] handles and the hash-consing
//!   [`ViewInterner`]: the representation every hot path (the full-information
//!   collector, the solvers) works on — cloning is an `Arc` bump, equality and
//!   lexicographic order short-circuit on shared subtrees,
//! * [`shared`] — the concurrent [`SharedViewInterner`]: the same hash-consing
//!   across `Mutex`-striped shards, safe to share between threads, so concurrent
//!   election runs (the multi-tenant service) dedup isomorphic subtrees against one
//!   process-wide table; [`InternerHandle`] lets solvers run against either an
//!   owned or a shared table,
//! * [`refinement`] — *port colour refinement*, an `O(h·m)` computation of the
//!   equivalence classes "`B^h(u) = B^h(v)`" for every depth `h` simultaneously
//!   (within one graph or jointly across several graphs, as needed by the paper's
//!   cross-graph indistinguishability lemmas),
//! * [`bits`] — exact-length bit strings (the unit in which advice size is measured),
//! * [`encoding`] — the unfolded-tree binary encoding of augmented truncated views
//!   used by the Theorem 2.2 oracle (`O((Δ−1)^h log Δ)` bits), its decoder, and the
//!   [`ViewCodec`] selector,
//! * [`dag_encoding`] — the shared-DAG binary encoding: one table entry per
//!   *distinct* subtree, so symmetric views cost `O(h)` instead of `Θ(Δ^h)` bits,
//! * [`delta_encoding`] — the delta codec of the metered transport: a view encoded
//!   against the previous round's view the receiver already holds, shipping only
//!   the new DAG table entries (never more than one bit over the DAG format),
//! * [`paths`] — simple-path utilities underlying the PE / PPE / CPPE verifiers,
//! * [`quotient`] — the view-class quotient graph of a refinement depth and the
//!   reusable [`QuotientSearch`] (leader BFS, uniform-route lifting, search-cost
//!   counters) that the election-index computations run on,
//! * [`election_index`] — feasibility (all views distinct) and the election indices
//!   `ψ_S`, `ψ_PE`, `ψ_PPE`, `ψ_CPPE` of the four shades of leader election.
//!
//! A view in one handle, and its two wire forms:
//!
//! ```
//! use anet_views::{encoding, dag_encoding, View};
//!
//! let g = anet_graph::generators::star(4).unwrap();
//! let view = View::build(&g, 0, 4); // B⁴(centre), structurally shared
//! assert_eq!(view.degree(), 4);
//!
//! let tree_bits = encoding::encode_view_interned(&view, 4);
//! let dag_bits = dag_encoding::encode_view_dag(&view, 4);
//! assert_eq!(encoding::decode_view_interned(&tree_bits).unwrap().0, view);
//! assert_eq!(dag_encoding::decode_view_dag(&dag_bits).unwrap().0, view);
//! // The star's four identical branches collapse to shared table entries.
//! assert!(dag_bits.len() < tree_bits.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod dag_encoding;
pub mod delta_encoding;
pub mod election_index;
pub mod encoding;
pub mod interned;
pub mod paths;
pub mod quotient;
pub mod refinement;
mod search;
pub mod shared;
pub mod view_tree;

pub use bits::BitString;
pub use election_index::{ElectionIndices, Feasibility};
pub use encoding::ViewCodec;
pub use interned::{View, ViewInterner};
pub use quotient::{ClassQuotient, QuotientSearch, SearchStats};
pub use refinement::{JointRefinement, Refinement};
pub use shared::{
    lock_or_poison, wait_timeout_or_poison, InternerHandle, InternerStats, SharedViewInterner,
};
pub use view_tree::ViewTree;
