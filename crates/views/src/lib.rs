//! # anet-views — views of anonymous networks and election indices
//!
//! The central notion in the study of anonymous networks is the **view** of a node
//! (Yamashita–Kameda): the infinite tree of all finite paths starting at the node,
//! coded by port numbers. What a node can learn in `r` rounds of the LOCAL model is
//! exactly its **augmented truncated view** `B^r(v)` — the view truncated at depth `r`
//! with leaves labelled by their degrees (Section 1 of the paper).
//!
//! This crate implements:
//!
//! * [`view_tree`] — explicit owned `B^h(v)` trees (the test / interop form),
//! * [`interned`] — structurally shared [`View`] handles and the hash-consing
//!   [`ViewInterner`]: the representation every hot path (the full-information
//!   collector, the solvers) works on — cloning is an `Arc` bump, equality and
//!   lexicographic order short-circuit on shared subtrees,
//! * [`refinement`] — *port colour refinement*, an `O(h·m)` computation of the
//!   equivalence classes "`B^h(u) = B^h(v)`" for every depth `h` simultaneously
//!   (within one graph or jointly across several graphs, as needed by the paper's
//!   cross-graph indistinguishability lemmas),
//! * [`bits`] — exact-length bit strings (the unit in which advice size is measured),
//! * [`encoding`] — the binary encoding of augmented truncated views used by the
//!   Theorem 2.2 oracle, and its decoder,
//! * [`paths`] — simple-path utilities underlying the PE / PPE / CPPE verifiers,
//! * [`election_index`] — feasibility (all views distinct) and the election indices
//!   `ψ_S`, `ψ_PE`, `ψ_PPE`, `ψ_CPPE` of the four shades of leader election.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod election_index;
pub mod encoding;
pub mod interned;
pub mod paths;
pub mod refinement;
mod search;
pub mod view_tree;

pub use bits::BitString;
pub use election_index::{ElectionIndices, Feasibility};
pub use interned::{View, ViewInterner};
pub use refinement::{JointRefinement, Refinement};
pub use view_tree::ViewTree;
