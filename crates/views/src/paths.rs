//! Simple-path utilities used by the election-task verifiers and the exact
//! election-index computations.
//!
//! The three "strong" election tasks are all phrased in terms of *simple paths to the
//! leader*:
//!
//! * `PE` — a node's output port is correct iff it is the first port of **some** simple
//!   path from the node to the leader;
//! * `PPE` — the output port sequence, followed from the node, must trace a simple path
//!   ending at the leader;
//! * `CPPE` — ditto, and every traversed edge's far-end port must match the output.
//!
//! The first condition reduces to reachability of the leader in `G − v` from the chosen
//! neighbour; the other two are direct walks. The exact `ψ_PPE` / `ψ_CPPE` computations
//! additionally need to *enumerate* candidate simple paths, which is done here with an
//! explicit cap so it is only used on small graphs.

use anet_graph::{NodeId, Port, PortGraph};

/// Is `target` reachable from `from` in the graph with node `avoid` deleted?
/// (`from == target` counts as reachable provided `from != avoid`.)
pub fn reaches_avoiding(g: &PortGraph, from: NodeId, target: NodeId, avoid: NodeId) -> bool {
    if from == avoid || target == avoid {
        return false;
    }
    g.bfs_distances_avoiding(from, Some(avoid))[target as usize].is_some()
}

/// Is port `p` at node `v` the first port of some simple path from `v` to `leader`?
/// This is the per-node correctness condition of the Port Election task.
pub fn pe_port_is_valid(g: &PortGraph, v: NodeId, p: Port, leader: NodeId) -> bool {
    if v == leader {
        return false;
    }
    match g.neighbor(v, p) {
        None => false,
        Some((u, _)) => u == leader || reaches_avoiding(g, u, leader, v),
    }
}

/// Does the outgoing-port sequence `ports`, followed from `v`, trace a *simple* path
/// that ends at `leader`? This is the per-node correctness condition of PPE.
pub fn ppe_sequence_is_valid(g: &PortGraph, v: NodeId, ports: &[Port], leader: NodeId) -> bool {
    if v == leader {
        return false;
    }
    match g.follow_outgoing_ports(v, ports) {
        None => false,
        Some(nodes) => PortGraph::is_simple_node_sequence(&nodes) && nodes.last() == Some(&leader),
    }
}

/// Does the `(outgoing, incoming)` port-pair sequence, followed from `v`, trace a
/// simple path ending at `leader` with every incoming port matching? This is the
/// per-node correctness condition of CPPE.
pub fn cppe_sequence_is_valid(
    g: &PortGraph,
    v: NodeId,
    ports: &[(Port, Port)],
    leader: NodeId,
) -> bool {
    if v == leader {
        return false;
    }
    match g.follow_full_ports(v, ports) {
        None => false,
        Some(nodes) => PortGraph::is_simple_node_sequence(&nodes) && nodes.last() == Some(&leader),
    }
}

/// Result of a capped enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Enumeration<T> {
    /// All objects were enumerated.
    Complete(Vec<T>),
    /// The cap was hit; the enumeration is incomplete.
    Truncated(Vec<T>),
}

impl<T> Enumeration<T> {
    /// The enumerated items, regardless of completeness.
    pub fn items(&self) -> &[T] {
        match self {
            Enumeration::Complete(v) | Enumeration::Truncated(v) => v,
        }
    }

    /// Was the enumeration complete?
    pub fn is_complete(&self) -> bool {
        matches!(self, Enumeration::Complete(_))
    }
}

/// DFS edge-extension steps allowed per enumerated path: the implicit step
/// budget of [`simple_paths`] is `max_paths · STEPS_PER_PATH`.
///
/// The path cap alone does not bound the running time: it only counts *completed*
/// paths, while on dense shuffled topologies (circulants and tori from ~256 nodes
/// up) the DFS can wander exponentially among dead-end prefixes that never reach
/// the target, completing no path and therefore never touching the cap. The step
/// budget charges every edge extension, completed or not, so the enumeration
/// always terminates — as `Truncated` when the budget runs out, which the
/// election-index ladder reports as its typed `PathBudgetExceeded` error. The
/// factor is generous enough that every enumeration the equivalence corpora
/// complete (n ≤ 16, and sparse random-regular up to the path cap) is unaffected.
const STEPS_PER_PATH: usize = 256;

/// Enumerate simple paths from `from` to `to` (as node sequences including both
/// endpoints), depth-first in increasing port order, up to `max_paths` paths and
/// at most `max_paths · STEPS_PER_PATH` DFS steps (see
/// [`simple_paths_bounded`] for an explicit step budget).
pub fn simple_paths(
    g: &PortGraph,
    from: NodeId,
    to: NodeId,
    max_paths: usize,
) -> Enumeration<Vec<NodeId>> {
    simple_paths_bounded(
        g,
        from,
        to,
        max_paths,
        max_paths.saturating_mul(STEPS_PER_PATH),
    )
}

/// [`simple_paths`] with an explicit DFS step budget: every edge extension costs
/// one step, and exhausting `max_steps` truncates the enumeration exactly like
/// hitting `max_paths` does. `Complete` is returned only when the search space
/// was genuinely exhausted, so the completeness signal stays sound.
pub fn simple_paths_bounded(
    g: &PortGraph,
    from: NodeId,
    to: NodeId,
    max_paths: usize,
    max_steps: usize,
) -> Enumeration<Vec<NodeId>> {
    let mut found = Vec::new();
    let mut on_path = vec![false; g.num_nodes()];
    let mut path = vec![from];
    let mut steps = max_steps;
    on_path[from as usize] = true;
    let truncated = dfs(
        g,
        from,
        to,
        max_paths,
        &mut steps,
        &mut on_path,
        &mut path,
        &mut found,
    );
    if truncated {
        Enumeration::Truncated(found)
    } else {
        Enumeration::Complete(found)
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    g: &PortGraph,
    cur: NodeId,
    to: NodeId,
    max_paths: usize,
    steps: &mut usize,
    on_path: &mut Vec<bool>,
    path: &mut Vec<NodeId>,
    found: &mut Vec<Vec<NodeId>>,
) -> bool {
    if cur == to {
        found.push(path.clone());
        return found.len() >= max_paths;
    }
    for (_, u, _) in g.ports(cur) {
        if on_path[u as usize] {
            continue;
        }
        if *steps == 0 {
            return true;
        }
        *steps -= 1;
        on_path[u as usize] = true;
        path.push(u);
        let full = dfs(g, u, to, max_paths, steps, on_path, path, found);
        path.pop();
        on_path[u as usize] = false;
        if full {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use anet_graph::generators;

    #[test]
    fn pe_validity_on_the_line() {
        let g = generators::paper_three_node_line();
        // Leader = node 2 (right end). Node 0 must use port 0; node 1 must use port 1.
        assert!(pe_port_is_valid(&g, 0, 0, 2));
        assert!(!pe_port_is_valid(&g, 0, 1, 2)); // port does not exist
        assert!(pe_port_is_valid(&g, 1, 1, 2));
        assert!(!pe_port_is_valid(&g, 1, 0, 2)); // leads away, dead end
        assert!(!pe_port_is_valid(&g, 2, 0, 2)); // the leader itself has no valid port
    }

    #[test]
    fn pe_validity_on_a_cycle_allows_both_directions() {
        let g = generators::symmetric_ring(5).unwrap();
        // On a cycle every non-leader node can go either way.
        for v in 1..5u32 {
            assert!(pe_port_is_valid(&g, v, 0, 0));
            assert!(pe_port_is_valid(&g, v, 1, 0));
        }
    }

    #[test]
    fn ppe_validity_checks_simplicity_and_endpoint() {
        let g = generators::symmetric_ring(4).unwrap();
        // Port 0 is "clockwise": 1 -> 2 -> 3 -> 0.
        assert!(ppe_sequence_is_valid(&g, 1, &[0, 0, 0], 0));
        // Counter-clockwise single step 1 -> 0.
        assert!(ppe_sequence_is_valid(&g, 1, &[1], 0));
        // Wrong endpoint.
        assert!(!ppe_sequence_is_valid(&g, 1, &[0], 0));
        // Non-simple walk (forward then back then forward …).
        assert!(!ppe_sequence_is_valid(&g, 1, &[0, 1, 0, 0, 0], 0));
        // Nonexistent port.
        assert!(!ppe_sequence_is_valid(&g, 1, &[7], 0));
        // The leader itself never outputs a path.
        assert!(!ppe_sequence_is_valid(&g, 0, &[], 0));
    }

    #[test]
    fn cppe_validity_checks_far_ports_too() {
        let g = generators::paper_three_node_line();
        // Path 0 -> 1 -> 2 has port pairs (0,0) then (1,0).
        assert!(cppe_sequence_is_valid(&g, 0, &[(0, 0), (1, 0)], 2));
        assert!(!cppe_sequence_is_valid(&g, 0, &[(0, 1), (1, 0)], 2));
        assert!(!cppe_sequence_is_valid(&g, 0, &[(0, 0)], 2));
    }

    #[test]
    fn simple_path_enumeration_on_cycle() {
        let g = generators::symmetric_ring(5).unwrap();
        let e = simple_paths(&g, 1, 3, 100);
        assert!(e.is_complete());
        // On a cycle there are exactly two simple paths between any two nodes.
        assert_eq!(e.items().len(), 2);
        for p in e.items() {
            assert!(PortGraph::is_simple_node_sequence(p));
            assert_eq!(*p.first().unwrap(), 1);
            assert_eq!(*p.last().unwrap(), 3);
        }
    }

    #[test]
    fn simple_path_enumeration_respects_cap() {
        let g = generators::complete(6).unwrap();
        let capped = simple_paths(&g, 0, 5, 3);
        assert!(!capped.is_complete());
        assert_eq!(capped.items().len(), 3);

        let full = simple_paths(&g, 0, 5, 10_000);
        assert!(full.is_complete());
        // Number of simple paths from a fixed source to a fixed target in K_6:
        // sum over subsets of the other 4 nodes ordered: 1 + 4 + 4·3 + 4·3·2 + 4! = 65.
        assert_eq!(full.items().len(), 65);
    }

    #[test]
    fn step_budget_truncates_before_the_path_cap() {
        let g = generators::complete(6).unwrap();
        // A tiny step budget ends the search long before the 65 paths exist,
        // and the result is honestly marked incomplete.
        let starved = simple_paths_bounded(&g, 0, 5, 10_000, 10);
        assert!(!starved.is_complete());
        assert!(starved.items().len() < 65);
        // With the budget out of the way the enumeration is complete again.
        let full = simple_paths_bounded(&g, 0, 5, 10_000, usize::MAX);
        assert!(full.is_complete());
        assert_eq!(full.items().len(), 65);
        // The implicit budget of `simple_paths` is far above what small graphs
        // need: same complete answer.
        assert_eq!(simple_paths(&g, 0, 5, 10_000), full);
    }

    #[test]
    fn path_from_node_to_itself_is_the_trivial_path() {
        let g = generators::star(3).unwrap();
        let e = simple_paths(&g, 2, 2, 10);
        assert!(e.is_complete());
        assert_eq!(e.items(), &[vec![2]]);
    }

    #[test]
    fn reaches_avoiding_blocks_cut_vertices() {
        let g = generators::star(3).unwrap();
        assert!(reaches_avoiding(&g, 1, 0, 2));
        assert!(!reaches_avoiding(&g, 1, 2, 0)); // centre removed: leaves separated
        assert!(!reaches_avoiding(&g, 1, 2, 1));
        assert!(!reaches_avoiding(&g, 1, 2, 2));
    }
}
