//! Traversals shared by the owned ([`crate::ViewTree`]) and interned
//! ([`crate::View`]) view forms, generic over the node representation (a stable `id`,
//! a `degree` accessor, and a `children` iterator), so outputs that must stay
//! byte-identical between the two forms — token sequences, encoder field widths,
//! degree searches — have exactly one implementation.
//!
//! Every search here deduplicates on the node `id`, so on shared views (where one
//! subtree object occurs at exponentially many unfolded positions) the cost is linear
//! in *distinct* nodes, not the unfolded walk tree. This is result-preserving: BFS
//! processes levels in order and each level in port order, so the first time a shared
//! subtree is reached is at its minimal level through its lexicographically smallest
//! path — any match under a later occurrence corresponds to an earlier-scanned match
//! under the first one. For the owned form every node is a distinct allocation, so
//! the dedup is a semantic no-op. (`tokens` is the exception — its output *is* the
//! unfolded sequence by definition — and `truncated` is not here at all: the interned
//! form short-circuits on its precomputed height per level to preserve sharing, which
//! has no owned counterpart; the two implementations are kept equivalent by the
//! owned-vs-interned equivalence tests.)

use anet_graph::Port;
use std::collections::HashSet;

/// Canonical token sequence, appended to `out` — pre-order `[degree, #children]`
/// then, per child in port order, `[p, q]` and the child's tokens. No dedup: the
/// token sequence is defined on the unfolded tree.
pub(crate) fn write_tokens_by<N, I>(
    node: N,
    degree: impl Fn(N) -> u32 + Copy,
    children: impl Fn(N) -> I + Copy,
    out: &mut Vec<u32>,
) where
    N: Copy,
    I: ExactSizeIterator<Item = (Port, Port, N)>,
{
    out.push(degree(node));
    let kids = children(node);
    out.push(kids.len() as u32);
    for (p, q, c) in kids {
        out.push(p);
        out.push(q);
        write_tokens_by(c, degree, children, out);
    }
}

/// The maximum port number mentioned anywhere in the view, or `None` for a bare
/// single node. Each distinct subtree is visited once.
pub(crate) fn max_port_by<N, I>(
    node: N,
    id: impl Fn(N) -> usize + Copy,
    children: impl Fn(N) -> I + Copy,
) -> Option<u32>
where
    N: Copy,
    I: Iterator<Item = (Port, Port, N)>,
{
    fn rec<N, I>(
        node: N,
        id: impl Fn(N) -> usize + Copy,
        children: impl Fn(N) -> I + Copy,
        seen: &mut HashSet<usize>,
    ) -> Option<u32>
    where
        N: Copy,
        I: Iterator<Item = (Port, Port, N)>,
    {
        children(node)
            .flat_map(|(p, q, c)| {
                let sub = if seen.insert(id(c)) {
                    rec(c, id, children, seen)
                } else {
                    None // already accounted at its first occurrence
                };
                [Some(p), Some(q), sub]
            })
            .flatten()
            .max()
    }
    let mut seen = HashSet::new();
    seen.insert(id(node));
    rec(node, id, children, &mut seen)
}

/// The maximum degree mentioned anywhere in the view. Each distinct subtree is
/// visited once.
pub(crate) fn max_degree_by<N, I>(
    node: N,
    id: impl Fn(N) -> usize + Copy,
    degree: impl Fn(N) -> u32 + Copy,
    children: impl Fn(N) -> I + Copy,
) -> u32
where
    N: Copy,
    I: Iterator<Item = (Port, Port, N)>,
{
    fn rec<N, I>(
        node: N,
        id: impl Fn(N) -> usize + Copy,
        degree: impl Fn(N) -> u32 + Copy,
        children: impl Fn(N) -> I + Copy,
        seen: &mut HashSet<usize>,
    ) -> u32
    where
        N: Copy,
        I: Iterator<Item = (Port, Port, N)>,
    {
        children(node)
            .map(|(_, _, c)| {
                if seen.insert(id(c)) {
                    rec(c, id, degree, children, seen)
                } else {
                    0 // already accounted at its first occurrence
                }
            })
            .max()
            .unwrap_or(0)
            .max(degree(node))
    }
    let mut seen = HashSet::new();
    seen.insert(id(node));
    rec(node, id, degree, children, &mut seen)
}

/// Does the view contain (at any tree node, root included) a node of the given graph
/// degree? Each distinct subtree is visited once.
pub(crate) fn contains_degree_by<N, I>(
    node: N,
    target: u32,
    id: impl Fn(N) -> usize + Copy,
    degree: impl Fn(N) -> u32 + Copy,
    children: impl Fn(N) -> I + Copy,
) -> bool
where
    N: Copy,
    I: Iterator<Item = (Port, Port, N)>,
{
    fn rec<N, I>(
        node: N,
        target: u32,
        id: impl Fn(N) -> usize + Copy,
        degree: impl Fn(N) -> u32 + Copy,
        children: impl Fn(N) -> I + Copy,
        seen: &mut HashSet<usize>,
    ) -> bool
    where
        N: Copy,
        I: Iterator<Item = (Port, Port, N)>,
    {
        degree(node) == target
            || children(node)
                .any(|(_, _, c)| seen.insert(id(c)) && rec(c, target, id, degree, children, seen))
    }
    let mut seen = HashSet::new();
    seen.insert(id(node));
    rec(node, target, id, degree, children, &mut seen)
}

/// The port sequence (outgoing ports only) of the lexicographically smallest shortest
/// root-to-node path reaching a tree node of the given degree, or `None` if no such
/// node exists.
///
/// Breadth-first in port order: `visited[i]` records (parent index in `visited` or
/// `usize::MAX` for the root, port taken from the parent, node), each level is fully
/// scanned for a match before the next is expanded, and only the single returned path
/// is reconstructed (through the parent links, not by cloning prefix paths per
/// frontier node). A shared subtree is enqueued only at its first occurrence, which
/// the level-order/port-order scan reaches through the lexicographically smallest
/// shortest path — so dedup never changes the returned path, it only keeps `visited`
/// linear in distinct nodes.
pub(crate) fn shortest_path_to_degree_by<N, I>(
    root: N,
    target: u32,
    id: impl Fn(N) -> usize + Copy,
    degree: impl Fn(N) -> u32,
    children: impl Fn(N) -> I,
) -> Option<Vec<Port>>
where
    N: Copy,
    I: Iterator<Item = (Port, Port, N)>,
{
    let mut seen: HashSet<usize> = HashSet::new();
    seen.insert(id(root));
    let mut visited: Vec<(usize, Port, N)> = vec![(usize::MAX, 0, root)];
    let mut level_start = 0usize;
    loop {
        if level_start == visited.len() {
            return None;
        }
        let level_end = visited.len();
        for i in level_start..level_end {
            if degree(visited[i].2) == target {
                let mut path = Vec::new();
                let mut cur = i;
                while visited[cur].0 != usize::MAX {
                    path.push(visited[cur].1);
                    cur = visited[cur].0;
                }
                path.reverse();
                return Some(path);
            }
        }
        for i in level_start..level_end {
            for (p, _, c) in children(visited[i].2) {
                if seen.insert(id(c)) {
                    visited.push((i, p, c));
                }
            }
        }
        level_start = level_end;
    }
}
