//! Owned-vs-interned equivalence: the shared [`View`] handles must be
//! observationally identical to the owned [`ViewTree`] form on every operation the
//! workspace relies on — construction, truncation, token sequences, lexicographic
//! order, statistics, degree searches — and the [`ViewInterner`] must be canonical
//! (structurally equal subtrees are pointer-equal).
//!
//! No external property-testing framework is available in this build environment;
//! cases are driven by explicit seed loops over the deterministic
//! [`anet_graph::rng::Rng`], so every failure is reproducible from its loop index.

use anet_graph::rng::Rng;
use anet_graph::{generators, PortGraph};
use anet_views::{View, ViewInterner, ViewTree};

const CASES: u64 = 24;

/// Random-graph parameters (n ∈ [4, 20), Δ ∈ [3, 6), extra ∈ [0, 8)) from a case
/// index, plus the generator seed.
fn build(case: u64) -> (PortGraph, usize) {
    let mut rng = Rng::seed(0x1_7E44ED ^ case);
    let n = rng.gen_range(4..20);
    let max_deg = rng.gen_range(3..6);
    let extra = rng.gen_range(0..8);
    let seed = rng.next_u64();
    let depth = (case % 5) as usize;
    (
        generators::random_connected(n, max_deg, extra, seed).expect("valid graph"),
        depth,
    )
}

/// Construction, statistics and conversions agree with the owned form at every node
/// and depth.
#[test]
fn build_matches_owned_build() {
    for case in 0..CASES {
        let (g, depth) = build(case);
        let views = ViewInterner::new().build_all(&g, depth);
        for v in g.nodes() {
            let owned = ViewTree::build(&g, v, depth);
            let shared = &views[v as usize];
            assert_eq!(shared.to_tree(), owned, "case {case}, node {v}");
            assert_eq!(shared.size(), owned.size(), "case {case}, node {v}");
            assert_eq!(shared.height(), owned.height(), "case {case}, node {v}");
            assert_eq!(shared.num_edges(), owned.num_edges(), "case {case}");
            assert_eq!(shared.max_port(), owned.max_port(), "case {case}");
            assert_eq!(shared.max_degree(), owned.max_degree(), "case {case}");
            // Round-trip through the owned form is lossless and preserves equality.
            assert_eq!(&View::from_tree(&owned), shared, "case {case}, node {v}");
        }
    }
}

/// Truncation commutes with conversion and matches direct builds at every depth.
#[test]
fn truncation_matches_owned_truncation() {
    for case in 0..CASES / 2 {
        let (g, _) = build(case);
        let views = ViewInterner::new().build_all(&g, 4);
        for v in g.nodes().step_by(3) {
            let deep_owned = ViewTree::build(&g, v, 4);
            for h in 0..=4usize {
                assert_eq!(
                    views[v as usize].truncated(h).to_tree(),
                    deep_owned.truncated(h),
                    "case {case}, node {v}, depth {h}"
                );
            }
            // Truncation past the height is the identity (and shares the handle).
            assert!(View::ptr_eq(
                &views[v as usize].truncated(17),
                &views[v as usize]
            ));
        }
    }
}

/// Token sequences are identical to the owned form, and the handle comparison
/// realises exactly the token order (which is what every "lexicographically smallest
/// view" step of the paper uses).
#[test]
fn tokens_and_lex_order_agree() {
    for case in 0..CASES / 2 {
        let (g, depth) = build(case);
        let shared = ViewInterner::new().build_all(&g, depth);
        let owned: Vec<ViewTree> = g.nodes().map(|v| ViewTree::build(&g, v, depth)).collect();
        for (s, o) in shared.iter().zip(&owned) {
            assert_eq!(s.tokens(), o.tokens(), "case {case}");
        }
        for (i, a) in shared.iter().enumerate() {
            for (j, b) in shared.iter().enumerate() {
                assert_eq!(
                    a.lex_cmp(b),
                    owned[i].lex_cmp(&owned[j]),
                    "case {case}: nodes {i} and {j}"
                );
                assert_eq!(a == b, owned[i] == owned[j], "case {case}");
            }
        }
        // Sorting handles and trees gives the same permutation of token sequences.
        let mut by_handle: Vec<Vec<u32>> = shared.iter().map(View::tokens).collect();
        by_handle.sort();
        let mut by_tree: Vec<Vec<u32>> = owned.iter().map(ViewTree::tokens).collect();
        by_tree.sort();
        assert_eq!(by_handle, by_tree, "case {case}");
    }
}

/// Degree containment and the parent-link BFS agree with the owned implementation.
#[test]
fn degree_searches_agree() {
    for case in 0..CASES / 2 {
        let (g, _) = build(case);
        let views = ViewInterner::new().build_all(&g, 3);
        for v in g.nodes() {
            let owned = ViewTree::build(&g, v, 3);
            for d in 0..=(g.max_degree() as u32 + 1) {
                assert_eq!(
                    views[v as usize].contains_degree(d),
                    owned.contains_degree(d),
                    "case {case}, node {v}, degree {d}"
                );
                assert_eq!(
                    views[v as usize].shortest_path_to_degree(d),
                    owned.shortest_path_to_degree(d),
                    "case {case}, node {v}, degree {d}"
                );
            }
        }
    }
}

/// Interner canonicalness: within one interner, structural equality is pointer
/// equality — however a subtree was produced (levelled build, foreign handle,
/// owned tree).
#[test]
fn interner_is_canonical() {
    for case in 0..CASES / 2 {
        let (g, depth) = build(case);
        let mut interner = ViewInterner::new();
        let views = interner.build_all(&g, depth);
        for (i, a) in views.iter().enumerate() {
            for b in &views[i..] {
                assert_eq!(a == b, View::ptr_eq(a, b), "case {case}: equal ⇔ shared");
            }
        }
        // Re-interning equivalent foreign structure adds nothing and returns the
        // existing representatives.
        let before = interner.len();
        for v in g.nodes() {
            let foreign = View::from_tree(&ViewTree::build(&g, v, depth));
            let canonical = interner.intern(&foreign);
            assert!(
                View::ptr_eq(&canonical, &views[v as usize]),
                "case {case}, node {v}"
            );
            let from_tree = interner.intern_tree(&ViewTree::build(&g, v, depth));
            assert!(View::ptr_eq(&from_tree, &views[v as usize]));
        }
        assert_eq!(interner.len(), before, "case {case}: nothing new interned");
    }
}

/// The interner's sharing is as strong as view equivalence allows: on the fully
/// symmetric ring all nodes collapse to one representative per depth.
#[test]
fn symmetric_graphs_collapse_completely() {
    for n in [4usize, 5, 8, 12] {
        let g = generators::symmetric_ring(n).unwrap();
        let mut interner = ViewInterner::new();
        let views = interner.build_all(&g, 5);
        assert!(
            views.windows(2).all(|w| View::ptr_eq(&w[0], &w[1])),
            "n={n}"
        );
        assert_eq!(interner.len(), 6, "n={n}: one node per depth 0..=5");
        // Memory held is O(depth), even though the owned tree has 2^5 leaves per node.
        assert_eq!(views[0].size(), ViewTree::build(&g, 0, 5).size());
    }
}
