//! Property tests of the delta view codec — the wire format behind the metered
//! transport's `delta` mode, which encodes round r's view against the round r−1
//! view the receiver already holds. Same adversarial style as the DAG codec's
//! suite: SplitMix64-driven corruption, exhaustive prefix truncation, and the
//! decode-against-the-wrong-base attack unique to a stateful codec — every
//! malformed input must land on a typed [`DecodeError`], never a panic, and the
//! successful decodes must be self-consistent.

use anet_graph::rng::Rng;
use anet_graph::{generators, PortGraph};
use anet_views::dag_encoding::encode_view_dag;
use anet_views::delta_encoding::{decode_view_delta, delta_encoded_size_bits, encode_view_delta};
use anet_views::encoding::DecodeError;
use anet_views::{BitString, View};

/// The same deterministic pool the DAG codec suite uses: trees, rings, stars,
/// and random connected graphs of varying degree.
fn graph_pool() -> Vec<PortGraph> {
    let mut pool = vec![
        generators::paper_three_node_line(),
        generators::star(5).unwrap(),
        generators::symmetric_ring(6).unwrap(),
        generators::oriented_ring(&[true, true, false, true, false]).unwrap(),
        generators::full_tree(3, 3).unwrap().0,
    ];
    for seed in 0..6u64 {
        pool.push(generators::random_connected(20, 5, 8, seed).unwrap());
    }
    pool
}

#[test]
fn round_trip_is_identity_with_and_without_a_base() {
    for g in graph_pool() {
        for v in 0..g.num_nodes().min(4) {
            for depth in 1..=3usize {
                let view = View::build(&g, v as u32, depth);
                let base = View::build(&g, v as u32, depth - 1);
                // Standalone (round 1: no previous message exists).
                let lone = encode_view_delta(&view, depth, None);
                assert_eq!(lone.len(), delta_encoded_size_bits(&view, depth, None));
                let (decoded, h) = decode_view_delta(&lone, None).unwrap();
                assert_eq!((decoded, h), (view.clone(), depth), "node {v} standalone");
                // Against the successive-round base, decoded with the same base.
                let delta = encode_view_delta(&view, depth, Some(&base));
                assert_eq!(
                    delta.len(),
                    delta_encoded_size_bits(&view, depth, Some(&base))
                );
                let (decoded, h) = decode_view_delta(&delta, Some(&base)).unwrap();
                assert_eq!((decoded, h), (view, depth), "node {v} depth {depth}");
            }
        }
    }
}

#[test]
fn delta_never_beats_dag_by_less_than_it_costs_and_wins_on_successive_rounds() {
    // The adaptive encoder guarantees delta ≤ dag + 1 bit (the has_base flag) on
    // *any* pair, and on real successive-round pairs — where the receiver's base
    // shares almost every subtree — it must actually win somewhere.
    let mut strict_wins = 0usize;
    for g in graph_pool() {
        for depth in 2..=3usize {
            let view = View::build(&g, 0, depth);
            let base = View::build(&g, 0, depth - 1);
            let dag = encode_view_dag(&view, depth).len();
            let delta = encode_view_delta(&view, depth, Some(&base)).len();
            assert!(
                delta <= dag + 1,
                "delta {delta} vs dag {dag} at depth {depth}"
            );
            if delta < dag {
                strict_wins += 1;
            }
        }
    }
    assert!(
        strict_wins > 0,
        "delta never beat dag on a successive-round pair"
    );
    // And on the fully symmetric ring the win is unconditional from depth 3 up:
    // the base covers every subtree except the one new frontier level. (At depth
    // 2 the 16-bit base fingerprint still outweighs the sharing, so the adaptive
    // encoder falls back to standalone — dag + 1 flag bit.)
    let g = generators::symmetric_ring(7).unwrap();
    for depth in 3..=8usize {
        let view = View::build(&g, 0, depth);
        let base = View::build(&g, 0, depth - 1);
        let dag = encode_view_dag(&view, depth).len();
        let delta = encode_view_delta(&view, depth, Some(&base)).len();
        assert!(
            delta < dag,
            "ring depth {depth}: delta {delta} !< dag {dag}"
        );
    }
}

#[test]
fn decoding_against_the_wrong_base_is_rejected() {
    let g = generators::symmetric_ring(6).unwrap();
    let view = View::build(&g, 0, 3);
    let base = View::build(&g, 0, 2);
    let delta = encode_view_delta(&view, 3, Some(&base));
    // The pair genuinely shares structure, so the encoder chose the based form:
    // decoding with no base at all must fail…
    assert!(matches!(
        decode_view_delta(&delta, None),
        Err(DecodeError::BaseMismatch)
    ));
    // …and so must decoding against bases the encoder never saw — a different
    // depth of the right graph, and views of entirely different graphs.
    let wrong_bases = [
        View::build(&g, 0, 1),
        View::build(&generators::star(5).unwrap(), 0, 2),
        View::build(&generators::random_connected(20, 5, 8, 3).unwrap(), 0, 2),
    ];
    for (i, wrong) in wrong_bases.iter().enumerate() {
        match decode_view_delta(&delta, Some(wrong)) {
            Err(DecodeError::BaseMismatch) => {}
            other => panic!("wrong base {i} produced {other:?}"),
        }
    }
    // The right base still works after all the failed attempts (decoding takes
    // the base by reference and must not consume or mutate it).
    let (decoded, h) = decode_view_delta(&delta, Some(&base)).unwrap();
    assert_eq!((decoded, h), (view, 3));
}

#[test]
fn every_prefix_truncation_is_classified_never_a_panic() {
    for g in graph_pool().into_iter().take(6) {
        let view = View::build(&g, 0, 2);
        let base = View::build(&g, 0, 1);
        for bits in [
            encode_view_delta(&view, 2, None),
            encode_view_delta(&view, 2, Some(&base)),
        ] {
            let rendered = bits.to_binary_string();
            for cut in 0..bits.len() {
                let prefix = BitString::from_binary_string(&rendered[..cut]).unwrap();
                match decode_view_delta(&prefix, Some(&base)) {
                    Err(_) => {}
                    Ok(decoded) => {
                        panic!("prefix of {cut}/{} bits decoded: {decoded:?}", bits.len())
                    }
                }
            }
        }
    }
}

#[test]
fn random_bit_flips_never_panic_and_valid_decodes_are_self_consistent() {
    // SplitMix64 corruption sweep over based encodings: flip 1–4 bits, decode
    // with the *correct* base. Every outcome is a classified DecodeError or a
    // valid view, and a valid view must round-trip against the same base.
    let mut rng = Rng::seed(0xDE17AC0DE);
    let pool = graph_pool();
    let mut decoded_ok = 0usize;
    let mut rejected = 0usize;
    for case in 0..400usize {
        let g = &pool[case % pool.len()];
        let root = (case % g.num_nodes()) as u32;
        let depth = 1 + case % 3;
        let view = View::build(g, root, depth);
        let base = View::build(g, root, depth - 1);
        let bits = encode_view_delta(&view, depth, Some(&base));
        let mut corrupted: Vec<char> = bits.to_binary_string().chars().collect();
        for _ in 0..1 + rng.below(4) {
            let i = rng.below(corrupted.len());
            corrupted[i] = if corrupted[i] == '0' { '1' } else { '0' };
        }
        let corrupted =
            BitString::from_binary_string(&corrupted.iter().collect::<String>()).unwrap();
        match decode_view_delta(&corrupted, Some(&base)) {
            Err(
                DecodeError::Truncated
                | DecodeError::BadWidth
                | DecodeError::EmptyTable
                | DecodeError::BadNodeId { .. }
                | DecodeError::DuplicateNode { .. }
                | DecodeError::ValueTooLarge
                | DecodeError::BaseMismatch,
            ) => rejected += 1,
            Ok((decoded, h)) => {
                decoded_ok += 1;
                let again = encode_view_delta(&decoded, h, Some(&base));
                let (recovered, h2) = decode_view_delta(&again, Some(&base))
                    .expect("re-encoding a decoded view against the same base is valid");
                assert_eq!((recovered, h2), (decoded, h));
            }
        }
    }
    assert!(rejected > 0, "no corruption was rejected");
    assert!(
        decoded_ok > 0,
        "no corruption decoded to a different valid view"
    );
}

#[test]
fn random_noise_strings_never_panic_with_or_without_a_base() {
    let mut rng = Rng::seed(0x5EEDDE17A);
    let base = View::build(&generators::symmetric_ring(6).unwrap(), 0, 2);
    for case in 0..500usize {
        let len = rng.below(160);
        let mut bits = BitString::new();
        for _ in 0..len {
            bits.push_bit(rng.gen_bool());
        }
        // Arbitrary noise must terminate with *some* classification either way.
        let supplied = (case % 2 == 0).then_some(&base);
        let _ = decode_view_delta(&bits, supplied);
    }
}
