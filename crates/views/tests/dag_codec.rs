//! Property tests of the shared-DAG view codec, in the style of the JSON parser's
//! adversarial write→parse tests: SplitMix64-generated inputs, exhaustive prefix
//! truncation, and random bit-level corruption — the decoder must classify every
//! malformed string with a [`DecodeError`] and never panic, loop, or over-allocate,
//! while every well-formed string round-trips losslessly and agrees with the
//! unfolded-tree codec.

use anet_graph::rng::Rng;
use anet_graph::{generators, PortGraph};
use anet_views::dag_encoding::{decode_view_dag, encode_view_dag};
use anet_views::encoding::{self, DecodeError};
use anet_views::{BitString, View, ViewInterner};

/// A deterministic pool of graphs spanning the shapes the codec must handle: trees,
/// rings, stars, and random connected graphs of varying degree.
fn graph_pool() -> Vec<PortGraph> {
    let mut pool = vec![
        generators::paper_three_node_line(),
        generators::star(5).unwrap(),
        generators::symmetric_ring(6).unwrap(),
        generators::oriented_ring(&[true, true, false, true, false]).unwrap(),
        generators::full_tree(3, 3).unwrap().0,
    ];
    for seed in 0..6u64 {
        pool.push(generators::random_connected(20, 5, 8, seed).unwrap());
    }
    pool
}

#[test]
fn round_trip_is_identity_and_agrees_with_the_tree_codec() {
    for g in graph_pool() {
        let mut interner = ViewInterner::new();
        for depth in 0..=3usize {
            let views = interner.build_all(&g, depth);
            for (v, view) in views.iter().enumerate() {
                let dag = encode_view_dag(view, depth);
                let (from_dag, dh) = decode_view_dag(&dag).unwrap();
                assert_eq!(dh, depth, "node {v}");
                assert_eq!(&from_dag, view, "node {v}");
                // Same view through the tree codec: identical decoded structure.
                let tree = encoding::encode_view_interned(view, depth);
                let (from_tree, th) = encoding::decode_view_interned(&tree).unwrap();
                assert_eq!(th, depth);
                assert_eq!(from_dag, from_tree, "node {v}: codecs disagree");
            }
        }
    }
}

#[test]
fn dag_bits_grow_linearly_on_a_symmetric_family_while_tree_bits_grow_exponentially() {
    // On the symmetric ring every node's B^h is one shared node per depth: the DAG
    // table has h + 1 entries (O(h) bits), while the unfolded tree has 2^{h+1} − 1
    // nodes (Ω(2^h) bits). This is the advice-size collapse of the codec, asserted
    // rather than eyeballed; `bench_views` records the same gap as metrics in
    // `BENCH_bench_views.json`.
    let g = generators::symmetric_ring(7).unwrap();
    let mut interner = ViewInterner::new();
    let mut previous_dag = 0usize;
    for h in 1..=14usize {
        let view = interner.build_all(&g, h).swap_remove(0);
        let dag = encode_view_dag(&view, h).len();
        let tree = encoding::encode_view_interned(&view, h).len();
        assert!(tree >= (1usize << h), "tree bits at h={h}: {tree}");
        assert!(dag <= 64 * (h + 1), "dag bits at h={h}: {dag}");
        // Linear growth per depth step, not multiplicative.
        assert!(
            dag >= previous_dag && dag - previous_dag <= 64,
            "dag bits jumped {previous_dag} -> {dag} at h={h}"
        );
        previous_dag = dag;
        // And the exponential/linear pair still round-trips losslessly.
        let (decoded, dh) = decode_view_dag(&encode_view_dag(&view, h)).unwrap();
        assert_eq!((decoded, dh), (view, h));
    }
}

#[test]
fn every_prefix_truncation_is_classified_never_a_panic() {
    for g in graph_pool().into_iter().take(6) {
        let view = View::build(&g, 0, 2);
        let bits = encode_view_dag(&view, 2);
        let rendered = bits.to_binary_string();
        for cut in 0..bits.len() {
            let prefix = BitString::from_binary_string(&rendered[..cut]).unwrap();
            match decode_view_dag(&prefix) {
                Err(_) => {}
                Ok(decoded) => panic!("prefix of {cut}/{} bits decoded: {decoded:?}", bits.len()),
            }
        }
    }
}

#[test]
fn random_bit_flips_never_panic_and_valid_decodes_are_self_consistent() {
    // The adversarial corruption sweep: flip 1–4 random bits of a valid encoding.
    // Every outcome must be either a classified DecodeError or a valid view — and a
    // valid view must itself round-trip through the codec (the decoder never hands
    // back something the encoder cannot reproduce losslessly).
    let mut rng = Rng::seed(0xDA6_C0DE);
    let pool = graph_pool();
    let mut decoded_ok = 0usize;
    let mut rejected = 0usize;
    for case in 0..400usize {
        let g = &pool[case % pool.len()];
        let root = (case % g.num_nodes()) as u32;
        let view = View::build(g, root, 1 + case % 3);
        let bits = encode_view_dag(&view, 1 + case % 3);
        let mut corrupted: Vec<char> = bits.to_binary_string().chars().collect();
        for _ in 0..1 + rng.below(4) {
            let i = rng.below(corrupted.len());
            corrupted[i] = if corrupted[i] == '0' { '1' } else { '0' };
        }
        let corrupted =
            BitString::from_binary_string(&corrupted.iter().collect::<String>()).unwrap();
        match decode_view_dag(&corrupted) {
            Err(
                DecodeError::Truncated
                | DecodeError::BadWidth
                | DecodeError::EmptyTable
                | DecodeError::BadNodeId { .. }
                | DecodeError::DuplicateNode { .. }
                | DecodeError::ValueTooLarge
                | DecodeError::BaseMismatch,
            ) => rejected += 1,
            Ok((decoded, h)) => {
                decoded_ok += 1;
                let (again, h2) = decode_view_dag(&encode_view_dag(&decoded, h))
                    .expect("re-encoding a decoded view is always valid");
                assert_eq!((again, h2), (decoded, h));
            }
        }
    }
    // The sweep must actually exercise both outcomes (flips in value fields produce
    // different-but-valid views; flips in structure fields produce rejections).
    assert!(rejected > 0, "no corruption was rejected");
    assert!(
        decoded_ok > 0,
        "no corruption decoded to a different valid view"
    );
}

#[test]
fn random_noise_strings_never_panic() {
    let mut rng = Rng::seed(0x5EED_B175);
    for _ in 0..500 {
        let len = rng.below(160);
        let mut bits = BitString::new();
        for _ in 0..len {
            bits.push_bit(rng.gen_bool());
        }
        // Decoding arbitrary noise must terminate with *some* classification.
        let _ = decode_view_dag(&bits);
    }
}

#[test]
fn decoded_views_from_hostile_encoders_still_behave() {
    // A non-canonical but well-formed table (e.g. unreferenced extra entries) is
    // accepted as long as it violates no invariant: the decoder is permissive about
    // *unused* nodes but strict about ids and duplicates.
    let mut bits = BitString::new();
    bits.push_uint(3, 6); // w = 3
    bits.push_uint(0, 3); // height 0
    bits.push_varint(2); // two entries…
    bits.push_uint(1, 3); // a degree-1 cut leaf (never referenced)
    bits.push_bit(false);
    bits.push_uint(2, 3); // a degree-2 cut leaf (the root)
    bits.push_bit(false);
    bits.push_varint(1); // root id -> entry 1
    let (view, h) = decode_view_dag(&bits).unwrap();
    assert_eq!(h, 0);
    assert_eq!(view.degree(), 2);
    assert_eq!(view.children().len(), 0);
}
