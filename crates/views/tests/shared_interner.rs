//! Concurrency stress test of [`SharedViewInterner`]: many std threads interning
//! views of *overlapping* graph families must agree — pointer-equal canonical
//! roots, stable structural hashes, and exact agreement with the single-threaded
//! [`ViewInterner`] — whatever the interleaving.

use anet_graph::{generators, PortGraph};
use anet_views::{SharedViewInterner, View, ViewInterner};
use std::sync::Arc;

const THREADS: usize = 8;
const ROUNDS: usize = 12;
const DEPTH: usize = 4;

/// One observed canonical root, keyed by (graph index, depth, node).
type Observation = ((usize, usize, usize), View);

/// Overlapping families: every thread works a window of this pool, so every
/// graph is interned by several threads at once and isomorphic structure is
/// interned by *all* of them.
fn graph_pool() -> Vec<PortGraph> {
    vec![
        generators::symmetric_ring(6).unwrap(),
        generators::symmetric_ring(9).unwrap(),
        generators::oriented_ring(&[true, true, false, true, false]).unwrap(),
        generators::oriented_ring(&[true, false, true, true, false, false]).unwrap(),
        generators::star(5).unwrap(),
        generators::star(7).unwrap(),
        generators::hypercube(3).unwrap(),
        generators::paper_three_node_line(),
        generators::random_connected(12, 4, 4, 11).unwrap(),
        generators::random_connected(14, 4, 5, 23).unwrap(),
    ]
}

#[test]
fn concurrent_interning_of_overlapping_families_is_canonical() {
    let graphs = Arc::new(graph_pool());
    let shared = Arc::new(SharedViewInterner::with_shards(8));

    // Each thread repeatedly builds all views of a sliding window of the pool at
    // every depth, returning the roots it observed keyed by (graph, depth, node).
    let per_thread: Vec<Vec<Observation>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let graphs = Arc::clone(&graphs);
                let shared = Arc::clone(&shared);
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    for round in 0..ROUNDS {
                        // Sliding, overlapping window: threads t and t+1 share
                        // half their graphs every round.
                        for offset in 0..graphs.len() / 2 {
                            let g_index = (t + round + offset) % graphs.len();
                            let graph = &graphs[g_index];
                            for depth in 0..=DEPTH {
                                let views = shared.build_all(graph, depth);
                                for (node, view) in views.into_iter().enumerate() {
                                    seen.push(((g_index, depth, node), view));
                                }
                            }
                        }
                    }
                    seen
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stress thread panicked"))
            .collect()
    });

    // Reference: a fresh single-threaded interner over the same graphs.
    let mut reference = ViewInterner::new();
    let mut expected: std::collections::HashMap<(usize, usize, usize), View> =
        std::collections::HashMap::new();
    for (g_index, graph) in graphs.iter().enumerate() {
        for depth in 0..=DEPTH {
            for (node, view) in reference.build_all(graph, depth).into_iter().enumerate() {
                expected.insert((g_index, depth, node), view);
            }
        }
    }

    // Every thread's every observation must be (a) pointer-identical to every
    // other thread's observation of the same coordinate, and (b) structurally
    // equal — same hash, same token stream — to the single-threaded result.
    let mut canonical: std::collections::HashMap<(usize, usize, usize), View> =
        std::collections::HashMap::new();
    let mut observations = 0usize;
    for seen in &per_thread {
        for (key, view) in seen {
            observations += 1;
            let single = &expected[key];
            assert_eq!(view, single, "{key:?} disagrees with ViewInterner");
            assert_eq!(
                view.structural_hash(),
                single.structural_hash(),
                "{key:?} hash unstable"
            );
            assert_eq!(view.tokens(), single.tokens(), "{key:?} tokens differ");
            match canonical.get(key) {
                Some(first) => assert!(
                    View::ptr_eq(first, view),
                    "{key:?} resolved to two distinct canonical nodes"
                ),
                None => {
                    canonical.insert(*key, view.clone());
                }
            }
        }
    }
    assert!(observations > THREADS * ROUNDS, "stress ran");

    // Dedup really happened: misses count exactly the distinct subtrees, and the
    // overwhelming majority of filings across threads were hits.
    let stats = shared.stats();
    assert_eq!(stats.distinct_subtrees, stats.misses as usize);
    assert!(stats.hits > stats.misses * 10, "{stats:?}");
    assert!(stats.hit_rate() > 0.9, "{stats:?}");
}

#[test]
fn concurrent_and_sequential_tables_hold_the_same_dag() {
    // Interning the whole pool concurrently or sequentially must produce tables
    // of identical size: the canonical DAG is schedule-independent.
    let graphs = graph_pool();
    let concurrent = Arc::new(SharedViewInterner::with_shards(4));
    std::thread::scope(|scope| {
        for chunk in graphs.chunks(3) {
            let concurrent = Arc::clone(&concurrent);
            scope.spawn(move || {
                for graph in chunk {
                    concurrent.build_all(graph, DEPTH);
                }
            });
        }
    });
    let sequential = SharedViewInterner::with_shards(1);
    for graph in &graphs {
        sequential.build_all(graph, DEPTH);
    }
    assert_eq!(concurrent.len(), sequential.len());
    assert_eq!(
        concurrent.stats().misses,
        sequential.stats().misses,
        "distinct-subtree counts must be schedule-independent"
    );
}
