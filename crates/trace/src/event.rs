//! The typed event taxonomy.

/// A phase of the synchronous round loop. Every backend executes rounds as
/// send → route → receive; the phases differ only in how they are scheduled, so
/// per-phase timings are comparable across backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Nodes compute and hand their per-port outboxes to the engine.
    Send,
    /// The engine moves each message to the far end of its edge (the communication
    /// phase proper; this is where messages are counted).
    Route,
    /// Nodes read their inboxes and update local state.
    Receive,
}

impl Phase {
    /// Stable lowercase label used in trace artifacts and tables.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Send => "send",
            Phase::Route => "route",
            Phase::Receive => "receive",
        }
    }

    /// All phases in execution order.
    pub const ALL: [Phase; 3] = [Phase::Send, Phase::Route, Phase::Receive];

    /// Parse a label produced by [`Phase::label`].
    pub fn from_label(label: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.label() == label)
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One trace event. Events are small `Copy` values: recording one is a couple of
/// integer stores, and a disabled sink costs a single branch.
///
/// Every variant carries a `trace_id` correlating the event with one logical run:
/// `0` for standalone runs, the request id in the multi-tenant service, the cell
/// index in a sweep artifact. [`TraceEvent::with_trace_id`] rewrites it, which is how
/// the [`Tagged`](crate::Tagged) sink stamps per-request ids without the emitting
/// layer knowing about them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEvent {
    /// A run (one simulation of `rounds` rounds on `nodes` nodes) begins.
    RunStart {
        /// Correlation id of the run.
        trace_id: u64,
        /// Number of nodes in the simulated graph.
        nodes: u64,
        /// Number of rounds the run will execute.
        rounds: u64,
    },
    /// A synchronous round begins. Rounds are 1-based, matching the paper's
    /// convention (round 0 is the initial state).
    RoundStart {
        /// Correlation id of the run.
        trace_id: u64,
        /// The 1-based round number.
        round: u64,
    },
    /// One phase of a round took `ns` nanoseconds.
    PhaseTime {
        /// Correlation id of the run.
        trace_id: u64,
        /// The 1-based round number.
        round: u64,
        /// Which phase of the round loop.
        phase: Phase,
        /// Elapsed wall-clock nanoseconds.
        ns: u64,
    },
    /// A round completed, delivering `messages` messages totalling `payload_bytes`
    /// shallow bytes (delivered count × `size_of` the message type). For bit-exact
    /// wire accounting, metered runs additionally emit [`TraceEvent::RoundWire`]
    /// with the serialised size of everything that crossed an edge this round.
    RoundEnd {
        /// Correlation id of the run.
        trace_id: u64,
        /// The 1-based round number.
        round: u64,
        /// Messages delivered in this round.
        messages: u64,
        /// Shallow payload bytes delivered in this round.
        payload_bytes: u64,
    },
    /// Bits that physically crossed the wire in one round of a *metered* run: the
    /// exact serialised length of every message under the run's `MessageCodec`,
    /// summed over all directed edges (on a capped backend, the bits of a partial
    /// chunk count in the round they were transferred). Unmetered runs never emit
    /// this event, so profiles stay byte-identical when metering is off.
    RoundWire {
        /// Correlation id of the run.
        trace_id: u64,
        /// The 1-based round number.
        round: u64,
        /// Bits on the wire in this round, summed over all directed edges.
        bits: u64,
    },
    /// A run completed.
    RunEnd {
        /// Correlation id of the run.
        trace_id: u64,
        /// Rounds executed.
        rounds: u64,
        /// Total messages delivered over the whole run.
        messages: u64,
    },
    /// Interner traffic attributable to this run: how many hash-cons lookups hit an
    /// existing entry vs created a new one while the run executed. Deltas are
    /// computed from snapshots of the shared table's counters, so under concurrent
    /// runs a delta may include a neighbour's traffic; with one worker it is exact.
    InternerDelta {
        /// Correlation id of the run.
        trace_id: u64,
        /// Lookups that found an existing entry.
        hits: u64,
        /// Lookups that inserted a new entry.
        misses: u64,
    },
    /// A service worker executed the request `trace_id` in `ns` nanoseconds.
    WorkerExecute {
        /// Correlation id (the request id).
        trace_id: u64,
        /// Index of the worker that ran it.
        worker: u64,
        /// Service time in nanoseconds.
        ns: u64,
    },
    /// A service worker stole the request `trace_id` from another worker's deque.
    WorkerSteal {
        /// Correlation id (the request id).
        trace_id: u64,
        /// Index of the stealing worker.
        worker: u64,
    },
}

impl TraceEvent {
    /// The event's correlation id.
    pub fn trace_id(&self) -> u64 {
        match *self {
            TraceEvent::RunStart { trace_id, .. }
            | TraceEvent::RoundStart { trace_id, .. }
            | TraceEvent::PhaseTime { trace_id, .. }
            | TraceEvent::RoundEnd { trace_id, .. }
            | TraceEvent::RoundWire { trace_id, .. }
            | TraceEvent::RunEnd { trace_id, .. }
            | TraceEvent::InternerDelta { trace_id, .. }
            | TraceEvent::WorkerExecute { trace_id, .. }
            | TraceEvent::WorkerSteal { trace_id, .. } => trace_id,
        }
    }

    /// The same event with its correlation id replaced.
    pub fn with_trace_id(mut self, id: u64) -> TraceEvent {
        match &mut self {
            TraceEvent::RunStart { trace_id, .. }
            | TraceEvent::RoundStart { trace_id, .. }
            | TraceEvent::PhaseTime { trace_id, .. }
            | TraceEvent::RoundEnd { trace_id, .. }
            | TraceEvent::RoundWire { trace_id, .. }
            | TraceEvent::RunEnd { trace_id, .. }
            | TraceEvent::InternerDelta { trace_id, .. }
            | TraceEvent::WorkerExecute { trace_id, .. }
            | TraceEvent::WorkerSteal { trace_id, .. } => *trace_id = id,
        }
        self
    }

    /// Stable snake_case kind tag, used as the `t` field of trace artifacts.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RunStart { .. } => "run_start",
            TraceEvent::RoundStart { .. } => "round_start",
            TraceEvent::PhaseTime { .. } => "phase",
            TraceEvent::RoundEnd { .. } => "round_end",
            TraceEvent::RoundWire { .. } => "wire",
            TraceEvent::RunEnd { .. } => "run_end",
            TraceEvent::InternerDelta { .. } => "interner",
            TraceEvent::WorkerExecute { .. } => "exec",
            TraceEvent::WorkerSteal { .. } => "steal",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_labels_round_trip() {
        for phase in Phase::ALL {
            assert_eq!(Phase::from_label(phase.label()), Some(phase));
            assert_eq!(format!("{phase}"), phase.label());
        }
        assert_eq!(Phase::from_label("compute"), None);
    }

    #[test]
    fn with_trace_id_rewrites_every_variant() {
        let events = [
            TraceEvent::RunStart {
                trace_id: 0,
                nodes: 4,
                rounds: 2,
            },
            TraceEvent::RoundStart {
                trace_id: 0,
                round: 1,
            },
            TraceEvent::PhaseTime {
                trace_id: 0,
                round: 1,
                phase: Phase::Route,
                ns: 10,
            },
            TraceEvent::RoundEnd {
                trace_id: 0,
                round: 1,
                messages: 8,
                payload_bytes: 128,
            },
            TraceEvent::RoundWire {
                trace_id: 0,
                round: 1,
                bits: 517,
            },
            TraceEvent::RunEnd {
                trace_id: 0,
                rounds: 2,
                messages: 16,
            },
            TraceEvent::InternerDelta {
                trace_id: 0,
                hits: 3,
                misses: 1,
            },
            TraceEvent::WorkerExecute {
                trace_id: 0,
                worker: 2,
                ns: 99,
            },
            TraceEvent::WorkerSteal {
                trace_id: 0,
                worker: 1,
            },
        ];
        for event in events {
            assert_eq!(event.trace_id(), 0);
            let tagged = event.with_trace_id(42);
            assert_eq!(tagged.trace_id(), 42);
            // Only the id changed: re-tagging with 0 restores the original.
            assert_eq!(tagged.with_trace_id(0), event);
        }
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds = [
            "run_start",
            "round_start",
            "phase",
            "round_end",
            "wire",
            "run_end",
            "interner",
            "exec",
            "steal",
        ];
        let mut dedup = kinds.to_vec();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), kinds.len());
    }
}
