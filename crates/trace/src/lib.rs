//! # anet-trace — round-level tracing & profiling
//!
//! Every report in this workspace used to be an endpoint aggregate: total rounds,
//! total messages, one wall time. The paper's trade-offs, however, live *inside* the
//! execution — the Kowalski–Mosteiro time-vs-communication frontier and the
//! Casteigts et al. `Θ(D + log n)` bit-rounds regime are per-round phenomena. This
//! crate is the instrument: a typed event stream emitted by the round engine, the
//! full-information collector, the `ElectionEngine` facade and the multi-tenant
//! service, consumed by anything implementing [`TraceSink`].
//!
//! The crate is std-only and sits at the bottom of the workspace dependency graph
//! (nothing here knows about graphs, views or elections), so every layer can emit
//! events without cycles.
//!
//! * [`TraceEvent`] — the event taxonomy: run/round start and end, per-phase timing
//!   (send vs route vs receive), per-round messages delivered and shallow payload
//!   bytes, interner hit/miss deltas, and service worker steal/execute events. Every
//!   event carries a `trace_id` correlating it with one run (0 for standalone runs).
//! * [`TraceSink`] — where events go. [`NoopSink`] is the zero-cost disabled path
//!   (`enabled()` is `false`, so instrumented code skips clock reads entirely);
//!   [`Recorder`] buffers events in striped per-thread buffers for later draining;
//!   [`Tagged`] stamps a fixed trace id onto every event passing through (how the
//!   service gives each request its own id).
//! * [`SpanGuard`] / [`span`] — scoped timers: start a span, and its drop records a
//!   [`TraceEvent::PhaseTime`] with the elapsed nanoseconds.
//! * [`RoundProfile`] — the aggregate consumers want: per-round message counts and
//!   per-phase nanoseconds with peak queries, built from an event stream by
//!   [`RoundProfile::from_events`] and attached to election reports.
//!
//! The disabled path is free by construction: every probe site hoists one
//! `sink.enabled()` check and emits nothing (and reads no clock) when it is `false`.
//! The equivalence suite asserts that sweep output with a [`NoopSink`] is
//! byte-identical to an untraced run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod profile;
mod sink;

pub use event::{Phase, TraceEvent};
pub use profile::{RoundProfile, RoundStat};
pub use sink::{span, NoopSink, Recorder, SpanGuard, Tagged, TraceSink};
