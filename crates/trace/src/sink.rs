//! Where events go: the sink trait, the zero-cost disabled sink, the buffering
//! recorder, the id-stamping wrapper, and scoped timers.

use crate::event::{Phase, TraceEvent};
use std::sync::Arc;
use std::sync::Mutex;
use std::time::Instant;

/// A consumer of [`TraceEvent`]s.
///
/// Probe sites hoist one [`enabled`](TraceSink::enabled) check and skip event
/// construction (and clock reads) entirely when it returns `false`, so a disabled
/// sink costs a single predictable branch per probe. `Send + Sync` is a supertrait:
/// sinks are shared across the worker threads of parallel backends and the
/// multi-tenant service.
///
/// Implementing a custom sink is a two-method affair:
///
/// ```
/// use anet_trace::{TraceEvent, TraceSink};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// /// Counts delivered messages, discarding everything else.
/// #[derive(Default)]
/// struct MessageCounter(AtomicU64);
///
/// impl TraceSink for MessageCounter {
///     fn record(&self, event: TraceEvent) {
///         if let TraceEvent::RoundEnd { messages, .. } = event {
///             self.0.fetch_add(messages, Ordering::Relaxed);
///         }
///     }
/// }
///
/// let sink = MessageCounter::default();
/// sink.record(TraceEvent::RoundEnd { trace_id: 0, round: 1, messages: 7, payload_bytes: 112 });
/// sink.record(TraceEvent::RoundStart { trace_id: 0, round: 2 });
/// assert_eq!(sink.0.load(Ordering::Relaxed), 7);
/// assert!(sink.enabled());
/// ```
pub trait TraceSink: Send + Sync {
    /// Consume one event. Called from whichever thread the probe fires on.
    fn record(&self, event: TraceEvent);

    /// Whether probe sites should emit at all. Defaults to `true`; the
    /// [`NoopSink`] overrides this to `false`, which is what makes the disabled
    /// path free (no clocks are read, no events constructed).
    fn enabled(&self) -> bool {
        true
    }
}

/// The zero-cost disabled sink: [`enabled`](TraceSink::enabled) is `false`, so
/// instrumented code emits nothing and reads no clock. `Backend::run` is exactly
/// `Backend::run_traced` with a `NoopSink`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&self, _event: TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Number of buffer stripes in a [`Recorder`]. Threads map to stripes by a hash of
/// their thread id, so concurrent emitters rarely contend on the same mutex.
const RECORDER_STRIPES: usize = 16;

/// A buffering sink: events land in striped per-thread buffers (a thread hashes to
/// one of 16 stripes, so concurrent emitters almost never share a
/// lock), and [`drain`](Recorder::drain) merges them. Within one emitting thread
/// event order is preserved; across threads the interleaving is unspecified — the
/// consumers in this workspace ([`RoundProfile`](crate::RoundProfile), the trace
/// artifacts) aggregate by `(trace_id, round)` and are order-insensitive across
/// threads.
pub struct Recorder {
    stripes: Vec<Mutex<Vec<TraceEvent>>>,
}

impl Recorder {
    /// A new, empty recorder.
    pub fn new() -> Recorder {
        Recorder {
            stripes: (0..RECORDER_STRIPES)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        }
    }

    /// Move every buffered event out of the recorder, preserving per-thread order
    /// (stripes are concatenated in index order).
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        for stripe in &self.stripes {
            events.append(&mut stripe.lock().expect("recorder stripe poisoned"));
        }
        events
    }

    /// Number of currently buffered events.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("recorder stripe poisoned").len())
            .sum()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("len", &self.len())
            .finish()
    }
}

thread_local! {
    /// Cached stripe-selection token: a hash of the current thread's id, computed
    /// once per thread so the record hot path does no hashing.
    static THREAD_TOKEN: u64 = {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut hasher);
        hasher.finish()
    };
}

impl TraceSink for Recorder {
    fn record(&self, event: TraceEvent) {
        let token = THREAD_TOKEN.with(|t| *t) as usize;
        self.stripes[token % self.stripes.len()]
            .lock()
            .expect("recorder stripe poisoned")
            .push(event);
    }
}

/// A sink wrapper that stamps a fixed trace id onto every event passing through.
/// The emitting layer keeps writing `trace_id: 0`; the wrapper rewrites it, which is
/// how the multi-tenant service gives each request its own id without the round
/// engine knowing about requests.
pub struct Tagged {
    inner: Arc<dyn TraceSink>,
    trace_id: u64,
}

impl Tagged {
    /// Wrap `inner` so every recorded event carries `trace_id`.
    pub fn new(inner: Arc<dyn TraceSink>, trace_id: u64) -> Tagged {
        Tagged { inner, trace_id }
    }
}

impl std::fmt::Debug for Tagged {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tagged")
            .field("trace_id", &self.trace_id)
            .finish()
    }
}

impl TraceSink for Tagged {
    fn record(&self, event: TraceEvent) {
        self.inner.record(event.with_trace_id(self.trace_id));
    }

    fn enabled(&self) -> bool {
        self.inner.enabled()
    }
}

/// A scoped phase timer: created by [`span`], it reads the clock on construction
/// (only if the sink is enabled) and records a [`TraceEvent::PhaseTime`] with the
/// elapsed nanoseconds when dropped.
pub struct SpanGuard<'a> {
    sink: &'a dyn TraceSink,
    trace_id: u64,
    round: u64,
    phase: Phase,
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.sink.record(TraceEvent::PhaseTime {
                trace_id: self.trace_id,
                round: self.round,
                phase: self.phase,
                ns: start.elapsed().as_nanos() as u64,
            });
        }
    }
}

/// Start a scoped timer for one phase of one round. On a disabled sink this reads
/// no clock and records nothing.
pub fn span<'a>(sink: &'a dyn TraceSink, trace_id: u64, round: u64, phase: Phase) -> SpanGuard<'a> {
    SpanGuard {
        sink,
        trace_id,
        round,
        phase,
        start: sink.enabled().then(Instant::now),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_disabled() {
        let sink = NoopSink;
        assert!(!sink.enabled());
        sink.record(TraceEvent::RoundStart {
            trace_id: 0,
            round: 1,
        });
    }

    #[test]
    fn recorder_preserves_single_thread_order() {
        let rec = Recorder::new();
        for round in 1..=5u64 {
            rec.record(TraceEvent::RoundStart { trace_id: 0, round });
        }
        assert_eq!(rec.len(), 5);
        let events = rec.drain();
        let rounds: Vec<u64> = events
            .iter()
            .map(|e| match e {
                TraceEvent::RoundStart { round, .. } => *round,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(rounds, vec![1, 2, 3, 4, 5]);
        assert!(rec.is_empty(), "drain empties the buffers");
    }

    #[test]
    fn recorder_collects_across_threads() {
        let rec = Recorder::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let rec = &rec;
                scope.spawn(move || {
                    for round in 1..=10 {
                        rec.record(TraceEvent::PhaseTime {
                            trace_id: t,
                            round,
                            phase: Phase::Route,
                            ns: 1,
                        });
                    }
                });
            }
        });
        let events = rec.drain();
        assert_eq!(events.len(), 80);
        // Every thread's events are present, in that thread's order.
        for t in 0..8u64 {
            let rounds: Vec<u64> = events
                .iter()
                .filter(|e| e.trace_id() == t)
                .map(|e| match e {
                    TraceEvent::PhaseTime { round, .. } => *round,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(rounds, (1..=10).collect::<Vec<_>>(), "thread {t}");
        }
    }

    #[test]
    fn tagged_sink_stamps_ids_and_mirrors_enabled() {
        let rec = Arc::new(Recorder::new());
        let tagged = Tagged::new(rec.clone(), 7);
        assert!(tagged.enabled());
        tagged.record(TraceEvent::RunEnd {
            trace_id: 0,
            rounds: 2,
            messages: 12,
        });
        assert_eq!(rec.drain()[0].trace_id(), 7);
        let noop = Tagged::new(Arc::new(NoopSink), 7);
        assert!(!noop.enabled());
    }

    #[test]
    fn span_records_phase_time_on_drop() {
        let rec = Recorder::new();
        {
            let _guard = span(&rec, 3, 2, Phase::Send);
        }
        let events = rec.drain();
        assert_eq!(events.len(), 1);
        match events[0] {
            TraceEvent::PhaseTime {
                trace_id,
                round,
                phase,
                ..
            } => {
                assert_eq!((trace_id, round, phase), (3, 2, Phase::Send));
            }
            other => panic!("unexpected event {other:?}"),
        }
        // Disabled sink: no clock read, no event.
        {
            let _guard = span(&NoopSink, 0, 1, Phase::Route);
        }
    }
}
