//! Aggregating an event stream into the per-round profile reports carry.

use crate::event::{Phase, TraceEvent};
use std::collections::BTreeMap;

/// One round's aggregate: messages delivered, shallow payload bytes, and wall-clock
/// nanoseconds per phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundStat {
    /// The 1-based round number.
    pub round: u64,
    /// Messages delivered in this round.
    pub messages: u64,
    /// Shallow payload bytes delivered in this round (delivered count × message
    /// size; see [`TraceEvent::RoundEnd`]).
    pub payload_bytes: u64,
    /// Nanoseconds spent in the send phase.
    pub send_ns: u64,
    /// Nanoseconds spent in the routing phase.
    pub route_ns: u64,
    /// Nanoseconds spent in the receive phase.
    pub receive_ns: u64,
    /// Bits that crossed the wire in this round, summed over all directed edges —
    /// exact serialised sizes under the run's codec ([`TraceEvent::RoundWire`]).
    /// Zero on unmetered runs, which never emit wire events.
    pub wire_bits: u64,
}

impl RoundStat {
    /// Nanoseconds spent in the given phase.
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        match phase {
            Phase::Send => self.send_ns,
            Phase::Route => self.route_ns,
            Phase::Receive => self.receive_ns,
        }
    }

    /// Total nanoseconds across all three phases.
    pub fn total_ns(&self) -> u64 {
        self.send_ns + self.route_ns + self.receive_ns
    }
}

/// A per-round profile of one (or several merged) runs: message counts, payload
/// bytes and per-phase nanoseconds for every executed round, with peak queries.
///
/// Built from a recorded event stream; rounds are kept sorted by round number. The
/// engine attaches one of these to `ElectionReport` when tracing or profiling is
/// requested, and the equivalence suite asserts that
/// [`total_messages`](RoundProfile::total_messages) equals the report's
/// `messages_delivered` on every backend.
///
/// ```
/// use anet_trace::{Phase, RoundProfile, TraceEvent};
///
/// let events = [
///     TraceEvent::RoundEnd { trace_id: 0, round: 1, messages: 6, payload_bytes: 96 },
///     TraceEvent::PhaseTime { trace_id: 0, round: 1, phase: Phase::Route, ns: 1500 },
///     TraceEvent::RoundEnd { trace_id: 0, round: 2, messages: 10, payload_bytes: 160 },
/// ];
/// let profile = RoundProfile::from_events(&events);
/// assert_eq!(profile.len(), 2);
/// assert_eq!(profile.total_messages(), 16);
/// assert_eq!(profile.peak_messages().unwrap().round, 2);
/// assert_eq!(profile.phase_ns(Phase::Route), 1500);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundProfile {
    rounds: Vec<RoundStat>,
}

impl RoundProfile {
    /// Aggregate an event stream into per-round stats, regardless of trace id (use
    /// [`RoundProfile::for_trace`] to restrict to one run). Only round-scoped
    /// events contribute; run markers, interner deltas and worker events are
    /// ignored. Order-insensitive: timings and counts for the same round
    /// accumulate.
    pub fn from_events(events: &[TraceEvent]) -> RoundProfile {
        let mut rounds: BTreeMap<u64, RoundStat> = BTreeMap::new();
        fn stat(rounds: &mut BTreeMap<u64, RoundStat>, round: u64) -> &mut RoundStat {
            let entry = rounds.entry(round).or_default();
            entry.round = round;
            entry
        }
        for event in events {
            match *event {
                TraceEvent::PhaseTime {
                    round, phase, ns, ..
                } => match phase {
                    Phase::Send => stat(&mut rounds, round).send_ns += ns,
                    Phase::Route => stat(&mut rounds, round).route_ns += ns,
                    Phase::Receive => stat(&mut rounds, round).receive_ns += ns,
                },
                TraceEvent::RoundEnd {
                    round,
                    messages,
                    payload_bytes,
                    ..
                } => {
                    let s = stat(&mut rounds, round);
                    s.messages += messages;
                    s.payload_bytes += payload_bytes;
                }
                TraceEvent::RoundWire { round, bits, .. } => {
                    stat(&mut rounds, round).wire_bits += bits;
                }
                TraceEvent::RoundStart { round, .. } => {
                    stat(&mut rounds, round);
                }
                TraceEvent::RunStart { .. }
                | TraceEvent::RunEnd { .. }
                | TraceEvent::InternerDelta { .. }
                | TraceEvent::WorkerExecute { .. }
                | TraceEvent::WorkerSteal { .. } => {}
            }
        }
        RoundProfile {
            rounds: rounds.into_values().collect(),
        }
    }

    /// [`RoundProfile::from_events`] restricted to events of one trace id.
    pub fn for_trace(events: &[TraceEvent], trace_id: u64) -> RoundProfile {
        let filtered: Vec<TraceEvent> = events
            .iter()
            .copied()
            .filter(|e| e.trace_id() == trace_id)
            .collect();
        RoundProfile::from_events(&filtered)
    }

    /// The per-round stats, sorted by round number.
    pub fn rounds(&self) -> &[RoundStat] {
        &self.rounds
    }

    /// Number of profiled rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether no rounds were profiled (analytic solvers simulate nothing).
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Sum of per-round message counts. The equivalence suite checks this equals
    /// the report-level `messages_delivered` exactly.
    pub fn total_messages(&self) -> u64 {
        self.rounds.iter().map(|r| r.messages).sum()
    }

    /// Sum of per-round shallow payload bytes.
    pub fn total_payload_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.payload_bytes).sum()
    }

    /// Sum of per-round wire bits — the run's total bits-on-the-wire under its
    /// codec. Zero for unmetered runs. The transport equivalence suite checks this
    /// reconciles exactly with the report's per-edge counters.
    pub fn total_wire_bits(&self) -> u64 {
        self.rounds.iter().map(|r| r.wire_bits).sum()
    }

    /// Total nanoseconds spent in the given phase across all rounds.
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.rounds.iter().map(|r| r.phase_ns(phase)).sum()
    }

    /// The round that delivered the most messages (first such round on ties).
    pub fn peak_messages(&self) -> Option<&RoundStat> {
        self.rounds.iter().max_by(|a, b| {
            a.messages.cmp(&b.messages).then(b.round.cmp(&a.round)) // prefer the earlier round on ties
        })
    }

    /// The most expensive round by summed phase nanoseconds (first on ties).
    pub fn peak_time(&self) -> Option<&RoundStat> {
        self.rounds
            .iter()
            .max_by(|a, b| a.total_ns().cmp(&b.total_ns()).then(b.round.cmp(&a.round)))
    }

    /// Re-emit the profile as a canonical event stream under the given trace id:
    /// per round, a `RoundStart`, one `PhaseTime` per phase, and a `RoundEnd`. This
    /// is how the sweep driver serialises per-cell profiles into the trace
    /// artifact; `RoundProfile::from_events(&p.to_events(id))` reproduces `p`.
    pub fn to_events(&self, trace_id: u64) -> Vec<TraceEvent> {
        let mut events = Vec::with_capacity(self.rounds.len() * 5);
        for stat in &self.rounds {
            events.push(TraceEvent::RoundStart {
                trace_id,
                round: stat.round,
            });
            for phase in Phase::ALL {
                events.push(TraceEvent::PhaseTime {
                    trace_id,
                    round: stat.round,
                    phase,
                    ns: stat.phase_ns(phase),
                });
            }
            events.push(TraceEvent::RoundEnd {
                trace_id,
                round: stat.round,
                messages: stat.messages,
                payload_bytes: stat.payload_bytes,
            });
            // Only metered rounds re-emit a wire event, so unmetered profiles
            // replay to exactly the stream an unmetered run records.
            if stat.wire_bits > 0 {
                events.push(TraceEvent::RoundWire {
                    trace_id,
                    round: stat.round,
                    bits: stat.wire_bits,
                });
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RunStart {
                trace_id: 0,
                nodes: 4,
                rounds: 2,
            },
            TraceEvent::RoundStart {
                trace_id: 0,
                round: 1,
            },
            TraceEvent::PhaseTime {
                trace_id: 0,
                round: 1,
                phase: Phase::Send,
                ns: 100,
            },
            TraceEvent::PhaseTime {
                trace_id: 0,
                round: 1,
                phase: Phase::Route,
                ns: 200,
            },
            TraceEvent::PhaseTime {
                trace_id: 0,
                round: 1,
                phase: Phase::Receive,
                ns: 300,
            },
            TraceEvent::RoundEnd {
                trace_id: 0,
                round: 1,
                messages: 8,
                payload_bytes: 128,
            },
            TraceEvent::RoundStart {
                trace_id: 0,
                round: 2,
            },
            TraceEvent::PhaseTime {
                trace_id: 0,
                round: 2,
                phase: Phase::Route,
                ns: 50,
            },
            TraceEvent::RoundEnd {
                trace_id: 0,
                round: 2,
                messages: 6,
                payload_bytes: 96,
            },
            TraceEvent::RunEnd {
                trace_id: 0,
                rounds: 2,
                messages: 14,
            },
        ]
    }

    #[test]
    fn from_events_aggregates_per_round() {
        let profile = RoundProfile::from_events(&sample_events());
        assert_eq!(profile.len(), 2);
        let r1 = profile.rounds()[0];
        assert_eq!(r1.round, 1);
        assert_eq!(r1.messages, 8);
        assert_eq!(r1.payload_bytes, 128);
        assert_eq!((r1.send_ns, r1.route_ns, r1.receive_ns), (100, 200, 300));
        assert_eq!(r1.total_ns(), 600);
        assert_eq!(profile.total_messages(), 14);
        assert_eq!(profile.total_payload_bytes(), 224);
        assert_eq!(profile.phase_ns(Phase::Route), 250);
    }

    #[test]
    fn peaks_prefer_the_earlier_round_on_ties() {
        let profile = RoundProfile::from_events(&sample_events());
        assert_eq!(profile.peak_messages().unwrap().round, 1);
        assert_eq!(profile.peak_time().unwrap().round, 1);
        let tied = RoundProfile::from_events(&[
            TraceEvent::RoundEnd {
                trace_id: 0,
                round: 1,
                messages: 5,
                payload_bytes: 0,
            },
            TraceEvent::RoundEnd {
                trace_id: 0,
                round: 2,
                messages: 5,
                payload_bytes: 0,
            },
        ]);
        assert_eq!(tied.peak_messages().unwrap().round, 1);
    }

    #[test]
    fn for_trace_filters_by_id() {
        let mut events = sample_events();
        events.push(TraceEvent::RoundEnd {
            trace_id: 9,
            round: 1,
            messages: 1000,
            payload_bytes: 0,
        });
        let all = RoundProfile::from_events(&events);
        assert_eq!(all.total_messages(), 1014, "from_events merges ids");
        let only_zero = RoundProfile::for_trace(&events, 0);
        assert_eq!(only_zero.total_messages(), 14);
        let only_nine = RoundProfile::for_trace(&events, 9);
        assert_eq!(only_nine.total_messages(), 1000);
    }

    #[test]
    fn to_events_round_trips() {
        let profile = RoundProfile::from_events(&sample_events());
        let replayed = profile.to_events(3);
        assert!(replayed.iter().all(|e| e.trace_id() == 3));
        assert_eq!(RoundProfile::from_events(&replayed), profile);
    }

    #[test]
    fn wire_events_aggregate_and_replay() {
        let mut events = sample_events();
        events.push(TraceEvent::RoundWire {
            trace_id: 0,
            round: 1,
            bits: 300,
        });
        events.push(TraceEvent::RoundWire {
            trace_id: 0,
            round: 1,
            bits: 17,
        });
        let profile = RoundProfile::from_events(&events);
        assert_eq!(profile.rounds()[0].wire_bits, 317);
        assert_eq!(profile.rounds()[1].wire_bits, 0);
        assert_eq!(profile.total_wire_bits(), 317);
        // Round-trip holds with a mix of metered and unmetered rounds.
        assert_eq!(RoundProfile::from_events(&profile.to_events(7)), profile);
        // Unmetered profiles replay without any wire events at all.
        let unmetered = RoundProfile::from_events(&sample_events());
        assert!(unmetered
            .to_events(0)
            .iter()
            .all(|e| !matches!(e, TraceEvent::RoundWire { .. })));
    }

    #[test]
    fn empty_profile_has_no_peaks() {
        let profile = RoundProfile::from_events(&[]);
        assert!(profile.is_empty());
        assert_eq!(profile.peak_messages(), None);
        assert_eq!(profile.peak_time(), None);
        assert_eq!(profile.total_messages(), 0);
    }
}
