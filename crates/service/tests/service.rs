//! Behavioural tests of the election service: admission, backpressure, panic
//! containment, cross-tenant interner sharing, and worker-count independence.

use anet_election::engine::{EngineError, MapSolver, Solver, SolverRun};
use anet_election::tasks::Task;
use anet_graph::{generators, PortGraph};
use anet_service::{
    ElectionRequest, ElectionService, RejectReason, ServiceConfig, SolverRecipe, Submission,
};
use anet_sim::Backend;
use std::time::Duration;

fn feasible_mix() -> Vec<ElectionRequest> {
    // Three tenants, three shapes, several shades — all feasible, all tiny.
    let mut requests = Vec::new();
    for (i, task) in [Task::Selection, Task::PortElection, Task::Selection]
        .into_iter()
        .enumerate()
    {
        requests.push(ElectionRequest::new(
            "tenant-ring",
            format!("ring-{i}"),
            generators::oriented_ring(&[true, true, false, true, false]).unwrap(),
            task,
            SolverRecipe::map(),
            Backend::Sequential,
        ));
        requests.push(ElectionRequest::new(
            "tenant-star",
            format!("star-{i}"),
            generators::star(4 + i).unwrap(),
            Task::Selection,
            SolverRecipe::map(),
            Backend::Batching,
        ));
        requests.push(ElectionRequest::new(
            "tenant-line",
            format!("line-{i}"),
            generators::paper_three_node_line(),
            task,
            SolverRecipe::map(),
            Backend::parallel(2),
        ));
    }
    requests
}

#[test]
fn batch_of_feasible_requests_all_solve_in_submission_order() {
    let (completed, report) = ElectionService::run_batch(ServiceConfig::default(), feasible_mix());
    assert_eq!(completed.len(), 9);
    assert!(completed.iter().all(|c| c.solved()), "{report:?}");
    let ids: Vec<u64> = completed.iter().map(|c| c.id).collect();
    assert_eq!(ids, (0..9).collect::<Vec<u64>>(), "sorted by submission id");
    assert_eq!(report.submitted, 9);
    assert_eq!(report.solved, 9);
    assert_eq!(report.failed, 0);
    assert_eq!(report.turnaround_latency.count, 9);
    assert!(report.elections_per_sec > 0.0);
    assert_eq!(report.executed_per_worker.iter().sum::<u64>(), 9);
}

#[test]
fn results_are_independent_of_worker_count() {
    let run = |workers| {
        let (completed, _) = ElectionService::run_batch(
            ServiceConfig {
                workers,
                ..ServiceConfig::default()
            },
            feasible_mix(),
        );
        completed
    };
    let single = run(1);
    let pooled = run(4);
    assert_eq!(single.len(), pooled.len());
    for (a, b) in single.iter().zip(pooled.iter()) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.tenant, b.tenant);
        assert_eq!(a.name, b.name);
        assert_eq!(a.solved(), b.solved());
        let (ra, rb) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
        assert_eq!(ra.outputs, rb.outputs, "{}", a.name);
        assert_eq!(ra.rounds, rb.rounds);
        assert_eq!(ra.messages_delivered, rb.messages_delivered);
        assert_eq!(ra.leader(), rb.leader());
    }
}

#[test]
fn closed_service_rejects_and_returns_the_request() {
    let service = ElectionService::new(ServiceConfig::with_workers(1));
    service.close();
    let submission = service.submit(ElectionRequest::new(
        "tenant",
        "late",
        generators::star(3).unwrap(),
        Task::Selection,
        SolverRecipe::map(),
        Backend::Sequential,
    ));
    match submission {
        Submission::Rejected {
            request, reason, ..
        } => {
            assert_eq!(reason, RejectReason::Closed);
            assert_eq!(request.name, "late");
            assert_eq!(request.graph.num_nodes(), 4);
        }
        Submission::Enqueued { .. } => panic!("closed service must not admit"),
    }
    let (completed, report) = service.shutdown();
    assert!(completed.is_empty());
    assert_eq!(report.rejected, 1);
}

/// A solver that sleeps before delegating, to hold a worker busy deterministically.
struct SleepySolver(Duration);

impl Solver for SleepySolver {
    fn name(&self) -> String {
        "sleepy".to_string()
    }
    fn solve(
        &self,
        graph: &PortGraph,
        task: Task,
        backend: Backend,
    ) -> Result<SolverRun, EngineError> {
        std::thread::sleep(self.0);
        MapSolver::default().solve(graph, task, backend)
    }
}

#[test]
fn full_queue_rejects_with_typed_backpressure() {
    // One worker, capacity one. The sleepy request occupies the worker; the next
    // request fills the queue; the one after that must bounce.
    let service = ElectionService::new(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServiceConfig::default()
    });
    let sleepy = ElectionRequest::new(
        "tenant",
        "sleepy",
        generators::paper_three_node_line(),
        Task::Selection,
        SolverRecipe::new(
            "sleepy",
            Box::new(|| Box::new(SleepySolver(Duration::from_millis(400)))),
        ),
        Backend::Sequential,
    );
    assert!(service.submit(sleepy).is_enqueued());
    // Give the worker time to pick the sleepy job up (freeing the queue slot).
    std::thread::sleep(Duration::from_millis(100));
    let tiny = |name: &str| {
        ElectionRequest::new(
            "tenant",
            name,
            generators::star(3).unwrap(),
            Task::Selection,
            SolverRecipe::map(),
            Backend::Sequential,
        )
    };
    assert!(service.submit(tiny("fits")).is_enqueued());
    match service.submit(tiny("bounced")) {
        Submission::Rejected {
            request,
            reason,
            queue_depth,
            capacity,
        } => {
            assert_eq!(reason, RejectReason::QueueFull);
            assert_eq!(request.name, "bounced");
            assert_eq!(capacity, 1);
            assert!(queue_depth >= capacity);
        }
        Submission::Enqueued { .. } => panic!("over-capacity submission must bounce"),
    }
    let (completed, report) = service.shutdown();
    // Admitted work all ran; the bounced request never did.
    assert_eq!(completed.len(), 2);
    assert!(completed.iter().all(|c| c.solved()));
    assert_eq!(report.rejected, 1);
    assert_eq!(report.max_queue_depth, 1);
}

#[test]
fn overlapping_waits_finish_faster_on_more_workers() {
    // The machine-independent form of the pool's speedup claim: requests that
    // *wait* overlap across workers even on a single core, so eight 40ms sleeps
    // take ≥ 320ms of wall on one worker but ~2 × 40ms on four.
    let mix = |n: usize| {
        (0..n)
            .map(|i| {
                ElectionRequest::new(
                    "tenant",
                    format!("sleepy-{i}"),
                    generators::paper_three_node_line(),
                    Task::Selection,
                    SolverRecipe::new(
                        "sleepy",
                        Box::new(|| Box::new(SleepySolver(Duration::from_millis(40)))),
                    ),
                    Backend::Sequential,
                )
            })
            .collect::<Vec<_>>()
    };
    let timed = |workers: usize| {
        let started = std::time::Instant::now();
        let (completed, _) = ElectionService::run_batch(
            ServiceConfig {
                workers,
                ..ServiceConfig::default()
            },
            mix(8),
        );
        assert!(completed.iter().all(|c| c.solved()));
        started.elapsed()
    };
    let single = timed(1);
    let pooled = timed(4);
    assert!(
        pooled < single / 2,
        "four workers must overlap the waits: pooled {pooled:?} vs single {single:?}"
    );
}

#[test]
fn a_panicking_solver_costs_one_request_not_a_worker() {
    let service = ElectionService::new(ServiceConfig::with_workers(2));
    // The unguarded Theorem 2.2 oracle panics on infeasible graphs (no finite
    // Selection index) — exactly what a tenant could submit by accident.
    assert!(service
        .submit(ElectionRequest::new(
            "tenant-bad",
            "symmetric-ring",
            generators::symmetric_ring(6).unwrap(),
            Task::Selection,
            SolverRecipe::advice(),
            Backend::Sequential,
        ))
        .is_enqueued());
    // The service must keep serving afterwards.
    assert!(service
        .submit(ElectionRequest::new(
            "tenant-good",
            "star",
            generators::star(4).unwrap(),
            Task::Selection,
            SolverRecipe::map(),
            Backend::Sequential,
        ))
        .is_enqueued());
    let (completed, report) = service.shutdown();
    assert_eq!(completed.len(), 2);
    let bad = &completed[0];
    assert!(!bad.solved());
    let message = bad.outcome.as_ref().unwrap_err();
    assert!(message.contains("panicked"), "{message}");
    assert!(completed[1].solved());
    assert_eq!(report.failed, 1);
    assert_eq!(report.solved, 1);
}

#[test]
fn tenants_on_overlapping_families_share_interned_subtrees() {
    // Two tenants submit isomorphic rings: the second tenant's views must hit the
    // table the first tenant populated.
    let ring = || generators::oriented_ring(&[true, true, false, true, false]).unwrap();
    let requests = vec![
        ElectionRequest::new(
            "tenant-a",
            "ring",
            ring(),
            Task::Selection,
            SolverRecipe::map(),
            Backend::Sequential,
        ),
        ElectionRequest::new(
            "tenant-b",
            "ring-again",
            ring(),
            Task::Selection,
            SolverRecipe::map(),
            Backend::Sequential,
        ),
    ];
    let (completed, report) = ElectionService::run_batch(ServiceConfig::with_workers(1), requests);
    assert!(completed.iter().all(|c| c.solved()));
    assert!(
        report.interner.hits > 0,
        "cross-tenant dedup must register hits: {:?}",
        report.interner
    );
    assert!(report.interner.hit_rate() > 0.0);
}

#[test]
fn advice_solvers_through_the_service_report_bits() {
    let (completed, _) = ElectionService::run_batch(
        ServiceConfig::with_workers(2),
        vec![
            ElectionRequest::new(
                "tenant",
                "star-tree",
                generators::star(5).unwrap(),
                Task::Selection,
                SolverRecipe::advice(),
                Backend::Sequential,
            ),
            ElectionRequest::new(
                "tenant",
                "star-dag",
                generators::star(5).unwrap(),
                Task::Selection,
                SolverRecipe::advice_dag(),
                Backend::Sequential,
            ),
        ],
    );
    assert_eq!(completed.len(), 2);
    for c in &completed {
        assert!(c.solved(), "{}: {:?}", c.name, c.outcome);
        let report = c.outcome.as_ref().unwrap();
        assert!(report.advice_bits.unwrap() > 0);
    }
    // Same election, different codec: identical outputs.
    assert_eq!(
        completed[0].outcome.as_ref().unwrap().outputs,
        completed[1].outcome.as_ref().unwrap().outputs,
    );
}
