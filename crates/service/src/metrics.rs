//! Latency and throughput metrics of a service run.
//!
//! Everything here is computed *after* the fact from per-request samples — the hot
//! path only records three `Instant`s per request (submitted, started, finished),
//! so metrics cost nothing while the scheduler runs.

// anet-lint: deny(panic-path)

use anet_views::InternerStats;
use std::time::Duration;

/// Order statistics over a set of latency samples.
///
/// Percentiles use the nearest-rank method on the sorted samples
/// (`sorted[round(q · (n − 1))]`), which is deterministic and exact for the small
/// sample counts a service run produces (no interpolation, no sketches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median (50th percentile).
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Maximum sample.
    pub max: Duration,
}

impl LatencyStats {
    /// Compute the statistics from raw samples. An empty sample set yields all
    /// zeros with `count == 0`.
    pub fn from_samples(mut samples: Vec<Duration>) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_unstable();
        let count = samples.len();
        let total: Duration = samples.iter().sum();
        let at = |q: f64| {
            let rank = (q * (count - 1) as f64).round() as usize;
            samples[rank.min(count - 1)]
        };
        LatencyStats {
            count,
            mean: total / count as u32,
            p50: at(0.50),
            p95: at(0.95),
            p99: at(0.99),
            max: samples[count - 1],
        }
    }
}

/// Per-tenant slice of a service run: how much of the batch one tenant
/// submitted and how it fared. Tenant counts partition the batch — summed over
/// all breakdowns they reproduce the report totals exactly, which the service
/// tests assert.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantBreakdown {
    /// The tenant label requests carried.
    pub tenant: String,
    /// Requests of this tenant that a worker executed.
    pub executed: u64,
    /// Executed requests that produced a verified solution.
    pub solved: u64,
    /// Executed requests that failed (solver error or caught panic).
    pub failed: u64,
    /// Queue-wait latency of this tenant's requests.
    pub queue_latency: LatencyStats,
    /// End-to-end latency of this tenant's requests.
    pub turnaround_latency: LatencyStats,
}

/// Aggregate report of one service run, produced by
/// [`crate::ElectionService::shutdown`].
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Number of scheduler workers the service ran with.
    pub workers: usize,
    /// Per-run thread budget applied to every election's backend.
    pub thread_budget: usize,
    /// Requests admitted (== ids assigned == completed elections).
    pub submitted: u64,
    /// Requests rejected at admission (queue full or service closed).
    pub rejected: u64,
    /// Admitted requests that produced a verified solution.
    pub solved: u64,
    /// Admitted requests that failed (solver error or caught panic).
    ///
    /// `solved + failed` can fall short of `submitted`: an election whose solver
    /// ran to completion but whose outputs the verifier rejected (e.g. a stronger
    /// shade requested on a graph that only supports a weaker one) is neither —
    /// see [`unsolved`](ServiceReport::unsolved), mirroring the sweep's
    /// "unsolved cell" semantics.
    pub failed: u64,
    /// Wall-clock lifetime of the service (construction to shutdown).
    pub wall: Duration,
    /// Completed elections per wall-clock second.
    pub elections_per_sec: f64,
    /// Queue-wait latency (submission to pickup).
    pub queue_latency: LatencyStats,
    /// End-to-end latency (submission to completion).
    pub turnaround_latency: LatencyStats,
    /// Highest queue depth observed at any admission.
    pub max_queue_depth: usize,
    /// Jobs each worker executed, indexed by worker id.
    pub executed_per_worker: Vec<u64>,
    /// Number of jobs a worker took from another worker's deque.
    pub steals: u64,
    /// Hit/miss counters of the shared view interner — the cross-tenant dedup
    /// measurement ([`InternerStats::hit_rate`] > 0 means tenants shared subtrees).
    /// Kept global (not per tenant): the table is shared, so per-tenant deltas
    /// would double-count cross-tenant hits.
    pub interner: InternerStats,
    /// Per-tenant breakdown, sorted by tenant label. `executed`, `solved` and
    /// `failed` summed across tenants equal [`submitted`](ServiceReport::submitted),
    /// [`solved`](ServiceReport::solved) and [`failed`](ServiceReport::failed).
    pub tenants: Vec<TenantBreakdown>,
}

impl ServiceReport {
    /// Elections that completed without error but whose outputs the verifier
    /// rejected: `submitted - solved - failed`.
    pub fn unsolved(&self) -> u64 {
        self.submitted - self.solved - self.failed
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} elections ({} solved, {} failed, {} rejected) on {} workers in {:?}: \
             {:.1} elections/s, turnaround p50 {:?} / p95 {:?} / p99 {:?}, \
             {} steals, peak queue {}, interner hit-rate {:.1}%",
            self.submitted,
            self.solved,
            self.failed,
            self.rejected,
            self.workers,
            self.wall,
            self.elections_per_sec,
            self.turnaround_latency.p50,
            self.turnaround_latency.p95,
            self.turnaround_latency.p99,
            self.steals,
            self.max_queue_depth,
            self.interner.hit_rate() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples_yield_zeroed_stats() {
        let stats = LatencyStats::from_samples(Vec::new());
        assert_eq!(stats.count, 0);
        assert_eq!(stats.p99, Duration::ZERO);
    }

    #[test]
    fn percentiles_are_order_statistics_of_the_samples() {
        // 1ms..=100ms: every percentile must be one of the samples.
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        let stats = LatencyStats::from_samples(samples.clone());
        assert_eq!(stats.count, 100);
        assert_eq!(stats.p50, Duration::from_millis(51)); // round(0.5 * 99) = 50 → 51ms
        assert_eq!(stats.p95, Duration::from_millis(95));
        assert_eq!(stats.p99, Duration::from_millis(99));
        assert_eq!(stats.max, Duration::from_millis(100));
        assert_eq!(stats.mean, Duration::from_micros(50_500));
        // Order of arrival must not matter.
        let mut shuffled = samples;
        shuffled.reverse();
        assert_eq!(stats, LatencyStats::from_samples(shuffled));
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let stats = LatencyStats::from_samples(vec![Duration::from_millis(7)]);
        assert_eq!(stats.p50, Duration::from_millis(7));
        assert_eq!(stats.p99, Duration::from_millis(7));
        assert_eq!(stats.max, Duration::from_millis(7));
        assert_eq!(stats.mean, Duration::from_millis(7));
    }
}
