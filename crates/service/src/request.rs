//! Request and response types of the election service.
//!
//! A tenant submits an [`ElectionRequest`]: a concrete graph, one of the paper's
//! four task shades, a solver recipe and an execution backend — exactly the four
//! axes of the `Election` facade, which is what the worker ultimately drives. The
//! service answers every submission *synchronously* with a typed [`Submission`]:
//! either `Enqueued` (with the assigned request id) or `Rejected` (with the
//! request handed back intact, so the caller can retry, reroute or drop it — the
//! service never silently discards work it admitted, and never admits work it
//! cannot queue).

// anet-lint: deny(panic-path)

use anet_election::engine::{AdviceSolver, ElectionReport, MapSolver, Solver};
use anet_election::tasks::Task;
use anet_graph::PortGraph;
use anet_sim::Backend;
use std::time::Duration;

/// Builds one solver instance per execution of a request.
///
/// Requests carry a *factory* rather than a solver because [`Solver`] trait objects
/// are neither `Send` nor reusable across runs in general, while requests must
/// travel to whichever worker steals them. The factory is called exactly once per
/// execution, on the worker thread.
pub type SolverFactory = Box<dyn Fn() -> Box<dyn Solver> + Send + Sync>;

/// A solver recipe: a display label plus the [`SolverFactory`] that realises it.
pub struct SolverRecipe {
    label: String,
    factory: SolverFactory,
}

impl SolverRecipe {
    /// A recipe from an explicit label and factory (for custom solvers).
    pub fn new(label: impl Into<String>, factory: SolverFactory) -> Self {
        SolverRecipe {
            label: label.into(),
            factory,
        }
    }

    /// The map-based minimum-time baseline with the default path budget.
    pub fn map() -> Self {
        SolverRecipe::new("map", Box::new(|| Box::new(MapSolver::default())))
    }

    /// The map-based baseline with an explicit simple-path enumeration budget.
    pub fn map_with_budget(max_paths: usize) -> Self {
        SolverRecipe::new("map", Box::new(move || Box::new(MapSolver::new(max_paths))))
    }

    /// The Theorem 2.2 advice pair (unfolded-tree codec). The underlying oracle
    /// panics on graphs with no finite Selection index; the service catches the
    /// panic and reports the request as failed rather than losing a worker.
    pub fn advice() -> Self {
        SolverRecipe::new("advice", Box::new(|| Box::new(AdviceSolver::theorem_2_2())))
    }

    /// The Theorem 2.2 advice pair shipping the shared-DAG codec.
    pub fn advice_dag() -> Self {
        SolverRecipe::new(
            "advice-dag",
            Box::new(|| Box::new(AdviceSolver::theorem_2_2_dag())),
        )
    }

    /// The display label (used in completed-election records and reports).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Instantiate the solver for one execution.
    pub(crate) fn build(&self) -> Box<dyn Solver> {
        (self.factory)()
    }
}

impl std::fmt::Debug for SolverRecipe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverRecipe")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

/// One unit of work for the service: which tenant wants which task solved by which
/// solver on which graph, on which backend.
#[derive(Debug)]
pub struct ElectionRequest {
    /// The submitting tenant (reports group hit-rates and latency by tenant label).
    pub tenant: String,
    /// Instance name, e.g. `torus-4x4/shuffled` (free-form, for reports).
    pub name: String,
    /// The network to elect on.
    pub graph: PortGraph,
    /// The requested task shade.
    pub task: Task,
    /// The solver recipe to run.
    pub solver: SolverRecipe,
    /// The execution backend for the solver's communication rounds.
    pub backend: Backend,
}

impl ElectionRequest {
    /// A request with the given axes.
    pub fn new(
        tenant: impl Into<String>,
        name: impl Into<String>,
        graph: PortGraph,
        task: Task,
        solver: SolverRecipe,
        backend: Backend,
    ) -> Self {
        ElectionRequest {
            tenant: tenant.into(),
            name: name.into(),
            graph,
            task,
            solver,
            backend,
        }
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The admission queue is at capacity; retry after the backlog drains.
    QueueFull,
    /// The service has been closed to new work (it still finishes admitted work).
    Closed,
}

/// The synchronous answer to [`crate::ElectionService::submit`].
#[derive(Debug)]
pub enum Submission {
    /// The request was admitted and will be executed.
    Enqueued {
        /// The id assigned to the request — results carry it, and completed
        /// elections are returned sorted by it (submission order), which is what
        /// makes service output independent of worker count.
        id: u64,
        /// Queue depth *after* this admission (admitted but not yet started).
        queue_depth: usize,
    },
    /// The request was not admitted; it is handed back unchanged.
    Rejected {
        /// The rejected request, intact, for the caller to retry or reroute.
        request: ElectionRequest,
        /// Why it was rejected.
        reason: RejectReason,
        /// Queue depth observed at rejection time.
        queue_depth: usize,
        /// The configured admission capacity.
        capacity: usize,
    },
}

impl Submission {
    /// The assigned id, when admitted.
    pub fn id(&self) -> Option<u64> {
        match self {
            Submission::Enqueued { id, .. } => Some(*id),
            Submission::Rejected { .. } => None,
        }
    }

    /// Was the request admitted?
    pub fn is_enqueued(&self) -> bool {
        matches!(self, Submission::Enqueued { .. })
    }
}

/// The result of one admitted request, as returned by
/// [`crate::ElectionService::shutdown`] (sorted by [`id`](CompletedElection::id)).
#[derive(Debug)]
pub struct CompletedElection {
    /// The id assigned at admission (submission order).
    pub id: u64,
    /// Tenant label of the submitting tenant.
    pub tenant: String,
    /// Instance name from the request.
    pub name: String,
    /// Solver label from the request's recipe.
    pub solver: String,
    /// The requested task shade.
    pub task: Task,
    /// The configured backend.
    pub backend: Backend,
    /// Time spent waiting in the queue before a worker picked the request up.
    pub queue_wait: Duration,
    /// Time the worker spent executing the election (the facade's solve+verify).
    pub service_time: Duration,
    /// End-to-end latency: submission to completion (`queue_wait + service_time`).
    pub turnaround: Duration,
    /// The election outcome: a full [`ElectionReport`], or the failure rendered as
    /// a string (solver error, or a panic caught on the worker).
    pub outcome: Result<ElectionReport, String>,
}

impl CompletedElection {
    /// Did the run produce a verified solution?
    pub fn solved(&self) -> bool {
        self.outcome.as_ref().map(|r| r.solved()).unwrap_or(false)
    }
}
