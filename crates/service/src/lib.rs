//! # anet-service — a multi-tenant election service
//!
//! Everything below the workspace's `ElectionEngine` facade answers one question
//! about one graph. This crate answers many at once: an [`ElectionService`] accepts
//! a stream of [`ElectionRequest`]s — graph × task shade × solver recipe ×
//! execution backend, exactly the facade's axes — from any number of tenants, and
//! schedules them across a work-stealing worker pool with bounded-queue
//! backpressure and one process-wide [`anet_views::SharedViewInterner`].
//!
//! The three ideas, and where they live:
//!
//! * **Work-stealing scheduling** ([`service`]) — per-worker striped-mutex deques;
//!   pop-own-front, steal-others-back. Election runs vary by orders of magnitude
//!   across graph families, so stealing is what keeps the pool busy when one
//!   tenant submits the big instances.
//! * **Bounded admission** ([`request`]) — at most `queue_capacity` requests wait;
//!   beyond that, [`ElectionService::submit`] answers [`Submission::Rejected`]
//!   *with the request handed back*, so callers own the retry policy and the
//!   service never blocks a submitter nor drops admitted work.
//! * **Cross-tenant sharing** — every run interns its views through the shared
//!   concurrent interner (via the facade's `shared_interner` hook) under a
//!   per-run thread budget (via `thread_budget`), so tenants on overlapping graph
//!   families dedup view DAGs against each other and parallel backends don't
//!   oversubscribe the machine. The [`ServiceReport`] measures both: interner
//!   hit-rate, elections/sec, queue/turnaround latency percentiles (globally and
//!   per tenant via [`TenantBreakdown`]), steal counts.
//!
//! The service is also a trace source: set
//! [`ServiceConfig::trace_sink`](service::ServiceConfig::trace_sink) and every
//! request's engine run streams its round-level `anet_trace` events into the sink
//! stamped with the request id, alongside scheduler-level worker-execute and
//! worker-steal events — see `docs/OBSERVABILITY.md`.
//!
//! Results are returned sorted by request id (submission order), which makes the
//! output of a service run **independent of worker count** — the property the
//! determinism tests pin down.
//!
//! ```
//! use anet_service::{ElectionRequest, ElectionService, ServiceConfig, SolverRecipe};
//! use anet_election::tasks::Task;
//! use anet_sim::Backend;
//!
//! let requests = vec![
//!     ElectionRequest::new(
//!         "tenant-a", "line",
//!         anet_graph::generators::paper_three_node_line(),
//!         Task::Selection, SolverRecipe::map(), Backend::Sequential,
//!     ),
//!     ElectionRequest::new(
//!         "tenant-b", "star-4",
//!         anet_graph::generators::star(4).unwrap(),
//!         Task::Selection, SolverRecipe::map(), Backend::Sequential,
//!     ),
//! ];
//! let (completed, report) = ElectionService::run_batch(ServiceConfig::default(), requests);
//! assert_eq!(completed.len(), 2);
//! assert!(completed.iter().all(|c| c.solved()));
//! println!("{}", report.summary());
//! ```

// anet-lint: deny(panic-path)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod request;
pub mod service;

pub use metrics::{LatencyStats, ServiceReport, TenantBreakdown};
pub use request::{
    CompletedElection, ElectionRequest, RejectReason, SolverFactory, SolverRecipe, Submission,
};
pub use service::{ElectionService, ServiceConfig};
