//! The election service: admission, work-stealing scheduling, execution.
//!
//! ## Lifecycle
//!
//! [`ElectionService::new`] spawns the worker pool and returns immediately; the
//! service then accepts [`ElectionRequest`]s via [`submit`](ElectionService::submit)
//! from any thread. [`close`](ElectionService::close) stops admission (in-flight
//! work still completes); [`shutdown`](ElectionService::shutdown) closes, drains,
//! joins the workers and returns every [`CompletedElection`] (sorted by request id,
//! i.e. submission order) together with the aggregate [`ServiceReport`].
//!
//! ## Scheduling
//!
//! Admitted requests are dealt round-robin into one striped-mutex deque per
//! worker. A worker pops its own deque from the front and, when empty, steals from
//! the back of the others — the same discipline as [`anet_sim::run_indexed`], but
//! over a *live* queue: submissions arrive while workers run, and idle workers
//! park on a condvar instead of exiting. Election runs vary by orders of magnitude
//! across graph families, so stealing (rather than static assignment) is what
//! keeps the pool busy when one tenant submits the big instances.
//!
//! ## Backpressure
//!
//! Admission is bounded: at most `queue_capacity` requests may be waiting (admitted
//! but not yet started). A submission over capacity is answered with
//! [`Submission::Rejected`] carrying the request back to the caller — the service
//! never blocks the submitter and never drops admitted work. This is the standard
//! bounded-queue contract: the *caller* owns the retry policy.
//!
//! ## Resource sharing
//!
//! All workers intern views through one [`SharedViewInterner`], so concurrent
//! tenants running on overlapping graph families dedup their view DAGs against
//! each other (the report's interner hit-rate measures exactly this). Each
//! election runs under a per-run thread budget (default:
//! `available_parallelism / workers`, at least 1), so parallel backends inside the
//! service don't oversubscribe the machine at `workers × available_parallelism`
//! threads.

use crate::metrics::{LatencyStats, ServiceReport, TenantBreakdown};
use crate::request::{CompletedElection, ElectionRequest, RejectReason, Submission};
use anet_election::engine::Election;
use anet_trace::{Tagged, TraceEvent, TraceSink};
use anet_views::shared::{lock_or_poison, wait_timeout_or_poison};
use anet_views::SharedViewInterner;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of an [`ElectionService`].
#[derive(Clone)]
pub struct ServiceConfig {
    /// Number of scheduler workers (clamped to at least 1).
    pub workers: usize,
    /// Admission capacity: the maximum number of requests waiting to start. At
    /// capacity, [`ElectionService::submit`] answers [`Submission::Rejected`].
    pub queue_capacity: usize,
    /// Per-election thread budget for the backends. `None` (the default) derives
    /// `max(1, available_parallelism / workers)`, so the whole pool together uses
    /// roughly the machine's parallelism.
    pub thread_budget: Option<usize>,
    /// Shard count of the shared view interner (rounded up to a power of two).
    pub interner_shards: usize,
    /// Trace probe for the whole service run. `None` (the default) traces
    /// nothing and costs nothing. When set, every request's engine run streams
    /// its round events into the sink stamped with the request id (via
    /// [`Tagged`]), and the scheduler adds [`TraceEvent::WorkerExecute`] /
    /// [`TraceEvent::WorkerSteal`] events, so one recorder captures the full
    /// per-request, per-worker story of the run.
    pub trace_sink: Option<Arc<dyn TraceSink>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: available_parallelism().min(8),
            queue_capacity: 1024,
            thread_budget: None,
            interner_shards: 64,
            trace_sink: None,
        }
    }
}

impl std::fmt::Debug for ServiceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceConfig")
            .field("workers", &self.workers)
            .field("queue_capacity", &self.queue_capacity)
            .field("thread_budget", &self.thread_budget)
            .field("interner_shards", &self.interner_shards)
            .field("trace_sink", &self.trace_sink.is_some())
            .finish()
    }
}

impl ServiceConfig {
    /// A config with an explicit worker count (other fields default).
    pub fn with_workers(workers: usize) -> Self {
        ServiceConfig {
            workers,
            ..ServiceConfig::default()
        }
    }
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// A queued unit of work: the request plus its admission bookkeeping.
struct Job {
    id: u64,
    request: ElectionRequest,
    submitted_at: Instant,
}

/// State shared between the service handle and its workers.
struct SharedState {
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Admitted-but-not-yet-started count; the admission bound applies to this.
    queued: AtomicUsize,
    capacity: usize,
    /// `true` while the service accepts new work.
    open: AtomicBool,
    /// Parking lot for idle workers. Submissions notify under this lock, so a
    /// worker that re-checks `queued` under the lock cannot miss a wakeup.
    idle: Mutex<()>,
    work_ready: Condvar,
    completed: Mutex<Vec<CompletedElection>>,
    executed: Vec<AtomicU64>,
    steals: AtomicU64,
    max_queue_depth: AtomicUsize,
    next_id: AtomicU64,
    next_worker: AtomicUsize,
    rejected: AtomicU64,
    interner: Arc<SharedViewInterner>,
    thread_budget: usize,
    trace: Option<Arc<dyn TraceSink>>,
}

impl SharedState {
    /// Pop the worker's own deque from the front, else steal from the back of the
    /// others (fanning out from `w + 1` so workers don't mob one victim).
    fn next_job(&self, w: usize) -> Option<Job> {
        let workers = self.deques.len();
        let own = lock_or_poison(&self.deques[w]).pop_front();
        let job = own.or_else(|| {
            (1..workers).find_map(|offset| {
                let victim = (w + offset) % workers;
                let stolen = lock_or_poison(&self.deques[victim]).pop_back();
                if let Some(job) = &stolen {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    if let Some(trace) = &self.trace {
                        trace.record(TraceEvent::WorkerSteal {
                            trace_id: job.id,
                            worker: w as u64,
                        });
                    }
                }
                stolen
            })
        });
        if job.is_some() {
            self.queued.fetch_sub(1, Ordering::AcqRel);
        }
        job
    }

    /// Execute one job on worker `w` and record its completion.
    fn execute(&self, w: usize, job: Job) {
        let queue_wait = job.submitted_at.elapsed();
        let started = Instant::now();
        let request = &job.request;
        // A panicking solver (e.g. an unguarded oracle on an infeasible graph)
        // must cost one request, not one worker: catch it and report it as a
        // failed outcome. `AssertUnwindSafe` is sound here because the closure
        // only touches the request and fresh per-run state.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut builder = Election::task(request.task)
                .solver_boxed(request.solver.build())
                .backend(request.backend)
                .thread_budget(self.thread_budget)
                .shared_interner(Arc::clone(&self.interner));
            if let Some(trace) = &self.trace {
                // Stamp every event of this run with the request id: downstream
                // consumers separate tenants' streams by trace id alone.
                builder = builder.trace_sink(Arc::new(Tagged::new(Arc::clone(trace), job.id)));
            }
            builder.run(&request.graph)
        }));
        let outcome = match outcome {
            Ok(Ok(report)) => Ok(report),
            Ok(Err(err)) => Err(err.to_string()),
            Err(panic) => Err(format!("solver panicked: {}", panic_message(&panic))),
        };
        let service_time = started.elapsed();
        if let Some(trace) = &self.trace {
            trace.record(TraceEvent::WorkerExecute {
                trace_id: job.id,
                worker: w as u64,
                ns: service_time.as_nanos() as u64,
            });
        }
        self.executed[w].fetch_add(1, Ordering::Relaxed);
        lock_or_poison(&self.completed).push(CompletedElection {
            id: job.id,
            tenant: job.request.tenant,
            name: job.request.name,
            solver: job.request.solver.label().to_string(),
            task: job.request.task,
            backend: job.request.backend,
            queue_wait,
            service_time,
            turnaround: queue_wait + service_time,
            outcome,
        });
    }

    fn worker_loop(&self, w: usize) {
        loop {
            if let Some(job) = self.next_job(w) {
                self.execute(w, job);
                continue;
            }
            if !self.open.load(Ordering::Acquire) {
                if self.queued.load(Ordering::Acquire) == 0 {
                    break;
                }
                // A job exists but another worker beat us to every deque we
                // checked; spin politely and retry.
                std::thread::yield_now();
                continue;
            }
            let guard = lock_or_poison(&self.idle);
            // Re-check under the lock: a submission that raced us will notify
            // under this same lock, so sleeping here cannot lose it.
            if self.queued.load(Ordering::Acquire) > 0 || !self.open.load(Ordering::Acquire) {
                continue;
            }
            // The timeout is belt-and-braces only; correctness does not need it.
            let _ = wait_timeout_or_poison(&self.work_ready, guard, Duration::from_millis(50));
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A running multi-tenant election service. See the [module docs](self) for the
/// lifecycle, scheduling and backpressure contracts.
pub struct ElectionService {
    state: Arc<SharedState>,
    workers: Vec<JoinHandle<()>>,
    started: Instant,
}

impl ElectionService {
    /// Start a service: spawns `config.workers` scheduler threads and returns.
    pub fn new(config: ServiceConfig) -> Self {
        let workers = config.workers.max(1);
        let thread_budget = config
            .thread_budget
            .unwrap_or_else(|| (available_parallelism() / workers).max(1))
            .max(1);
        let state = Arc::new(SharedState {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            capacity: config.queue_capacity.max(1),
            open: AtomicBool::new(true),
            idle: Mutex::new(()),
            work_ready: Condvar::new(),
            completed: Mutex::new(Vec::new()),
            executed: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            steals: AtomicU64::new(0),
            max_queue_depth: AtomicUsize::new(0),
            next_id: AtomicU64::new(0),
            next_worker: AtomicUsize::new(0),
            rejected: AtomicU64::new(0),
            interner: Arc::new(SharedViewInterner::with_shards(config.interner_shards)),
            thread_budget,
            trace: config.trace_sink,
        });
        let handles = (0..workers)
            .map(|w| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("anet-service-{w}"))
                    .spawn(move || state.worker_loop(w))
                    // anet-lint: allow(panic-path) — cannot run a service without workers.
                    .expect("spawn service worker")
            })
            .collect();
        ElectionService {
            state,
            workers: handles,
            started: Instant::now(),
        }
    }

    /// Submit a request. Never blocks: answers [`Submission::Enqueued`] with the
    /// assigned id, or [`Submission::Rejected`] with the request handed back.
    pub fn submit(&self, request: ElectionRequest) -> Submission {
        let state = &*self.state;
        if !state.open.load(Ordering::Acquire) {
            state.rejected.fetch_add(1, Ordering::Relaxed);
            return Submission::Rejected {
                request,
                reason: RejectReason::Closed,
                queue_depth: state.queued.load(Ordering::Acquire),
                capacity: state.capacity,
            };
        }
        // Reserve a queue slot, or reject: a compare-exchange loop so that the
        // admission bound holds exactly under concurrent submitters.
        let mut depth = state.queued.load(Ordering::Acquire);
        loop {
            if depth >= state.capacity {
                state.rejected.fetch_add(1, Ordering::Relaxed);
                return Submission::Rejected {
                    request,
                    reason: RejectReason::QueueFull,
                    queue_depth: depth,
                    capacity: state.capacity,
                };
            }
            match state.queued.compare_exchange_weak(
                depth,
                depth + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(observed) => depth = observed,
            }
        }
        let queue_depth = depth + 1;
        state
            .max_queue_depth
            .fetch_max(queue_depth, Ordering::AcqRel);
        let id = state.next_id.fetch_add(1, Ordering::Relaxed);
        let w = state.next_worker.fetch_add(1, Ordering::Relaxed) % state.deques.len();
        lock_or_poison(&state.deques[w]).push_back(Job {
            id,
            request,
            submitted_at: Instant::now(),
        });
        // Notify under the idle lock so a parking worker cannot miss this job.
        let _guard = lock_or_poison(&state.idle);
        state.work_ready.notify_one();
        Submission::Enqueued { id, queue_depth }
    }

    /// Stop admitting new work. Already-admitted requests still run to
    /// completion; subsequent submissions are rejected with
    /// [`RejectReason::Closed`].
    pub fn close(&self) {
        self.state.open.store(false, Ordering::Release);
        let _guard = lock_or_poison(&self.state.idle);
        self.state.work_ready.notify_all();
    }

    /// Requests currently waiting to start (admitted, not yet picked up).
    pub fn queue_depth(&self) -> usize {
        self.state.queued.load(Ordering::Acquire)
    }

    /// The shared view interner all workers intern through (e.g. to snapshot
    /// [`SharedViewInterner::stats`] mid-run).
    pub fn interner(&self) -> &Arc<SharedViewInterner> {
        &self.state.interner
    }

    /// Close, drain, join the workers, and report.
    ///
    /// The completed elections are sorted by request id — submission order — so
    /// the result sequence is independent of worker count and steal interleaving.
    pub fn shutdown(self) -> (Vec<CompletedElection>, ServiceReport) {
        self.close();
        for handle in self.workers {
            // anet-lint: allow(panic-path) — worker_loop catches solver panics; a
            // panic escaping it is a scheduler bug and must abort the shutdown.
            handle.join().expect("service worker panicked");
        }
        let wall = self.started.elapsed();
        let state = &*self.state;
        let mut completed = std::mem::take(&mut *lock_or_poison(&state.completed));
        completed.sort_by_key(|c| c.id);
        let solved = completed.iter().filter(|c| c.solved()).count() as u64;
        let failed = completed.iter().filter(|c| c.outcome.is_err()).count() as u64;
        let queue_latency =
            LatencyStats::from_samples(completed.iter().map(|c| c.queue_wait).collect());
        let turnaround_latency =
            LatencyStats::from_samples(completed.iter().map(|c| c.turnaround).collect());
        // Group by tenant label; a BTreeMap makes the breakdown sorted by tenant.
        let mut by_tenant: BTreeMap<&str, Vec<&CompletedElection>> = BTreeMap::new();
        for completion in &completed {
            by_tenant
                .entry(completion.tenant.as_str())
                .or_default()
                .push(completion);
        }
        let tenants = by_tenant
            .into_iter()
            .map(|(tenant, completions)| TenantBreakdown {
                tenant: tenant.to_string(),
                executed: completions.len() as u64,
                solved: completions.iter().filter(|c| c.solved()).count() as u64,
                failed: completions.iter().filter(|c| c.outcome.is_err()).count() as u64,
                queue_latency: LatencyStats::from_samples(
                    completions.iter().map(|c| c.queue_wait).collect(),
                ),
                turnaround_latency: LatencyStats::from_samples(
                    completions.iter().map(|c| c.turnaround).collect(),
                ),
            })
            .collect();
        let report = ServiceReport {
            workers: state.deques.len(),
            thread_budget: state.thread_budget,
            submitted: completed.len() as u64,
            rejected: state.rejected.load(Ordering::Relaxed),
            solved,
            failed,
            wall,
            elections_per_sec: if wall.as_secs_f64() > 0.0 {
                completed.len() as f64 / wall.as_secs_f64()
            } else {
                0.0
            },
            queue_latency,
            turnaround_latency,
            max_queue_depth: state.max_queue_depth.load(Ordering::Acquire),
            executed_per_worker: state
                .executed
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            steals: state.steals.load(Ordering::Relaxed),
            interner: state.interner.stats(),
            tenants,
        };
        (completed, report)
    }

    /// Convenience driver: start a service, submit every request (retrying
    /// rejected submissions after a short backoff until admitted — the batch
    /// caller *wants* every request to run, so it absorbs the backpressure), then
    /// shut down and return the results.
    pub fn run_batch(
        config: ServiceConfig,
        requests: Vec<ElectionRequest>,
    ) -> (Vec<CompletedElection>, ServiceReport) {
        let service = ElectionService::new(config);
        for request in requests {
            let mut pending = request;
            loop {
                match service.submit(pending) {
                    Submission::Enqueued { .. } => break,
                    Submission::Rejected {
                        request,
                        reason: RejectReason::QueueFull,
                        ..
                    } => {
                        pending = request;
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    Submission::Rejected { .. } => {
                        // anet-lint: allow(panic-path) — Closed is impossible: this fn
                        // owns the service and only closes it after the loop.
                        unreachable!("run_batch never closes the service early")
                    }
                }
            }
        }
        service.shutdown()
    }
}

impl std::fmt::Debug for ElectionService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ElectionService")
            .field("workers", &self.state.deques.len())
            .field("queue_depth", &self.queue_depth())
            .field("capacity", &self.state.capacity)
            .field("open", &self.state.open.load(Ordering::Acquire))
            .finish()
    }
}
