//! Experiment E3: the Selection advice lower bound family `G_{Δ,k}` (Theorem 2.9).
//!
//! Usage: `cargo run --release -p anet-bench --bin exp_g_class [--large]`
//! The `--large` flag adds the (Δ=4, k=2) and (Δ=6, k=1) rows (bigger graphs).

fn main() {
    let large = std::env::args().any(|a| a == "--large");
    let mut params = vec![(4usize, 1usize), (5, 1)];
    if large {
        params.push((6, 1));
        params.push((4, 2));
    }
    println!("{}", anet_bench::experiments::e3_g_class(&params));
    println!("{}", anet_bench::experiments::e3b_conflict_census(&params));
    println!(
        "Theorem 2.9: any algorithm solving S in ψ_S rounds on all of G_{{Δ,k}} needs advice of\n\
         size Ω((Δ−1)^k log Δ) on some member. The table verifies the structural ingredients on\n\
         instantiated members (ψ_S = k, uniqueness of r_{{i,2}}, cross-member indistinguishability)\n\
         and reports the closed-form bound next to the measured Theorem 2.2 advice."
    );
}
