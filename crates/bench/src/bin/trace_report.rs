//! `trace_report` — render an `anet-trace/v1` artifact for humans and for
//! chrome://tracing.
//!
//! Reads a JSON-lines trace file (as written by `sweep --trace-dir` or
//! `service_bench --trace-dir`), prints one per-round table per recorded run —
//! messages, payload bytes and send/route/receive nanoseconds, with peak-round
//! markers — and, with `--chrome OUT.json`, also writes the runs as a Chrome
//! trace-event document loadable in `chrome://tracing` / Perfetto.
//!
//! ```text
//! trace_report bench-json/TRACE_workloads_smoke.jsonl
//! trace_report bench-json/TRACE_workloads_smoke.jsonl --chrome smoke.chrome.json
//! trace_report bench-json/TRACE_workloads_smoke.jsonl --run 3
//! ```

use anet_bench::Table;
use anet_trace::{Phase, RoundProfile, TraceEvent};
use anet_workloads::{chrome_trace_json, read_trace, TraceRun};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: trace_report FILE [--chrome OUT.json] [--run ID]

  FILE             an anet-trace/v1 JSON-lines artifact
                   (sweep --trace-dir, service_bench --trace-dir)
  --chrome OUT     also write the runs as a Chrome trace-event document
                   (open in chrome://tracing or Perfetto)
  --run ID         only print the run with this trace id
";

/// Render one run's per-round profile as an aligned table.
fn run_table(run: &TraceRun) -> Table {
    let profile = RoundProfile::for_trace(&run.events, run.id);
    let peak_messages = profile.peak_messages().map(|s| s.round);
    let peak_time = profile.peak_time().map(|s| s.round);
    let wire = profile.total_wire_bits();
    let mut t = Table::new(
        format!(
            "run {} — {} ({} rounds, {} messages, {} payload bytes{})",
            run.id,
            run.name,
            profile.len(),
            profile.total_messages(),
            profile.total_payload_bytes(),
            if wire > 0 {
                format!(", {wire} wire bits")
            } else {
                String::new()
            },
        ),
        &[
            "round", "messages", "payload", "wire", "send", "route", "receive", "peak",
        ],
    );
    for stat in profile.rounds() {
        let peak = match (
            peak_messages == Some(stat.round),
            peak_time == Some(stat.round),
        ) {
            (true, true) => "msgs+time",
            (true, false) => "msgs",
            (false, true) => "time",
            (false, false) => "",
        };
        t.push_row(vec![
            stat.round.to_string(),
            stat.messages.to_string(),
            stat.payload_bytes.to_string(),
            stat.wire_bits.to_string(),
            format!("{}ns", stat.send_ns),
            format!("{}ns", stat.route_ns),
            format!("{}ns", stat.receive_ns),
            peak.to_string(),
        ]);
    }
    t
}

/// Summarise scheduler-level events (service traces only; sweep artifacts have
/// none, in which case nothing is printed).
fn scheduler_summary(runs: &[TraceRun]) -> Option<String> {
    let mut executes = 0u64;
    let mut exec_ns = 0u64;
    let mut steals = 0u64;
    for run in runs {
        for event in &run.events {
            match *event {
                TraceEvent::WorkerExecute { ns, .. } => {
                    executes += 1;
                    exec_ns += ns;
                }
                TraceEvent::WorkerSteal { .. } => steals += 1,
                // Exhaustive on purpose: a new TraceEvent variant must be a
                // compile error here, not silently absent from the summary.
                // RoundWire is a round-level event; it shows up in the per-run
                // tables' wire column, not in the scheduler summary.
                TraceEvent::RunStart { .. }
                | TraceEvent::RoundStart { .. }
                | TraceEvent::PhaseTime { .. }
                | TraceEvent::RoundEnd { .. }
                | TraceEvent::RoundWire { .. }
                | TraceEvent::RunEnd { .. }
                | TraceEvent::InternerDelta { .. } => {}
            }
        }
    }
    (executes > 0).then(|| {
        format!(
            "scheduler: {executes} executed jobs ({exec_ns}ns total service time), {steals} steals"
        )
    })
}

fn main() -> ExitCode {
    let mut file: Option<PathBuf> = None;
    let mut chrome: Option<PathBuf> = None;
    let mut only_run: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--chrome" => match args.next() {
                Some(out) => chrome = Some(PathBuf::from(out)),
                None => {
                    eprintln!("--chrome needs a value\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--run" => match args.next().and_then(|id| id.parse::<u64>().ok()) {
                Some(id) => only_run = Some(id),
                None => {
                    eprintln!("--run needs a trace id\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if file.is_none() && !other.starts_with('-') => {
                file = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown argument: {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = file else {
        eprintln!("a trace file is required\n{USAGE}");
        return ExitCode::FAILURE;
    };

    let trace = match read_trace(&path) {
        Ok(trace) => trace,
        Err(e) => {
            eprintln!("trace_report: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    println!(
        "trace_report: {:?} — {} runs, {} events",
        trace.label,
        trace.runs.len(),
        trace.total_events()
    );

    let selected: Vec<&TraceRun> = trace
        .runs
        .iter()
        .filter(|r| only_run.is_none_or(|id| r.id == id))
        .collect();
    if let Some(id) = only_run {
        if selected.is_empty() {
            eprintln!("trace_report: no run with trace id {id}");
            return ExitCode::FAILURE;
        }
    }
    for run in &selected {
        println!("{}", run_table(run));
    }

    // Cross-run totals, phase by phase — where does the grid spend its time?
    let mut totals = Table::new(
        "totals across printed runs",
        &["phase", "ns", "messages", "payload"],
    );
    let merged: Vec<TraceEvent> = selected
        .iter()
        .flat_map(|r| r.events.iter().copied())
        .collect();
    let all = RoundProfile::from_events(&merged);
    for phase in Phase::ALL {
        totals.push_row(vec![
            phase.label().to_string(),
            format!("{}", all.phase_ns(phase)),
            String::new(),
            String::new(),
        ]);
    }
    totals.push_row(vec![
        "all".to_string(),
        format!(
            "{}",
            Phase::ALL.iter().map(|&p| all.phase_ns(p)).sum::<u64>()
        ),
        all.total_messages().to_string(),
        all.total_payload_bytes().to_string(),
    ]);
    println!("{totals}");

    if let Some(summary) = scheduler_summary(&trace.runs) {
        println!("{summary}");
    }

    if let Some(out) = chrome {
        let document = chrome_trace_json(&trace);
        if let Err(e) = std::fs::write(&out, document.render_pretty()) {
            eprintln!("trace_report: cannot write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        println!(
            "trace_report: wrote {} (open in chrome://tracing)",
            out.display()
        );
    }
    ExitCode::SUCCESS
}
