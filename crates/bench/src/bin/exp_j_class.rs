//! Experiment E5: the PPE/CPPE advice lower bound family `J_{μ,k}` (Theorems 4.11/4.12).
//!
//! Usage: `cargo run --release -p anet-bench --bin exp_j_class [--full]`
//! The `--full` flag additionally builds the full 2^z-gadget template for μ=2, k=4
//! (1024 gadgets, ≈132k nodes) and runs the indistinguishability checks on it.

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    println!(
        "{}",
        anet_bench::experiments::e5_j_class(2, 4, &[8, 32, 64], full)
    );
    println!(
        "Theorems 4.11/4.12: solving PPE or CPPE in minimum time on J_{{μ,k}} requires advice of\n\
         size Ω(2^{{Δ^{{k/6}}}}). The CPPE column runs the Lemma 4.8 map-based algorithm in k\n\
         rounds and verifies every produced path; on long chains the total output size is\n\
         Θ(n²) by the nature of the task, so the run is reported on capped chains and the\n\
         full template is used for the view-indistinguishability checks only."
    );
}
