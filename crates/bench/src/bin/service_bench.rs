//! `service_bench` — drive the multi-tenant election service with a deterministic
//! request mix and emit `BENCH_service_*.json` (schema [`SCHEMA`] = `anet-service/v1`).
//!
//! The bench runs the same mix twice — once on a single worker, once on the full
//! pool — so every emitted file carries its own work-stealing speedup measurement
//! alongside throughput (elections/sec), latency order statistics (p50/p95/p99),
//! scheduler health (steals, per-worker execution counts, peak queue depth) and
//! the shared interner's cross-tenant hit rate.
//!
//! ```text
//! cargo run --release -p anet-bench --bin service_bench -- --smoke
//! cargo run --release -p anet-bench --bin service_bench -- --requests 2000 --workers 8
//! cargo run --release -p anet-bench --bin service_bench -- --smoke --baseline crates/bench/baselines/service_smoke.json
//! ```
//!
//! With `--baseline FILE` the bench compares its pooled elections/sec against the
//! baseline file's and exits non-zero on a regression of more than 25% — the CI
//! perf gate.

use anet_service::{ElectionRequest, ElectionService, ServiceConfig, ServiceReport, SolverRecipe};
use anet_trace::Recorder;
use anet_workloads::json::Json;
use anet_workloads::service_mix::{self, MixRequest};
use anet_workloads::TraceFile;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// The schema tag of every emitted service-bench file.
const SCHEMA: &str = "anet-service/v1";

/// Largest tolerated drop of pooled elections/sec against `--baseline`.
const MAX_REGRESSION: f64 = 0.25;

/// Requests in the `--smoke` mix: enough cycles over the tenant instances that
/// the throughput measurement spans tens of milliseconds (a single instance pass
/// is ~9 requests and sub-millisecond — pure timer noise as a CI gate).
const SMOKE_REQUESTS: usize = 512;

/// Timed runs per worker count; the best (highest elections/sec) is reported,
/// the standard flakiness shield for a CI perf gate on shared runners.
const RUNS_PER_CONFIG: usize = 3;

const USAGE: &str = "\
usage: service_bench [--smoke] [--requests N] [--workers N] [--out DIR]
                     [--baseline FILE] [--trace-dir DIR]

  --smoke         run the CI-sized smoke mix (512 requests, best of 3 runs)
  --requests N    size of the full mix (default: 1000; ignored with --smoke)
  --workers N     pooled worker count (default: the service default, at least 4,
                  so the stealing paths are exercised even on small machines;
                  a 1-worker baseline run always happens too)
  --out DIR       directory for the emitted BENCH_service_*.json (default: .)
  --baseline F    compare pooled elections/sec against F; exit non-zero if it
                  regressed by more than 25%
  --trace-dir D   after the timed runs, run the pooled mix once more with a
                  trace recorder attached and write the per-request round-level
                  event stream to D as TRACE_service_<label>.jsonl (schema
                  anet-trace/v1; render with trace_report). The extra run keeps
                  the timed measurements and the --baseline gate untouched
";

fn to_request(mix: MixRequest) -> ElectionRequest {
    let spec = mix.solver;
    ElectionRequest::new(
        mix.tenant,
        mix.name,
        mix.graph,
        mix.task,
        SolverRecipe::new(spec.label(), Box::new(move || spec.build())),
        mix.backend,
    )
}

fn ms(d: Duration) -> Json {
    Json::Float(d.as_secs_f64() * 1e3)
}

/// One service run rendered as a JSON object.
fn run_json(report: &ServiceReport) -> Json {
    Json::Object(vec![
        ("workers".to_string(), Json::count(report.workers)),
        (
            "thread_budget".to_string(),
            Json::count(report.thread_budget),
        ),
        ("submitted".to_string(), Json::Int(report.submitted as i64)),
        ("solved".to_string(), Json::Int(report.solved as i64)),
        ("unsolved".to_string(), Json::Int(report.unsolved() as i64)),
        ("failed".to_string(), Json::Int(report.failed as i64)),
        ("rejected".to_string(), Json::Int(report.rejected as i64)),
        ("wall_ms".to_string(), ms(report.wall)),
        (
            "elections_per_sec".to_string(),
            Json::Float(report.elections_per_sec),
        ),
        (
            "turnaround_p50_ms".to_string(),
            ms(report.turnaround_latency.p50),
        ),
        (
            "turnaround_p95_ms".to_string(),
            ms(report.turnaround_latency.p95),
        ),
        (
            "turnaround_p99_ms".to_string(),
            ms(report.turnaround_latency.p99),
        ),
        (
            "turnaround_mean_ms".to_string(),
            ms(report.turnaround_latency.mean),
        ),
        ("queue_p50_ms".to_string(), ms(report.queue_latency.p50)),
        ("queue_p99_ms".to_string(), ms(report.queue_latency.p99)),
        (
            "max_queue_depth".to_string(),
            Json::count(report.max_queue_depth),
        ),
        ("steals".to_string(), Json::Int(report.steals as i64)),
        (
            "executed_per_worker".to_string(),
            Json::Array(
                report
                    .executed_per_worker
                    .iter()
                    .map(|&n| Json::Int(n as i64))
                    .collect(),
            ),
        ),
        (
            "interner".to_string(),
            Json::Object(vec![
                ("hits".to_string(), Json::Int(report.interner.hits as i64)),
                (
                    "misses".to_string(),
                    Json::Int(report.interner.misses as i64),
                ),
                (
                    "distinct_subtrees".to_string(),
                    Json::Int(report.interner.distinct_subtrees as i64),
                ),
                (
                    "hit_rate".to_string(),
                    Json::Float(report.interner.hit_rate()),
                ),
            ]),
        ),
        (
            "tenants".to_string(),
            Json::Array(
                report
                    .tenants
                    .iter()
                    .map(|t| {
                        Json::Object(vec![
                            ("tenant".to_string(), Json::str(&t.tenant)),
                            ("executed".to_string(), Json::Int(t.executed as i64)),
                            ("solved".to_string(), Json::Int(t.solved as i64)),
                            ("failed".to_string(), Json::Int(t.failed as i64)),
                            (
                                "turnaround_p50_ms".to_string(),
                                ms(t.turnaround_latency.p50),
                            ),
                            (
                                "turnaround_p95_ms".to_string(),
                                ms(t.turnaround_latency.p95),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Pull the pooled elections/sec out of an emitted (or baseline) document: the
/// top-level `pooled_elections_per_sec` field.
fn pooled_eps(doc: &Json) -> Option<f64> {
    match doc.get("pooled_elections_per_sec") {
        Some(Json::Float(v)) => Some(*v),
        Some(Json::Int(v)) => Some(*v as f64),
        _ => None,
    }
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut requests = 1000usize;
    let mut workers = ServiceConfig::default().workers.max(4);
    let mut out_dir = PathBuf::from(".");
    let mut baseline: Option<PathBuf> = None;
    let mut trace_dir: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--requests" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => requests = n,
                _ => {
                    eprintln!("--requests needs a positive integer\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--workers" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => workers = n,
                _ => {
                    eprintln!("--workers needs a positive integer\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out needs a value\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--baseline" => match args.next() {
                Some(file) => baseline = Some(PathBuf::from(file)),
                None => {
                    eprintln!("--baseline needs a value\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--trace-dir" => match args.next() {
                Some(dir) => trace_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--trace-dir needs a value\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let label = if smoke { "smoke" } else { "full" };
    let mix = service_mix::mix(if smoke { SMOKE_REQUESTS } else { requests });
    let tenants: BTreeSet<String> = mix.iter().map(|r| r.tenant.clone()).collect();
    println!(
        "service_bench: {} mix — {} requests across {} tenants",
        label,
        mix.len(),
        tenants.len()
    );

    // Same mix on one worker, then on the pool: the single-worker run is the
    // speedup denominator every emitted file carries. Each configuration is
    // timed `RUNS_PER_CONFIG` times and the best run reported.
    let mut runs: Vec<(usize, ServiceReport)> = Vec::new();
    for pool in [1, workers] {
        if pool == 1 && !runs.is_empty() {
            break; // --workers 1: one run is both numerator and denominator.
        }
        let mut best: Option<ServiceReport> = None;
        for _ in 0..RUNS_PER_CONFIG {
            let requests: Vec<ElectionRequest> = mix.iter().cloned().map(to_request).collect();
            let (completed, report) =
                ElectionService::run_batch(ServiceConfig::with_workers(pool), requests);
            assert_eq!(completed.len() as u64, report.submitted);
            if best
                .as_ref()
                .is_none_or(|b| report.elections_per_sec > b.elections_per_sec)
            {
                best = Some(report);
            }
        }
        let report = best.expect("at least one timed run");
        println!("  workers={pool}: {}", report.summary());
        runs.push((pool, report));
    }
    let single = &runs[0].1;
    let pooled = &runs[runs.len() - 1].1;
    let speedup = if single.elections_per_sec > 0.0 {
        pooled.elections_per_sec / single.elections_per_sec
    } else {
        0.0
    };
    println!(
        "service_bench: {:.1} elections/s on {} workers vs {:.1} on 1 — speedup {speedup:.2}x",
        pooled.elections_per_sec, pooled.workers, single.elections_per_sec
    );

    let generated_unix_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as i64)
        .unwrap_or(0);
    let document = Json::Object(vec![
        ("schema".to_string(), Json::str(SCHEMA)),
        ("label".to_string(), Json::str(label)),
        (
            "generated_unix_ms".to_string(),
            Json::Int(generated_unix_ms),
        ),
        ("requests".to_string(), Json::count(mix.len())),
        ("tenants".to_string(), Json::count(tenants.len())),
        (
            "pooled_elections_per_sec".to_string(),
            Json::Float(pooled.elections_per_sec),
        ),
        ("speedup_vs_single_worker".to_string(), Json::Float(speedup)),
        (
            "runs".to_string(),
            Json::Array(runs.iter().map(|(_, r)| run_json(r)).collect()),
        ),
    ]);

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("service_bench: cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let json_path = out_dir.join(format!("BENCH_service_{label}.json"));
    if let Err(e) = std::fs::write(&json_path, document.render_pretty()) {
        eprintln!("service_bench: cannot write {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }
    println!("service_bench: wrote {}", json_path.display());

    // One extra pooled run with a trace recorder attached: per-request engine
    // events stamped with the request id, plus the scheduler's worker-execute
    // and worker-steal events. Kept out of the timed runs so the recorder's
    // overhead can never tilt the --baseline gate.
    if let Some(trace_dir) = trace_dir {
        let recorder = Arc::new(Recorder::new());
        let config = ServiceConfig {
            trace_sink: Some(recorder.clone()),
            ..ServiceConfig::with_workers(pooled.workers)
        };
        let requests: Vec<ElectionRequest> = mix.iter().cloned().map(to_request).collect();
        let (completed, _) = ElectionService::run_batch(config, requests);
        let events = recorder.drain();
        let mut trace = TraceFile::new(label);
        for election in &completed {
            let run_events: Vec<_> = events
                .iter()
                .copied()
                .filter(|e| e.trace_id() == election.id)
                .collect();
            trace.push_run(
                election.id,
                format!("{}/{}", election.tenant, election.name),
                run_events,
            );
        }
        let trace_path = trace_dir.join(format!("TRACE_service_{label}.jsonl"));
        if let Err(e) = trace.write(&trace_path) {
            eprintln!("service_bench: cannot write {}: {e}", trace_path.display());
            return ExitCode::FAILURE;
        }
        println!("service_bench: wrote {}", trace_path.display());
    }

    if let Some(baseline_path) = baseline {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!(
                    "service_bench: cannot read baseline {}: {e}",
                    baseline_path.display()
                );
                return ExitCode::FAILURE;
            }
        };
        let reference = match Json::parse(&text).ok().as_ref().and_then(pooled_eps) {
            Some(eps) => eps,
            None => {
                eprintln!(
                    "service_bench: baseline {} has no pooled_elections_per_sec",
                    baseline_path.display()
                );
                return ExitCode::FAILURE;
            }
        };
        let floor = reference * (1.0 - MAX_REGRESSION);
        println!(
            "service_bench: baseline {:.1} elections/s, floor {:.1}, measured {:.1}",
            reference, floor, pooled.elections_per_sec
        );
        if pooled.elections_per_sec < floor {
            eprintln!(
                "service_bench: REGRESSION — pooled elections/sec fell more than {:.0}% below the baseline",
                MAX_REGRESSION * 100.0
            );
            return ExitCode::FAILURE;
        }
        println!("service_bench: within budget of the baseline");
    }
    ExitCode::SUCCESS
}
