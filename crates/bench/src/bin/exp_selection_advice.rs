//! Experiment E2: Selection in minimum time with advice (Theorem 2.2).
//!
//! Usage: `cargo run --release -p anet-bench --bin exp_selection_advice`

fn main() {
    println!("{}", anet_bench::experiments::e2_selection_advice());
    println!(
        "Theorem 2.2: advice of size O((Δ−1)^{{ψ_S}} log Δ) suffices to solve Selection in\n\
         exactly ψ_S(G) rounds; the measured column is the exact bit-length of the advice\n\
         produced by the implemented oracle (an encoded augmented truncated view)."
    );
}
