//! Experiment E6: the counting facts of the paper (Facts 2.3, 3.1, 4.1, 4.2).
//!
//! Usage: `cargo run --release -p anet-bench --bin exp_class_sizes`

fn main() {
    println!("{}", anet_bench::experiments::e6_class_sizes());
}
