//! Experiment E7: the `ElectionEngine` matrix — task shade × solver × execution
//! backend × graph family, all through the facade.
//!
//! Usage: `cargo run --release -p anet-bench --bin exp_engine [--threads N]`

use anet_election::engine::Backend;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut threads = 4usize;
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            threads = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--threads takes a number");
        }
    }
    let backends = [Backend::Sequential, Backend::Parallel { threads }];
    println!("{}", anet_bench::experiments::e7_engine_matrix(&backends));
    println!(
        "Every row is one `Election::task(…).solver(…).backend(…).run(&graph)` call; the\n\
         sequential and parallel halves of the table must agree on rounds, messages and\n\
         advice bits (backends change wall time only). Weaker shades on the J rows are\n\
         served by the CPPE solver through the engine's automatic Fact 1.1 weakening."
    );
}
