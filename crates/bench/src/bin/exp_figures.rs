//! Figure regeneration: rebuild the exact objects drawn in Figures 1–11 of the paper,
//! print their structural statistics, and write DOT files to `figures/`.
//!
//! Usage: `cargo run --release -p anet-bench --bin exp_figures [--full-figure-11]`
//! (`--full-figure-11` builds the complete 1024-gadget `J_Y`, which takes a while and
//! several hundred MB.)

use anet_constructions::figures;
use std::fs;
use std::path::Path;

fn emit(report: &figures::FigureReport, dir: &Path) {
    println!("--- {} ---", report.name);
    println!("    {}", report.description);
    for (k, v) in &report.stats {
        println!("    {k}: {v}");
    }
    if !report.dot.is_empty() {
        let file = dir.join(format!(
            "{}.dot",
            report
                .name
                .chars()
                .map(|c| if c.is_alphanumeric() { c } else { '_' })
                .collect::<String>()
        ));
        if let Err(e) = fs::write(&file, &report.dot) {
            eprintln!("    (could not write {}: {e})", file.display());
        } else {
            println!("    dot: {}", file.display());
        }
    }
    println!();
}

fn main() {
    let full11 = std::env::args().any(|a| a == "--full-figure-11");
    let dir = Path::new("figures");
    let _ = fs::create_dir_all(dir);

    let mut reports = Vec::new();
    reports.extend(figures::figure1().expect("figure 1"));
    reports.push(figures::figure2().expect("figure 2"));
    reports.push(figures::figure3().expect("figure 3"));
    reports.extend(figures::figure4().expect("figure 4"));
    reports.extend(figures::figures_5_to_7().expect("figures 5-7"));
    reports.push(figures::figure8().expect("figure 8"));
    reports.push(figures::figure9().expect("figure 9"));
    reports.push(figures::figure10());
    reports.push(figures::figure11(if full11 { None } else { Some(8) }).expect("figure 11"));

    for r in &reports {
        emit(r, dir);
    }
    println!(
        "{} figures regenerated; DOT files in {}/",
        reports.len(),
        dir.display()
    );
}
