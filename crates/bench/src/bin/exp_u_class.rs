//! Experiment E4: the Port Election advice lower bound family `U_{Δ,k}` (Theorem 3.11).
//!
//! Usage: `cargo run --release -p anet-bench --bin exp_u_class [--large]`
//! The `--large` flag adds the (Δ=5, k=1) row (≈5k nodes).

fn main() {
    let large = std::env::args().any(|a| a == "--large");
    let mut params = vec![(4usize, 1usize)];
    if large {
        params.push((5, 1));
    }
    println!("{}", anet_bench::experiments::e4_u_class(&params));
    println!(
        "Theorem 3.11: solving PE in minimum time on U_{{Δ,k}} requires advice of size\n\
         Ω((Δ−1)^{{(Δ−2)(Δ−1)^{{k−1}}}} log Δ) — exponential in Δ — while Selection in minimum\n\
         time on the very same graphs is solved with the measured (polynomial in Δ) advice.\n\
         The separation factor column is the ratio of the two."
    );
}
