//! Experiment E1: the election-index hierarchy (Fact 1.1) over the small-graph suite.
//!
//! Usage: `cargo run --release -p anet-bench --bin exp_hierarchy`

fn main() {
    println!("{}", anet_bench::experiments::e1_hierarchy());
    println!(
        "Fact 1.1: ψ_CPPE(G) ≥ ψ_PPE(G) ≥ ψ_PE(G) ≥ ψ_S(G); '∞' marks tasks that are\n\
         unsolvable on the graph at any time bound (infeasible symmetry)."
    );
}
