//! `bench_diff` — compare a current `anet-bench/v1` artifact against a committed
//! baseline and fail on regressions. The CI perf-trend gate for the timing
//! benches, complementing `service_bench --baseline` on the service side.
//!
//! ```text
//! bench_diff --baseline crates/bench/baselines/bench_sim_smoke.json \
//!            --current bench-json/BENCH_bench_sim.json
//! ```
//!
//! Exits non-zero when any baseline measurement's mean regressed by more than
//! `--max-regression` (default 25%) or disappeared from the current run.
//! Measurements new in the current run are listed but never fail.

use anet_bench::diff::{diff, BenchDoc, DEFAULT_MAX_REGRESSION};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: bench_diff --baseline FILE --current FILE [--max-regression R]

  --baseline F        committed anet-bench/v1 document to compare against
  --current F         freshly generated anet-bench/v1 document
  --max-regression R  tolerated fractional slowdown (default: 0.25 = 25%)
";

fn main() -> ExitCode {
    let mut baseline: Option<PathBuf> = None;
    let mut current: Option<PathBuf> = None;
    let mut max_regression = DEFAULT_MAX_REGRESSION;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => match args.next() {
                Some(f) => baseline = Some(PathBuf::from(f)),
                None => {
                    eprintln!("--baseline needs a value\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--current" => match args.next() {
                Some(f) => current = Some(PathBuf::from(f)),
                None => {
                    eprintln!("--current needs a value\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--max-regression" => match args.next().and_then(|r| r.parse::<f64>().ok()) {
                Some(r) if r >= 0.0 => max_regression = r,
                _ => {
                    eprintln!("--max-regression needs a non-negative number\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let (Some(baseline_path), Some(current_path)) = (baseline, current) else {
        eprintln!("both --baseline and --current are required\n{USAGE}");
        return ExitCode::FAILURE;
    };

    let baseline = match BenchDoc::read(&baseline_path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("bench_diff: baseline {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
    };
    let current = match BenchDoc::read(&current_path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("bench_diff: current {}: {e}", current_path.display());
            return ExitCode::FAILURE;
        }
    };
    if baseline.bench != current.bench {
        eprintln!(
            "bench_diff: comparing different benches: baseline {:?} vs current {:?}",
            baseline.bench, current.bench
        );
        return ExitCode::FAILURE;
    }

    let report = diff(&baseline, &current, max_regression);
    println!("{}", report.table());
    if report.passed() {
        println!(
            "bench_diff: {} — all {} measurements within budget",
            report.bench,
            report.rows.len()
        );
        ExitCode::SUCCESS
    } else {
        for row in report.regressions() {
            match row.ratio {
                Some(ratio) => eprintln!(
                    "bench_diff: REGRESSION — {} is {:.2}x the baseline mean",
                    row.id, ratio
                ),
                None => eprintln!(
                    "bench_diff: MISSING — {} is in the baseline but not the current run",
                    row.id
                ),
            }
        }
        ExitCode::FAILURE
    }
}
