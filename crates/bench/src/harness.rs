//! A minimal timing harness for the `benches/` targets.
//!
//! The build environment has no external crates, so the Criterion framework is not
//! available; this module provides the small subset the benches need: named
//! measurements, a warm-up iteration, a configurable sample count, and an aligned
//! report. Each bench target is an ordinary binary (`harness = false`) whose `main`
//! drives a [`Harness`].
//!
//! Sample counts can be overridden globally with the `ANET_BENCH_SAMPLES` environment
//! variable (useful for CI smoke runs: `ANET_BENCH_SAMPLES=1 cargo bench`).

use crate::table::Table;
use std::time::{Duration, Instant};

/// Re-export of the standard optimisation barrier, so benches don't need to reach
/// into `std::hint` themselves.
pub use std::hint::black_box;

/// One named measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Bench id (e.g. `seq_n1000_r3`).
    pub id: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Mean per-iteration time.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
}

/// A collection of measurements for one bench target.
#[derive(Debug, Default)]
pub struct Harness {
    name: String,
    results: Vec<Measurement>,
}

impl Harness {
    /// A harness for the bench target `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Harness {
            name: name.into(),
            results: Vec::new(),
        }
    }

    /// Sample count actually used: `requested`, unless `ANET_BENCH_SAMPLES` overrides.
    fn effective_samples(requested: usize) -> usize {
        std::env::var("ANET_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(requested)
            .max(1)
    }

    /// Time `f` (`samples` samples after one warm-up call) and record the result
    /// under `id`. The closure's return value is passed through [`black_box`] so the
    /// computation cannot be optimised away.
    pub fn bench<R>(&mut self, id: &str, samples: usize, mut f: impl FnMut() -> R) {
        let samples = Self::effective_samples(samples);
        black_box(f()); // warm-up
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        let total: Duration = times.iter().sum();
        self.results.push(Measurement {
            id: id.to_string(),
            samples,
            mean: total / samples as u32,
            min: times.iter().min().copied().unwrap_or_default(),
            max: times.iter().max().copied().unwrap_or_default(),
        });
    }

    /// The measurements recorded so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Render the measurements as an aligned table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!("bench {}", self.name),
            &["id", "samples", "mean", "min", "max"],
        );
        for m in &self.results {
            t.push_row(vec![
                m.id.clone(),
                m.samples.to_string(),
                format!("{:?}", m.mean),
                format!("{:?}", m.min),
                format!("{:?}", m.max),
            ]);
        }
        t
    }

    /// Print the report to stdout (call at the end of each bench `main`).
    pub fn report(&self) {
        println!("{}", self.table());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_records_named_measurements() {
        let mut h = Harness::new("demo");
        h.bench("sum", 3, || (0..1000u64).sum::<u64>());
        h.bench("product", 3, || (1..20u64).product::<u64>());
        assert_eq!(h.results().len(), 2);
        assert_eq!(h.results()[0].id, "sum");
        assert_eq!(h.results()[0].samples, 3);
        assert!(h.results()[0].min <= h.results()[0].max);
        let rendered = h.table().render();
        assert!(rendered.contains("bench demo"));
        assert!(rendered.contains("product"));
    }
}
