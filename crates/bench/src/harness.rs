//! A minimal timing harness for the `benches/` targets.
//!
//! The build environment has no external crates, so the Criterion framework is not
//! available; this module provides the small subset the benches need: named
//! measurements, a warm-up iteration, a configurable sample count, and an aligned
//! report. Each bench target is an ordinary binary (`harness = false`) whose `main`
//! drives a [`Harness`].
//!
//! Sample counts can be overridden globally with the `ANET_BENCH_SAMPLES` environment
//! variable (useful for CI smoke runs: `ANET_BENCH_SAMPLES=1 cargo bench`), and
//! setting `ANET_BENCH_JSON_DIR=<dir>` makes [`Harness::report`] also emit a
//! machine-readable `BENCH_bench_<name>.json` (schema `anet-bench/v1`) next to the
//! sweep driver's workload files, so perf trends are trackable file-over-file.

use crate::table::Table;
use anet_workloads::json::Json;
use std::time::{Duration, Instant};

/// Re-export of the standard optimisation barrier, so benches don't need to reach
/// into `std::hint` themselves.
pub use std::hint::black_box;

/// One named measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Bench id (e.g. `seq_n1000_r3`).
    pub id: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Mean per-iteration time.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
}

/// One named recorded *value* (not a timing): a size, a count, a ratio numerator —
/// anything a bench wants in the artifact trail next to its timings (e.g.
/// `bench_views` records tree-bits vs dag-bits of the two view encodings).
#[derive(Debug, Clone)]
pub struct Metric {
    /// Metric id (e.g. `dag_bits_torus9x9_d6`).
    pub id: String,
    /// The recorded value.
    pub value: i64,
}

/// A collection of measurements for one bench target.
#[derive(Debug, Default)]
pub struct Harness {
    name: String,
    results: Vec<Measurement>,
    metrics: Vec<Metric>,
}

impl Harness {
    /// A harness for the bench target `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Harness {
            name: name.into(),
            results: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Sample count actually used: `requested`, unless `ANET_BENCH_SAMPLES` overrides.
    fn effective_samples(requested: usize) -> usize {
        std::env::var("ANET_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(requested)
            .max(1)
    }

    /// Time `f` (`samples` samples after one warm-up call) and record the result
    /// under `id`. The closure's return value is passed through [`black_box`] so the
    /// computation cannot be optimised away.
    pub fn bench<R>(&mut self, id: &str, samples: usize, mut f: impl FnMut() -> R) {
        let samples = Self::effective_samples(samples);
        black_box(f()); // warm-up
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        let total: Duration = times.iter().sum();
        self.results.push(Measurement {
            id: id.to_string(),
            samples,
            mean: total / samples as u32,
            min: times.iter().min().copied().unwrap_or_default(),
            max: times.iter().max().copied().unwrap_or_default(),
        });
    }

    /// Record a named value (a size, a count …) next to the timings; it is rendered
    /// in its own table section and lands in the JSON artifact under `"metrics"`.
    pub fn metric(&mut self, id: &str, value: i64) {
        self.metrics.push(Metric {
            id: id.to_string(),
            value,
        });
    }

    /// The measurements recorded so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// The value metrics recorded so far.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Render the measurements as an aligned table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!("bench {}", self.name),
            &["id", "samples", "mean", "min", "max"],
        );
        for m in &self.results {
            t.push_row(vec![
                m.id.clone(),
                m.samples.to_string(),
                format!("{:?}", m.mean),
                format!("{:?}", m.min),
                format!("{:?}", m.max),
            ]);
        }
        t
    }

    /// The measurements as a versioned JSON document (schema `anet-bench/v1`),
    /// mirroring the `BENCH_workloads_*.json` files the sweep driver emits so that
    /// timing benches leave the same machine-readable artifact trail: per measurement
    /// the id, sample count and mean/min/max nanoseconds, plus a `"metrics"` array of
    /// recorded values (additive over the original v1 shape, so existing readers —
    /// which are general JSON parsers — keep working).
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("schema".to_string(), Json::str(crate::BENCH_SCHEMA)),
            ("bench".to_string(), Json::str(&self.name)),
            (
                "measurements".to_string(),
                Json::Array(
                    self.results
                        .iter()
                        .map(|m| {
                            Json::Object(vec![
                                ("id".to_string(), Json::str(&m.id)),
                                ("samples".to_string(), Json::count(m.samples)),
                                ("mean_ns".to_string(), Json::Int(m.mean.as_nanos() as i64)),
                                ("min_ns".to_string(), Json::Int(m.min.as_nanos() as i64)),
                                ("max_ns".to_string(), Json::Int(m.max.as_nanos() as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "metrics".to_string(),
                Json::Array(
                    self.metrics
                        .iter()
                        .map(|m| {
                            Json::Object(vec![
                                ("id".to_string(), Json::str(&m.id)),
                                ("value".to_string(), Json::Int(m.value)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Print the report to stdout (call at the end of each bench `main`), and — when
    /// the `ANET_BENCH_JSON_DIR` environment variable is set — also write the
    /// measurements to `<dir>/BENCH_bench_<name>.json` (schema `anet-bench/v1`), so CI
    /// uploads timing benches next to the sweep driver's workload files.
    pub fn report(&self) {
        println!("{}", self.table());
        if !self.metrics.is_empty() {
            let mut t = Table::new(format!("bench {} — metrics", self.name), &["id", "value"]);
            for m in &self.metrics {
                t.push_row(vec![m.id.clone(), m.value.to_string()]);
            }
            println!("{t}");
        }
        if let Ok(dir) = std::env::var("ANET_BENCH_JSON_DIR") {
            if !dir.is_empty() {
                let dir = std::path::PathBuf::from(dir);
                let path = dir.join(format!("BENCH_bench_{}.json", self.name));
                let write = std::fs::create_dir_all(&dir)
                    .and_then(|()| std::fs::write(&path, self.to_json().render_pretty()));
                match write {
                    Ok(()) => println!("bench: wrote {}", path.display()),
                    Err(e) => eprintln!("bench: failed to write {}: {e}", path.display()),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_records_named_measurements() {
        let mut h = Harness::new("demo");
        h.bench("sum", 3, || (0..1000u64).sum::<u64>());
        h.bench("product", 3, || (1..20u64).product::<u64>());
        assert_eq!(h.results().len(), 2);
        assert_eq!(h.results()[0].id, "sum");
        assert_eq!(h.results()[0].samples, 3);
        assert!(h.results()[0].min <= h.results()[0].max);
        let rendered = h.table().render();
        assert!(rendered.contains("bench demo"));
        assert!(rendered.contains("product"));
    }

    #[test]
    fn harness_json_is_versioned_and_parseable() {
        let mut h = Harness::new("demo_json");
        h.bench("sum", 2, || (0..100u64).sum::<u64>());
        let doc = h.to_json();
        // Round-trips through the in-tree parser.
        let parsed = Json::parse(&doc.render_pretty()).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Json::as_str),
            Some(crate::BENCH_SCHEMA)
        );
        assert_eq!(
            parsed.get("bench").and_then(Json::as_str),
            Some("demo_json")
        );
        let ms = parsed.get("measurements").and_then(Json::as_array).unwrap();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].get("id").and_then(Json::as_str), Some("sum"));
        assert!(ms[0].get("mean_ns").and_then(Json::as_int).is_some());
    }

    #[test]
    fn metrics_ride_along_in_table_and_json() {
        let mut h = Harness::new("demo_metrics");
        h.bench("noop", 1, || 0u64);
        h.metric("tree_bits_d3", 4094);
        h.metric("dag_bits_d3", 233);
        assert_eq!(h.metrics().len(), 2);
        let parsed = Json::parse(&h.to_json().render_pretty()).unwrap();
        let ms = parsed.get("metrics").and_then(Json::as_array).unwrap();
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[1].get("id").and_then(Json::as_str), Some("dag_bits_d3"));
        assert_eq!(ms[1].get("value").and_then(Json::as_int), Some(233));
    }
}
