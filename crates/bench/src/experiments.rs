//! Experiment implementations E1–E7 (see `DESIGN.md` §4 and `EXPERIMENTS.md`).
//!
//! Each function measures what the corresponding table of `EXPERIMENTS.md` reports and
//! returns it as a [`Table`]; the `exp_*` binaries print the tables, and the
//! integration tests assert the key claims on the returned values.
//!
//! All election runs go through the [`ElectionEngine` facade](anet_election::engine):
//! `Election::task(…).solver(…).backend(…).run(&graph)`.

use crate::suite::{small_suite, SuiteFamily};
use crate::table::{fmt_f64, Table};
use anet_constructions::{GClass, JClass, UClass};
use anet_election::engine::{
    AdviceSolver, Backend, BatchRow, BatchRunner, CppeSolver, Election, EngineError, MapSolver,
    PortElectionSolver,
};
use anet_election::selection::SelectionOracle;
use anet_election::tasks::{NodeOutput, Task};
use anet_election::{bounds, Oracle};
use anet_graph::{NodeId, PortGraph};
use anet_views::election_index::{psi_s, psi_s_with};
use anet_views::{paths, JointRefinement, Refinement};

fn opt(x: Option<usize>) -> String {
    x.map(|v| v.to_string()).unwrap_or_else(|| "∞".to_string())
}

/// The election indices measured by running the map-based minimum-time solver for
/// every task through the engine (`None` = unsolvable on this graph). Only genuine
/// infeasibility maps to `None`; any other solver failure (e.g. the simple-path
/// enumeration budget) panics, matching `measured_indices`'s loud error path.
fn engine_measured_indices(g: &PortGraph) -> [Option<usize>; 4] {
    let mut out = [None; 4];
    for (slot, task) in Task::ALL.iter().enumerate() {
        out[slot] = match Election::task(*task).solver(MapSolver::default()).run(g) {
            Ok(r) if r.solved() => Some(r.rounds),
            Ok(r) => panic!(
                "map solver produced invalid {task} outputs: {:?}",
                r.verdict
            ),
            Err(EngineError::Solver { message, .. }) if message.contains("unsolvable") => None,
            Err(e) => panic!("path budget: {e}"),
        };
    }
    out
}

/// E1 — the election-index hierarchy (Fact 1.1) over the small-graph suite, with the
/// indices both computed combinatorially and measured by running the map-based
/// minimum-time algorithms through the engine.
pub fn e1_hierarchy() -> Table {
    let mut table = Table::new(
        "E1 — election indices ψ_S ≤ ψ_PE ≤ ψ_PPE ≤ ψ_CPPE (Fact 1.1)",
        &[
            "graph",
            "n",
            "Δ",
            "ψ_S",
            "ψ_PE",
            "ψ_PPE",
            "ψ_CPPE",
            "hierarchy",
            "measured=computed",
        ],
    );
    for item in small_suite() {
        let g = &item.graph;
        let computed = anet_views::election_index::compute_all(g, 50_000).expect("path budget");
        let measured = engine_measured_indices(g);
        let agree = measured == [computed.s, computed.pe, computed.ppe, computed.cppe];
        table.push_row(vec![
            item.name.clone(),
            g.num_nodes().to_string(),
            g.max_degree().to_string(),
            opt(computed.s),
            opt(computed.pe),
            opt(computed.ppe),
            opt(computed.cppe),
            computed.satisfies_hierarchy().to_string(),
            agree.to_string(),
        ]);
    }
    table
}

/// E2 — Theorem 2.2: advice used by the Selection oracle/algorithm pair, in exactly
/// `ψ_S` rounds, versus the paper's bound, over the solvable graphs of the suite.
pub fn e2_selection_advice() -> Table {
    let mut table = Table::new(
        "E2 — Selection in minimum time with advice (Theorem 2.2)",
        &[
            "graph",
            "Δ",
            "ψ_S",
            "rounds used",
            "advice bits (measured)",
            "dag bits (shared encoding)",
            "(Δ−1)^ψ·log₂Δ (paper form)",
            "solved",
        ],
    );
    for item in small_suite() {
        let g = &item.graph;
        let Some(psi) = psi_s(g) else { continue };
        let report = Election::task(Task::Selection)
            .solver(AdviceSolver::theorem_2_2())
            .run(g)
            .expect("advice solver ran");
        table.push_row(vec![
            item.name.clone(),
            g.max_degree().to_string(),
            psi.to_string(),
            report.rounds.to_string(),
            report.advice_bits.expect("advice solver").to_string(),
            report.advice_dag_bits.expect("advice solver").to_string(),
            fmt_f64(bounds::theorem_2_2_upper_form(g.max_degree(), psi)),
            report.solved().to_string(),
        ]);
    }
    table
}

/// E3 — the class `G_{Δ,k}` (Section 2.2, Theorem 2.9): class size, election index,
/// uniqueness of `r_{i,2}`, cross-member indistinguishability, measured Selection
/// advice, and the paper's lower/upper bounds.
pub fn e3_g_class(params: &[(usize, usize)]) -> Table {
    let mut table = Table::new(
        "E3 — Selection advice lower bound family G_{Δ,k} (Theorem 2.9)",
        &[
            "Δ",
            "k",
            "log₂|G_{Δ,k}|",
            "member i",
            "nodes",
            "ψ_S",
            "unique node = r_{i,2}",
            "Lemma 2.8 (α<β twins)",
            "S advice bits (measured)",
            "Thm 2.9 lower bits",
            "Thm 2.2 upper form",
        ],
    );
    for &(delta, k) in params {
        let class = GClass::new(delta, k).expect("valid parameters");
        let size = class.size().ok();
        // Pick a mid-sized member (and a larger one for the cross-member check).
        let alpha = size.map(|s| (s / 3).max(2)).unwrap_or(2);
        let beta = size
            .map(|s| (2 * s / 3).max(alpha + 1))
            .unwrap_or(alpha + 1);
        let ga = class.member(alpha).expect("member");
        let gb = class.member(beta).expect("member");

        let r = Refinement::compute(&ga.labeled.graph, Some(k + 1));
        let psi = psi_s_with(&r);
        let unique = r.unique_nodes_at(k);
        let unique_is_special = unique == vec![ga.special_root()];

        // Lemma 2.8: the root r_{α,2} looks the same in G_α and G_β at depth k, and has
        // a twin inside G_β.
        let joint = JointRefinement::compute(&[&ga.labeled.graph, &gb.labeled.graph], Some(k));
        let lemma_2_8 = joint.same_view(
            (0, ga.special_root()),
            (1, gb.root(alpha, 2, 1).unwrap()),
            k,
        ) && {
            let within = Refinement::compute(&gb.labeled.graph, Some(k));
            within.same_view(
                gb.root(alpha, 2, 1).unwrap(),
                gb.root(alpha, 2, 2).unwrap(),
                k,
            )
        };

        let report = Election::task(Task::Selection)
            .solver(AdviceSolver::theorem_2_2())
            .run(&ga.labeled.graph)
            .expect("advice solver ran");

        table.push_row(vec![
            delta.to_string(),
            k.to_string(),
            fmt_f64(class.log2_size()),
            alpha.to_string(),
            ga.labeled.graph.num_nodes().to_string(),
            opt(psi),
            unique_is_special.to_string(),
            lemma_2_8.to_string(),
            format!(
                "{} (solved={})",
                report.advice_bits.expect("advice solver"),
                report.solved()
            ),
            fmt_f64(bounds::theorem_2_9_lower_bits(delta, k)),
            fmt_f64(bounds::theorem_2_2_upper_form(delta, k)),
        ]);
    }
    table
}

/// E3b — the measured form of the Theorem 2.9 pigeonhole on a fully instantiated
/// class: pairwise advice-sharing conflicts between all members of `G_{Δ,k}`, placed
/// next to an actual run of the Theorem 2.2 solver on every member (routed through the
/// `Solver` trait, so any other solver can be substituted). Only classes small enough
/// to instantiate completely are examined.
pub fn e3b_conflict_census(params: &[(usize, usize)]) -> Table {
    use anet_election::lower_bound_witness::selection_census_with_solver;
    let mut table = Table::new(
        "E3b — measured advice lower bound: pairwise conflicts in G_{Δ,k}",
        &[
            "Δ",
            "k",
            "members",
            "conflicting pairs",
            "all pairs conflict",
            "min advice strings",
            "min advice bits (measured)",
            "Thm 2.9 lower bits (closed form)",
            "solver",
            "solved (min-time)",
            "achieved bits (max)",
            "achieved dag bits (max)",
        ],
    );
    for &(delta, k) in params {
        let class = GClass::new(delta, k).expect("valid parameters");
        let Ok(size) = class.size() else { continue };
        if size > 16 {
            continue;
        }
        let members: Vec<_> = (1..=size)
            .map(|i| class.member(i).expect("member").labeled.graph)
            .collect();
        let refs: Vec<&PortGraph> = members.iter().collect();
        let sc = selection_census_with_solver(&refs, k, |_| Box::new(AdviceSolver::theorem_2_2()));
        table.push_row(vec![
            delta.to_string(),
            k.to_string(),
            sc.census.members.to_string(),
            sc.census.conflicting_pairs.to_string(),
            sc.census.all_conflict().to_string(),
            sc.census.min_advice_strings().to_string(),
            sc.census.min_advice_bits().to_string(),
            fmt_f64(bounds::theorem_2_9_lower_bits(delta, k)),
            sc.solver.clone(),
            format!("{} ({})", sc.solved, sc.min_time),
            sc.max_advice_bits
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".into()),
            sc.max_advice_dag_bits
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    table
}

/// E4 — the class `U_{Δ,k}` (Section 3, Theorem 3.11): `ψ_S = ψ_PE = k`, correctness of
/// the Lemma 3.9 Port Election algorithm, and the Selection-vs-Port-Election advice
/// separation.
pub fn e4_u_class(params: &[(usize, usize)]) -> Table {
    let mut table = Table::new(
        "E4 — Port Election advice lower bound family U_{Δ,k} (Theorem 3.11)",
        &[
            "Δ",
            "k",
            "y=|T_{Δ,k}|",
            "log₂|U_{Δ,k}|",
            "nodes",
            "no unique view < k",
            "cycle roots unique at k",
            "PE solved in k rounds",
            "S advice bits (measured)",
            "PE lower bits (Thm 3.11)",
            "separation factor",
        ],
    );
    for &(delta, k) in params {
        let class = UClass::new(delta, k).expect("valid parameters");
        let sigma: Vec<u32> = (0..class.y())
            .map(|j| (j % (delta as u64 - 1)) as u32 + 1)
            .collect();
        let member = class.member(&sigma).expect("member");
        let g = &member.labeled.graph;

        let r = Refinement::compute(g, Some(k));
        let no_unique_below = (0..k).all(|h| r.unique_nodes_at(h).is_empty());
        let roots_unique = member
            .cycle_roots()
            .into_iter()
            .all(|root| r.is_unique(root, k));

        let pe = Election::task(Task::PortElection)
            .solver(PortElectionSolver::new(k))
            .run(g)
            .expect("PE run");
        let pe_ok = pe.rounds == k && pe.solved();

        let s_run = Election::task(Task::Selection)
            .solver(AdviceSolver::theorem_2_2())
            .run(g)
            .expect("advice solver ran");
        let s_ok = s_run.solved();
        let s_bits = s_run.advice_bits.expect("advice solver");
        let pe_lower = bounds::theorem_3_11_lower_bits(delta, k);
        let separation = pe_lower / s_bits as f64;

        table.push_row(vec![
            delta.to_string(),
            k.to_string(),
            class.y().to_string(),
            fmt_f64(class.log2_size()),
            g.num_nodes().to_string(),
            no_unique_below.to_string(),
            roots_unique.to_string(),
            pe_ok.to_string(),
            format!("{s_bits} (solved={s_ok})"),
            fmt_f64(pe_lower),
            fmt_f64(separation),
        ]);
    }
    table
}

/// Verify a CPPE output assignment on a (possibly large) graph by checking the leader
/// count exactly and the path condition on every node if the graph is small, or on all
/// `ρ`-like high-degree nodes plus an evenly spread sample otherwise. Returns
/// `(checked_nodes, all_valid)`.
pub fn verify_cppe_sampled(
    graph: &PortGraph,
    outputs: &[NodeOutput],
    sample: usize,
) -> (usize, bool) {
    let leaders: Vec<NodeId> = graph
        .nodes()
        .filter(|&v| outputs[v as usize] == NodeOutput::Leader)
        .collect();
    if leaders.len() != 1 {
        return (0, false);
    }
    let leader = leaders[0];
    let candidates: Vec<NodeId> = if graph.num_nodes() <= sample {
        graph.nodes().collect()
    } else {
        let step = graph.num_nodes() / sample;
        graph.nodes().step_by(step.max(1)).collect()
    };
    let mut checked = 0usize;
    for v in candidates {
        if v == leader {
            continue;
        }
        checked += 1;
        match &outputs[v as usize] {
            NodeOutput::FullPath(pairs) => {
                if !paths::cppe_sequence_is_valid(graph, v, pairs, leader) {
                    return (checked, false);
                }
            }
            _ => return (checked, false),
        }
    }
    (checked, true)
}

/// E5 — the class `J_{μ,k}` (Section 4, Theorems 4.11/4.12): chain sizes, `ψ_S ≥ k`
/// (full template), the Lemma 4.8 CPPE algorithm, and the Selection-vs-CPPE advice
/// separation. `gadget_caps` lists chain lengths to run the CPPE algorithm on;
/// `include_full` additionally builds the full `2^z`-gadget template for the
/// indistinguishability checks (μ = 2, k = 4 → 1024 gadgets, ≈132k nodes).
pub fn e5_j_class(mu: usize, k: usize, gadget_caps: &[usize], include_full: bool) -> Table {
    let class = JClass::new(mu, k).expect("valid parameters");
    let mut table = Table::new(
        "E5 — PPE/CPPE advice lower bound family J_{μ,k} (Theorems 4.11, 4.12)",
        &[
            "μ",
            "k",
            "z",
            "gadgets",
            "nodes",
            "ρ views equal < k (Prop 4.4)",
            "no unique view < k (Lemma 4.6)",
            "CPPE ok (k rounds)",
            "checked nodes",
            "S advice bits (measured)",
            "CPPE lower bits (Thm 4.12)",
        ],
    );
    let mut runs: Vec<(usize, bool)> = gadget_caps.iter().map(|&c| (c, false)).collect();
    if include_full {
        runs.push((class.num_gadgets().expect("2^z fits u64") as usize, true));
    }
    for (cap, is_full) in runs {
        let member = class.template(Some(cap)).expect("template chain");
        let g = &member.labeled.graph;
        let r = Refinement::compute(g, Some(k - 1));
        let rho_equal =
            (1..member.num_gadgets()).all(|i| r.same_view(member.rho(0), member.rho(i), k - 1));
        // Lemma 4.6 is a statement about the full template; on capped chains the
        // boundary gadgets may contain unique views, so we only report it there.
        let no_unique = if is_full {
            (0..k).all(|h| r.unique_nodes_at(h).is_empty()).to_string()
        } else {
            let ok = r.unique_nodes_at(k - 1).is_empty();
            format!("{ok} (capped chain)")
        };

        // The CPPE algorithm (full verification for small chains, sampled for large).
        let (cppe_cell, checked) = if member.num_gadgets() <= 64 {
            let report = Election::task(Task::CompletePortPathElection)
                .solver(CppeSolver::new(member.clone(), k))
                .run(g)
                .expect("CPPE run");
            let ok = report.rounds == k && report.solved();
            (ok.to_string(), g.num_nodes())
        } else {
            (
                "skipped (output size is Θ(n²) on long chains)".to_string(),
                0,
            )
        };

        // Selection on the same graph, for the separation column.
        let advice = SelectionOracle::tree().advise(g);
        let s_bits = advice.len();

        table.push_row(vec![
            mu.to_string(),
            k.to_string(),
            member.z.to_string(),
            member.num_gadgets().to_string(),
            g.num_nodes().to_string(),
            rho_equal.to_string(),
            no_unique,
            cppe_cell,
            checked.to_string(),
            s_bits.to_string(),
            fmt_f64(bounds::theorem_4_11_lower_bits_mu(mu, k)),
        ]);
    }
    table
}

/// E6 — the counting facts (2.3, 3.1, 4.1, 4.2) over a parameter sweep.
pub fn e6_class_sizes() -> Table {
    let mut table = Table::new(
        "E6 — class and layer sizes (Facts 2.3, 3.1, 4.1, 4.2)",
        &["object", "parameters", "closed form", "instantiated"],
    );
    for (delta, k) in [(4usize, 1usize), (4, 2), (5, 1), (6, 1), (5, 2)] {
        let class = GClass::new(delta, k).unwrap();
        let closed = fmt_f64(class.log2_size());
        let instantiated = class
            .size()
            .map(|s| s.to_string())
            .unwrap_or_else(|_| "overflows u64".to_string());
        table.push_row(vec![
            "|G_{Δ,k}| = |T_{Δ,k}| (Fact 2.3), log₂".to_string(),
            format!("Δ={delta}, k={k}"),
            closed,
            instantiated,
        ]);
    }
    for (delta, k) in [(4usize, 1usize), (5, 1), (4, 2)] {
        let class = UClass::new(delta, k).unwrap();
        table.push_row(vec![
            "|U_{Δ,k}| (Fact 3.1), log₂".to_string(),
            format!("Δ={delta}, k={k}"),
            fmt_f64(class.log2_size()),
            class
                .size()
                .map(|s| s.to_string())
                .unwrap_or_else(|_| "overflows u64".to_string()),
        ]);
    }
    for mu in [2usize, 3] {
        for m in 0..=6usize {
            let closed = bounds::fact_4_1_layer_size(mu, m);
            let built = anet_constructions::layers::layer_graph(mu, m)
                .map(|(g, _)| g.num_nodes().to_string())
                .unwrap_or_else(|e| e.to_string());
            table.push_row(vec![
                "|L_m| (Fact 4.1)".to_string(),
                format!("μ={mu}, m={m}"),
                fmt_f64(closed),
                built,
            ]);
        }
    }
    for (mu, k) in [(2usize, 4usize), (2, 5), (3, 4)] {
        let class = JClass::new(mu, k).unwrap();
        table.push_row(vec![
            "log₂|J_{μ,k}| = 2^{z−1} (Fact 4.2)".to_string(),
            format!("μ={mu}, k={k}"),
            fmt_f64(class.log2_size()),
            format!("z = {}", class.z()),
        ]);
    }
    table
}

fn push_batch_rows(table: &mut Table, rows: &[BatchRow], backend: Backend) {
    for row in rows {
        let (solver, rounds, messages, bits, solved, wall) = match &row.report {
            Ok(r) => (
                r.solver.clone(),
                r.rounds.to_string(),
                r.messages_delivered.to_string(),
                r.advice_bits
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "-".into()),
                r.solved().to_string(),
                format!("{:.2}ms", r.wall_time.as_secs_f64() * 1e3),
            ),
            Err(e) => (
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                format!("false ({e})"),
                "-".into(),
            ),
        };
        table.push_row(vec![
            row.family.clone(),
            row.instance.clone(),
            row.nodes.to_string(),
            row.task.to_string(),
            solver,
            backend.label(),
            rounds,
            messages,
            bits,
            solved,
            wall,
        ]);
    }
}

/// E7 — the engine configuration matrix: task shade × solver × execution backend ×
/// graph family, all through the `ElectionEngine` facade. One sweep per family:
///
/// * `G_{4,1}` members × all four shades × the map-based minimum-time solver,
/// * `U_{4,1}` members × {S, PE} × the Lemma 3.9 Port Election solver,
/// * `J_{2,4}` capped chains × all four shades × the Lemma 4.8 CPPE solver (its CPPE
///   outputs are weakened per Fact 1.1 for the weaker shades),
/// * the small-graph suite × S × the map solver (including infeasible graphs, which
///   report as unsolved rather than failing the sweep).
///
/// Every sweep is run on every backend; outputs and message counts are
/// backend-invariant, so the matrix doubles as an engine-equivalence check for the
/// simulation-backed rows (the `J` rows use the analytic Lemma 4.8 solver, which runs
/// no simulation and ignores the backend by design).
pub fn e7_engine_matrix(backends: &[Backend]) -> Table {
    let mut table = Table::new(
        "E7 — ElectionEngine matrix: task × solver × backend × family",
        &[
            "family",
            "instance",
            "n",
            "task",
            "solver",
            "backend",
            "rounds",
            "messages",
            "advice bits",
            "solved",
            "wall",
        ],
    );
    for &backend in backends {
        let runner = BatchRunner::new(backend).max_instances(2);

        let g_class = GClass::new(4, 1).expect("parameters");
        let rows = runner.sweep_tasks(&g_class, &Task::ALL, |_| Box::new(MapSolver::default()));
        push_batch_rows(&mut table, &rows, backend);

        let u_class = UClass::new(4, 1).expect("parameters");
        let rows = runner.sweep_tasks(&u_class, &[Task::Selection, Task::PortElection], |_| {
            Box::new(PortElectionSolver::new(u_class.k))
        });
        push_batch_rows(&mut table, &rows, backend);

        let j_class = JClass::new(2, 4).expect("parameters");
        let rows = runner.sweep_tasks(&j_class, &Task::ALL, |instance| {
            let member = j_class
                .template(Some(instance.param as usize))
                .expect("param is the chain cap");
            Box::new(CppeSolver::new(member, j_class.k))
        });
        push_batch_rows(&mut table, &rows, backend);

        let rows =
            BatchRunner::new(backend)
                .max_instances(6)
                .sweep(&SuiteFamily, Task::Selection, |_| {
                    Box::new(MapSolver::default())
                });
        push_batch_rows(&mut table, &rows, backend);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_table_reports_hierarchy_everywhere() {
        let t = e1_hierarchy();
        assert!(t.num_rows() >= 10);
        for row in 0..t.num_rows() {
            assert_eq!(t.cell(row, "hierarchy"), Some("true"));
            assert_eq!(t.cell(row, "measured=computed"), Some("true"));
        }
    }

    #[test]
    fn e2_table_solves_selection_within_bounds() {
        let t = e2_selection_advice();
        assert!(t.num_rows() >= 6);
        for row in 0..t.num_rows() {
            assert_eq!(t.cell(row, "solved"), Some("true"));
            assert_eq!(
                t.cell(row, "ψ_S"),
                t.cell(row, "rounds used"),
                "minimum time means exactly ψ_S rounds"
            );
        }
    }

    #[test]
    fn e3_table_small_parameters() {
        let t = e3_g_class(&[(4, 1), (5, 1)]);
        assert_eq!(t.num_rows(), 2);
        for row in 0..t.num_rows() {
            assert_eq!(t.cell(row, "ψ_S"), Some("1"));
            assert_eq!(t.cell(row, "unique node = r_{i,2}"), Some("true"));
            assert_eq!(t.cell(row, "Lemma 2.8 (α<β twins)"), Some("true"));
        }
    }

    #[test]
    fn e3b_census_reports_full_conflict_on_g_4_1() {
        let t = e3b_conflict_census(&[(4, 1), (4, 2)]);
        // Only the fully instantiable (4,1) row is produced.
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.cell(0, "all pairs conflict"), Some("true"));
        assert_eq!(t.cell(0, "min advice strings"), Some("9"));
        assert_eq!(t.cell(0, "min advice bits (measured)"), Some("4"));
        // The census now also runs every member through the Solver trait: the
        // Theorem 2.2 pair solves all 9 members, each in minimum time.
        assert_eq!(t.cell(0, "solved (min-time)"), Some("9 (9)"));
        assert!(t.cell(0, "solver").unwrap().contains("thm-2.2"));
        let achieved: usize = t.cell(0, "achieved bits (max)").unwrap().parse().unwrap();
        assert!(achieved >= 4, "upper bound must respect the lower bound");
    }

    #[test]
    fn e4_table_small_parameters() {
        let t = e4_u_class(&[(4, 1)]);
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.cell(0, "no unique view < k"), Some("true"));
        assert_eq!(t.cell(0, "cycle roots unique at k"), Some("true"));
        assert_eq!(t.cell(0, "PE solved in k rounds"), Some("true"));
    }

    #[test]
    fn e5_table_capped_chains() {
        let t = e5_j_class(2, 4, &[4, 8], false);
        assert_eq!(t.num_rows(), 2);
        for row in 0..2 {
            assert_eq!(t.cell(row, "ρ views equal < k (Prop 4.4)"), Some("true"));
            assert_eq!(t.cell(row, "CPPE ok (k rounds)"), Some("true"));
        }
    }

    #[test]
    fn e7_matrix_solves_every_family_row_on_every_backend() {
        let backends = [Backend::Sequential, Backend::Parallel { threads: 4 }];
        let t = e7_engine_matrix(&backends);
        // Per backend: 2 G members × 4 tasks + 2 U members × 2 tasks + 2 J chains × 4
        // tasks + 6 suite graphs.
        assert_eq!(t.num_rows(), backends.len() * (8 + 4 + 8 + 6));
        for row in 0..t.num_rows() {
            let family = t.cell(row, "family").unwrap();
            let solved = t.cell(row, "solved").unwrap();
            if family == "small-suite" {
                // The suite deliberately contains infeasible graphs; they must be
                // reported, not crash the sweep.
                assert!(solved == "true" || solved.starts_with("false"), "{solved}");
            } else {
                assert_eq!(solved, "true", "row {row} ({family})");
            }
        }
        // Backend-invariance: the two halves of the table agree on everything but the
        // backend label and wall time.
        let half = t.num_rows() / 2;
        for row in 0..half {
            for col in [
                "family",
                "instance",
                "n",
                "task",
                "rounds",
                "messages",
                "advice bits",
            ] {
                assert_eq!(
                    t.cell(row, col),
                    t.cell(row + half, col),
                    "row {row}, {col}"
                );
            }
            assert_ne!(
                t.cell(row, "backend"),
                t.cell(row + half, "backend"),
                "row {row}"
            );
        }
    }

    #[test]
    fn e6_table_has_every_fact() {
        let t = e6_class_sizes();
        assert!(t.num_rows() >= 20);
        // Every instantiated count that is a plain number must match the closed form
        // whenever the closed form is itself an exact integer ≤ u64.
        for row in 0..t.num_rows() {
            let object = t.cell(row, "object").unwrap();
            if object.contains("Fact 4.1") {
                assert_eq!(
                    t.cell(row, "closed form"),
                    t.cell(row, "instantiated"),
                    "layer sizes must match exactly"
                );
            }
        }
    }
}
