//! A minimal aligned-text table used by every experiment binary.

/// A rectangular table with named columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title, printed above the header.
    pub title: String,
    /// Column names.
    pub headers: Vec<String>,
    /// Rows (each must have `headers.len()` cells).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given title and column names.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; panics if the width does not match the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Look up a cell by row index and column name (used by tests).
    pub fn cell(&self, row: usize, column: &str) -> Option<&str> {
        let idx = self.headers.iter().position(|h| h == column)?;
        self.rows.get(row).map(|r| r[idx].as_str())
    }

    /// Render the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Format a float compactly (integers without decimals, big values in scientific
/// notation, infinities as a glyph).
pub fn fmt_f64(x: f64) -> String {
    if x.is_infinite() {
        return "astronomical (>1e308)".to_string();
    }
    if x.abs() >= 1e6 {
        format!("{x:.3e}")
    } else if x.fract() == 0.0 {
        format!("{}", x as i64)
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("demo", &["graph", "ψ_S"]);
        t.push_row(vec!["line".into(), "0".into()]);
        t.push_row(vec!["oriented ring".into(), "2".into()]);
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("graph"));
        assert!(text.lines().count() >= 4);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.cell(1, "ψ_S"), Some("2"));
        assert_eq!(t.cell(0, "missing"), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_panic() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["x".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(4.0), "4");
        assert_eq!(fmt_f64(4.5), "4.50");
        assert_eq!(fmt_f64(f64::INFINITY), "astronomical (>1e308)");
        assert!(fmt_f64(3.2e9).contains('e'));
    }
}
