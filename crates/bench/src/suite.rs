//! The standard suite of small graphs used by experiment E1 and several benches.

use anet_constructions::{FamilyInstance, GraphFamily};
use anet_graph::{generators, PortGraph};

/// A named graph of the evaluation suite.
pub struct SuiteGraph {
    /// Human-readable name.
    pub name: String,
    /// The graph.
    pub graph: PortGraph,
}

/// The small-graph suite: the paper's own 3-node example, simple named topologies
/// (feasible and infeasible), members of the constructed families small enough for the
/// exact index computations, and a few random graphs.
pub fn small_suite() -> Vec<SuiteGraph> {
    let mut out = Vec::new();
    let mut push = |name: &str, graph: PortGraph| {
        out.push(SuiteGraph {
            name: name.to_string(),
            graph,
        })
    };

    push("paper 3-node line", generators::paper_three_node_line());
    push("path(6)", generators::path(6).unwrap());
    push("star(4)", generators::star(4).unwrap());
    push("symmetric ring(6)", generators::symmetric_ring(6).unwrap());
    push(
        "oriented ring(5)",
        generators::oriented_ring(&[true, true, false, true, false]).unwrap(),
    );
    push(
        "oriented ring(7)",
        generators::oriented_ring(&[true, true, true, false, true, false, false]).unwrap(),
    );
    push("hypercube(3)", generators::hypercube(3).unwrap());
    push("complete(5)", generators::complete(5).unwrap());

    let g41 = anet_constructions::GClass::new(4, 1).unwrap();
    push("G_{4,1} member 2", g41.member(2).unwrap().labeled.graph);
    push("G_{4,1} member 4", g41.member(4).unwrap().labeled.graph);

    for seed in [11u64, 23, 47] {
        push(
            &format!("random(n=12, Δ≤4, seed={seed})"),
            generators::random_connected(12, 4, 4, seed).unwrap(),
        );
    }
    out
}

/// The small-graph suite as a [`GraphFamily`], so the `ElectionEngine` batch runner
/// and the engine experiments can sweep it like any of the paper's classes.
#[derive(Debug, Clone, Copy, Default)]
pub struct SuiteFamily;

impl GraphFamily for SuiteFamily {
    fn family_name(&self) -> String {
        "small-suite".to_string()
    }

    fn instances(&self, max_instances: usize) -> Vec<FamilyInstance> {
        small_suite()
            .into_iter()
            .take(max_instances)
            .enumerate()
            .map(|(i, item)| FamilyInstance {
                name: item.name,
                param: i as u64,
                graph: item.graph,
            })
            .collect()
    }
}

/// Graphs for the scaling benches: random connected graphs of increasing size.
pub fn scaling_suite(sizes: &[usize]) -> Vec<SuiteGraph> {
    sizes
        .iter()
        .map(|&n| SuiteGraph {
            name: format!("random(n={n}, Δ≤6)"),
            graph: generators::random_connected(n, 6, n / 2, n as u64).unwrap(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_graphs_are_valid_and_distinctly_named() {
        let suite = small_suite();
        assert!(suite.len() >= 10);
        let mut names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), suite.len(), "names must be unique");
        for s in &suite {
            assert!(s.graph.num_nodes() >= 3);
        }
    }

    #[test]
    fn suite_family_mirrors_the_suite() {
        let instances = SuiteFamily.instances(4);
        assert_eq!(instances.len(), 4);
        let suite = small_suite();
        for (i, inst) in instances.iter().enumerate() {
            assert_eq!(inst.name, suite[i].name);
            assert_eq!(inst.graph, suite[i].graph);
        }
    }

    #[test]
    fn scaling_suite_has_requested_sizes() {
        let suite = scaling_suite(&[20, 50]);
        assert_eq!(suite.len(), 2);
        assert_eq!(suite[0].graph.num_nodes(), 20);
        assert_eq!(suite[1].graph.num_nodes(), 50);
    }
}
