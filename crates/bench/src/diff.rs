//! Comparing two `anet-bench/v1` documents — the perf-trend gate.
//!
//! [`Harness::report`](crate::Harness::report) leaves `BENCH_bench_<name>.json`
//! artifacts; this module compares a *current* artifact against a committed
//! *baseline* one, measurement by measurement (matched on `id`, compared on
//! `mean_ns`). The comparison is what the `bench_diff` binary and the CI gate
//! run: a measurement whose mean regressed by more than the configured fraction
//! fails, as does a baseline measurement missing from the current run (a silently
//! dropped bench must not pass the gate). Measurements only present in the
//! current run are reported but never fail — adding benches is not a regression.

// anet-lint: deny(panic-path)

use crate::table::Table;
use anet_workloads::json::Json;

/// Default largest tolerated fractional slowdown (25%), matching the service
/// bench's gate.
pub const DEFAULT_MAX_REGRESSION: f64 = 0.25;

/// One measurement id compared across the two documents.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// The measurement id (present in the baseline).
    pub id: String,
    /// Baseline mean nanoseconds.
    pub baseline_ns: i64,
    /// Current mean nanoseconds, `None` if the current run dropped the bench.
    pub current_ns: Option<i64>,
    /// `current / baseline`; `None` when the measurement is missing or the
    /// baseline mean is zero (sub-nanosecond — too fast to gate on).
    pub ratio: Option<f64>,
}

impl DiffRow {
    /// Whether this row fails the gate at `max_regression`: the bench vanished,
    /// or its mean grew beyond `baseline · (1 + max_regression)`.
    pub fn regressed(&self, max_regression: f64) -> bool {
        match self.ratio {
            Some(ratio) => ratio > 1.0 + max_regression,
            None => self.current_ns.is_none(),
        }
    }
}

/// The full comparison of two bench documents.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Bench name of the baseline document.
    pub bench: String,
    /// One row per baseline measurement, in baseline order.
    pub rows: Vec<DiffRow>,
    /// Measurement ids only the current run has (informational, never failing).
    pub added: Vec<String>,
    /// The tolerated fractional slowdown the report was computed with.
    pub max_regression: f64,
}

impl DiffReport {
    /// The rows that fail the gate.
    pub fn regressions(&self) -> Vec<&DiffRow> {
        self.rows
            .iter()
            .filter(|r| r.regressed(self.max_regression))
            .collect()
    }

    /// Whether every baseline measurement is present and within budget.
    pub fn passed(&self) -> bool {
        self.regressions().is_empty()
    }

    /// Render the comparison as an aligned table (one row per baseline
    /// measurement; missing and regressed rows are marked in the verdict column).
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "bench-diff {} (max regression {:.0}%)",
                self.bench,
                self.max_regression * 100.0
            ),
            &["id", "baseline", "current", "ratio", "verdict"],
        );
        for row in &self.rows {
            let current = match row.current_ns {
                Some(ns) => format!("{ns}ns"),
                None => "—".to_string(),
            };
            let ratio = match row.ratio {
                Some(r) => format!("{r:.2}x"),
                None => "—".to_string(),
            };
            let verdict = if row.current_ns.is_none() {
                "MISSING"
            } else if row.regressed(self.max_regression) {
                "REGRESSED"
            } else {
                "ok"
            };
            t.push_row(vec![
                row.id.clone(),
                format!("{}ns", row.baseline_ns),
                current,
                ratio,
                verdict.to_string(),
            ]);
        }
        for id in &self.added {
            t.push_row(vec![
                id.clone(),
                "—".to_string(),
                "new".to_string(),
                "—".to_string(),
                "ok".to_string(),
            ]);
        }
        t
    }
}

/// Why a bench document could not be compared.
#[derive(Debug)]
pub enum DiffError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The text is not valid JSON.
    Json(String),
    /// The document's `schema` field is not `anet-bench/v1`.
    Schema {
        /// What the document declared (empty when absent).
        found: String,
    },
    /// A measurement lacks a string `id` or an integer `mean_ns`.
    Measurement {
        /// 0-based index into the `measurements` array.
        index: usize,
    },
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::Io(e) => write!(f, "cannot read bench document: {e}"),
            DiffError::Json(e) => write!(f, "bench document is not valid JSON: {e}"),
            DiffError::Schema { found } => write!(
                f,
                "bench document declares schema {found:?}, expected \"anet-bench/v1\""
            ),
            DiffError::Measurement { index } => write!(
                f,
                "measurement {index} lacks a string id or integer mean_ns"
            ),
        }
    }
}

impl std::error::Error for DiffError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiffError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// A parsed `anet-bench/v1` document reduced to what the diff needs.
#[derive(Debug, Clone)]
pub struct BenchDoc {
    /// The `bench` name field.
    pub bench: String,
    /// `(id, mean_ns)` per measurement, in document order.
    pub means: Vec<(String, i64)>,
}

impl BenchDoc {
    /// Parse a rendered `anet-bench/v1` document.
    pub fn parse(text: &str) -> Result<BenchDoc, DiffError> {
        let doc = Json::parse(text).map_err(|e| DiffError::Json(e.to_string()))?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(crate::BENCH_SCHEMA) => {}
            other => {
                return Err(DiffError::Schema {
                    found: other.unwrap_or_default().to_string(),
                })
            }
        }
        let bench = doc
            .get("bench")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let mut means = Vec::new();
        let measurements = doc
            .get("measurements")
            .and_then(Json::as_array)
            .map(|a| a.to_vec())
            .unwrap_or_default();
        for (index, m) in measurements.iter().enumerate() {
            let id = m.get("id").and_then(Json::as_str);
            let mean = m.get("mean_ns").and_then(Json::as_int);
            match (id, mean) {
                (Some(id), Some(mean)) => means.push((id.to_string(), mean)),
                _ => return Err(DiffError::Measurement { index }),
            }
        }
        Ok(BenchDoc { bench, means })
    }

    /// Read and parse a document from disk.
    pub fn read(path: &std::path::Path) -> Result<BenchDoc, DiffError> {
        let text = std::fs::read_to_string(path).map_err(DiffError::Io)?;
        BenchDoc::parse(&text)
    }
}

/// Compare `current` against `baseline` measurement-by-measurement.
pub fn diff(baseline: &BenchDoc, current: &BenchDoc, max_regression: f64) -> DiffReport {
    let rows = baseline
        .means
        .iter()
        .map(|(id, baseline_ns)| {
            let current_ns = current
                .means
                .iter()
                .find(|(cid, _)| cid == id)
                .map(|&(_, ns)| ns);
            let ratio = match current_ns {
                Some(ns) if *baseline_ns > 0 => Some(ns as f64 / *baseline_ns as f64),
                _ => None,
            };
            DiffRow {
                id: id.clone(),
                baseline_ns: *baseline_ns,
                current_ns,
                ratio,
            }
        })
        .collect();
    let added = current
        .means
        .iter()
        .filter(|(id, _)| !baseline.means.iter().any(|(bid, _)| bid == id))
        .map(|(id, _)| id.clone())
        .collect();
    DiffReport {
        bench: baseline.bench.clone(),
        rows,
        added,
        max_regression,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(bench: &str, means: &[(&str, i64)]) -> BenchDoc {
        BenchDoc {
            bench: bench.to_string(),
            means: means.iter().map(|&(id, ns)| (id.to_string(), ns)).collect(),
        }
    }

    #[test]
    fn within_budget_passes_and_regression_fails() {
        let baseline = doc("sim", &[("route_seq", 1000), ("route_batch", 400)]);
        // route_seq 20% slower (within 25%), route_batch 50% slower (fails).
        let current = doc("sim", &[("route_seq", 1200), ("route_batch", 600)]);
        let report = diff(&baseline, &current, DEFAULT_MAX_REGRESSION);
        assert!(!report.passed());
        let regressions = report.regressions();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].id, "route_batch");
        assert_eq!(regressions[0].ratio, Some(1.5));
        // A looser gate lets the same comparison pass.
        assert!(diff(&baseline, &current, 0.6).passed());
        // Speedups never fail.
        let faster = doc("sim", &[("route_seq", 10), ("route_batch", 10)]);
        assert!(diff(&baseline, &faster, DEFAULT_MAX_REGRESSION).passed());
    }

    #[test]
    fn missing_measurement_fails_and_added_does_not() {
        let baseline = doc("views", &[("collect_owned", 500), ("collect_shared", 300)]);
        let current = doc("views", &[("collect_owned", 500), ("collect_dag", 100)]);
        let report = diff(&baseline, &current, DEFAULT_MAX_REGRESSION);
        assert!(!report.passed(), "dropped bench must fail the gate");
        assert_eq!(report.regressions()[0].id, "collect_shared");
        assert_eq!(report.regressions()[0].current_ns, None);
        assert_eq!(report.added, vec!["collect_dag".to_string()]);
        let rendered = report.table().render();
        assert!(rendered.contains("MISSING"));
        assert!(rendered.contains("collect_dag"));
    }

    #[test]
    fn zero_baseline_means_never_gate() {
        // A sub-nanosecond baseline mean rounds to 0: any current value would be
        // an infinite ratio, so such rows are exempt rather than auto-failing.
        let baseline = doc("micro", &[("noop", 0)]);
        let current = doc("micro", &[("noop", 50)]);
        let report = diff(&baseline, &current, DEFAULT_MAX_REGRESSION);
        assert!(report.passed());
        assert_eq!(report.rows[0].ratio, None);
    }

    #[test]
    fn parses_real_harness_output_and_rejects_forgeries() {
        let mut h = crate::Harness::new("demo_diff");
        h.bench("sum", 2, || (0..100u64).sum::<u64>());
        let text = h.to_json().render_pretty();
        let parsed = BenchDoc::parse(&text).unwrap();
        assert_eq!(parsed.bench, "demo_diff");
        assert_eq!(parsed.means.len(), 1);
        assert_eq!(parsed.means[0].0, "sum");

        assert!(matches!(
            BenchDoc::parse("not json"),
            Err(DiffError::Json(_))
        ));
        assert!(matches!(
            BenchDoc::parse(r#"{"schema":"anet-bench/v9"}"#),
            Err(DiffError::Schema { .. })
        ));
        let bad_mean = r#"{"schema":"anet-bench/v1","bench":"x",
            "measurements":[{"id":"a","mean_ns":"fast"}]}"#;
        assert!(matches!(
            BenchDoc::parse(bad_mean),
            Err(DiffError::Measurement { index: 0 })
        ));
    }
}
