//! # anet-bench — experiment harness
//!
//! Shared machinery for the experiment binaries (`src/bin/exp_*.rs`) and the Criterion
//! benches (`benches/`): a plain-text table type, a standard suite of small graphs, and
//! the experiment implementations E1–E6 (one per "table" of `EXPERIMENTS.md`). The
//! binaries only parse arguments and print; all measurement logic lives here so that
//! integration tests can call it too.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod suite;
pub mod table;

pub use table::Table;
