//! # anet-bench — experiment harness
//!
//! Shared machinery for the experiment binaries (`src/bin/exp_*.rs`) and the timing
//! benches (`benches/`): a plain-text table type, a small timing [`harness`], a
//! standard suite of small graphs, and the experiment implementations E1–E7 (one per
//! "table" of `EXPERIMENTS.md`, plus the `ElectionEngine` matrix E7). The binaries
//! only parse arguments and print; all measurement logic lives here so that
//! integration tests can call it too. Election runs go through the `ElectionEngine`
//! facade of `anet-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod experiments;
pub mod harness;
pub mod suite;
pub mod table;

pub use diff::{diff, BenchDoc, DiffError, DiffReport, DiffRow, DEFAULT_MAX_REGRESSION};
pub use harness::{Harness, Metric};
pub use table::Table;

/// Schema tag of the versioned bench artifact (`BENCH_bench_*.json`). The single
/// definition the writer ([`Harness::to_json`]) and the parser ([`BenchDoc`])
/// both reference, so the pair cannot drift.
pub const BENCH_SCHEMA: &str = "anet-bench/v1";
