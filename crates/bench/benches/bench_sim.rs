//! P1 — LOCAL-simulator round throughput: the full-information view collector,
//! sequential versus parallel backends.
//!
//! Run with `cargo bench -p anet-bench --bench bench_sim`.

use anet_bench::Harness;
use anet_graph::generators;
use anet_sim::{Backend, ViewCollectorFactory};

fn main() {
    let mut h = Harness::new("full_information_rounds");
    for (n, rounds) in [(200usize, 3usize), (1000, 3), (1000, 4)] {
        let g = generators::random_connected(n, 4, n / 2, 3).unwrap();
        for backend in [Backend::Sequential, Backend::Parallel { threads: 4 }] {
            h.bench(&format!("{backend}_n{n}_r{rounds}"), 10, || {
                backend.run(&g, &ViewCollectorFactory, rounds).outputs.len()
            });
        }
    }
    h.report();
}
