//! P1 — LOCAL-simulator round throughput: the full-information view collector across
//! all execution backends, plus the routing-phase hot path isolated on a large
//! `J_{2,4}` workload (the ROADMAP's n ≳ 10⁵ scaling target) with a constant-size
//! message algorithm, so the send → route → receive cycle — not view cloning —
//! dominates. This is where the arena-based [`Backend::Batching`] earns its keep
//! against [`Backend::Sequential`] (`seq_*` vs `batch_*` rows).
//!
//! Run with `cargo bench -p anet-bench --bench bench_sim`; set
//! `ANET_BENCH_JSON_DIR=<dir>` to also emit `BENCH_bench_sim_rounds.json`.

use anet_bench::Harness;
use anet_constructions::JClass;
use anet_graph::generators;
use anet_sim::{Backend, NodeAlgorithm, ViewCollectorFactory};

/// Flood-max over degrees with `usize` messages: every node broadcasts the largest
/// degree it has heard of on every port, every round. Message handling is O(1), so
/// the benchmark isolates the engine's message plumbing. `send_into` is overridden,
/// so the arena backends run the send phase allocation-free.
#[derive(Clone)]
struct Flood {
    degree: usize,
    best: usize,
}

impl NodeAlgorithm for Flood {
    type Message = usize;
    type Output = usize;

    fn send(&mut self, _round: usize) -> Vec<Option<usize>> {
        vec![Some(self.best); self.degree]
    }

    fn send_into(&mut self, _round: usize, outbox: &mut [Option<usize>]) {
        for slot in outbox.iter_mut() {
            *slot = Some(self.best);
        }
    }

    fn receive(&mut self, _round: usize, inbox: &mut [Option<usize>]) {
        for m in inbox.iter_mut().filter_map(Option::take) {
            self.best = self.best.max(m);
        }
    }

    fn output(&self) -> usize {
        self.best
    }
}

fn flood_factory(degree: usize) -> Flood {
    Flood {
        degree,
        best: degree,
    }
}

fn main() {
    let mut h = Harness::new("sim_rounds");

    // Full-information collection: message payloads are whole views, so this measures
    // the backends under clone-heavy traffic.
    for (n, rounds) in [(200usize, 3usize), (1000, 3), (1000, 4)] {
        let g = generators::random_connected(n, 4, n / 2, 3).unwrap();
        for backend in [
            Backend::Sequential,
            Backend::parallel(4),
            Backend::Batching,
            Backend::AdaptiveParallel,
        ] {
            h.bench(&format!("views_{backend}_n{n}_r{rounds}"), 10, || {
                backend.run(&g, &ViewCollectorFactory, rounds).outputs.len()
            });
        }
    }

    // The routing-phase hot path at scale: the full J_{2,4} template (≈132k nodes)
    // under constant-size flooding. The `seq` vs `batch` rows are the headline
    // comparison the ROADMAP asks for.
    let class = JClass::new(2, 4).unwrap();
    let j_graph = class.template(None).unwrap().labeled.graph;
    let n = j_graph.num_nodes();
    let rounds = 4;
    for backend in [
        Backend::Sequential,
        Backend::Batching,
        Backend::AdaptiveParallel,
    ] {
        h.bench(&format!("routing_J24_{backend}_n{n}_r{rounds}"), 5, || {
            backend
                .run(&j_graph, &flood_factory, rounds)
                .report
                .messages_delivered
        });
    }

    h.report();
}
