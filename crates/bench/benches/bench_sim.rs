//! P1 — LOCAL-simulator round throughput: the full-information view collector,
//! sequential versus crossbeam-parallel execution.

use anet_graph::generators;
use anet_sim::{run, run_parallel, ViewCollectorFactory};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_full_information(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_information_rounds");
    group.sample_size(10);
    for (n, rounds) in [(200usize, 3usize), (1000, 3), (1000, 4)] {
        let g = generators::random_connected(n, 4, n / 2, 3).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("seq_n{n}_r{rounds}")),
            &(g.clone(), rounds),
            |b, (g, rounds)| b.iter(|| run(g, &ViewCollectorFactory, *rounds).outputs.len()),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("par4_n{n}_r{rounds}")),
            &(g, rounds),
            |b, (g, rounds)| {
                b.iter(|| run_parallel(g, &ViewCollectorFactory, *rounds, 4).outputs.len())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_full_information);
criterion_main!(benches);
