//! P1 — performance of the views machinery: refinement, view construction (owned vs
//! interned/shared), full-information collection (owned vs shared messages), and the
//! advice encoding (Theorem 2.2's data path).
//!
//! The `full_info_{owned,shared}_*` pairs measure the PR-4 refactor directly: the
//! owned collector is the seed's `ViewTree`-message implementation (deep clone per
//! port per round, `Θ(m · Δ^r)` node copies), the shared collector is the production
//! `ViewCollectorFactory` (an `Arc` bump per port, `O(deg)` graft per receive). Run
//! at depth 3 on ≥10k-node symmetric workloads (2D torus, random 3-regular), where
//! the owned clone traffic dominates.
//!
//! Run with `cargo bench -p anet-bench --bench bench_views`. Set
//! `ANET_BENCH_JSON_DIR=<dir>` to also emit `BENCH_bench_views.json`
//! (schema `anet-bench/v1`).

use anet_bench::suite::scaling_suite;
use anet_bench::Harness;
use anet_constructions::GraphFamily;
use anet_graph::{Port, PortGraph};
use anet_sim::{AlgorithmFactory, Backend, NodeAlgorithm, ViewCollectorFactory};
use anet_views::encoding::{decode_view, encode_view};
use anet_views::{Refinement, ViewInterner, ViewTree};
use anet_workloads::families::{RandomRegularFamily, TorusFamily};

/// The seed's owned full-information collector, kept verbatim for the comparison:
/// every send deep-clones the current `ViewTree` once per port.
struct OwnedViewCollector {
    degree: usize,
    view: ViewTree,
}

impl NodeAlgorithm for OwnedViewCollector {
    type Message = (Port, ViewTree);
    type Output = usize;

    fn send(&mut self, _round: usize) -> Vec<Option<(Port, ViewTree)>> {
        (0..self.degree)
            .map(|p| Some((p as Port, self.view.clone())))
            .collect()
    }

    fn receive(&mut self, _round: usize, inbox: &mut [Option<(Port, ViewTree)>]) {
        let children = inbox
            .iter_mut()
            .enumerate()
            .map(|(p, msg)| {
                let (far_port, far_view) = msg.take().expect("every neighbour sends");
                (p as Port, far_port, far_view)
            })
            .collect();
        self.view = ViewTree {
            degree: self.degree as u32,
            children,
        };
    }

    fn output(&self) -> usize {
        self.view.size()
    }
}

struct OwnedViewCollectorFactory;

impl AlgorithmFactory for OwnedViewCollectorFactory {
    type Algo = OwnedViewCollector;

    fn create(&self, degree: usize) -> OwnedViewCollector {
        OwnedViewCollector {
            degree,
            view: ViewTree {
                degree: degree as u32,
                children: Vec::new(),
            },
        }
    }
}

/// Owned-vs-shared full-information collection on one workload graph.
fn bench_collection(h: &mut Harness, tag: &str, g: &PortGraph, depth: usize) {
    h.bench(&format!("full_info_owned_{tag}_d{depth}"), 3, || {
        Backend::Sequential
            .run(g, &OwnedViewCollectorFactory, depth)
            .outputs
            .len()
    });
    h.bench(&format!("full_info_shared_{tag}_d{depth}"), 3, || {
        Backend::Sequential
            .run(g, &ViewCollectorFactory, depth)
            .outputs
            .len()
    });
    h.bench(&format!("full_info_shared_batch_{tag}_d{depth}"), 3, || {
        Backend::Batching
            .run(g, &ViewCollectorFactory, depth)
            .outputs
            .len()
    });
}

fn main() {
    let mut h = Harness::new("views");
    for item in scaling_suite(&[50, 200, 800]) {
        let g = item.graph;
        h.bench(
            &format!("refinement_to_stability_n{}", g.num_nodes()),
            20,
            || Refinement::compute(&g, None).stable_depth(),
        );
    }
    for item in scaling_suite(&[200, 800, 2000]) {
        let g = item.graph;
        h.bench(
            &format!("refinement_until_unique_n{}", g.num_nodes()),
            20,
            || Refinement::compute_until_unique(&g).computed_depth(),
        );
    }

    // Owned vs interned map-side construction: `ViewTree::build` materialises Δ^depth
    // nodes for one root; `ViewInterner::build_all` produces the views of *all* nodes
    // in O(n · depth · Δ) handle operations.
    let g = anet_graph::generators::random_connected(500, 5, 300, 7).unwrap();
    for depth in [1usize, 2, 3, 4] {
        h.bench(&format!("view_tree_build_depth{depth}"), 10, || {
            ViewTree::build(&g, 0, depth).size()
        });
        h.bench(&format!("view_interned_build_all_depth{depth}"), 10, || {
            ViewInterner::new().build_all(&g, depth).len()
        });
    }

    // The PR-4 comparison: full-information collection at depth 3 on ≥10k-node
    // workloads — a 105×100 torus (10500 nodes, Δ = 4, seed-shuffled ports like the
    // scenario grids) and a random 3-regular graph (10000 nodes).
    let torus = TorusFamily::new(vec![(105, 100)])
        .shuffled(41)
        .instances(1)
        .remove(0)
        .graph;
    bench_collection(&mut h, "torus105x100", &torus, 3);
    let rr = RandomRegularFamily::new(3, vec![10_000], 0xA5EED).generate(10_000);
    bench_collection(&mut h, "rr3_n10000", &rr, 3);

    let g = anet_graph::generators::random_connected(200, 5, 100, 9).unwrap();
    let view = ViewTree::build(&g, 0, 3);
    let encoded = encode_view(&view, 3);
    h.bench("encode_depth3", 20, || encode_view(&view, 3).len());
    h.bench("decode_depth3", 20, || decode_view(&encoded).unwrap().1);
    h.report();
}
