//! P1 — performance of the views machinery: refinement, view construction (owned vs
//! interned/shared), full-information collection (owned vs shared messages), and the
//! two advice encodings (Theorem 2.2's data path): the unfolded-tree codec and the
//! shared-DAG codec, timed side by side and with their sizes recorded as metrics
//! (`tree_bits_*` / `dag_bits_*`) so the `Θ(Δ^h)` → `O(distinct subtrees)` advice
//! collapse shows up in the artifact trail.
//!
//! The `full_info_{owned,shared}_*` pairs measure the PR-4 refactor directly: the
//! owned collector is the seed's `ViewTree`-message implementation (deep clone per
//! port per round, `Θ(m · Δ^r)` node copies), the shared collector is the production
//! `ViewCollectorFactory` (an `Arc` bump per port, `O(deg)` graft per receive). Run
//! at depth 3 on ≥10k-node symmetric workloads (2D torus, random 3-regular), where
//! the owned clone traffic dominates.
//!
//! Run with `cargo bench -p anet-bench --bench bench_views`. Set
//! `ANET_BENCH_JSON_DIR=<dir>` to also emit `BENCH_bench_views.json`
//! (schema `anet-bench/v1`).

use anet_bench::suite::scaling_suite;
use anet_bench::Harness;
use anet_constructions::GraphFamily;
use anet_graph::{Port, PortGraph};
use anet_sim::{AlgorithmFactory, Backend, NodeAlgorithm, ViewCollectorFactory};
use anet_views::dag_encoding::{decode_view_dag, encode_view_dag};
use anet_views::encoding::{decode_view, encode_view, encode_view_interned};
use anet_views::{Refinement, View, ViewInterner, ViewTree};
use anet_workloads::families::{RandomRegularFamily, TorusFamily};

/// The seed's owned full-information collector, kept verbatim for the comparison:
/// every send deep-clones the current `ViewTree` once per port.
struct OwnedViewCollector {
    degree: usize,
    view: ViewTree,
}

impl NodeAlgorithm for OwnedViewCollector {
    type Message = (Port, ViewTree);
    type Output = usize;

    fn send(&mut self, _round: usize) -> Vec<Option<(Port, ViewTree)>> {
        (0..self.degree)
            .map(|p| Some((p as Port, self.view.clone())))
            .collect()
    }

    fn receive(&mut self, _round: usize, inbox: &mut [Option<(Port, ViewTree)>]) {
        let children = inbox
            .iter_mut()
            .enumerate()
            .map(|(p, msg)| {
                let (far_port, far_view) = msg.take().expect("every neighbour sends");
                (p as Port, far_port, far_view)
            })
            .collect();
        self.view = ViewTree {
            degree: self.degree as u32,
            children,
        };
    }

    fn output(&self) -> usize {
        self.view.size()
    }
}

struct OwnedViewCollectorFactory;

impl AlgorithmFactory for OwnedViewCollectorFactory {
    type Algo = OwnedViewCollector;

    fn create(&self, degree: usize) -> OwnedViewCollector {
        OwnedViewCollector {
            degree,
            view: ViewTree {
                degree: degree as u32,
                children: Vec::new(),
            },
        }
    }
}

/// Owned-vs-shared full-information collection on one workload graph.
fn bench_collection(h: &mut Harness, tag: &str, g: &PortGraph, depth: usize) {
    h.bench(&format!("full_info_owned_{tag}_d{depth}"), 3, || {
        Backend::Sequential
            .run(g, &OwnedViewCollectorFactory, depth)
            .outputs
            .len()
    });
    h.bench(&format!("full_info_shared_{tag}_d{depth}"), 3, || {
        Backend::Sequential
            .run(g, &ViewCollectorFactory, depth)
            .outputs
            .len()
    });
    h.bench(&format!("full_info_shared_batch_{tag}_d{depth}"), 3, || {
        Backend::Batching
            .run(g, &ViewCollectorFactory, depth)
            .outputs
            .len()
    });
}

fn main() {
    let mut h = Harness::new("views");
    for item in scaling_suite(&[50, 200, 800]) {
        let g = item.graph;
        h.bench(
            &format!("refinement_to_stability_n{}", g.num_nodes()),
            20,
            || Refinement::compute(&g, None).stable_depth(),
        );
    }
    for item in scaling_suite(&[200, 800, 2000]) {
        let g = item.graph;
        h.bench(
            &format!("refinement_until_unique_n{}", g.num_nodes()),
            20,
            || Refinement::compute_until_unique(&g).computed_depth(),
        );
    }

    // Owned vs interned map-side construction: `ViewTree::build` materialises Δ^depth
    // nodes for one root; `ViewInterner::build_all` produces the views of *all* nodes
    // in O(n · depth · Δ) handle operations.
    let g = anet_graph::generators::random_connected(500, 5, 300, 7).unwrap();
    for depth in [1usize, 2, 3, 4] {
        h.bench(&format!("view_tree_build_depth{depth}"), 10, || {
            ViewTree::build(&g, 0, depth).size()
        });
        h.bench(&format!("view_interned_build_all_depth{depth}"), 10, || {
            ViewInterner::new().build_all(&g, depth).len()
        });
    }

    // The PR-4 comparison: full-information collection at depth 3 on ≥10k-node
    // workloads — a 105×100 torus (10500 nodes, Δ = 4, seed-shuffled ports like the
    // scenario grids) and a random 3-regular graph (10000 nodes).
    let torus = TorusFamily::new(vec![(105, 100)])
        .shuffled(41)
        .instances(1)
        .remove(0)
        .graph;
    bench_collection(&mut h, "torus105x100", &torus, 3);
    let rr = RandomRegularFamily::new(3, vec![10_000], 0xA5EED).generate(10_000);
    bench_collection(&mut h, "rr3_n10000", &rr, 3);

    let g = anet_graph::generators::random_connected(200, 5, 100, 9).unwrap();
    let view = ViewTree::build(&g, 0, 3);
    let encoded = encode_view(&view, 3);
    h.bench("encode_depth3", 20, || encode_view(&view, 3).len());
    h.bench("decode_depth3", 20, || decode_view(&encoded).unwrap().1);

    // The DAG codec on the same view: encode (incl. the hash-consing pass), decode
    // (incl. re-sharing), and the size of each wire form.
    let shared = View::build(&g, 0, 3);
    let dag_encoded = encode_view_dag(&shared, 3);
    h.bench("dag_encode_depth3", 20, || {
        encode_view_dag(&shared, 3).len()
    });
    h.bench("dag_decode_depth3", 20, || {
        decode_view_dag(&dag_encoded).unwrap().1
    });
    h.metric("tree_bits_random_n200_d3", encoded.len() as i64);
    h.metric("dag_bits_random_n200_d3", dag_encoded.len() as i64);

    // Tree-bits vs dag-bits on a fully symmetric workload (canonical 9×9 torus):
    // the interner holds one node per depth, so the DAG size grows linearly in the
    // depth while the unfolded tree size grows like 4·3^{h-1}. These metrics are the
    // measured form of the `Θ(Δ^h)` → `O(distinct subtrees)` advice collapse.
    let torus = TorusFamily::generate(9, 9);
    let views = ViewInterner::new().build_all(&torus, 8);
    let symmetric = &views[0];
    for depth in [2usize, 4, 6, 8] {
        let truncated = symmetric.truncated(depth);
        h.metric(
            &format!("tree_bits_torus9x9_d{depth}"),
            encode_view_interned(&truncated, depth).len() as i64,
        );
        h.metric(
            &format!("dag_bits_torus9x9_d{depth}"),
            encode_view_dag(&truncated, depth).len() as i64,
        );
    }
    h.report();
}
