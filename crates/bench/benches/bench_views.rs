//! P1 — performance of the views machinery: refinement, explicit view trees, and the
//! advice encoding (Theorem 2.2's data path).
//!
//! Run with `cargo bench -p anet-bench --bench bench_views`.

use anet_bench::suite::scaling_suite;
use anet_bench::Harness;
use anet_views::encoding::{decode_view, encode_view};
use anet_views::{Refinement, ViewTree};

fn main() {
    let mut h = Harness::new("views");
    for item in scaling_suite(&[50, 200, 800]) {
        let g = item.graph;
        h.bench(
            &format!("refinement_to_stability_n{}", g.num_nodes()),
            20,
            || Refinement::compute(&g, None).stable_depth(),
        );
    }
    for item in scaling_suite(&[200, 800, 2000]) {
        let g = item.graph;
        h.bench(
            &format!("refinement_until_unique_n{}", g.num_nodes()),
            20,
            || Refinement::compute_until_unique(&g).computed_depth(),
        );
    }
    let g = anet_graph::generators::random_connected(500, 5, 300, 7).unwrap();
    for depth in [1usize, 2, 3, 4] {
        h.bench(&format!("view_tree_build_depth{depth}"), 10, || {
            ViewTree::build(&g, 0, depth).size()
        });
    }
    let g = anet_graph::generators::random_connected(200, 5, 100, 9).unwrap();
    let view = ViewTree::build(&g, 0, 3);
    let encoded = encode_view(&view, 3);
    h.bench("encode_depth3", 20, || encode_view(&view, 3).len());
    h.bench("decode_depth3", 20, || decode_view(&encoded).unwrap().1);
    h.report();
}
