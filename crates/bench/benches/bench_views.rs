//! P1 — performance of the views machinery: refinement, explicit view trees, and the
//! advice encoding (Theorem 2.2's data path).

use anet_bench::suite::scaling_suite;
use anet_views::encoding::{decode_view, encode_view};
use anet_views::{Refinement, ViewTree};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_refinement(c: &mut Criterion) {
    let mut group = c.benchmark_group("refinement_to_stability");
    group.sample_size(20);
    for item in scaling_suite(&[50, 200, 800]) {
        group.bench_with_input(
            BenchmarkId::from_parameter(item.graph.num_nodes()),
            &item.graph,
            |b, g| b.iter(|| Refinement::compute(g, None).stable_depth()),
        );
    }
    group.finish();
}

fn bench_refinement_until_unique(c: &mut Criterion) {
    let mut group = c.benchmark_group("refinement_until_unique");
    group.sample_size(20);
    for item in scaling_suite(&[200, 800, 2000]) {
        group.bench_with_input(
            BenchmarkId::from_parameter(item.graph.num_nodes()),
            &item.graph,
            |b, g| b.iter(|| Refinement::compute_until_unique(g).computed_depth()),
        );
    }
    group.finish();
}

fn bench_view_tree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("view_tree_build");
    let g = anet_graph::generators::random_connected(500, 5, 300, 7).unwrap();
    for depth in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            b.iter(|| ViewTree::build(&g, 0, d).size())
        });
    }
    group.finish();
}

fn bench_view_encoding(c: &mut Criterion) {
    let g = anet_graph::generators::random_connected(200, 5, 100, 9).unwrap();
    let view = ViewTree::build(&g, 0, 3);
    let encoded = encode_view(&view, 3);
    let mut group = c.benchmark_group("view_encoding");
    group.bench_function("encode_depth3", |b| b.iter(|| encode_view(&view, 3).len()));
    group.bench_function("decode_depth3", |b| b.iter(|| decode_view(&encoded).unwrap().1));
    group.finish();
}

criterion_group!(
    benches,
    bench_refinement,
    bench_refinement_until_unique,
    bench_view_tree_build,
    bench_view_encoding
);
criterion_main!(benches);
