//! E5 — the Lemma 4.8 CPPE algorithm on chains of gadgets from `J_{μ,k}`.

use anet_constructions::JClass;
use anet_election::cppe::solve_cppe_on_j;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_cppe_on_j(c: &mut Criterion) {
    let mut group = c.benchmark_group("cppe_on_J_chain");
    group.sample_size(10);
    let class = JClass::new(2, 4).unwrap();
    for gadgets in [4usize, 16, 48] {
        let member = class.template(Some(gadgets)).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!(
                "gadgets{gadgets}_n{}",
                member.labeled.graph.num_nodes()
            )),
            &member,
            |b, member| b.iter(|| solve_cppe_on_j(member, 4).unwrap().outputs.len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cppe_on_j);
criterion_main!(benches);
