//! E5 — the Lemma 4.8 CPPE algorithm on chains of gadgets from `J_{μ,k}`.
//!
//! Times `Solver::solve` directly (the engine's solver interface) rather than
//! `Election::run`, so the measurement covers the algorithm alone — the CPPE
//! verifier walks Θ(n²) path output and would otherwise dominate.
//!
//! Run with `cargo bench -p anet-bench --bench bench_cppe`.

use anet_bench::Harness;
use anet_constructions::JClass;
use anet_election::engine::{Backend, CppeSolver, Solver};
use anet_election::tasks::Task;

fn main() {
    let mut h = Harness::new("cppe_on_J_chain");
    let class = JClass::new(2, 4).unwrap();
    for gadgets in [4usize, 16, 48] {
        let member = class.template(Some(gadgets)).unwrap();
        let graph = member.labeled.graph.clone();
        let n = graph.num_nodes();
        let solver = CppeSolver::new(member, class.k);
        h.bench(&format!("gadgets{gadgets}_n{n}"), 10, || {
            solver
                .solve(&graph, Task::CompletePortPathElection, Backend::Sequential)
                .unwrap()
                .outputs
                .len()
        });
    }
    h.report();
}
