//! Old-vs-new election-index solver timings: the class-quotient search
//! (`psi_ppe` / `psi_cppe`) against the retired per-node simple-path
//! enumeration (`psi_*_enumerated`) across the workload families.
//!
//! The enumeration side only appears where it finishes in bench-able time:
//! n = 16 on every family and n = 256 on random-regular. On torus/circulant
//! topologies at n ≥ 256 the old DFS wanders exponentially among dead-end
//! prefixes that never complete into candidate paths; the path budget (which
//! counts completed paths only) never triggers, and only the step cap added
//! alongside the quotient search (`simple_paths_bounded`) makes it return at
//! all. The random-regular row at n = 256 is the honest head-to-head: both
//! sides get the same 50 000-path budget; the enumeration burns the whole
//! budget and still fails while the quotient search succeeds three orders of
//! magnitude faster (recorded as the `speedup_x_*` metrics).
//!
//! Every quotient-search point resolves its index inside the default budget
//! except PPE on the shuffled circulant at n = 4096, whose depth-1 classes are
//! genuinely hard: that point measures the typed fail-fast path (a few seconds
//! to `PathBudgetExceeded`, where the enumeration would never return) — hence
//! the `.ok()` on the timed calls.
//!
//! Run with `cargo bench -p anet-bench --bench bench_index`.

use anet_bench::Harness;
use anet_constructions::GraphFamily;
use anet_views::election_index::{psi_cppe, psi_cppe_enumerated, psi_ppe, psi_ppe_enumerated};
use anet_workloads::{CirculantFamily, RandomRegularFamily, TorusFamily};

/// The map solver's default path budget (both sides get the same allowance).
const MAX_PATHS: usize = 50_000;

fn mean_ns(h: &Harness, id: &str) -> i64 {
    h.results()
        .iter()
        .find(|m| m.id == id)
        .map(|m| m.mean.as_nanos() as i64)
        .unwrap_or(0)
}

fn main() {
    let mut h = Harness::new("index");

    let rr = RandomRegularFamily::new(3, vec![16, 256, 4096, 10_000], 0xA5EED);
    let torus = TorusFamily::new(vec![(4, 4), (16, 16), (64, 64), (100, 100)]).shuffled(41);
    let circ = CirculantFamily::powers_of_two(vec![16, 256, 4096, 10_000], 3).shuffled(41);
    let families: [(&str, &dyn GraphFamily); 3] = [("rr", &rr), ("torus", &torus), ("circ", &circ)];

    for (name, family) in families {
        for instance in family.instances(4) {
            let g = &instance.graph;
            let n = g.num_nodes();
            eprintln!("[bench_index] {name} n={n}");
            let samples = if n >= 4096 { 3 } else { 5 };
            h.bench(&format!("psi_ppe_new_{name}_n{n}"), samples, || {
                psi_ppe(g, MAX_PATHS).ok()
            });
            h.bench(&format!("psi_cppe_new_{name}_n{n}"), samples, || {
                psi_cppe(g, MAX_PATHS).ok()
            });
            // The enumeration baseline, where it terminates: n = 16 everywhere;
            // n = 256 only on random-regular, whose sparse neighbourhoods keep
            // the DFS linear in the budget (~8 µs per completed path).
            if n == 16 || (n == 256 && name == "rr") {
                h.bench(&format!("psi_ppe_old_{name}_n{n}"), samples, || {
                    psi_ppe_enumerated(g, MAX_PATHS).ok()
                });
                h.bench(&format!("psi_cppe_old_{name}_n{n}"), samples, || {
                    psi_cppe_enumerated(g, MAX_PATHS).ok()
                });
            }
        }
    }

    // Headline speedups at the head-to-head point (old mean / new mean).
    for shade in ["ppe", "cppe"] {
        let old = mean_ns(&h, &format!("psi_{shade}_old_rr_n256"));
        let new = mean_ns(&h, &format!("psi_{shade}_new_rr_n256"));
        if new > 0 {
            h.metric(&format!("speedup_x_{shade}_rr_n256"), old / new);
        }
    }

    h.report();
}
