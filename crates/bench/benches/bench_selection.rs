//! E2/E3 — the Theorem 2.2 Selection oracle/algorithm pair: end-to-end solve time and
//! advice size on random graphs and on members of `G_{Δ,k}`.

use anet_constructions::GClass;
use anet_election::selection::solve_selection_min_time;
use anet_graph::generators;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_selection_random(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection_min_time_random");
    group.sample_size(20);
    for n in [30usize, 100, 300] {
        let g = (0..50u64)
            .map(|s| generators::random_connected(n, 5, n / 2, s).unwrap())
            .find(|g| anet_views::election_index::psi_s(g).is_some())
            .expect("some random graph of this size is solvable");
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| solve_selection_min_time(g).advice_bits())
        });
    }
    group.finish();
}

fn bench_selection_on_g_class(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection_min_time_G_class");
    group.sample_size(10);
    for (delta, k, i) in [(4usize, 1usize, 5u64), (5, 1, 20)] {
        let member = GClass::new(delta, k).unwrap().member(i).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{delta}_k{k}_i{i}")),
            &member.labeled.graph,
            |b, g| b.iter(|| solve_selection_min_time(g).advice_bits()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_selection_random, bench_selection_on_g_class);
criterion_main!(benches);
