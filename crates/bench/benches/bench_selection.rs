//! E2/E3 — the Theorem 2.2 Selection oracle/algorithm pair: end-to-end solve time
//! and advice size on random graphs and on `G_{Δ,k}` members.
//!
//! Times `Solver::solve` directly (the engine's solver interface) rather than
//! `Election::run`, so the measurement covers oracle + simulation + decision, not
//! the Selection verifier.
//!
//! Run with `cargo bench -p anet-bench --bench bench_selection`.

use anet_bench::Harness;
use anet_constructions::GClass;
use anet_election::engine::{AdviceSolver, Backend, Solver};
use anet_election::tasks::Task;
use anet_graph::generators;

fn solve(g: &anet_graph::PortGraph) -> usize {
    AdviceSolver::theorem_2_2()
        .solve(g, Task::Selection, Backend::Sequential)
        .unwrap()
        .advice_bits
        .unwrap()
}

fn main() {
    let mut h = Harness::new("selection_min_time");
    for n in [30usize, 100, 300] {
        let g = (0..50u64)
            .map(|s| generators::random_connected(n, 5, n / 2, s).unwrap())
            .find(|g| anet_views::election_index::psi_s(g).is_some())
            .expect("some random graph of this size is solvable");
        h.bench(&format!("random_n{n}"), 20, || solve(&g));
    }
    for (delta, k, i) in [(4usize, 1usize, 5u64), (5, 1, 20)] {
        let member = GClass::new(delta, k).unwrap().member(i).unwrap();
        h.bench(&format!("G_d{delta}_k{k}_i{i}"), 10, || {
            solve(&member.labeled.graph)
        });
    }
    h.report();
}
