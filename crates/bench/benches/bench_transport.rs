//! P1 — the metered wire transport: full-information collection with every
//! message serialised through each [`MessageCodec`], timed side by side against
//! the zero-serialisation fast path, plus the CONGEST-style capped stream.
//!
//! Beyond the timings, the run records the codecs' measured footprints as
//! metrics: total bits on the wire for tree vs dag vs delta on a small random
//! 3-regular workload and on the canonical 9×9 torus (the README's
//! bits-on-the-wire table is generated from these), and the physical round
//! count of a capped run next to its logical plan. Expected shape: the delta
//! codec lands strictly below the dag codec once views deepen (round r ships
//! only the frontier the receiver cannot already know), and both collapse the
//! tree codec's `Θ((Δ−1)^h)` blowup to the number of distinct subviews.
//!
//! Run with `cargo bench -p anet-bench --bench bench_transport`. Set
//! `ANET_BENCH_JSON_DIR=<dir>` to also emit `BENCH_bench_transport.json`
//! (schema `anet-bench/v1`); CI gates that artifact against
//! `crates/bench/baselines/bench_transport_smoke.json` via `bench_diff`.

use anet_bench::Harness;
use anet_sim::{run_full_information_on, run_metered, Backend, MessageCodec};
use anet_trace::NoopSink;
use anet_workloads::families::{RandomRegularFamily, TorusFamily};

fn main() {
    let mut h = Harness::new("transport");

    // The timing workload: a random 3-regular graph small enough that the tree
    // codec's exponential views stay tractable, deep enough (r = 3) that the
    // codecs separate. 96 nodes, 288 directed edges.
    let rr = RandomRegularFamily::new(3, vec![96], 0xA5EED).generate(96);
    let rounds = 3;

    // Reference point: the unmetered sequential fast path (no serialisation).
    h.bench("unmetered_seq_rr3_n96_r3", 10, || {
        run_full_information_on(&rr, rounds, Backend::Sequential, |v| v.size()).1
    });

    // One timed run per codec; the per-codec totals become metrics below.
    for codec in MessageCodec::ALL {
        h.bench(&format!("metered_{codec}_rr3_n96_r3"), 10, || {
            run_metered(&rr, rounds, codec, None, &NoopSink)
                .1
                .total_bits()
        });
    }

    // The capped stream: same graph, default (dag) codec, 64 bits per directed
    // edge per physical round. Measures the streaming loop's overhead, and the
    // physical round count shows the inflation next to the logical plan.
    h.bench("capped_b64_dag_rr3_n96_r3", 10, || {
        run_metered(&rr, rounds, MessageCodec::Dag, Some(64), &NoopSink)
            .0
            .report
            .rounds
    });

    for codec in MessageCodec::ALL {
        let (_, stats) = run_metered(&rr, rounds, codec, None, &NoopSink);
        h.metric(
            &format!("{codec}_total_bits_rr3_n96_r3"),
            stats.total_bits() as i64,
        );
    }

    // Bits on the wire across the three codecs on the fully symmetric canonical
    // 9×9 torus (Δ = 4, every node's view identical), r = 4: the tree codec
    // re-ships the unfolded `4·3^{h-1}` frontier every round, the dag codec
    // ships one node per distinct subview, the delta codec ships only what the
    // receiver cannot predict from the previous round. These metrics are the
    // source of the README bits-on-the-wire table.
    let torus = TorusFamily::generate(9, 9);
    let torus_rounds = 4;
    for codec in MessageCodec::ALL {
        let (_, stats) = run_metered(&torus, torus_rounds, codec, None, &NoopSink);
        h.metric(
            &format!("{codec}_total_bits_torus9x9_r4"),
            stats.total_bits() as i64,
        );
        h.metric(
            &format!("{codec}_max_edge_bits_torus9x9_r4"),
            stats.max_edge_bits() as i64,
        );
    }

    // The capped run's physical round count (logical plan: 3 rounds).
    let (outcome, stats) = run_metered(&rr, rounds, MessageCodec::Dag, Some(64), &NoopSink);
    h.metric(
        "capped_b64_physical_rounds_rr3_n96_r3",
        outcome.report.rounds as i64,
    );
    h.metric(
        "capped_b64_total_bits_rr3_n96_r3",
        stats.total_bits() as i64,
    );

    h.report();
}
