//! E4 — the Lemma 3.9 Port Election algorithm on members of `U_{Δ,k}`.

use anet_constructions::UClass;
use anet_election::port_election::solve_port_election_on_u;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_pe_on_u(c: &mut Criterion) {
    let mut group = c.benchmark_group("port_election_on_U");
    group.sample_size(10);
    for (delta, k) in [(4usize, 1usize), (5, 1)] {
        let class = UClass::new(delta, k).unwrap();
        let sigma: Vec<u32> = (0..class.y())
            .map(|j| (j % (delta as u64 - 1)) as u32 + 1)
            .collect();
        let member = class.member(&sigma).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!(
                "d{delta}_k{k}_n{}",
                member.labeled.graph.num_nodes()
            )),
            &member.labeled.graph,
            |b, g| b.iter(|| solve_port_election_on_u(g, k).unwrap().outputs.len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pe_on_u);
criterion_main!(benches);
