//! E4 — the Lemma 3.9 Port Election algorithm on members of `U_{Δ,k}`.
//!
//! Times `Solver::solve` directly (the engine's solver interface) rather than
//! `Election::run`, so the measurement covers the algorithm alone, not the PE
//! verifier's per-node path checks.
//!
//! Run with `cargo bench -p anet-bench --bench bench_port_election`.

use anet_bench::Harness;
use anet_constructions::UClass;
use anet_election::engine::{Backend, PortElectionSolver, Solver};
use anet_election::tasks::Task;

fn main() {
    let mut h = Harness::new("port_election_on_U");
    for (delta, k) in [(4usize, 1usize), (5, 1)] {
        let class = UClass::new(delta, k).unwrap();
        let sigma: Vec<u32> = (0..class.y())
            .map(|j| (j % (delta as u64 - 1)) as u32 + 1)
            .collect();
        let member = class.member(&sigma).unwrap();
        let g = member.labeled.graph;
        let solver = PortElectionSolver::new(k);
        h.bench(&format!("d{delta}_k{k}_n{}", g.num_nodes()), 10, || {
            solver
                .solve(&g, Task::PortElection, Backend::Sequential)
                .unwrap()
                .outputs
                .len()
        });
    }
    h.report();
}
