//! P2 — overhead and scaling of the `ElectionEngine` facade itself: the same
//! map-based solve, across backends and graph sizes, plus a whole batch sweep.
//! Unlike the per-algorithm benches, these deliberately time the full
//! `Election::run` pipeline *including* verification — that is the facade's cost.
//!
//! Run with `cargo bench -p anet-bench --bench bench_engine`.

use anet_bench::Harness;
use anet_constructions::GClass;
use anet_election::engine::{Backend, BatchRunner, Election, MapSolver};
use anet_election::tasks::Task;
use anet_graph::generators;

fn main() {
    let mut h = Harness::new("election_engine");
    for n in [40usize, 120] {
        let g = (0..50u64)
            .map(|s| generators::random_connected(n, 4, n / 3, s).unwrap())
            .find(|g| anet_views::election_index::psi_s(g).is_some())
            .expect("some random graph of this size is solvable");
        for backend in [
            Backend::Sequential,
            Backend::parallel(4),
            Backend::Batching,
            Backend::AdaptiveParallel,
        ] {
            h.bench(&format!("selection_map_{backend}_n{n}"), 10, || {
                Election::task(Task::Selection)
                    .solver(MapSolver::default())
                    .backend(backend)
                    .run(&g)
                    .unwrap()
                    .rounds
            });
        }
    }
    let class = GClass::new(4, 1).unwrap();
    h.bench("batch_sweep_G41_all_tasks_x2", 5, || {
        BatchRunner::default()
            .max_instances(2)
            .sweep_tasks(&class, &Task::ALL, |_| Box::new(MapSolver::default()))
            .len()
    });
    h.report();
}
