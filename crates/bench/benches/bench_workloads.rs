//! P3 — the workload subsystem: generation cost of the new graph families, the
//! engine's end-to-end cost on them (the cells of the `sweep` driver's grid), and the
//! routing phase at scale on a ≥ 10⁵-node torus across the execution backends.
//!
//! Run with `cargo bench -p anet-bench --bench bench_workloads`.

use anet_bench::Harness;
use anet_constructions::GraphFamily;
use anet_election::engine::{Backend, Election, MapSolver};
use anet_election::tasks::Task;
use anet_sim::NodeAlgorithm;
use anet_workloads::{CirculantFamily, HypercubeFamily, RandomRegularFamily, TorusFamily};

/// Constant-size ping: every node sends its round parity on every port. O(1) message
/// handling isolates the engine's routing plumbing; `send_into` keeps the arena
/// backends allocation-free.
struct Ping {
    degree: usize,
    heard: usize,
}

impl NodeAlgorithm for Ping {
    type Message = u8;
    type Output = usize;

    fn send(&mut self, round: usize) -> Vec<Option<u8>> {
        vec![Some((round % 2) as u8); self.degree]
    }

    fn send_into(&mut self, round: usize, outbox: &mut [Option<u8>]) {
        for slot in outbox.iter_mut() {
            *slot = Some((round % 2) as u8);
        }
    }

    fn receive(&mut self, _round: usize, inbox: &mut [Option<u8>]) {
        self.heard += inbox.iter_mut().filter_map(Option::take).count();
    }

    fn output(&self) -> usize {
        self.heard
    }
}

fn main() {
    let mut h = Harness::new("workloads");

    // Generation: the retry-until-simple pairing model dominates family setup cost.
    for n in [64usize, 256, 1024] {
        let fam = RandomRegularFamily::new(3, vec![n], 0xA5EED);
        h.bench(&format!("generate_random_regular_d3_n{n}"), 10, || {
            fam.generate(n).num_edges()
        });
    }
    h.bench("generate_torus_32x32", 10, || {
        TorusFamily::generate(32, 32).num_edges()
    });
    h.bench("generate_circulant_n1024_t3", 10, || {
        CirculantFamily::generate(1024, 3).num_edges()
    });
    h.bench("shuffled_hypercube_d10", 10, || {
        HypercubeFamily::new(vec![10])
            .shuffled(41)
            .instances(1)
            .remove(0)
            .graph
            .num_edges()
    });

    // Engine on workload instances: one Selection solve per family, seq vs parallel
    // (the sweep grid's hot cell shape).
    let instances: Vec<_> = [
        Box::new(RandomRegularFamily::new(3, vec![64], 0xA5EED)) as Box<dyn GraphFamily>,
        Box::new(TorusFamily::new(vec![(8, 8)]).shuffled(41)),
        Box::new(CirculantFamily::powers_of_two(vec![64], 3).shuffled(41)),
    ]
    .iter()
    .map(|f| f.instances(1).remove(0))
    .collect();
    for instance in &instances {
        let short = instance
            .name
            .split([',', '('])
            .next()
            .unwrap()
            .trim()
            .to_string();
        for backend in [
            Backend::Sequential,
            Backend::parallel(4),
            Backend::Batching,
            Backend::AdaptiveParallel,
        ] {
            h.bench(&format!("selection_{short}_n64_{backend}"), 10, || {
                Election::task(Task::Selection)
                    .solver(MapSolver::default())
                    .backend(backend)
                    .run(&instance.graph)
                    .unwrap()
                    .rounds
            });
        }
    }

    // Routing phase at scale: a 320×330 torus (105 600 nodes, degree 4) under
    // constant-size pinging — the `seq` vs `batch` comparison on an n ≥ 10⁵ workload.
    let torus = TorusFamily::generate(320, 330);
    let n = torus.num_nodes();
    let rounds = 4;
    for backend in [
        Backend::Sequential,
        Backend::Batching,
        Backend::AdaptiveParallel,
    ] {
        h.bench(
            &format!("routing_torus_{backend}_n{n}_r{rounds}"),
            5,
            || {
                backend
                    .run(&torus, &|degree| Ping { degree, heard: 0 }, rounds)
                    .report
                    .messages_delivered
            },
        );
    }

    h.report();
}
