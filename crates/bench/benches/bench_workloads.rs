//! P3 — the workload subsystem: generation cost of the new graph families and the
//! engine's end-to-end cost on them (the cells of the `sweep` driver's grid).
//!
//! Run with `cargo bench -p anet-bench --bench bench_workloads`.

use anet_bench::Harness;
use anet_constructions::GraphFamily;
use anet_election::engine::{Backend, Election, MapSolver};
use anet_election::tasks::Task;
use anet_workloads::{CirculantFamily, HypercubeFamily, RandomRegularFamily, TorusFamily};

fn main() {
    let mut h = Harness::new("workloads");

    // Generation: the retry-until-simple pairing model dominates family setup cost.
    for n in [64usize, 256, 1024] {
        let fam = RandomRegularFamily::new(3, vec![n], 0xA5EED);
        h.bench(&format!("generate_random_regular_d3_n{n}"), 10, || {
            fam.generate(n).num_edges()
        });
    }
    h.bench("generate_torus_32x32", 10, || {
        TorusFamily::generate(32, 32).num_edges()
    });
    h.bench("generate_circulant_n1024_t3", 10, || {
        CirculantFamily::generate(1024, 3).num_edges()
    });
    h.bench("shuffled_hypercube_d10", 10, || {
        HypercubeFamily::new(vec![10])
            .shuffled(41)
            .instances(1)
            .remove(0)
            .graph
            .num_edges()
    });

    // Engine on workload instances: one Selection solve per family, seq vs parallel
    // (the sweep grid's hot cell shape).
    let instances: Vec<_> = [
        Box::new(RandomRegularFamily::new(3, vec![64], 0xA5EED)) as Box<dyn GraphFamily>,
        Box::new(TorusFamily::new(vec![(8, 8)]).shuffled(41)),
        Box::new(CirculantFamily::powers_of_two(vec![64], 3).shuffled(41)),
    ]
    .iter()
    .map(|f| f.instances(1).remove(0))
    .collect();
    for instance in &instances {
        let short = instance
            .name
            .split([',', '('])
            .next()
            .unwrap()
            .trim()
            .to_string();
        for backend in [Backend::Sequential, Backend::Parallel { threads: 4 }] {
            h.bench(&format!("selection_{short}_n64_{backend}"), 10, || {
                Election::task(Task::Selection)
                    .solver(MapSolver::default())
                    .backend(backend)
                    .run(&instance.graph)
                    .unwrap()
                    .rounds
            });
        }
    }
    h.report();
}
