//! P1 — cost of building the paper's graph families (the substrate of experiments
//! E3, E4, E5 and of the figure regeneration).

use anet_constructions::{layers, GClass, JClass, UClass};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_g_class(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_G_delta_k_member");
    group.sample_size(20);
    for (delta, k, i) in [(4usize, 1usize, 5u64), (5, 1, 20), (4, 2, 3)] {
        let class = GClass::new(delta, k).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{delta}_k{k}_i{i}")),
            &(class, i),
            |b, (class, i)| b.iter(|| class.member(*i).unwrap().labeled.graph.num_nodes()),
        );
    }
    group.finish();
}

fn bench_u_class(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_U_delta_k_member");
    group.sample_size(10);
    for (delta, k) in [(4usize, 1usize), (5, 1)] {
        let class = UClass::new(delta, k).unwrap();
        let sigma: Vec<u32> = (0..class.y()).map(|j| (j % 3) as u32 + 1).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{delta}_k{k}")),
            &(class, sigma),
            |b, (class, sigma)| b.iter(|| class.member(sigma).unwrap().labeled.graph.num_nodes()),
        );
    }
    group.finish();
}

fn bench_j_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_J_mu_k_chain");
    group.sample_size(10);
    let class = JClass::new(2, 4).unwrap();
    for gadgets in [8usize, 32, 128] {
        group.bench_with_input(
            BenchmarkId::from_parameter(gadgets),
            &gadgets,
            |b, &gadgets| {
                b.iter(|| class.template(Some(gadgets)).unwrap().labeled.graph.num_nodes())
            },
        );
    }
    group.finish();
}

fn bench_layers(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_layer_graph");
    for (mu, m) in [(3usize, 4usize), (3, 5), (4, 6)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("mu{mu}_m{m}")),
            &(mu, m),
            |b, &(mu, m)| b.iter(|| layers::layer_graph(mu, m).unwrap().0.num_nodes()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_g_class, bench_u_class, bench_j_chain, bench_layers);
criterion_main!(benches);
