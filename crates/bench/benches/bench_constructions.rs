//! P1 — cost of building the paper's graph families (the substrate of experiments
//! E3, E4, E5 and of the figure regeneration).
//!
//! Run with `cargo bench -p anet-bench --bench bench_constructions`.

use anet_bench::Harness;
use anet_constructions::{layers, GClass, JClass, UClass};

fn main() {
    let mut h = Harness::new("constructions");
    for (delta, k, i) in [(4usize, 1usize, 5u64), (5, 1, 20), (4, 2, 3)] {
        let class = GClass::new(delta, k).unwrap();
        h.bench(&format!("build_G_d{delta}_k{k}_i{i}"), 20, || {
            class.member(i).unwrap().labeled.graph.num_nodes()
        });
    }
    for (delta, k) in [(4usize, 1usize), (5, 1)] {
        let class = UClass::new(delta, k).unwrap();
        let sigma: Vec<u32> = (0..class.y()).map(|j| (j % 3) as u32 + 1).collect();
        h.bench(&format!("build_U_d{delta}_k{k}"), 10, || {
            class.member(&sigma).unwrap().labeled.graph.num_nodes()
        });
    }
    let class = JClass::new(2, 4).unwrap();
    for gadgets in [8usize, 32, 128] {
        h.bench(&format!("build_J_chain_{gadgets}"), 10, || {
            class
                .template(Some(gadgets))
                .unwrap()
                .labeled
                .graph
                .num_nodes()
        });
    }
    for (mu, m) in [(3usize, 4usize), (3, 5), (4, 6)] {
        h.bench(&format!("build_layer_mu{mu}_m{m}"), 10, || {
            layers::layer_graph(mu, m).unwrap().0.num_nodes()
        });
    }
    h.report();
}
