//! E1 — cost of computing all four election indices exactly on small graphs.

use anet_graph::generators;
use anet_views::election_index::compute_all;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_exact_indices(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_election_indices");
    group.sample_size(10);
    for n in [8usize, 12, 16] {
        let g = generators::random_connected(n, 4, 3, n as u64).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| compute_all(g, 50_000).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact_indices);
criterion_main!(benches);
