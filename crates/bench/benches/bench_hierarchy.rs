//! E1 — cost of computing all four election indices exactly on small graphs.
//!
//! Run with `cargo bench -p anet-bench --bench bench_hierarchy`.

use anet_bench::Harness;
use anet_graph::generators;
use anet_views::election_index::compute_all;

fn main() {
    let mut h = Harness::new("exact_election_indices");
    for n in [8usize, 12, 16] {
        let g = generators::random_connected(n, 4, 3, n as u64).unwrap();
        h.bench(&format!("n{n}"), 10, || compute_all(&g, 50_000).unwrap());
    }
    h.report();
}
