//! A std-only work-stealing pool for indexed job batches.
//!
//! Both the multi-tenant election service (`anet-service`) and the sweep driver
//! (`anet-workloads` with `--jobs N`) need the same primitive: run `jobs`
//! independent closures across `workers` OS threads such that
//!
//! 1. the *results are deterministic* — job `i`'s result lands in slot `i` of the
//!    output, whatever thread ran it and in whatever order, so a parallel sweep is
//!    byte-identical to a sequential one, and
//! 2. *stragglers don't idle the pool* — election runs vary by orders of magnitude
//!    across graph families, so static chunking (the right call inside one
//!    synchronous round, where phases are uniform) would leave most workers parked
//!    behind whichever one drew the big instances.
//!
//! [`run_indexed`] implements the classic work-stealing discipline with striped
//! mutexes instead of lock-free deques (no `unsafe` in this workspace, no external
//! crates): jobs are dealt round-robin into one `Mutex<VecDeque>` per worker;
//! each worker pops its own deque from the *front* (cache-warm, deal order) and,
//! when empty, scans the other deques and steals from the *back* (the coldest
//! work, minimising contention with the owner popping the front). Each lock is
//! held only for a single pop — microseconds against election runs measured in
//! milliseconds — so the striped-mutex path measures within noise of a lock-free
//! deque at this job granularity while staying `#![forbid(unsafe_code)]`.
//!
//! The job set is static (all dealt before any worker starts), so termination is
//! simple: a worker exits after one full sweep finds every deque empty. The pool
//! reports [`PoolStats`] — per-worker execution counts and the total number of
//! steals — which the service surfaces as scheduler-health metrics.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Scheduling statistics from one [`run_indexed`] batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Number of worker threads the batch actually ran with (after clamping to
    /// the job count; 1 means the batch ran inline on the caller's thread).
    pub workers: usize,
    /// Jobs executed by each worker, indexed by worker id. Sums to the job count.
    pub executed: Vec<u64>,
    /// Total number of jobs a worker took from *another* worker's deque. Zero
    /// means the round-robin deal happened to be perfectly balanced; a high count
    /// relative to the job total means the workload was badly skewed and stealing
    /// is earning its keep.
    pub steals: u64,
}

impl PoolStats {
    /// Total jobs executed across all workers.
    pub fn total_executed(&self) -> u64 {
        self.executed.iter().sum()
    }
}

/// Run `f(0), f(1), …, f(jobs - 1)` across `workers` threads with work stealing;
/// returns the results *in job order* plus [`PoolStats`].
///
/// `workers` is clamped to `1..=jobs`; with one effective worker the batch runs
/// inline on the calling thread (no thread is spawned), which also means
/// thread-local state such as [`crate::with_thread_budget`] scopes visible to the
/// caller remain visible to the jobs. With more than one worker, jobs run on
/// scoped threads that do *not* inherit the caller's thread-locals — callers that
/// need a per-job budget set it inside `f`.
///
/// Panics in `f` are propagated to the caller after the scope joins.
pub fn run_indexed<R, F>(workers: usize, jobs: usize, f: F) -> (Vec<R>, PoolStats)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.max(1).min(jobs.max(1));
    if workers <= 1 {
        let results: Vec<R> = (0..jobs).map(&f).collect();
        return (
            results,
            PoolStats {
                workers: 1,
                executed: vec![jobs as u64],
                steals: 0,
            },
        );
    }

    // Deal jobs round-robin: worker w starts with jobs w, w + workers, …
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..jobs).step_by(workers).collect()))
        .collect();
    let steals = AtomicU64::new(0);

    let mut harvested: Vec<(usize, Vec<(usize, R)>)> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let deques = &deques;
                let steals = &steals;
                let f = &f;
                scope.spawn(move || {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        // Own deque first, from the front (deal order).
                        let own = deques[w].lock().expect("pool deque poisoned").pop_front();
                        let job = own.or_else(|| {
                            // One full sweep over the victims, stealing from the
                            // back; start at w + 1 so workers fan out over
                            // different victims instead of mobbing worker 0.
                            (1..workers).find_map(|offset| {
                                let victim = (w + offset) % workers;
                                let stolen = deques[victim]
                                    .lock()
                                    .expect("pool deque poisoned")
                                    .pop_back();
                                if stolen.is_some() {
                                    steals.fetch_add(1, Ordering::Relaxed);
                                }
                                stolen
                            })
                        });
                        match job {
                            Some(j) => out.push((j, f(j))),
                            // Every deque was empty during the sweep and no job is
                            // ever re-added: the batch is drained.
                            None => break,
                        }
                    }
                    out
                })
            })
            .collect();
        for (w, handle) in handles.into_iter().enumerate() {
            harvested.push((w, handle.join().expect("pool worker panicked")));
        }
    });

    // Reassemble in job order — this is what makes the pool deterministic.
    let mut executed = vec![0u64; workers];
    let mut slots: Vec<Option<R>> = (0..jobs).map(|_| None).collect();
    for (w, results) in harvested {
        executed[w] += results.len() as u64;
        for (job, result) in results {
            debug_assert!(slots[job].is_none(), "job {job} executed twice");
            slots[job] = Some(result);
        }
    }
    let results = slots
        .into_iter()
        .map(|slot| slot.expect("every dealt job is executed exactly once"))
        .collect();
    (
        results,
        PoolStats {
            workers,
            executed,
            steals: steals.load(Ordering::Relaxed),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn results_are_in_job_order_for_any_worker_count() {
        for workers in [1, 2, 3, 4, 7, 16] {
            let (results, stats) = run_indexed(workers, 37, |i| i * i);
            assert_eq!(results, (0..37).map(|i| i * i).collect::<Vec<_>>());
            assert_eq!(stats.total_executed(), 37);
            assert_eq!(stats.executed.len(), stats.workers);
        }
    }

    #[test]
    fn worker_count_is_clamped_to_jobs() {
        let (results, stats) = run_indexed(8, 3, |i| i);
        assert_eq!(results, vec![0, 1, 2]);
        assert_eq!(stats.workers, 3);

        let (results, stats) = run_indexed(8, 0, |i| i);
        assert!(results.is_empty());
        assert_eq!(stats.workers, 1);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn single_worker_runs_inline_and_sees_callers_thread_locals() {
        crate::with_thread_budget(3, || {
            let (budgets, stats) = run_indexed(1, 4, |_| crate::thread_budget());
            assert_eq!(stats.workers, 1);
            assert_eq!(budgets, vec![3; 4]);
        });
    }

    #[test]
    fn skewed_jobs_are_stolen_from_the_slow_worker() {
        // Worker 0 is dealt jobs 0, 2, 4, …; make those slow and the rest instant.
        // Worker 1 drains its own deque almost immediately and must steal worker
        // 0's backlog from the back for the batch to finish in bounded time.
        let (results, stats) = run_indexed(2, 16, |i| {
            if i % 2 == 0 {
                std::thread::sleep(Duration::from_millis(20));
            }
            i
        });
        assert_eq!(results, (0..16).collect::<Vec<_>>());
        assert!(
            stats.steals > 0,
            "fast worker should have stolen from the slow one: {stats:?}"
        );
        assert_eq!(stats.total_executed(), 16);
    }

    #[test]
    fn pool_results_match_sequential_execution() {
        let sequential: Vec<u64> = (0..50u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let (parallel, _) = run_indexed(4, 50, |i| (i as u64).wrapping_mul(0x9E37_79B9));
        assert_eq!(sequential, parallel);
    }
}
